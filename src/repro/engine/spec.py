"""Trial specifications and structured trial failures.

A :class:`TrialSpec` is the unit of work the engine schedules: an index
into the sweep, a picklable ``params`` dict, and a private
:class:`numpy.random.SeedSequence`.  Seeds are assigned by
:func:`make_specs` via ``SeedSequence.spawn`` **in sweep order**, so a
trial's random stream depends only on the root seed and its index —
never on which executor ran it, which worker picked it up, or what ran
before it.  That is the engine's determinism contract: serial and
parallel runs are bit-for-bit identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = ["TrialSpec", "TrialError", "make_specs"]

SeedLike = Union[int, np.random.SeedSequence, None]


@dataclass(frozen=True)
class TrialSpec:
    """One trial of a sweep: index, parameters, and a private seed.

    ``params`` must be picklable (it crosses process boundaries under the
    process-pool executor).  Random state must come from :meth:`rng` /
    :meth:`child_rng` — a trial function that seeds from anything else
    (global state, wall clock, its worker id) breaks the serial/parallel
    equivalence guarantee.
    """

    index: int
    params: Dict[str, Any] = field(default_factory=dict)
    seed_seq: Optional[np.random.SeedSequence] = None

    def __getitem__(self, key: str) -> Any:
        return self.params[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def rng(self) -> np.random.Generator:
        """The trial's main random stream (deterministic per index)."""
        return np.random.default_rng(self._seq())

    def child_rng(self, child: int) -> np.random.Generator:
        """An independent named sub-stream of this trial's seed.

        Pure in ``(root seed, index, child)`` — unlike ``spawn`` it does
        not mutate the :class:`~numpy.random.SeedSequence`, so a trial
        may request children in any order, any number of times.
        """
        seq = self._seq()
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=seq.entropy, spawn_key=tuple(seq.spawn_key) + (int(child),)
            )
        )

    @property
    def seed_entropy(self) -> Any:
        """Root entropy + spawn key (for error reports / reproduction)."""
        if self.seed_seq is None:
            return None
        return {"entropy": self.seed_seq.entropy,
                "spawn_key": tuple(self.seed_seq.spawn_key)}

    def _seq(self) -> np.random.SeedSequence:
        if self.seed_seq is None:
            raise ValueError(
                f"trial {self.index} has no seed; build specs with make_specs()"
            )
        return self.seed_seq


def make_specs(
    params: Sequence[Mapping[str, Any]],
    seed: SeedLike = 0,
) -> List[TrialSpec]:
    """Build one :class:`TrialSpec` per params mapping, seeding by spawn.

    The root :class:`~numpy.random.SeedSequence` spawns exactly
    ``len(params)`` children in order, so spec ``i`` always receives the
    same stream for a given root seed, regardless of executor.
    """
    params = list(params)
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    children = root.spawn(len(params)) if params else []
    return [
        TrialSpec(index=i, params=dict(p), seed_seq=child)
        for i, (p, child) in enumerate(zip(params, children))
    ]


class TrialError(RuntimeError):
    """A trial failed; carries enough context to replay it in isolation.

    The engine fails fast: the first failing trial aborts the run and
    surfaces here with the trial's index, params, seed entropy, and the
    worker-side traceback text (exceptions themselves may not pickle, so
    the traceback travels as a string).
    """

    def __init__(
        self,
        message: str,
        *,
        index: int,
        params: Optional[Dict[str, Any]] = None,
        seed_entropy: Any = None,
        traceback_text: str = "",
    ) -> None:
        detail = f"trial {index} failed: {message}"
        if params is not None:
            detail += f"\n  params: {_short_repr(params)}"
        if seed_entropy is not None:
            detail += f"\n  seed: {seed_entropy}"
        if traceback_text:
            detail += "\n--- worker traceback ---\n" + traceback_text.rstrip()
        super().__init__(detail)
        self.index = index
        self.params = params
        self.seed_entropy = seed_entropy
        self.traceback_text = traceback_text


def _short_repr(params: Mapping[str, Any], limit: int = 400) -> str:
    text = repr(dict(params))
    return text if len(text) <= limit else text[: limit - 3] + "..."
