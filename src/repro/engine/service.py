"""Sim-as-a-service: a thin asyncio HTTP front-end over the sweep engine.

Stdlib only — ``asyncio.start_server`` plus a deliberately minimal
HTTP/1.1 request parser (the service speaks exactly the subset its
endpoints need; every response closes the connection).  Heavy work runs
on a thread pool so the event loop stays responsive while sweeps grind;
the sweeps themselves go through :mod:`repro.engine`, so they pick up
the result store (``REPRO_STORE``) and worker flags like any other
caller.

Endpoints
---------
=======================  ====================================================
``GET  /healthz``        liveness + job-state counts
``POST /jobs``           submit ``{"kind": ..., "params": {...}}`` → 202
                         ``{"job_id": ...}``
``GET  /jobs``           every job's summary (newest first)
``GET  /jobs/<id>``      one job's summary (state, timings, latency)
``GET  /jobs/<id>/result``  the result once ``state == "done"`` (409 before,
                         500 with the error text for failed jobs)
``GET  /metrics``        Prometheus text exposition of the live registry
``GET  /metrics.json``   the same registry as JSON
=======================  ====================================================

Job kinds are module-level functions in :data:`JOB_KINDS` — each takes a
params dict and returns a JSON-serialisable result.  Shipped kinds:

* ``fig2`` — the SNR-gap sweep (grid/realizations/workers overridable);
* ``net`` — a ``repro.net`` scenario sweep by built-in name, summarised;
* ``noop`` — an engine sweep of spin trials, for load tests.

Every job is timed submit→finish into the
``repro_service_job_seconds{kind=...}`` histogram and traced under a
``service.job`` span, which is where the load-test harness
(``benchmarks/bench_engine_fabric.py``) reads its p50/p95 job latency.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import logging
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import span

__all__ = ["JOB_KINDS", "Job", "FabricService", "ServiceHandle",
           "start_in_thread"]

log = logging.getLogger("repro.engine.service")

_MAX_BODY_BYTES = 1 << 20
#: Buckets tuned for job latency: 1 ms .. 60 s.
_JOB_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


# ---------------------------------------------------------------------------
# Job kinds
# ---------------------------------------------------------------------------

def _noop_trial(spec) -> float:
    """A spin trial: deterministic output, tunable wall cost."""
    rng = spec.rng()
    deadline = time.perf_counter() + spec.get("spin_ms", 0.0) / 1e3
    while time.perf_counter() < deadline:
        pass
    return float(rng.normal())


def _job_noop(params: Dict[str, Any]) -> Dict[str, Any]:
    """Engine sweep of ``n`` spin trials (``spin_ms`` each) — load-test fuel."""
    from repro import engine

    n = int(params.get("n", 16))
    spin_ms = float(params.get("spin_ms", 0.0))
    seed = int(params.get("seed", 0))
    values = engine.run_sweep(
        [{"spin_ms": spin_ms} for _ in range(n)], _noop_trial,
        seed=seed, workers=int(params.get("workers", 0)), label="service-noop",
    )
    return {"n": n, "mean": sum(values) / max(n, 1)}


def _job_fig2(params: Dict[str, Any]) -> Dict[str, Any]:
    """The fig. 2 SNR-gap sweep as a service job."""
    import numpy as np

    from repro.experiments import fig2

    grid = np.arange(
        float(params.get("snr_start_db", 5.0)),
        float(params.get("snr_stop_db", 25.5)),
        float(params.get("snr_step_db", 1.0)),
    )
    result = fig2.run(
        snr_grid=grid,
        realizations=int(params.get("realizations", 3)),
        workers=int(params.get("workers", 0)),
    )
    return {
        "points": [
            {
                "measured_snr_db": p.measured_snr_db,
                "rate_mbps": p.rate_mbps,
                "min_required_snr_db": p.min_required_snr_db,
                "actual_snr_db": p.actual_snr_db,
                "gap_db": p.gap_db,
            }
            for p in result.points
        ],
        "gap_always_positive": result.gap_always_positive(),
    }


def _job_net(params: Dict[str, Any]) -> Dict[str, Any]:
    """A ``repro.net`` scenario sweep by built-in name, summarised."""
    from repro.net import builtin_scenario, run_scenario_sweep, summarize_results

    name = str(params.get("scenario", "hidden-node"))
    spec = builtin_scenario(name)
    if params.get("control") is not None:
        spec = spec.with_control(str(params["control"]))
    results = run_scenario_sweep(
        spec,
        n_trials=int(params.get("trials", 1)),
        seed=int(params.get("seed", 0)),
        workers=int(params.get("workers", 0)),
    )
    return summarize_results(results)


JOB_KINDS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "noop": _job_noop,
    "fig2": _job_fig2,
    "net": _job_net,
}


# ---------------------------------------------------------------------------
# Job bookkeeping
# ---------------------------------------------------------------------------

@dataclass
class Job:
    """One submitted job's lifecycle record."""

    id: str
    kind: str
    params: Dict[str, Any]
    state: str = "queued"  # queued | running | done | failed
    submitted_ts: float = field(default_factory=time.time)
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    result: Any = None
    error: Optional[str] = None

    def summary(self) -> Dict[str, Any]:
        latency = (self.finished_ts - self.submitted_ts
                   if self.finished_ts is not None else None)
        return {
            "job_id": self.id,
            "kind": self.kind,
            "state": self.state,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "latency_s": latency,
            "error": self.error,
        }


class FabricService:
    """The asyncio HTTP service; one instance owns its jobs and pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_workers: int = 4,
        registry: Optional[MetricsRegistry] = None,
        kinds: Optional[Dict[str, Callable[[Dict[str, Any]], Any]]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.kinds = dict(kinds) if kinds is not None else dict(JOB_KINDS)
        self._registry = registry
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service-job"
        )
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("fabric service listening on %s", self.url)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
        self._pool.shutdown(wait=False, cancel_futures=True)

    # -- job execution -------------------------------------------------

    def submit(self, kind: str, params: Dict[str, Any]) -> Job:
        """Register a job and queue it on the worker pool."""
        if kind not in self.kinds:
            raise KeyError(kind)
        job = Job(id=uuid.uuid4().hex[:12], kind=kind, params=dict(params))
        with self._jobs_lock:
            self._jobs[job.id] = job
        self._pool.submit(self._run_job, job)
        return job

    def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.started_ts = time.time()
        try:
            with span("service.job", kind=job.kind, job_id=job.id):
                job.result = self.kinds[job.kind](job.params)
            job.state = "done"
        except Exception as exc:  # noqa: BLE001 — reported via the API
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
            log.warning("job %s (%s) failed: %s", job.id, job.kind, job.error)
        finally:
            job.finished_ts = time.time()
            registry = self.registry
            registry.counter(
                "repro_service_jobs_total",
                help="Jobs by kind and terminal state.",
            ).labels(kind=job.kind, state=job.state).inc()
            registry.histogram(
                "repro_service_job_seconds",
                help="Submit-to-finish job latency.",
                buckets=_JOB_BUCKETS,
            ).labels(kind=job.kind).observe(job.finished_ts - job.submitted_ts)

    def _job(self, job_id: str) -> Optional[Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def _job_summaries(self) -> List[Dict[str, Any]]:
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        return [j.summary() for j in
                sorted(jobs, key=lambda j: j.submitted_ts, reverse=True)]

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, body, content_type = await self._handle_request(reader)
        except Exception:  # noqa: BLE001 — a broken request must not kill the loop
            log.debug("malformed request", exc_info=True)
            status, body, content_type = 400, {"error": "malformed request"}, None
        try:
            payload, ctype = _encode_body(body, content_type)
            writer.write(
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n".encode() + payload
            )
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Any, Optional[str]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}, None
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            return 400, {"error": f"bad request line {request_line!r}"}, None
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            if length > _MAX_BODY_BYTES:
                return 413, {"error": "body too large"}, None
            body = await reader.readexactly(length)
        self.registry.counter(
            "repro_service_requests_total",
            help="HTTP requests by method and route.",
        ).labels(method=method, route=_route_label(target)).inc()
        return self._route(method, target.split("?", 1)[0], body)

    def _route(self, method: str, path: str,
               body: bytes) -> Tuple[int, Any, Optional[str]]:
        if method == "GET" and path == "/healthz":
            states: Dict[str, int] = {}
            for j in self._job_summaries():
                states[j["state"]] = states.get(j["state"], 0) + 1
            return 200, {"status": "ok", "jobs": states,
                         "kinds": sorted(self.kinds)}, None
        if method == "GET" and path == "/metrics":
            return 200, self.registry.to_prometheus(), "text/plain; version=0.0.4"
        if method == "GET" and path == "/metrics.json":
            return 200, json.loads(self.registry.to_json()), None
        if path == "/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                return 400, {"error": "body must be JSON"}, None
            kind = payload.get("kind")
            if not isinstance(kind, str) or kind not in self.kinds:
                return 400, {"error": f"unknown job kind {kind!r}",
                             "kinds": sorted(self.kinds)}, None
            params = payload.get("params") or {}
            if not isinstance(params, dict):
                return 400, {"error": "params must be an object"}, None
            job = self.submit(kind, params)
            return 202, {"job_id": job.id, "state": job.state,
                         "status_url": f"/jobs/{job.id}",
                         "result_url": f"/jobs/{job.id}/result"}, None
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": self._job_summaries()}, None
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self._job(job_id)
            if job is None:
                return 404, {"error": f"no job {job_id!r}"}, None
            if tail == "" and method == "GET":
                return 200, job.summary(), None
            if tail == "result" and method == "GET":
                if job.state == "done":
                    return 200, {"job_id": job.id, "kind": job.kind,
                                 "result": job.result}, None
                if job.state == "failed":
                    return 500, {"job_id": job.id, "error": job.error}, None
                return 409, {"job_id": job.id, "state": job.state,
                             "error": "job not finished"}, None
        return 404, {"error": f"no route {method} {path}"}, None


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 413: "Payload Too Large",
            500: "Internal Server Error"}


def _encode_body(body: Any, content_type: Optional[str]) -> Tuple[bytes, str]:
    if isinstance(body, str):
        return body.encode(), content_type or "text/plain; charset=utf-8"
    return (json.dumps(body, indent=2).encode() + b"\n",
            content_type or "application/json")


def _route_label(target: str) -> str:
    """Collapse job ids out of paths so the route label stays low-cardinality."""
    path = target.split("?", 1)[0]
    if path.startswith("/jobs/"):
        tail = path[len("/jobs/"):]
        return "/jobs/{id}/result" if tail.endswith("/result") else "/jobs/{id}"
    return path


# ---------------------------------------------------------------------------
# Thread-hosted service (tests, benchmarks, notebook use)
# ---------------------------------------------------------------------------

class ServiceHandle:
    """A running service on a background thread; ``stop()`` tears it down."""

    def __init__(self, service: FabricService, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.service = service
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        return self.service.url

    def stop(self, timeout_s: float = 5.0) -> None:
        def _shutdown() -> None:
            self.service.close()
            self._loop.stop()

        if self._loop.is_running():
            self._loop.call_soon_threadsafe(_shutdown)
        self._thread.join(timeout=timeout_s)


def start_in_thread(host: str = "127.0.0.1", port: int = 0,
                    **kwargs: Any) -> ServiceHandle:
    """Run a :class:`FabricService` on a daemon thread; returns its handle."""
    service = FabricService(host, port, **kwargs)
    started = threading.Event()
    loop = asyncio.new_event_loop()

    def _main() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start())
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=_main, daemon=True,
                              name="repro-fabric-service")
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("fabric service failed to start within 10 s")
    return ServiceHandle(service, loop, thread)
