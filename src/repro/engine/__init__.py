"""``repro.engine`` — deterministic parallel trial execution.

Every experiment harness is a Monte-Carlo sweep; this package is the one
trial loop they all share.  Define a sweep as a list of param dicts,
turn it into seeded :class:`TrialSpec`\\ s, hand a module-level trial
function to :func:`run_trials`, and pick an executor with ``workers``
(``0`` = serial, ``N`` = process pool, ``None`` = ``REPRO_WORKERS``)::

    from repro import engine

    def _trial(spec):
        rng = spec.rng()                    # per-trial deterministic stream
        return simulate(spec["snr"], rng)

    results = engine.run_sweep(
        [{"snr": s} for s in snr_grid], _trial,
        seed=7, workers=None, label="fig2",
    )

Guarantees (see ``docs/engine.md`` for the full contract):

* **Determinism** — per-trial ``SeedSequence.spawn`` seeding makes serial
  and parallel outputs bit-for-bit identical;
* **Observability** — worker metric deltas merge back into the parent
  registry; progress/ETA logs on ``repro.engine``; ``engine.*`` spans;
* **Errors** — the first failing trial aborts the run with a
  :class:`TrialError` carrying its params and seed;
* **Reuse** — per-worker ``init`` hook plus :func:`worker_state` for
  expensive objects (one PHY per process, not one per call);
* **Resumability** — the content-addressed :class:`ResultStore`
  (``store=`` argument, ``REPRO_STORE`` environment flag, or the CLI's
  ``--store``) replays completed trials from disk bit-for-bit so re-runs
  only execute the delta;
* **Scale-out** — :class:`ShardedExecutor` routes chunks through a
  filesystem claim queue (:mod:`repro.engine.queue`) served by local
  and/or remote ``repro engine worker`` processes, and
  :mod:`repro.engine.service` fronts the whole engine over HTTP.
"""

from repro.engine.core import (
    run_batched_sweep,
    run_batched_trials,
    run_sweep,
    run_trials,
)
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    ShardedExecutor,
    default_workers,
    make_executor,
    resolve_workers,
)
from repro.engine.spec import TrialError, TrialSpec, make_specs
from repro.engine.store import (
    ResultStore,
    get_default_store,
    resolve_store,
    set_default_store,
)
from repro.engine.worker import worker_state

__all__ = [
    "TrialSpec",
    "TrialError",
    "make_specs",
    "run_trials",
    "run_sweep",
    "run_batched_trials",
    "run_batched_sweep",
    "SerialExecutor",
    "ProcessExecutor",
    "ShardedExecutor",
    "make_executor",
    "default_workers",
    "resolve_workers",
    "worker_state",
    "ResultStore",
    "get_default_store",
    "set_default_store",
    "resolve_store",
]
