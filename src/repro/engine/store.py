"""Content-addressed trial result store — resumable, shareable sweeps.

Because a trial's behaviour (randomness included) is a pure function of
its :class:`~repro.engine.spec.TrialSpec` — the engine's determinism
contract — a trial *result* is a pure function of ``(trial function,
params, seed)``.  That makes results content-addressable: hash the spec,
key the result by the hash, and a re-run of a half-finished or superset
sweep replays every completed trial from disk bit-for-bit while only the
delta executes.

Key derivation (:func:`spec_key`)
---------------------------------
``sha256`` over a canonical JSON rendering of

* the trial function's dotted name (``module.qualname``) — two harnesses
  with identical params never collide;
* the spec's ``params`` via :func:`canonical` (order-insensitive dicts,
  dataclasses by field, bytes/ndarrays by content);
* the spec's seed entropy (root entropy + spawn key);
* the store *salt* — see below.

Objects that cannot be canonicalised deterministically (default
``object`` reprs would embed memory addresses) raise
:class:`UncacheableSpec`; the engine treats such specs as permanent
misses rather than poisoning the cache with unstable keys.

The invalidation salt
---------------------
Cached results are only valid for the code that produced them.  The salt
(:func:`store_salt`) folds in everything that can change a result
without changing the spec:

* a store schema version (bump to flush every cache);
* the package version (``repro.__version__``);
* the active compute-kernel backend name — backends are bit-equivalent
  by test, but the salt makes a backend regression visible as a cache
  miss instead of a silently stale hit;
* the measured-PHY surrogate table's content hash (when the default
  table file exists) — rebuilding the table must invalidate every
  result that may have consulted it.

On-disk layout
--------------
::

    <root>/
      store-meta.json        # human-readable salt + schema (diagnostic)
      objects/<k[:2]>/<k>.pkl

Entries are pickles written to a temp file in the destination directory
and ``os.replace``-d into place, so concurrent writers (process pools,
sharded workers on a shared filesystem, parallel CI jobs) can race
freely: the rename is atomic and every writer produces identical bytes
for identical keys.  Corrupt or truncated entries read as misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.utils.env import env_str

__all__ = [
    "STORE_SCHEMA",
    "STORE_ENV",
    "UncacheableSpec",
    "canonical",
    "store_salt",
    "spec_key",
    "ResultStore",
    "get_default_store",
    "set_default_store",
    "resolve_store",
]

log = logging.getLogger("repro.engine.store")

#: Bump to invalidate every existing store entry (layout/semantics change).
STORE_SCHEMA = 1

#: Environment flag: a directory path enables the default store.
STORE_ENV = "REPRO_STORE"


class UncacheableSpec(ValueError):
    """Raised when a spec's params cannot be canonicalised deterministically."""


# ---------------------------------------------------------------------------
# Canonicalisation
# ---------------------------------------------------------------------------

def canonical(obj: Any) -> Any:
    """Render ``obj`` as a deterministic JSON-able structure.

    Dicts sort by canonicalised key; dataclasses serialise as
    ``{type, fields}``; bytes and numpy arrays by content; sets sorted.
    Raises :class:`UncacheableSpec` for anything whose rendering would
    not be stable across processes (e.g. default ``object`` reprs).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return {"__float__": repr(obj)}
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": hashlib.sha256(bytes(obj)).hexdigest()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        rendered = sorted(
            json.dumps(canonical(v), sort_keys=True, separators=(",", ":"))
            for v in obj
        )
        return {"__set__": rendered}
    if isinstance(obj, dict):
        pairs = sorted(
            (json.dumps(canonical(k), sort_keys=True, separators=(",", ":")),
             canonical(v))
            for k, v in obj.items()
        )
        return {"__map__": pairs}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    # numpy without importing it eagerly at module import time is not a
    # concern here (the engine already depends on numpy), but the check
    # must not break on builds where a param is a numpy scalar/array.
    try:
        import numpy as np

        if isinstance(obj, np.ndarray):
            return {
                "__ndarray__": hashlib.sha256(
                    np.ascontiguousarray(obj).tobytes()
                ).hexdigest(),
                "dtype": str(obj.dtype),
                "shape": list(obj.shape),
            }
        if isinstance(obj, np.generic):
            return canonical(obj.item())
    except ImportError:  # pragma: no cover — numpy is a hard dependency
        pass
    if isinstance(obj, Path):
        return {"__path__": str(obj)}
    raise UncacheableSpec(
        f"cannot build a deterministic cache key for {type(obj).__module__}."
        f"{type(obj).__qualname__} (value {obj!r:.120})"
    )


def _canonical_text(obj: Any) -> str:
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Salt
# ---------------------------------------------------------------------------

def _surrogate_table_fingerprint() -> Optional[str]:
    """Content hash of the active surrogate table file (None when absent)."""
    try:
        from repro.phy.surrogate import default_table_path

        path = default_table_path()
        if not path.exists():
            return None
        return hashlib.sha256(path.read_bytes()).hexdigest()[:16]
    except Exception:  # pragma: no cover — defensive; salt must not crash
        return None


def store_salt() -> Dict[str, Any]:
    """Everything that invalidates cached results without changing a spec."""
    import repro
    from repro.kernels.dispatch import backend_name

    return {
        "schema": STORE_SCHEMA,
        "code": repro.__version__,
        "kernel_backend": backend_name(),
        "surrogate_table": _surrogate_table_fingerprint(),
    }


def _fn_token(fn: Callable) -> str:
    """Stable identity of a trial function: its dotted module path."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname or "<lambda>" in qualname:
        raise UncacheableSpec(
            f"trial function {fn!r} is not a module-level callable; "
            "results cannot be cached under a stable key"
        )
    return f"{module}.{qualname}"


def spec_key(fn: Callable, spec, salt: Optional[Dict[str, Any]] = None) -> str:
    """The content address of ``fn(spec)``: a 64-hex-char sha256 digest.

    Raises :class:`UncacheableSpec` when ``fn`` or ``spec.params`` cannot
    be rendered deterministically.  The spec's ``index`` is deliberately
    **not** part of the key — position in the sweep does not affect the
    result, only the seed does, so a superset sweep re-hits the subset's
    entries.
    """
    payload = {
        "fn": _fn_token(fn),
        "params": canonical(spec.params),
        "seed": canonical(spec.seed_entropy),
        "salt": canonical(salt if salt is not None else store_salt()),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class ResultStore:
    """Spec-hash-keyed result store with atomic, concurrent-safe writes.

    ``hits`` / ``misses`` / ``writes`` count this instance's traffic;
    the engine additionally mirrors them into the metrics registry
    (``repro_store_hits_total`` etc.) so sharded/pool runs aggregate.
    """

    def __init__(self, root: Union[str, Path], *,
                 salt: Optional[Dict[str, Any]] = None) -> None:
        self.root = Path(root)
        self.salt = dict(salt) if salt is not None else store_salt()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._write_meta()

    def _write_meta(self) -> None:
        meta = self.root / "store-meta.json"
        if meta.exists():
            return
        try:
            _atomic_write_bytes(
                meta,
                (json.dumps({"schema": STORE_SCHEMA, "salt": canonical(self.salt)},
                            indent=2, sort_keys=True) + "\n").encode(),
            )
        except OSError:  # pragma: no cover — diagnostic file only
            pass

    # -- keys ----------------------------------------------------------

    def key_for(self, fn: Callable, spec) -> Optional[str]:
        """The entry key for ``fn(spec)``; ``None`` when uncacheable."""
        try:
            return spec_key(fn, spec, salt=self.salt)
        except UncacheableSpec as exc:
            log.debug("uncacheable spec %s: %s", getattr(spec, "index", "?"), exc)
            return None

    def _path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.pkl"

    # -- access --------------------------------------------------------

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; corrupt/truncated entries read as misses."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            log.warning("corrupt store entry %s — treating as a miss", path)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> bool:
        """Persist ``value`` under ``key`` (atomic rename; False on failure).

        Unpicklable values are skipped with a debug log — caching is an
        optimisation, never a correctness requirement.
        """
        path = self._path(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            log.debug("result for %s is not picklable; not cached", key)
            return False
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_bytes(path, payload)
        except OSError as exc:  # disk full, permissions, ...
            log.warning("could not write store entry %s: %s", path, exc)
            return False
        self.writes += 1
        return True

    def __len__(self) -> int:
        return sum(1 for _ in self._objects.glob("*/*.pkl"))

    def __repr__(self) -> str:  # pragma: no cover — debugging nicety
        return (f"ResultStore({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses}, writes={self.writes})")


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write-temp + atomic rename in the destination directory.

    The temp suffix is deliberately NOT the target's: a process killed
    mid-write must not leave debris that entry globs (``*.pkl``) or
    :meth:`ResultStore.__len__` would count as a real entry.
    """
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-",
                               suffix=".part")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# Default-store resolution (CLI / env plumbing)
# ---------------------------------------------------------------------------

_default_store: Optional[ResultStore] = None
_default_explicit = False
_env_store: Optional[ResultStore] = None
_env_path: Optional[str] = None


def set_default_store(store: Optional[ResultStore]) -> Optional[ResultStore]:
    """Install the process-wide default store (None disables caching).

    An explicit setting — including ``None`` — overrides the
    ``REPRO_STORE`` environment flag until the next call.
    """
    global _default_store, _default_explicit
    previous = get_default_store()
    _default_store = store
    _default_explicit = True
    return previous


def get_default_store() -> Optional[ResultStore]:
    """The default store: whatever :func:`set_default_store` installed,
    else a store at ``$REPRO_STORE`` when that flag names a directory.

    The environment flag is re-read on every call (tests and subprocess
    workers change it); the resulting store instance is cached per path
    so hit/miss counters accumulate across sweeps.
    """
    global _env_store, _env_path
    if _default_explicit:
        return _default_store
    path = env_str(STORE_ENV)
    if not path:
        return None
    if _env_store is None or _env_path != path:
        _env_store = ResultStore(path)
        _env_path = path
    return _env_store


def resolve_store(store: Union[ResultStore, bool, None]) -> Optional[ResultStore]:
    """Engine-side resolution of a ``store=`` argument.

    ``None`` defers to the default store (off unless ``REPRO_STORE`` or
    the CLI enabled it); ``False`` forces caching off; ``True`` requires
    a configured default; a :class:`ResultStore` is used as-is.
    """
    if store is None:
        return get_default_store()
    if store is False:
        return None
    if store is True:
        configured = get_default_store()
        if configured is None:
            raise ValueError(
                "store=True but no default store is configured; "
                f"set {STORE_ENV}=<dir> or pass a ResultStore"
            )
        return configured
    return store
