"""Worker-side plumbing: chunk execution, per-worker state, obs capture.

Everything here must be importable and picklable from a bare worker
process.  A chunk is executed by :func:`run_chunk`; under the process
pool it runs inside a worker whose registry was swapped for a fresh one
by :func:`worker_initializer`, and the chunk's metric increments come
back to the parent as a snapshot dict for :meth:`Registry.merge
<repro.obs.metrics.MetricsRegistry.merge>`.

Per-worker state (:func:`worker_state`) lets trial functions reuse
expensive objects — e.g. one ``Transmitter``/``Receiver`` pair per
process instead of one per call — via either the ``init`` hook passed to
:func:`~repro.engine.core.run_trials` or lazy population from the trial
function itself.
"""

from __future__ import annotations

import logging
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.spec import TrialSpec
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.trace import span

__all__ = [
    "ChunkResult",
    "worker_state",
    "initialize_state",
    "worker_initializer",
    "run_chunk",
    "run_chunk_in_worker",
]

#: Process-local scratch space for per-worker reusable objects.
_STATE: Dict[str, Any] = {}


def worker_state() -> Dict[str, Any]:
    """The per-process state dict (parent process included, for serial)."""
    return _STATE


def initialize_state(init: Optional[Callable[..., Any]], init_args: Tuple = ()) -> None:
    """Run the per-worker ``init`` hook into :func:`worker_state`.

    The hook may mutate :func:`worker_state` directly or return a dict to
    merge into it.  Idempotent by convention: hooks should tolerate being
    called once per ``run_trials`` invocation in the serial path.
    """
    if init is None:
        return
    result = init(*init_args)
    if isinstance(result, dict):
        _STATE.update(result)


def worker_initializer(init: Optional[Callable[..., Any]], init_args: Tuple = ()) -> None:
    """Process-pool initializer: isolate obs state, then run ``init``.

    * Install a **fresh** metrics registry so worker-side increments are
      deltas (under ``fork`` the child would otherwise inherit — and
      re-count — everything the parent had already recorded).
    * Drop any inherited tracer: the parent's sink (often an open file)
      must not receive interleaved writes from worker processes.
    * Pre-warm the compute-kernel backend (:func:`repro.kernels.warmup`)
      so JIT compilation / table builds happen once per worker, never
      inside a measured trial.
    """
    _metrics.set_registry(_metrics.MetricsRegistry())
    _trace._tracer = None
    _STATE.clear()
    _prewarm_kernels()
    initialize_state(init, init_args)


def _prewarm_kernels() -> None:
    """Warm the kernel backend; never let a warm-up failure kill a worker."""
    try:
        from repro import kernels

        kernels.warmup()
    except Exception:  # pragma: no cover — defensive; warm-up is best-effort
        logging.getLogger("repro.engine").warning(
            "kernel warm-up failed in worker", exc_info=True
        )


@dataclass
class ChunkResult:
    """Outcome of one chunk: ordered results or the first failure."""

    indices: List[int] = field(default_factory=list)
    results: List[Any] = field(default_factory=list)
    error: Optional[Dict[str, Any]] = None  # TrialError kwargs, picklable
    metrics_snapshot: Optional[Dict[str, dict]] = None

    @property
    def n_done(self) -> int:
        return len(self.results)


def run_chunk(
    fn: Callable[[TrialSpec], Any],
    specs: Sequence[TrialSpec],
    *,
    capture_metrics: bool = False,
) -> ChunkResult:
    """Execute a chunk of trials in the current process.

    Stops at the first failing trial and returns its context instead of
    raising (exceptions may not survive pickling; a dict always does).
    With ``capture_metrics`` the process registry is snapshotted and
    reset afterwards so the parent can merge the chunk's delta.
    """
    out = ChunkResult()
    with span("engine.chunk", n_trials=len(specs)):
        for spec in specs:
            try:
                with span("engine.trial", index=spec.index):
                    result = fn(spec)
            except Exception as exc:  # noqa: BLE001 — reported, not swallowed
                out.error = {
                    "message": f"{type(exc).__name__}: {exc}",
                    "index": spec.index,
                    "params": _picklable_params(spec),
                    "seed_entropy": spec.seed_entropy,
                    "traceback_text": traceback.format_exc(),
                }
                break
            out.indices.append(spec.index)
            out.results.append(result)
    if capture_metrics:
        registry = _metrics.get_registry()
        out.metrics_snapshot = registry.snapshot()
        registry.reset()
    return out


def run_chunk_in_worker(
    fn: Callable[[TrialSpec], Any], specs: Sequence[TrialSpec]
) -> ChunkResult:
    """Entry point submitted to the process pool (module-level: picklable)."""
    return run_chunk(fn, specs, capture_metrics=True)


def _picklable_params(spec: TrialSpec) -> Dict[str, Any]:
    """Params for the error report; degrade to reprs if pickling worries."""
    try:
        import pickle

        pickle.dumps(spec.params)
        return spec.params
    except Exception:  # pragma: no cover — defensive
        return {k: repr(v) for k, v in spec.params.items()}
