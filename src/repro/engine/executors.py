"""Trial executors: serial in-process and chunked process-pool backends.

Both expose the same streaming interface — ``run(fn, specs)`` yields
:class:`~repro.engine.worker.ChunkResult` objects as chunks complete —
so :func:`repro.engine.core.run_trials` is backend-agnostic.  Because a
trial's randomness is a pure function of its :class:`TrialSpec` (see
:mod:`repro.engine.spec`), completion *order* may differ between
backends while trial *results* cannot; the core reassembles by index.

``workers`` semantics, everywhere in the engine:

* ``None`` — read ``REPRO_WORKERS`` (default 0);
* ``0`` — serial, in the calling process (the reference executor);
* ``N >= 1`` — a pool of N worker processes.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.spec import TrialSpec
from repro.engine.worker import (
    ChunkResult,
    initialize_state,
    run_chunk,
    run_chunk_in_worker,
    worker_initializer,
)
from repro.utils.env import env_int

__all__ = [
    "SerialExecutor",
    "ProcessExecutor",
    "default_workers",
    "resolve_workers",
    "make_executor",
]

#: Chunks per worker the default chunk size aims for: small enough for
#: load balancing and progress granularity, large enough to amortise IPC.
_CHUNKS_PER_WORKER = 4


def default_workers() -> int:
    """Worker count requested via the ``REPRO_WORKERS`` environment flag."""
    return max(env_int("REPRO_WORKERS", 0), 0)


def resolve_workers(workers: Optional[int]) -> int:
    """Explicit argument wins; ``None`` defers to ``REPRO_WORKERS``."""
    if workers is None:
        return default_workers()
    return max(int(workers), 0)


def make_executor(
    workers: Optional[int] = None,
    *,
    init: Optional[Callable[..., Any]] = None,
    init_args: Tuple = (),
    chunk_size: Optional[int] = None,
):
    """Build the executor implied by ``workers`` (see module docstring)."""
    n = resolve_workers(workers)
    if n == 0:
        return SerialExecutor(init=init, init_args=init_args, chunk_size=chunk_size)
    return ProcessExecutor(n, init=init, init_args=init_args, chunk_size=chunk_size)


def _chunk(specs: Sequence[TrialSpec], size: int) -> List[List[TrialSpec]]:
    size = max(int(size), 1)
    return [list(specs[i : i + size]) for i in range(0, len(specs), size)]


class SerialExecutor:
    """Run trials in the calling process — the determinism reference.

    Metrics land directly in the live registry (no snapshot round-trip)
    and spans nest under the caller's trace, which is exactly what you
    want for debugging a single trial.
    """

    def __init__(
        self,
        *,
        init: Optional[Callable[..., Any]] = None,
        init_args: Tuple = (),
        chunk_size: Optional[int] = None,
    ) -> None:
        self.workers = 0
        self.init = init
        self.init_args = init_args
        self.chunk_size = chunk_size

    def run(
        self, fn: Callable[[TrialSpec], Any], specs: Sequence[TrialSpec]
    ) -> Iterator[ChunkResult]:
        initialize_state(self.init, self.init_args)
        size = self.chunk_size or 1
        for chunk in _chunk(specs, size):
            result = run_chunk(fn, chunk, capture_metrics=False)
            yield result
            if result.error is not None:
                return


class ProcessExecutor:
    """Chunked ``concurrent.futures.ProcessPoolExecutor`` backend.

    Specs are split into ``~_CHUNKS_PER_WORKER`` chunks per worker and
    submitted up front; results stream back in completion order.  Each
    worker starts with a fresh metrics registry
    (:func:`~repro.engine.worker.worker_initializer`) and returns a
    snapshot delta per chunk for the parent to merge.  On the first
    failed chunk, remaining work is cancelled (fail fast).
    """

    def __init__(
        self,
        workers: int,
        *,
        init: Optional[Callable[..., Any]] = None,
        init_args: Tuple = (),
        chunk_size: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("ProcessExecutor needs at least one worker")
        self.workers = int(workers)
        self.init = init
        self.init_args = init_args
        self.chunk_size = chunk_size

    def _default_chunk_size(self, n_specs: int) -> int:
        return max(1, -(-n_specs // (self.workers * _CHUNKS_PER_WORKER)))

    def run(
        self, fn: Callable[[TrialSpec], Any], specs: Sequence[TrialSpec]
    ) -> Iterator[ChunkResult]:
        if not specs:
            return
        size = self.chunk_size or self._default_chunk_size(len(specs))
        chunks = _chunk(specs, size)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)),
            initializer=worker_initializer,
            initargs=(self.init, self.init_args),
        )
        try:
            futures = [pool.submit(run_chunk_in_worker, fn, chunk) for chunk in chunks]
            for future in concurrent.futures.as_completed(futures):
                result = future.result()
                yield result
                if result.error is not None:
                    return
        finally:
            # Fail-fast path (or generator close): drop queued chunks,
            # wait only for the ones already running.
            pool.shutdown(wait=True, cancel_futures=True)
