"""Trial executors: serial in-process and chunked process-pool backends.

Both expose the same streaming interface — ``run(fn, specs)`` yields
:class:`~repro.engine.worker.ChunkResult` objects as chunks complete —
so :func:`repro.engine.core.run_trials` is backend-agnostic.  Because a
trial's randomness is a pure function of its :class:`TrialSpec` (see
:mod:`repro.engine.spec`), completion *order* may differ between
backends while trial *results* cannot; the core reassembles by index.

``workers`` semantics, everywhere in the engine:

* ``None`` — read ``REPRO_WORKERS`` (default 0);
* ``0`` — serial, in the calling process (the reference executor);
* ``N >= 1`` — a pool of N worker processes.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import shutil
import tempfile
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.spec import TrialSpec
from repro.engine.worker import (
    ChunkResult,
    initialize_state,
    run_chunk,
    run_chunk_in_worker,
    worker_initializer,
)
from repro.utils.env import env_int

__all__ = [
    "SerialExecutor",
    "ProcessExecutor",
    "ShardedExecutor",
    "default_workers",
    "resolve_workers",
    "make_executor",
]

#: Chunks per worker the default chunk size aims for: small enough for
#: load balancing and progress granularity, large enough to amortise IPC.
_CHUNKS_PER_WORKER = 4


def default_workers() -> int:
    """Worker count requested via the ``REPRO_WORKERS`` environment flag."""
    return max(env_int("REPRO_WORKERS", 0), 0)


def resolve_workers(workers: Optional[int]) -> int:
    """Explicit argument wins; ``None`` defers to ``REPRO_WORKERS``."""
    if workers is None:
        return default_workers()
    return max(int(workers), 0)


def make_executor(
    workers: Optional[int] = None,
    *,
    init: Optional[Callable[..., Any]] = None,
    init_args: Tuple = (),
    chunk_size: Optional[int] = None,
):
    """Build the executor implied by ``workers`` (see module docstring)."""
    n = resolve_workers(workers)
    if n == 0:
        return SerialExecutor(init=init, init_args=init_args, chunk_size=chunk_size)
    return ProcessExecutor(n, init=init, init_args=init_args, chunk_size=chunk_size)


def _chunk(specs: Sequence[TrialSpec], size: int) -> List[List[TrialSpec]]:
    size = max(int(size), 1)
    return [list(specs[i : i + size]) for i in range(0, len(specs), size)]


class SerialExecutor:
    """Run trials in the calling process — the determinism reference.

    Metrics land directly in the live registry (no snapshot round-trip)
    and spans nest under the caller's trace, which is exactly what you
    want for debugging a single trial.
    """

    def __init__(
        self,
        *,
        init: Optional[Callable[..., Any]] = None,
        init_args: Tuple = (),
        chunk_size: Optional[int] = None,
    ) -> None:
        self.workers = 0
        self.init = init
        self.init_args = init_args
        self.chunk_size = chunk_size

    def run(
        self, fn: Callable[[TrialSpec], Any], specs: Sequence[TrialSpec]
    ) -> Iterator[ChunkResult]:
        initialize_state(self.init, self.init_args)
        size = self.chunk_size or 1
        for chunk in _chunk(specs, size):
            result = run_chunk(fn, chunk, capture_metrics=False)
            yield result
            if result.error is not None:
                return


class ProcessExecutor:
    """Chunked ``concurrent.futures.ProcessPoolExecutor`` backend.

    Specs are split into ``~_CHUNKS_PER_WORKER`` chunks per worker and
    submitted up front; results stream back in completion order.  Each
    worker starts with a fresh metrics registry
    (:func:`~repro.engine.worker.worker_initializer`) and returns a
    snapshot delta per chunk for the parent to merge.  On the first
    failed chunk, remaining work is cancelled (fail fast).
    """

    def __init__(
        self,
        workers: int,
        *,
        init: Optional[Callable[..., Any]] = None,
        init_args: Tuple = (),
        chunk_size: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("ProcessExecutor needs at least one worker")
        self.workers = int(workers)
        self.init = init
        self.init_args = init_args
        self.chunk_size = chunk_size

    def _default_chunk_size(self, n_specs: int) -> int:
        return max(1, -(-n_specs // (self.workers * _CHUNKS_PER_WORKER)))

    def run(
        self, fn: Callable[[TrialSpec], Any], specs: Sequence[TrialSpec]
    ) -> Iterator[ChunkResult]:
        if not specs:
            return
        size = self.chunk_size or self._default_chunk_size(len(specs))
        chunks = _chunk(specs, size)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)),
            initializer=worker_initializer,
            initargs=(self.init, self.init_args),
        )
        try:
            futures = [pool.submit(run_chunk_in_worker, fn, chunk) for chunk in chunks]
            for future in concurrent.futures.as_completed(futures):
                result = future.result()
                yield result
                if result.error is not None:
                    return
        finally:
            # Fail-fast path (or generator close): drop queued chunks,
            # wait only for the ones already running.
            pool.shutdown(wait=True, cancel_futures=True)


class ShardedExecutor:
    """Work-queue backend: chunks go through a filesystem claim queue.

    Unlike :class:`ProcessExecutor`, the executor and its workers share
    nothing but a directory (:mod:`repro.engine.queue`), so the worker
    fleet can span processes *and hosts*:

    * ``workers >= 1`` spawns that many local worker processes (spawn
      context — no inherited state) that drain the queue and exit;
    * ``workers = 0`` spawns none — the sweep is served entirely by
      external workers started with ``repro engine worker --queue DIR``
      on any machine that can see ``queue_dir``.

    Leases + heartbeats give crash-recovery: a chunk whose worker dies
    is re-claimed after ``lease_s`` and retried, and poisoned (failing
    the sweep fast) after ``max_attempts`` leases.  Results stream back
    as :class:`ChunkResult` pickles carrying the same per-chunk metrics
    snapshots the process pool produces, so ``run_trials`` folds sharded
    metrics identically — and the determinism contract makes sharded
    output bit-for-bit equal to serial.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        queue_dir: Optional[str] = None,
        init: Optional[Callable[..., Any]] = None,
        init_args: Tuple = (),
        chunk_size: Optional[int] = None,
        poll_s: float = 0.05,
        lease_s: float = 30.0,
        max_attempts: int = 3,
        timeout_s: Optional[float] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("ShardedExecutor needs workers >= 0")
        if workers == 0 and queue_dir is None:
            raise ValueError(
                "workers=0 relies on external 'repro engine worker' processes; "
                "pass the queue_dir they are watching"
            )
        self.workers = int(workers)
        self.queue_dir = queue_dir
        self.init = init
        self.init_args = init_args
        self.chunk_size = chunk_size
        self.poll_s = poll_s
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.timeout_s = timeout_s

    def _default_chunk_size(self, n_specs: int) -> int:
        shards = max(self.workers, 1) * _CHUNKS_PER_WORKER
        return max(1, -(-n_specs // shards))

    def run(
        self, fn: Callable[[TrialSpec], Any], specs: Sequence[TrialSpec]
    ) -> Iterator[ChunkResult]:
        from repro.engine import queue as fsqueue

        if not specs:
            return
        root = self.queue_dir
        tmp_root = None
        if root is None:
            tmp_root = tempfile.mkdtemp(prefix="repro-queue-")
            root = tmp_root
        size = self.chunk_size or self._default_chunk_size(len(specs))
        job_id = fsqueue.create_job(
            root, fn, specs, chunk_size=size,
            init=self.init, init_args=self.init_args,
        )
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(
                target=fsqueue._spawned_worker_main,
                args=(root, self.poll_s, self.lease_s, self.max_attempts),
                daemon=True,
                name=f"repro-shard-worker-{i}",
            )
            for i in range(self.workers)
        ]
        for p in procs:
            p.start()
        complete = False
        try:
            for chunk in fsqueue.iter_job_results(
                root, job_id, poll_s=self.poll_s, timeout_s=self.timeout_s
            ):
                yield chunk
                if chunk.error is not None:
                    return
            complete = True
        finally:
            if not complete:
                # Fail-fast (or generator close): stop workers claiming
                # the job's remaining chunks, then stop local workers.
                fsqueue.cancel_job(root, job_id)
            for p in procs:
                p.join(timeout=self.lease_s)
                if p.is_alive():  # pragma: no cover — stuck worker
                    p.terminate()
                    p.join(timeout=5.0)
            if tmp_root is not None:
                shutil.rmtree(tmp_root, ignore_errors=True)
