"""``run_trials`` — the one trial loop every experiment harness shares.

The engine owns everything the hand-rolled loops used to duplicate:

* executor selection (serial / process pool, ``--workers`` /
  ``REPRO_WORKERS``);
* deterministic per-trial seeding (:func:`~repro.engine.spec.make_specs`);
* result ordering — chunks complete in any order, results come back in
  spec order;
* worker metrics merge — chunk snapshot deltas fold into the parent
  registry via :meth:`MetricsRegistry.merge
  <repro.obs.metrics.MetricsRegistry.merge>`, so counters survive
  parallelism with no loss;
* fail-fast structured errors (:class:`~repro.engine.spec.TrialError`
  with the failing trial's params and seed);
* progress/ETA logging on the ``repro.engine`` logger, under an
  ``engine.run`` span.

Experiment modules shrink to a trial function (pure in its
:class:`~repro.engine.spec.TrialSpec`) plus a reduction over the ordered
results — see :mod:`repro.experiments.fig2` for the canonical shape.
"""

from __future__ import annotations

import functools
import logging
import time
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.executors import make_executor, resolve_workers
from repro.engine.spec import TrialError, TrialSpec, make_specs
from repro.engine.store import ResultStore, resolve_store
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import span

__all__ = ["run_trials", "run_sweep", "run_batched_trials", "run_batched_sweep"]

log = logging.getLogger("repro.engine")

#: Progress lines are logged at INFO once a run has been going this long
#: (DEBUG before that, so quick sweeps stay quiet).
_PROGRESS_INFO_AFTER_S = 2.0
_PROGRESS_MIN_INTERVAL_S = 1.0


def run_trials(
    specs: Sequence[TrialSpec],
    fn: Callable[[TrialSpec], Any],
    executor=None,
    *,
    workers: Optional[int] = None,
    init: Optional[Callable[..., Any]] = None,
    init_args: Tuple = (),
    chunk_size: Optional[int] = None,
    label: str = "trials",
    registry: Optional[MetricsRegistry] = None,
    store: "ResultStore | bool | None" = None,
) -> List[Any]:
    """Execute ``fn`` over ``specs``; return results in spec order.

    ``fn`` must be a module-level callable (picklable) whose behaviour —
    including randomness, via ``spec.rng()`` — depends only on the spec.
    Under that contract the output is bit-for-bit identical for every
    executor.

    Pass either a prebuilt ``executor`` or ``workers`` (``None`` defers
    to ``REPRO_WORKERS``; ``0`` is serial).  ``init`` runs once per
    worker process (and once in-process for serial) to populate
    :func:`~repro.engine.worker.worker_state` with reusable objects.

    ``store`` selects the content-addressed result cache
    (:mod:`repro.engine.store`): ``None`` defers to the default store
    (off unless ``REPRO_STORE``/the CLI enabled one), ``False`` forces
    caching off, or pass a :class:`ResultStore`.  Cached trials replay
    bit-for-bit without executing; only the delta runs.  Trials whose
    params cannot be hashed deterministically simply always execute.

    Raises :class:`~repro.engine.spec.TrialError` on the first failing
    trial, carrying its index, params, seed entropy, and traceback.
    """
    specs = list(specs)
    n = len(specs)
    results: List[Any] = [None] * n
    parent_registry = registry if registry is not None else get_registry()

    # Store lookup happens in the submitting process, before dispatch:
    # hits never reach an executor, so a warm re-run costs I/O only.
    store_obj = resolve_store(store)
    pending: List[TrialSpec] = specs
    key_by_index: dict = {}
    n_hits = 0
    if store_obj is not None:
        pending = []
        for spec in specs:
            key = store_obj.key_for(fn, spec)
            if key is not None:
                hit, value = store_obj.get(key)
                if hit:
                    results[spec.index] = value
                    n_hits += 1
                    continue
                key_by_index[spec.index] = key
            pending.append(spec)
        parent_registry.counter(
            "repro_store_hits_total",
            help="Trials replayed from the content-addressed result store.",
        ).inc(n_hits)
        parent_registry.counter(
            "repro_store_misses_total",
            help="Trials executed because the result store had no entry.",
        ).inc(len(pending))
        if n_hits:
            log.debug("%s: %d/%d trials served from store %s",
                      label, n_hits, n, store_obj.root)

    if executor is None:
        executor = make_executor(
            workers, init=init, init_args=init_args, chunk_size=chunk_size
        )

    t0 = time.perf_counter()
    done = n_hits
    last_progress = t0
    with span("engine.run", label=label, trials=n, workers=executor.workers,
              store_hits=n_hits):
        if pending:
            for chunk in executor.run(fn, pending):
                if chunk.metrics_snapshot:
                    parent_registry.merge(chunk.metrics_snapshot)
                if chunk.error is not None:
                    raise TrialError(**chunk.error)
                for index, result in zip(chunk.indices, chunk.results):
                    results[index] = result
                    key = key_by_index.get(index)
                    if key is not None:
                        store_obj.put(key, result)
                done += chunk.n_done
                last_progress = _log_progress(
                    label, done, n, t0, last_progress, executor.workers
                )
    elapsed = time.perf_counter() - t0
    log.debug(
        "%s: %d trials done in %.2fs (%s)",
        label, n, elapsed,
        "serial" if executor.workers == 0 else f"{executor.workers} workers",
    )
    return results


def run_sweep(
    params: Sequence[Mapping[str, Any]],
    fn: Callable[[TrialSpec], Any],
    *,
    seed: Union[int, None] = 0,
    workers: Optional[int] = None,
    init: Optional[Callable[..., Any]] = None,
    init_args: Tuple = (),
    chunk_size: Optional[int] = None,
    label: str = "sweep",
    registry: Optional[MetricsRegistry] = None,
    store: "ResultStore | bool | None" = None,
) -> List[Any]:
    """``make_specs`` + :func:`run_trials` in one call (the common case)."""
    return run_trials(
        make_specs(params, seed=seed),
        fn,
        workers=workers,
        init=init,
        init_args=init_args,
        chunk_size=chunk_size,
        label=label,
        registry=registry,
        store=store,
    )


def _default_batch_key(spec: TrialSpec) -> str:
    """Group by params content (order-insensitive, repr-canonical)."""
    return repr(sorted((k, repr(v)) for k, v in spec.params.items()))


def _call_batch_fn(
    batch_fn: Callable[[List[TrialSpec]], Sequence[Any]], group: TrialSpec
) -> List[Any]:
    members: List[TrialSpec] = group.params["specs"]
    results = list(batch_fn(members))
    if len(results) != len(members):
        raise ValueError(
            f"batch_fn returned {len(results)} results for "
            f"{len(members)} specs"
        )
    return results


def run_batched_trials(
    specs: Sequence[TrialSpec],
    batch_fn: Callable[[List[TrialSpec]], Sequence[Any]],
    *,
    batch_key: Optional[Callable[[TrialSpec], Any]] = None,
    max_batch: int = 64,
    workers: Optional[int] = None,
    init: Optional[Callable[..., Any]] = None,
    init_args: Tuple = (),
    chunk_size: Optional[int] = None,
    label: str = "trials",
    registry: Optional[MetricsRegistry] = None,
    store: "ResultStore | bool | None" = None,
) -> List[Any]:
    """:func:`run_trials` for batch-aware trial functions.

    Consecutive specs whose ``batch_key`` matches (default: equal
    ``params``) are handed to ``batch_fn`` as one list of up to
    ``max_batch`` specs; ``batch_fn`` must return one result per spec,
    in order.  This is how same-spec sweeps (e.g. PRR probes repeated
    per SINR point) reach the batched PHY — ``batch_fn`` can stack every
    packet of the group into a single :meth:`Receiver.receive_many
    <repro.phy.receiver.Receiver.receive_many>` call.

    The engine's determinism contract is unchanged: each member spec
    keeps its private seed, so a correct ``batch_fn`` — one whose
    batched results equal ``[trial_fn(s) for s in specs]`` — yields
    bit-for-bit the same output as :func:`run_trials` over the flat spec
    list, for every executor and every grouping.  Only scheduling
    granularity changes: a group is the unit of dispatch (and of
    fail-fast error reporting — a raising group reports its position in
    the group sequence, with the member specs in its params).
    """
    specs = list(specs)
    flat: List[Any] = [None] * len(specs)
    position = {id(spec): i for i, spec in enumerate(specs)}
    parent_registry = registry if registry is not None else get_registry()

    # Caching happens at *member*-spec granularity, keyed by the batch
    # function: grouping is a scheduling detail, and a correct batch_fn
    # produces per-spec results independent of how specs were grouped —
    # so cached members simply drop out of the groups and only the
    # misses are dispatched (a different, but equally valid, grouping).
    store_obj = resolve_store(store)
    pending: List[TrialSpec] = specs
    store_key: dict = {}
    if store_obj is not None:
        pending = []
        n_hits = 0
        for spec in specs:
            key = store_obj.key_for(batch_fn, spec)
            if key is not None:
                hit, value = store_obj.get(key)
                if hit:
                    flat[position[id(spec)]] = value
                    n_hits += 1
                    continue
                store_key[id(spec)] = key
            pending.append(spec)
        parent_registry.counter(
            "repro_store_hits_total",
            help="Trials replayed from the content-addressed result store.",
        ).inc(n_hits)
        parent_registry.counter(
            "repro_store_misses_total",
            help="Trials executed because the result store had no entry.",
        ).inc(len(pending))

    key_fn = batch_key if batch_key is not None else _default_batch_key
    groups: List[List[TrialSpec]] = []
    keys: List[Any] = []
    for spec in pending:
        key = key_fn(spec)
        if groups and keys[-1] == key and len(groups[-1]) < max(int(max_batch), 1):
            groups[-1].append(spec)
        else:
            groups.append([spec])
            keys.append(key)

    group_specs = [
        TrialSpec(index=g, params={"specs": members})
        for g, members in enumerate(groups)
    ]
    grouped = run_trials(
        group_specs,
        functools.partial(_call_batch_fn, batch_fn),
        workers=workers,
        init=init,
        init_args=init_args,
        chunk_size=chunk_size,
        label=label,
        registry=registry,
        store=False,  # group specs are scheduling artefacts, never cached
    )

    for members, results in zip(groups, grouped):
        for spec, result in zip(members, results):
            flat[position[id(spec)]] = result
            if store_obj is not None:
                key = store_key.get(id(spec))
                if key is not None:
                    store_obj.put(key, result)
    return flat


def run_batched_sweep(
    params: Sequence[Mapping[str, Any]],
    batch_fn: Callable[[List[TrialSpec]], Sequence[Any]],
    *,
    seed: Union[int, None] = 0,
    batch_key: Optional[Callable[[TrialSpec], Any]] = None,
    max_batch: int = 64,
    workers: Optional[int] = None,
    init: Optional[Callable[..., Any]] = None,
    init_args: Tuple = (),
    chunk_size: Optional[int] = None,
    label: str = "sweep",
    registry: Optional[MetricsRegistry] = None,
    store: "ResultStore | bool | None" = None,
) -> List[Any]:
    """``make_specs`` + :func:`run_batched_trials` in one call."""
    return run_batched_trials(
        make_specs(params, seed=seed),
        batch_fn,
        batch_key=batch_key,
        max_batch=max_batch,
        workers=workers,
        init=init,
        init_args=init_args,
        chunk_size=chunk_size,
        label=label,
        registry=registry,
        store=store,
    )


def _log_progress(
    label: str, done: int, total: int, t0: float, last: float, workers: int
) -> float:
    now = time.perf_counter()
    if done < total and now - last < _PROGRESS_MIN_INTERVAL_S:
        return last
    elapsed = now - t0
    eta = elapsed / done * (total - done) if done else float("inf")
    level = logging.INFO if elapsed >= _PROGRESS_INFO_AFTER_S else logging.DEBUG
    log.log(
        level,
        "%s: %d/%d trials (%.0f%%) in %.1fs, eta %.1fs [workers=%d]",
        label, done, total, 100.0 * done / total if total else 100.0,
        elapsed, eta, workers,
    )
    return now


# Re-exported convenience: resolve_workers is part of the public surface
# (the CLI and benchmarks use it to echo the effective worker count).
resolve_workers = resolve_workers
