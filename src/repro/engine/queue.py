"""Filesystem-backed work queue: sharded sweeps across processes and hosts.

A *job* is one sweep's worth of trial chunks, laid out under a queue
root any number of independent worker processes can see — a local
directory for multi-process runs, a shared filesystem for multi-host
ones.  Workers are started with ``repro engine worker --queue DIR`` (or
spawned locally by :class:`~repro.engine.executors.ShardedExecutor`);
they need nothing from the submitting process but the directory.

Layout::

    <root>/jobs/<job_id>/
      chunks/<cid>.pkl      # pickle {"fn": trial_fn, "specs": [TrialSpec...]}
      init.pkl              # optional (init, init_args) per-worker hook
      job.json              # manifest — written LAST, marks the job ready
      claims/<cid>.json     # lease: {"worker", "attempt", "claimed_ts"}
      results/<cid>.pkl     # pickled ChunkResult (atomic tmp+rename)
      poison/<cid>.json     # chunk gave up after max_attempts leases
      cancel.json           # submitter aborted; workers stop claiming

Claim protocol
--------------
* A chunk with a ``results/`` or ``poison/`` entry is done.
* A fresh claim is ``open(claims/<cid>.json, O_CREAT|O_EXCL)`` — exactly
  one worker wins.  The winner heartbeats the claim file's mtime while
  executing.
* A claim whose mtime is older than the lease is *stale* (its worker
  died or lost the host).  Any worker may steal it by atomically
  replacing the claim with ``attempt + 1`` — unless the attempt count
  has reached ``max_attempts``, in which case it writes a ``poison``
  marker instead and the submitter fails fast with a
  :class:`~repro.engine.spec.TrialError`.

Because trials are pure functions of their spec, the rare race where two
workers execute the same chunk (a steal during a long GC pause, say) is
harmless: both produce identical bytes and the atomic rename keeps
whichever landed last.  Correctness never depends on mutual exclusion —
leases only exist to avoid wasted work.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import tempfile
import threading
import time
import traceback
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engine.spec import TrialSpec
from repro.engine.worker import ChunkResult, initialize_state, run_chunk_in_worker

__all__ = [
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "create_job",
    "cancel_job",
    "job_status",
    "iter_job_results",
    "claim_next_chunk",
    "worker_loop",
]

log = logging.getLogger("repro.engine.queue")

DEFAULT_LEASE_S = 30.0
DEFAULT_MAX_ATTEMPTS = 3


# ---------------------------------------------------------------------------
# Path helpers
# ---------------------------------------------------------------------------

def _jobs_root(root: Union[str, Path]) -> Path:
    return Path(root) / "jobs"


def _job_dir(root: Union[str, Path], job_id: str) -> Path:
    return _jobs_root(root) / job_id


def _chunk_ids(job_dir: Path) -> List[str]:
    return sorted(p.stem for p in (job_dir / "chunks").glob("*.pkl"))


def _atomic_write(path: Path, payload: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# Submission
# ---------------------------------------------------------------------------

def create_job(
    root: Union[str, Path],
    fn: Callable[[TrialSpec], Any],
    specs: Sequence[TrialSpec],
    *,
    chunk_size: int = 1,
    init: Optional[Callable[..., Any]] = None,
    init_args: Tuple = (),
    job_id: Optional[str] = None,
) -> str:
    """Write a job's chunks under ``root`` and return its id.

    The manifest (``job.json``) is written last and atomically, so a
    worker that lists the queue mid-write never sees a half-built job.
    """
    specs = list(specs)
    job_id = job_id or f"{time.strftime('%Y%m%d-%H%M%S')}-{uuid.uuid4().hex[:8]}"
    job_dir = _job_dir(root, job_id)
    (job_dir / "chunks").mkdir(parents=True, exist_ok=False)
    for sub in ("claims", "results", "poison"):
        (job_dir / sub).mkdir(exist_ok=True)

    size = max(int(chunk_size), 1)
    chunks = [specs[i: i + size] for i in range(0, len(specs), size)]
    for c, members in enumerate(chunks):
        payload = pickle.dumps({"fn": fn, "specs": members},
                               protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(job_dir / "chunks" / f"{c:05d}.pkl", payload)
    if init is not None:
        _atomic_write(job_dir / "init.pkl",
                      pickle.dumps((init, init_args),
                                   protocol=pickle.HIGHEST_PROTOCOL))
    manifest = {
        "job_id": job_id,
        "n_chunks": len(chunks),
        "n_specs": len(specs),
        "chunk_size": size,
        "created_ts": time.time(),
    }
    _atomic_write(job_dir / "job.json",
                  (json.dumps(manifest, indent=2) + "\n").encode())
    log.debug("job %s: %d specs in %d chunks under %s",
              job_id, len(specs), len(chunks), root)
    return job_id


def cancel_job(root: Union[str, Path], job_id: str) -> None:
    """Mark a job cancelled: workers stop claiming its remaining chunks."""
    job_dir = _job_dir(root, job_id)
    if job_dir.exists():
        _atomic_write(job_dir / "cancel.json",
                      (json.dumps({"cancelled_ts": time.time()}) + "\n").encode())


def job_status(root: Union[str, Path], job_id: str) -> Dict[str, Any]:
    """Counters for a job: chunks total / claimed / done / poisoned."""
    job_dir = _job_dir(root, job_id)
    manifest = json.loads((job_dir / "job.json").read_text())
    ids = _chunk_ids(job_dir)
    done = {p.stem for p in (job_dir / "results").glob("*.pkl")}
    poisoned = {p.stem for p in (job_dir / "poison").glob("*.json")}
    claimed = {p.stem for p in (job_dir / "claims").glob("*.json")}
    return {
        **manifest,
        "chunks_done": len(done),
        "chunks_poisoned": len(poisoned),
        "chunks_claimed": len(claimed - done - poisoned),
        "chunks_pending": len([c for c in ids if c not in done and c not in poisoned]),
        "cancelled": (job_dir / "cancel.json").exists(),
    }


# ---------------------------------------------------------------------------
# Collection (submitter side)
# ---------------------------------------------------------------------------

def iter_job_results(
    root: Union[str, Path],
    job_id: str,
    *,
    poll_s: float = 0.05,
    timeout_s: Optional[float] = None,
) -> Iterator[ChunkResult]:
    """Yield each chunk's :class:`ChunkResult` as it lands on disk.

    A poisoned chunk yields a ChunkResult whose ``error`` describes the
    poisoning (the submitter's ``run_trials`` raises it as a
    :class:`~repro.engine.spec.TrialError`).  Raises ``TimeoutError``
    if ``timeout_s`` elapses with chunks still outstanding and no
    worker progress.
    """
    job_dir = _job_dir(root, job_id)
    remaining = set(_chunk_ids(job_dir))
    deadline = (time.monotonic() + timeout_s) if timeout_s is not None else None
    while remaining:
        progressed = False
        for cid in sorted(remaining):
            result_path = job_dir / "results" / f"{cid}.pkl"
            if result_path.exists():
                try:
                    with open(result_path, "rb") as fh:
                        chunk = pickle.load(fh)
                except Exception:
                    # Mid-rename on exotic filesystems or a corrupt
                    # result: let a later pass retry the read.
                    continue
                remaining.discard(cid)
                progressed = True
                yield chunk
                continue
            poison_path = job_dir / "poison" / f"{cid}.json"
            if poison_path.exists():
                info = json.loads(poison_path.read_text())
                remaining.discard(cid)
                progressed = True
                yield ChunkResult(error={
                    "message": info.get(
                        "message", "chunk poisoned after repeated lease expiry"),
                    "index": int(info.get("index", -1)),
                    "params": info.get("params"),
                    "seed_entropy": None,
                    "traceback_text": info.get("traceback_text", ""),
                })
        if not remaining:
            return
        if progressed:
            if deadline is not None:
                deadline = time.monotonic() + timeout_s
            continue
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"job {job_id}: {len(remaining)} chunk(s) still pending after "
                f"{timeout_s:.1f}s without progress — are any workers running "
                f"against {root}?"
            )
        time.sleep(poll_s)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _read_claim(path: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def claim_next_chunk(
    job_dir: Path,
    worker_id: str,
    *,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> Optional[Tuple[str, int]]:
    """Claim one pending chunk of a job; ``(chunk_id, attempt)`` or None.

    Prefers unclaimed chunks; falls back to stealing stale leases
    (poisoning chunks that already burned ``max_attempts`` leases).
    """
    if (job_dir / "cancel.json").exists():
        return None
    done = {p.stem for p in (job_dir / "results").glob("*.pkl")}
    done |= {p.stem for p in (job_dir / "poison").glob("*.json")}
    now = time.time()
    stale: List[Tuple[str, Dict[str, Any]]] = []
    for cid in _chunk_ids(job_dir):
        if cid in done:
            continue
        claim_path = job_dir / "claims" / f"{cid}.json"
        body = json.dumps({"worker": worker_id, "attempt": 1,
                           "claimed_ts": now}).encode()
        try:
            fd = os.open(claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            claim = _read_claim(claim_path)
            try:
                age = now - claim_path.stat().st_mtime
            except OSError:
                continue  # completed and cleaned up between list and stat
            if claim is not None and age > lease_s:
                stale.append((cid, claim))
            continue
        with os.fdopen(fd, "wb") as fh:
            fh.write(body)
        return cid, 1

    for cid, claim in stale:
        # Re-check: the lease holder may have finished while we scanned.
        if (job_dir / "results" / f"{cid}.pkl").exists():
            continue
        attempt = int(claim.get("attempt", 1))
        if attempt >= max_attempts:
            _poison_chunk(job_dir, cid, attempt)
            continue
        _atomic_write(job_dir / "claims" / f"{cid}.json",
                      json.dumps({"worker": worker_id, "attempt": attempt + 1,
                                  "claimed_ts": time.time()}).encode())
        log.warning("stole stale lease on %s/%s (attempt %d)",
                    job_dir.name, cid, attempt + 1)
        return cid, attempt + 1
    return None


def _poison_chunk(job_dir: Path, cid: str, attempts: int) -> None:
    """Mark a chunk permanently failed; carries the first spec's context."""
    index, params = -1, None
    try:
        with open(job_dir / "chunks" / f"{cid}.pkl", "rb") as fh:
            chunk = pickle.load(fh)
        first = chunk["specs"][0]
        index, params = first.index, first.params
    except Exception:
        pass
    _atomic_write(job_dir / "poison" / f"{cid}.json", (json.dumps({
        "message": (f"chunk {cid} poisoned after {attempts} expired lease(s) "
                    "(worker crash or kill loop)"),
        "index": index,
        "params": {k: repr(v) for k, v in (params or {}).items()},
        "poisoned_ts": time.time(),
    }) + "\n").encode())
    log.error("poisoned %s/%s after %d attempts", job_dir.name, cid, attempts)


def _execute_chunk(job_dir: Path, cid: str, *, heartbeat_s: float) -> None:
    """Run one claimed chunk and publish its ChunkResult atomically."""
    claim_path = job_dir / "claims" / f"{cid}.json"
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                os.utime(claim_path)
            except OSError:
                return  # claim stolen/cleaned — stop beating

    beater = threading.Thread(target=_beat, daemon=True,
                              name=f"lease-heartbeat-{cid}")
    beater.start()
    try:
        try:
            with open(job_dir / "chunks" / f"{cid}.pkl", "rb") as fh:
                chunk = pickle.load(fh)
        except Exception as exc:
            # Most commonly the trial function's module is not importable
            # on this host.  Publish the failure as the chunk's result so
            # the submitter fails fast with the cause instead of burning
            # leases until the chunk is poisoned.
            result = ChunkResult(error={
                "message": (f"worker could not load chunk {cid}: "
                            f"{type(exc).__name__}: {exc} — is the trial "
                            "function's module importable on the worker "
                            "host?"),
                "index": -1,
                "params": None,
                "seed_entropy": None,
                "traceback_text": traceback.format_exc(),
            })
        else:
            result = run_chunk_in_worker(chunk["fn"], chunk["specs"])
        _atomic_write(job_dir / "results" / f"{cid}.pkl",
                      pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    finally:
        stop.set()
        beater.join(timeout=1.0)


def worker_loop(
    root: Union[str, Path],
    *,
    worker_id: Optional[str] = None,
    poll_s: float = 0.2,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    drain: bool = False,
    max_seconds: Optional[float] = None,
    isolate_obs: bool = True,
) -> int:
    """Serve chunks from every job under ``root``; returns chunks done.

    ``drain=True`` exits once no claimable work remains (local fan-out
    and CI); otherwise the worker keeps polling until ``max_seconds``
    (service mode on a long-lived host).  Each worker process runs its
    chunks against a fresh metrics registry, so results carry snapshot
    deltas exactly as the process-pool executor's workers do.
    """
    from repro.engine.worker import worker_initializer

    if isolate_obs:
        worker_initializer(None, ())
    worker_id = worker_id or f"{os.uname().nodename}-{os.getpid()}"
    heartbeat_s = max(lease_s / 4.0, 0.05)
    t0 = time.monotonic()
    n_done = 0
    inited_jobs: set = set()
    jobs_root = _jobs_root(root)
    while True:
        worked = False
        if jobs_root.exists():
            for job_dir in sorted(p for p in jobs_root.iterdir() if p.is_dir()):
                if not (job_dir / "job.json").exists():
                    continue  # mid-submission
                claim = claim_next_chunk(job_dir, worker_id,
                                         lease_s=lease_s,
                                         max_attempts=max_attempts)
                if claim is None:
                    continue
                cid, attempt = claim
                log.debug("worker %s: chunk %s/%s (attempt %d)",
                          worker_id, job_dir.name, cid, attempt)
                try:
                    if job_dir.name not in inited_jobs:
                        _run_job_init(job_dir)
                        inited_jobs.add(job_dir.name)
                    _execute_chunk(job_dir, cid, heartbeat_s=heartbeat_s)
                except Exception as exc:
                    # Infrastructure failure (init unpicklable, result
                    # write failed, ...) — surface it as the chunk's
                    # result if we still can, and keep the worker alive
                    # for other jobs.
                    log.exception("chunk %s/%s failed outside trial "
                                  "execution", job_dir.name, cid)
                    try:
                        _atomic_write(
                            job_dir / "results" / f"{cid}.pkl",
                            pickle.dumps(ChunkResult(error={
                                "message": (f"worker failed on chunk {cid}: "
                                            f"{type(exc).__name__}: {exc}"),
                                "index": -1,
                                "params": None,
                                "seed_entropy": None,
                                "traceback_text": traceback.format_exc(),
                            }), protocol=pickle.HIGHEST_PROTOCOL))
                    except Exception:
                        pass  # lease expiry / poisoning is the backstop
                n_done += 1
                worked = True
                break  # rescan from the top: earlier jobs first
        if worked:
            continue
        if drain:
            return n_done
        if max_seconds is not None and time.monotonic() - t0 >= max_seconds:
            return n_done
        time.sleep(poll_s)


def _run_job_init(job_dir: Path) -> None:
    """Apply the job's per-worker ``init`` hook, if it shipped one."""
    init_path = job_dir / "init.pkl"
    if not init_path.exists():
        return
    with open(init_path, "rb") as fh:
        init, init_args = pickle.load(fh)
    initialize_state(init, init_args)


def _spawned_worker_main(root: str, poll_s: float, lease_s: float,
                         max_attempts: int) -> None:
    """Entry point for locally spawned worker processes (picklable)."""
    worker_loop(root, poll_s=poll_s, lease_s=lease_s,
                max_attempts=max_attempts, drain=True)
