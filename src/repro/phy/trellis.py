"""Trellis of the K=7 convolutional code, precomputed for Viterbi.

States are the 64 possible contents of the 6-bit shift register with the
*most recent* input bit in the MSB.  The transition caused by input bit b
from state s passes through the 7-bit window w = (b << 6) | s, emits
(A, B) = (parity(w & G0), parity(w & G1)) and lands in state w >> 1 —
whose MSB is therefore b, which is what traceback exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Trellis", "N_STATES"]

N_STATES = 64
_G0_MASK = 0b1011011
_G1_MASK = 0b1111001


def _parity(x: np.ndarray) -> np.ndarray:
    x = x ^ (x >> 4)
    x = x ^ (x >> 2)
    x = x ^ (x >> 1)
    return x & 1


@dataclass(frozen=True)
class Trellis:
    """Reverse-indexed trellis tables.

    Attributes
    ----------
    prev_state:
        ``(64, 2)`` — for next-state ``ns`` and branch index ``x`` (the LSB
        shifted out of the window), the predecessor state.
    branch_pair:
        ``(64, 2)`` — the output pair of that transition encoded as
        ``2*A + B`` (an index into per-step pair metrics).
    input_bit:
        ``(64,)`` — the information bit that led *into* each state (its MSB).
    next_state / output_pair:
        forward tables indexed ``[state, input_bit]``, used by tests and by
        the encoder cross-check.

    All five tables are required constructor arguments — a half-built
    trellis (the old ``default=None`` fields) cannot exist; use
    :meth:`build` or :func:`shared_trellis`.
    """

    prev_state: np.ndarray
    branch_pair: np.ndarray
    input_bit: np.ndarray
    next_state: np.ndarray
    output_pair: np.ndarray

    @staticmethod
    def build() -> "Trellis":
        states = np.arange(N_STATES)
        # Forward tables.
        next_state = np.empty((N_STATES, 2), dtype=np.int64)
        output_pair = np.empty((N_STATES, 2), dtype=np.int64)
        for b in (0, 1):
            window = (b << 6) | states
            next_state[:, b] = window >> 1
            a_bit = _parity(window & _G0_MASK)
            b_bit = _parity(window & _G1_MASK)
            output_pair[:, b] = 2 * a_bit + b_bit
        # Reverse tables.
        prev_state = np.empty((N_STATES, 2), dtype=np.int64)
        branch_pair = np.empty((N_STATES, 2), dtype=np.int64)
        ns = np.arange(N_STATES)
        for x in (0, 1):
            window = (ns << 1) | x
            prev_state[:, x] = window & (N_STATES - 1)
            a_bit = _parity(window & _G0_MASK)
            b_bit = _parity(window & _G1_MASK)
            branch_pair[:, x] = 2 * a_bit + b_bit
        input_bit = (ns >> 5) & 1
        return Trellis(
            prev_state=prev_state,
            branch_pair=branch_pair,
            input_bit=input_bit,
            next_state=next_state,
            output_pair=output_pair,
        )


_SHARED: Trellis = Trellis.build()


def shared_trellis() -> Trellis:
    """Return the singleton trellis (it is immutable and rate-independent)."""
    return _SHARED
