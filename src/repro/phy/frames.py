"""Minimal MAC framing: an MPDU is a payload protected by the 32-bit FCS.

CoS works entirely below the MAC, so the simulator only needs enough MAC
to reproduce the paper's methodology: the receiver validates the CRC, and
only CRC-clean packets contribute EVM feedback (§III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.crc import append_fcs, check_fcs, FCS_LEN

__all__ = ["Mpdu", "build_mpdu", "parse_mpdu"]


@dataclass(frozen=True)
class Mpdu:
    """A parsed MAC frame."""

    payload: bytes
    fcs_ok: bool


def build_mpdu(payload: bytes) -> bytes:
    """Append the FCS to ``payload``, producing the PSDU handed to the PHY."""
    if not payload:
        raise ValueError("payload must be non-empty")
    return append_fcs(payload)


def parse_mpdu(psdu: Optional[bytes]) -> Mpdu:
    """Validate and strip the FCS; ``psdu=None`` maps to a failed frame."""
    if psdu is None or len(psdu) <= FCS_LEN:
        return Mpdu(payload=b"", fcs_ok=False)
    ok = check_fcs(psdu)
    return Mpdu(payload=psdu[:-FCS_LEN], fcs_ok=ok)
