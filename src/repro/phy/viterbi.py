"""Soft-decision Viterbi decoder with native erasure support.

The decoder consumes one *log-likelihood ratio* per coded bit,

    LLR(c) = log P(c = 0 | y) - log P(c = 1 | y),

so a positive LLR favours a 0.  An **erasure** is simply ``LLR = 0`` — it
contributes nothing to any path metric, exactly the bit-metric zeroing of
the paper's erasure Viterbi decoding (eq. (7)).  Punctured positions and
CoS silence symbols both enter the decoder this way, which is why EVD
"does not modify the existing Viterbi decoder, but only the calculation
of bit metrics" (§III-E).
"""

from __future__ import annotations

import numpy as np

from repro.obs.trace import span
from repro.phy.trellis import N_STATES, shared_trellis

__all__ = ["ViterbiDecoder", "hard_bits_to_llrs"]

_NEG_INF = -1e18


def hard_bits_to_llrs(bits: np.ndarray, confidence: float = 1.0) -> np.ndarray:
    """Map hard bits to LLRs (+confidence for 0, -confidence for 1)."""
    bits = np.asarray(bits, dtype=np.float64)
    return confidence * (1.0 - 2.0 * bits)


class ViterbiDecoder:
    """Maximum-likelihood sequence decoder for the 802.11a trellis.

    Parameters
    ----------
    terminated:
        If True (the 802.11a case — 6 tail zeros flush the encoder) the
        survivor ending in state 0 is traced back; otherwise the best
        final state is used.
    """

    def __init__(self, terminated: bool = True):
        self.terminated = terminated
        self._trellis = shared_trellis()

    def decode(self, llrs: np.ndarray) -> np.ndarray:
        """Decode a rate-1/2 LLR stream (A0 B0 A1 B1 …) into info bits.

        ``llrs`` must have even length; length // 2 information bits are
        returned (including any tail bits, which callers strip).
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        if llrs.size % 2 != 0:
            raise ValueError("LLR stream must contain whole (A, B) pairs")
        n_steps = llrs.size // 2
        if n_steps == 0:
            return np.zeros(0, dtype=np.uint8)
        with span("phy.viterbi") as sp:
            sp.set(n_steps=n_steps)
            return self._decode_steps(llrs, n_steps)

    def _decode_steps(self, llrs: np.ndarray, n_steps: int) -> np.ndarray:
        # Metric of hypothesis pair p = 2*A + B at each step: +LLR for an
        # expected 0, -LLR for an expected 1 (correlation metric).
        llr_a = llrs[0::2]
        llr_b = llrs[1::2]
        sign_a = np.array([1.0, 1.0, -1.0, -1.0])
        sign_b = np.array([1.0, -1.0, 1.0, -1.0])
        pair_metrics = llr_a[:, None] * sign_a + llr_b[:, None] * sign_b

        trellis = self._trellis
        prev_state = trellis.prev_state  # (64, 2)
        branch_pair = trellis.branch_pair  # (64, 2)

        # Path metrics, starting from the all-zero encoder state.
        metric = np.full(N_STATES, _NEG_INF)
        metric[0] = 0.0
        decisions = np.empty((n_steps, N_STATES), dtype=np.uint8)

        for t in range(n_steps):
            cand = metric[prev_state] + pair_metrics[t][branch_pair]
            choice = cand[:, 1] > cand[:, 0]
            decisions[t] = choice
            metric = np.where(choice, cand[:, 1], cand[:, 0])
            metric -= metric.max()  # keep metrics bounded

        state = 0 if self.terminated else int(metric.argmax())
        bits = np.empty(n_steps, dtype=np.uint8)
        input_bit = trellis.input_bit
        for t in range(n_steps - 1, -1, -1):
            bits[t] = input_bit[state]
            state = int(prev_state[state, decisions[t, state]])
        return bits

    def decode_hard(self, coded_bits: np.ndarray) -> np.ndarray:
        """Convenience: hard-decision decoding of a rate-1/2 bit stream."""
        return self.decode(hard_bits_to_llrs(coded_bits))
