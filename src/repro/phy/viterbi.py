"""Soft-decision Viterbi decoder with native erasure support.

The decoder consumes one *log-likelihood ratio* per coded bit,

    LLR(c) = log P(c = 0 | y) - log P(c = 1 | y),

so a positive LLR favours a 0.  An **erasure** is simply ``LLR = 0`` — it
contributes nothing to any path metric, exactly the bit-metric zeroing of
the paper's erasure Viterbi decoding (eq. (7)).  Punctured positions and
CoS silence symbols both enter the decoder this way, which is why EVD
"does not modify the existing Viterbi decoder, but only the calculation
of bit metrics" (§III-E).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels import dispatch as _kernels
from repro.obs.trace import span
from repro.phy.trellis import shared_trellis

__all__ = ["ViterbiDecoder", "hard_bits_to_llrs"]


def hard_bits_to_llrs(bits: np.ndarray, confidence: float = 1.0) -> np.ndarray:
    """Map hard bits to LLRs (+confidence for 0, -confidence for 1)."""
    bits = np.asarray(bits, dtype=np.float64)
    return confidence * (1.0 - 2.0 * bits)


class ViterbiDecoder:
    """Maximum-likelihood sequence decoder for the 802.11a trellis.

    Parameters
    ----------
    terminated:
        If True (the 802.11a case — 6 tail zeros flush the encoder) the
        survivor ending in state 0 is traced back; otherwise the best
        final state is used.

    The actual add-compare-select recursion is served by the active
    compute-kernel backend (:mod:`repro.kernels`): blocked NumPy by
    default, numba JIT when installed, selectable via
    ``REPRO_KERNEL_BACKEND``.  All backends share identical decode
    semantics (see the dispatch module's exactness contract).
    """

    def __init__(self, terminated: bool = True):
        self.terminated = terminated
        self._trellis = shared_trellis()

    def decode(self, llrs: np.ndarray) -> np.ndarray:
        """Decode a rate-1/2 LLR stream (A0 B0 A1 B1 …) into info bits.

        ``llrs`` must have even length; length // 2 information bits are
        returned (including any tail bits, which callers strip).
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        if llrs.size % 2 != 0:
            raise ValueError("LLR stream must contain whole (A, B) pairs")
        n_steps = llrs.size // 2
        if n_steps == 0:
            return np.zeros(0, dtype=np.uint8)
        backend = _kernels.get_backend()
        with span("phy.viterbi") as sp:
            sp.set(n_steps=n_steps, backend=backend.name)
            return backend.viterbi_decode(llrs, self.terminated)

    def decode_many(self, llrs_list: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Decode a batch of codewords in one call (mixed lengths allowed).

        Bit-for-bit identical to looping :meth:`decode`; the batch entry
        point amortizes dispatch overhead and lets the numba backend run
        whole equal-length groups inside one compiled loop.

        A single-codeword batch is routed through :meth:`decode` so the
        ``phy.viterbi`` span (with its ``n_steps``/``backend`` attributes)
        keeps firing for unbatched packets — trace consumers rely on it.
        """
        if len(llrs_list) == 1:
            return [self.decode(llrs_list[0])]
        with span("phy.viterbi.batch") as sp:
            sp.set(n_codewords=len(llrs_list))
            return _kernels.decode_many(llrs_list, self.terminated)

    def decode_hard(self, coded_bits: np.ndarray) -> np.ndarray:
        """Convenience: hard-decision decoding of a rate-1/2 bit stream."""
        return self.decode(hard_bits_to_llrs(coded_bits))
