"""IEEE 802.11a PHY constants: rate table, subcarrier plan, timing.

All numbers follow IEEE Std 802.11-2012 clause 18 (the OFDM PHY, originally
802.11a).  A 20 MHz channel carries 64 subcarriers: 48 data, 4 pilots
(±7, ±21), 11 guards and the DC null.  One OFDM symbol lasts 4 µs
(3.2 µs useful + 0.8 µs cyclic prefix).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "N_FFT",
    "N_DATA_SUBCARRIERS",
    "N_PILOT_SUBCARRIERS",
    "CP_LEN",
    "SYMBOL_SAMPLES",
    "SYMBOL_DURATION_S",
    "SYMBOLS_PER_SECOND",
    "DATA_SUBCARRIER_INDICES",
    "PILOT_SUBCARRIER_INDICES",
    "USED_SUBCARRIER_INDICES",
    "PILOT_PATTERN",
    "PhyRate",
    "RATE_TABLE",
    "RATES_MBPS",
    "rate_for_mbps",
    "SERVICE_BITS",
    "TAIL_BITS",
]

# ---------------------------------------------------------------------------
# OFDM numerology
# ---------------------------------------------------------------------------

N_FFT = 64
N_DATA_SUBCARRIERS = 48
N_PILOT_SUBCARRIERS = 4
CP_LEN = 16
SYMBOL_SAMPLES = N_FFT + CP_LEN  # 80 samples at 20 Msps
SYMBOL_DURATION_S = 4e-6
SYMBOLS_PER_SECOND = 1.0 / SYMBOL_DURATION_S  # 250 000 OFDM symbols/s

# Logical subcarrier indices run -26..+26 with DC (0) unused.  Pilots sit at
# ±7 and ±21; the 48 remaining used indices carry data.  The ordering below
# is ascending frequency, which is also the order used by the interleaver's
# subcarrier mapping.
PILOT_SUBCARRIER_INDICES: Tuple[int, ...] = (-21, -7, 7, 21)

_used = [k for k in range(-26, 27) if k != 0]
DATA_SUBCARRIER_INDICES: Tuple[int, ...] = tuple(
    k for k in _used if k not in PILOT_SUBCARRIER_INDICES
)
USED_SUBCARRIER_INDICES: Tuple[int, ...] = tuple(_used)

assert len(DATA_SUBCARRIER_INDICES) == N_DATA_SUBCARRIERS
assert len(USED_SUBCARRIER_INDICES) == 52

# Pilot BPSK pattern on (-21, -7, +7, +21); the per-symbol polarity sequence
# multiplying it lives in repro.phy.ofdm (it is the scrambler sequence).
PILOT_PATTERN = np.array([1.0, 1.0, 1.0, -1.0])

# SERVICE field (16 zero bits, 7 of which initialise the descrambler) and
# the 6 tail bits that flush the convolutional encoder.
SERVICE_BITS = 16
TAIL_BITS = 6


# ---------------------------------------------------------------------------
# Rate-dependent parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhyRate:
    """One entry of the 802.11a rate table.

    Attributes
    ----------
    mbps:
        Nominal data rate in Mbit/s.
    modulation:
        One of ``"bpsk"``, ``"qpsk"``, ``"16qam"``, ``"64qam"``.
    code_rate:
        Convolutional code rate after puncturing (1/2, 2/3 or 3/4).
    n_bpsc:
        Coded bits per subcarrier (1, 2, 4, 6).
    signal_rate_bits:
        The 4-bit RATE field of the PLCP SIGNAL symbol (MSB first).
    """

    mbps: int
    modulation: str
    code_rate: Fraction
    n_bpsc: int
    signal_rate_bits: Tuple[int, int, int, int]

    @property
    def n_cbps(self) -> int:
        """Coded bits per OFDM symbol."""
        return self.n_bpsc * N_DATA_SUBCARRIERS

    @property
    def n_dbps(self) -> int:
        """Data bits per OFDM symbol."""
        value = Fraction(self.n_cbps) * self.code_rate
        assert value.denominator == 1
        return int(value)

    @property
    def bits_per_symbol(self) -> int:
        """Data bits carried by one *data-subcarrier* symbol (before coding)."""
        return self.n_bpsc

    @property
    def name(self) -> str:
        return f"({self.modulation.upper()},{self.code_rate})"

    def n_symbols_for(self, n_octets: int) -> int:
        """Number of OFDM data symbols needed for an ``n_octets`` PSDU."""
        n_bits = SERVICE_BITS + 8 * n_octets + TAIL_BITS
        return -(-n_bits // self.n_dbps)  # ceil division


RATE_TABLE: Dict[int, PhyRate] = {
    6: PhyRate(6, "bpsk", Fraction(1, 2), 1, (1, 1, 0, 1)),
    9: PhyRate(9, "bpsk", Fraction(3, 4), 1, (1, 1, 1, 1)),
    12: PhyRate(12, "qpsk", Fraction(1, 2), 2, (0, 1, 0, 1)),
    18: PhyRate(18, "qpsk", Fraction(3, 4), 2, (0, 1, 1, 1)),
    24: PhyRate(24, "16qam", Fraction(1, 2), 4, (1, 0, 0, 1)),
    36: PhyRate(36, "16qam", Fraction(3, 4), 4, (1, 0, 1, 1)),
    48: PhyRate(48, "64qam", Fraction(2, 3), 6, (0, 0, 0, 1)),
    54: PhyRate(54, "64qam", Fraction(3, 4), 6, (0, 0, 1, 1)),
}

RATES_MBPS: Tuple[int, ...] = tuple(sorted(RATE_TABLE))


def rate_for_mbps(mbps: int) -> PhyRate:
    """Look up a :class:`PhyRate`, raising ``KeyError`` with the valid set."""
    try:
        return RATE_TABLE[mbps]
    except KeyError:
        raise KeyError(f"{mbps} Mbps is not an 802.11a rate; valid: {RATES_MBPS}") from None
