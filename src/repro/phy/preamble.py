"""802.11a PLCP preamble: short/long training fields and channel estimation.

The preamble occupies 16 µs: ten repetitions of a 0.8 µs short training
symbol (STF — AGC, coarse sync) followed by a double-length guard interval
and two 3.2 µs long training symbols (LTF — fine sync, channel estimation).
The least-squares channel estimate from the two LTF repetitions is the
``H_k`` the receiver uses for equalisation, CSI weighting, and — in CoS —
the pilot-aided noise-floor estimate (§III-C).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.phy.ofdm import TIME_SCALE
from repro.phy.params import N_FFT

__all__ = [
    "STF_SAMPLES",
    "LTF_SAMPLES",
    "PREAMBLE_SAMPLES",
    "SAMPLE_RATE_HZ",
    "ltf_frequency_symbol",
    "stf_frequency_symbol",
    "generate_preamble",
    "estimate_channel",
    "estimate_channel_batch",
    "estimate_noise_from_ltf",
    "estimate_noise_from_ltf_batch",
    "estimate_cfo",
    "synchronize",
]

SAMPLE_RATE_HZ = 20e6

STF_SAMPLES = 160
LTF_SAMPLES = 160
PREAMBLE_SAMPLES = STF_SAMPLES + LTF_SAMPLES

# Long training sequence L_{-26..26} (clause 18.3.3, Table 18-7).
_LTF_SEQ = np.array(
    [
        1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
        1, -1, 1, 1, 1, 1,  # -26 .. -1
        0,  # DC
        1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1,
        -1, 1, -1, 1, 1, 1, 1,  # +1 .. +26
    ],
    dtype=np.float64,
)

# Short training sequence: nonzero every 4th subcarrier (clause 18.3.3).
_STF_NONZERO = {
    -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j, -8: -1 - 1j,
    -4: 1 + 1j, 4: -1 - 1j, 8: -1 - 1j, 12: 1 + 1j, 16: 1 + 1j,
    20: 1 + 1j, 24: 1 + 1j,
}


def ltf_frequency_symbol() -> np.ndarray:
    """The known LTF values on FFT bins 0..63 (guards zero)."""
    grid = np.zeros(N_FFT, dtype=np.complex128)
    for offset, k in enumerate(range(-26, 27)):
        grid[k % N_FFT] = _LTF_SEQ[offset]
    return grid


def stf_frequency_symbol() -> np.ndarray:
    """The known STF values on FFT bins 0..63."""
    grid = np.zeros(N_FFT, dtype=np.complex128)
    scale = np.sqrt(13.0 / 6.0)
    for k, value in _STF_NONZERO.items():
        grid[k % N_FFT] = scale * value
    return grid


def generate_preamble() -> np.ndarray:
    """320 time-domain samples: 10 short symbols + GI2 + 2 long symbols."""
    stf_time = np.fft.ifft(stf_frequency_symbol()) * TIME_SCALE
    stf = np.tile(stf_time, 3)[:STF_SAMPLES]  # periodic with period 16
    ltf_time = np.fft.ifft(ltf_frequency_symbol()) * TIME_SCALE
    gi2 = ltf_time[-32:]
    return np.concatenate([stf, gi2, ltf_time, ltf_time])


def _ltf_ffts(preamble_samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    ltf_start = STF_SAMPLES + 32
    first = preamble_samples[ltf_start : ltf_start + N_FFT]
    second = preamble_samples[ltf_start + N_FFT : ltf_start + 2 * N_FFT]
    return (
        np.fft.fft(first) / TIME_SCALE,
        np.fft.fft(second) / TIME_SCALE,
    )


def estimate_channel(preamble_samples: np.ndarray) -> np.ndarray:
    """Least-squares channel estimate from the two LTF repetitions.

    Returns ``H`` on all 64 FFT bins; guard bins (where the LTF is zero)
    are returned as 0 and must not be used.
    """
    if preamble_samples.size < PREAMBLE_SAMPLES:
        raise ValueError("preamble slice too short")
    fft1, fft2 = _ltf_ffts(preamble_samples)
    known = ltf_frequency_symbol()
    h = np.zeros(N_FFT, dtype=np.complex128)
    used = known != 0
    h[used] = 0.5 * (fft1[used] + fft2[used]) / known[used]
    return h


def _ltf_ffts_batch(preambles: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    ltf_start = STF_SAMPLES + 32
    first = preambles[:, ltf_start : ltf_start + N_FFT]
    second = preambles[:, ltf_start + N_FFT : ltf_start + 2 * N_FFT]
    return (
        np.fft.fft(first, axis=1) / TIME_SCALE,
        np.fft.fft(second, axis=1) / TIME_SCALE,
    )


def estimate_channel_batch(preambles: np.ndarray) -> np.ndarray:
    """:func:`estimate_channel` over a ``(B, n_samples)`` stack.

    Row ``i`` equals ``estimate_channel(preambles[i])`` bit-for-bit: the
    row FFT and the per-bin arithmetic are elementwise per packet, so
    batching changes no rounding.
    """
    preambles = np.asarray(preambles, dtype=np.complex128)
    if preambles.ndim != 2:
        raise ValueError("expected a (B, n_samples) preamble stack")
    if preambles.shape[1] < PREAMBLE_SAMPLES:
        raise ValueError("preamble slice too short")
    fft1, fft2 = _ltf_ffts_batch(preambles)
    known = ltf_frequency_symbol()
    used = known != 0
    h = np.zeros((preambles.shape[0], N_FFT), dtype=np.complex128)
    h[:, used] = 0.5 * (fft1[:, used] + fft2[:, used]) / known[used]
    return h


def estimate_noise_from_ltf(preamble_samples: np.ndarray) -> float:
    """Per-subcarrier noise variance from the difference of the LTF twins.

    The two long symbols carry identical signal, so their per-bin difference
    is pure noise with variance 2 * sigma^2; averaging over the 52 used bins
    gives a robust floor estimate that seeds the CoS energy detector.
    """
    fft1, fft2 = _ltf_ffts(preamble_samples)
    used = ltf_frequency_symbol() != 0
    diff = fft1[used] - fft2[used]
    return float(np.mean(np.abs(diff) ** 2) / 2.0)


def estimate_noise_from_ltf_batch(preambles: np.ndarray) -> np.ndarray:
    """:func:`estimate_noise_from_ltf` over a ``(B, n_samples)`` stack.

    Returns a ``(B,)`` float64 vector; entry ``i`` equals the scalar
    estimator on row ``i`` bit-for-bit (the mean reduces each row
    independently).
    """
    preambles = np.asarray(preambles, dtype=np.complex128)
    if preambles.ndim != 2:
        raise ValueError("expected a (B, n_samples) preamble stack")
    fft1, fft2 = _ltf_ffts_batch(preambles)
    used = ltf_frequency_symbol() != 0
    energy = np.abs(fft1[:, used] - fft2[:, used]) ** 2
    # The mean must reduce one row at a time: numpy's axis-1 reduction may
    # split its pairwise summation differently than the 1-D reduction the
    # scalar estimator uses, which moves the result by an ulp.  A row of a
    # C-contiguous matrix reduces exactly like the standalone vector.
    return np.array([float(np.mean(row)) for row in energy]) / 2.0


def estimate_cfo(preamble_samples: np.ndarray) -> float:
    """Carrier-frequency-offset estimate in Hz from the training fields.

    Classic two-stage data-aided estimator: the STF repeats every 16
    samples, so the angle of the lag-16 autocorrelation gives a *coarse*
    estimate with a wide ±625 kHz range; the LTF repeats every 64 samples,
    giving a *fine* estimate (±156 kHz range) applied after coarse
    correction.  Both stages use only the standard preamble — exactly what
    commodity 802.11a receivers do.
    """
    samples = np.asarray(preamble_samples, dtype=np.complex128)
    if samples.size < PREAMBLE_SAMPLES:
        raise ValueError("preamble slice too short")

    # Coarse: STF lag-16 autocorrelation (skip the first short symbol to
    # avoid filter/channel transients).
    stf = samples[16:STF_SAMPLES]
    corr = np.sum(np.conj(stf[:-16]) * stf[16:])
    coarse = np.angle(corr) / (2.0 * np.pi * 16.0 / SAMPLE_RATE_HZ)

    # Fine: LTF lag-64 autocorrelation after derotating the coarse part.
    n = np.arange(samples.size)
    derotated = samples * np.exp(-2j * np.pi * coarse * n / SAMPLE_RATE_HZ)
    ltf = derotated[STF_SAMPLES + 32 : STF_SAMPLES + 32 + 2 * N_FFT]
    corr = np.sum(np.conj(ltf[:N_FFT]) * ltf[N_FFT:])
    fine = np.angle(corr) / (2.0 * np.pi * N_FFT / SAMPLE_RATE_HZ)
    return float(coarse + fine)


def synchronize(samples: np.ndarray, search: int = 200) -> int:
    """Locate the frame start by cross-correlating against the known LTF.

    Returns the estimated index of the first preamble sample.  In the
    simulator the true offset is usually known; this implements the classic
    matched-filter acquisition for completeness and for the sync tests.
    """
    ltf_time = np.fft.ifft(ltf_frequency_symbol()) * TIME_SCALE
    template = np.conj(ltf_time[::-1])
    n = min(samples.size, search + PREAMBLE_SAMPLES + N_FFT)
    corr = np.abs(np.convolve(samples[:n], template, mode="valid"))
    if corr.size <= N_FFT:
        return 0
    # corr[i] peaks when an LTF symbol starts at sample i; the two LTF
    # repetitions are 64 samples apart, so summing corr[i] + corr[i + 64]
    # peaks uniquely at the *first* LTF start (offset + STF + GI2).
    combined = corr[:-N_FFT] + corr[N_FFT:]
    peak = int(np.argmax(combined))
    start = peak - (STF_SAMPLES + 32)
    return max(start, 0)
