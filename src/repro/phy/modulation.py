"""802.11a constellation mapping and soft demapping.

The four modulations are square Gray-coded constellations whose I and Q
axes are independent PAM alphabets (clause 18.3.5.8, Tables 18-9..18-12).
Bits are consumed in transmission order: the first half of a symbol's bits
select the I level, the second half the Q level.

Demapping produces per-bit max-log LLRs weighted by channel state
information (CSI), so bits on faded subcarriers carry proportionally weak
metrics — which is what lets the Viterbi decoder absorb both fading errors
and CoS erasures gracefully.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Tuple

import numpy as np

from repro.kernels.demap import (
    axis_hard_bits,
    axis_llrs,
    build_axis_masks,
    build_label_bits,
)

__all__ = ["Modulation", "MODULATIONS", "get_modulation"]

# PAM level tables indexed by the integer formed from the axis bits with the
# *first transmitted bit as MSB* (Gray mapping of the standard).
_PAM_LEVELS: Dict[int, np.ndarray] = {
    1: np.array([-1.0, 1.0]),
    2: np.array([-3.0, -1.0, 3.0, 1.0]),
    3: np.array([-7.0, -5.0, -1.0, -3.0, 7.0, 5.0, 1.0, 3.0]),
}

_KMOD: Dict[str, float] = {
    "bpsk": 1.0,
    "qpsk": 1.0 / np.sqrt(2.0),
    "16qam": 1.0 / np.sqrt(10.0),
    "64qam": 1.0 / np.sqrt(42.0),
}


@dataclass(frozen=True)
class Modulation:
    """A Gray-coded square constellation.

    Attributes
    ----------
    name:
        ``"bpsk"``, ``"qpsk"``, ``"16qam"`` or ``"64qam"``.
    bits_per_symbol:
        Total coded bits per constellation symbol (1, 2, 4, 6).
    bits_per_axis:
        Bits consumed by each PAM axis (0 for the Q axis of BPSK).
    kmod:
        Normalisation so the constellation has unit average energy.
    """

    name: str
    bits_per_symbol: int
    bits_per_axis: int
    kmod: float

    # ------------------------------------------------------------------
    # Derived tables — computed once per modulation (the MODULATIONS
    # singletons), not on every property access / demap call.
    # ------------------------------------------------------------------

    @cached_property
    def pam_levels(self) -> np.ndarray:
        """Normalised PAM levels indexed by axis-bit integer (first bit MSB)."""
        levels = _PAM_LEVELS[self.bits_per_axis] * self.kmod
        levels.setflags(write=False)
        return levels

    @cached_property
    def constellation(self) -> np.ndarray:
        """All M constellation points, indexed by the full bit label."""
        levels = self.pam_levels
        if self.name == "bpsk":
            points = levels.astype(np.complex128)
        else:
            n = levels.size
            points = np.repeat(levels, n) + 1j * np.tile(levels, n)
        points.setflags(write=False)
        return points

    @cached_property
    def min_symbol_energy(self) -> float:
        """Energy of the weakest constellation point (average is 1.0).

        Sets how far below the per-subcarrier signal level an energy
        -detection threshold must stay: 1.0 for BPSK/QPSK, 0.2 for 16-QAM,
        2/42 ≈ 0.048 for 64-QAM.
        """
        return float(np.min(np.abs(self.constellation) ** 2))

    @cached_property
    def min_distance(self) -> float:
        """Minimum Euclidean distance Dm between constellation points.

        CoS compares per-subcarrier EVM against Dm / 2 to predict whether a
        subcarrier will produce symbol errors (§III-D).
        """
        levels = np.sort(self.pam_levels)
        if levels.size == 1:
            return 2.0 * abs(levels[0])
        return float(np.min(np.diff(levels)))

    @cached_property
    def _axis_bit_masks(self) -> np.ndarray:
        """``(bits_per_axis, n_levels)`` bool — per-bit "label is 1" masks."""
        masks = build_axis_masks(self.pam_levels.size, self.bits_per_axis)
        masks.setflags(write=False)
        return masks

    @cached_property
    def _label_bits(self) -> np.ndarray:
        """``(n_levels, bits_per_axis)`` uint8 — labels unpacked to bits."""
        bits = build_label_bits(self.pam_levels.size, self.bits_per_axis)
        bits.setflags(write=False)
        return bits

    def prewarm(self) -> None:
        """Materialise every cached table (used by kernel warm-up)."""
        _ = (
            self.pam_levels,
            self.constellation,
            self.min_symbol_energy,
            self.min_distance,
            self._axis_bit_masks,
            self._label_bits,
        )

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def _axis_indices(self, bits: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        m = self.bits_per_axis
        grouped = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(m - 1, -1, -1)
        i_idx = grouped[:, :m] @ weights
        if self.name == "bpsk":
            q_idx = np.zeros(grouped.shape[0], dtype=np.int64)
        else:
            q_idx = grouped[:, m:] @ weights
        return i_idx, q_idx

    def map_bits(self, bits: np.ndarray) -> np.ndarray:
        """Map a coded bit array (length multiple of bits_per_symbol) to symbols."""
        bits = np.asarray(bits, dtype=np.int64)
        if bits.size % self.bits_per_symbol != 0:
            raise ValueError(
                f"{bits.size} bits is not a multiple of {self.bits_per_symbol}"
            )
        levels = self.pam_levels
        i_idx, q_idx = self._axis_indices(bits)
        if self.name == "bpsk":
            return levels[i_idx].astype(np.complex128)
        return levels[i_idx] + 1j * levels[q_idx]

    # ------------------------------------------------------------------
    # Demapping
    # ------------------------------------------------------------------

    def _axis_llrs(self, observed: np.ndarray, csi: np.ndarray) -> np.ndarray:
        """Max-log LLRs for one PAM axis; shape (n_symbols, bits_per_axis).

        Delegates to the demap kernel over the precomputed level/bit-mask
        tables — no per-call label/mask rebuild.
        """
        return axis_llrs(observed, csi, self.pam_levels, self._axis_bit_masks)

    def demap_soft(self, symbols: np.ndarray, csi: np.ndarray | float = 1.0) -> np.ndarray:
        """Per-bit LLRs (positive ⇒ bit 0) for equalised ``symbols``.

        ``csi`` is the per-symbol reliability weight, canonically
        ``|H_k|^2 / sigma^2``; a scalar applies uniformly.  Symbols flagged
        as erasures should simply be skipped by the caller (CoS zeroes
        their metrics via :mod:`repro.cos.evd`).
        """
        symbols = np.asarray(symbols, dtype=np.complex128)
        csi_arr = np.broadcast_to(np.asarray(csi, dtype=np.float64), symbols.shape)
        i_llrs = self._axis_llrs(symbols.real, csi_arr)
        if self.name == "bpsk":
            return i_llrs.reshape(-1)
        q_llrs = self._axis_llrs(symbols.imag, csi_arr)
        return np.concatenate([i_llrs, q_llrs], axis=1).reshape(-1)

    def demap_hard(self, symbols: np.ndarray) -> np.ndarray:
        """Nearest-point hard decisions, returned as a bit array."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        i_bits = axis_hard_bits(symbols.real, self.pam_levels, self._label_bits)
        if self.name == "bpsk":
            return i_bits.reshape(-1)
        q_bits = axis_hard_bits(symbols.imag, self.pam_levels, self._label_bits)
        return np.concatenate([i_bits, q_bits], axis=1).reshape(-1)


MODULATIONS: Dict[str, Modulation] = {
    "bpsk": Modulation("bpsk", 1, 1, _KMOD["bpsk"]),
    "qpsk": Modulation("qpsk", 2, 1, _KMOD["qpsk"]),
    "16qam": Modulation("16qam", 4, 2, _KMOD["16qam"]),
    "64qam": Modulation("64qam", 6, 3, _KMOD["64qam"]),
}


def get_modulation(name: str) -> Modulation:
    """Look up a modulation by name, raising with the valid set."""
    try:
        return MODULATIONS[name]
    except KeyError:
        raise KeyError(f"unknown modulation {name!r}; valid: {sorted(MODULATIONS)}") from None
