"""PLCP layer: SIGNAL field and DATA-field bit pipeline (clause 18.3.4/5).

The SIGNAL field is one BPSK rate-1/2 OFDM symbol carrying RATE (4 bits),
a reserved bit, LENGTH (12 bits, LSB first), an even-parity bit and six
tail zeros.  The DATA field prepends the 16-bit SERVICE field to the PSDU,
appends 6 tail zeros plus pad bits, scrambles (tail re-zeroed), encodes,
punctures and interleaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.kernels import dispatch as _kernels
from repro.phy.convcode import conv_encode, puncture
from repro.phy.interleaver import interleave
from repro.phy.modulation import get_modulation
from repro.phy.params import (
    RATE_TABLE,
    SERVICE_BITS,
    TAIL_BITS,
    PhyRate,
)
from repro.phy.scrambler import Scrambler
from repro.phy.viterbi import ViterbiDecoder
from repro.utils.bitops import bits_to_bytes, bytes_to_bits

__all__ = [
    "SignalField",
    "encode_signal_bits",
    "decode_signal_bits",
    "build_data_bits",
    "encode_data_field",
    "decode_data_field",
    "decode_data_fields",
    "signal_llrs_to_fields",
    "DecodedData",
    "DEFAULT_SCRAMBLER_STATE",
]

DEFAULT_SCRAMBLER_STATE = 0b1011101
_SIGNAL_BITS = 24
_MAX_LENGTH = (1 << 12) - 1

#: Shared decoder instance — stateless across calls (the trellis tables
#: are a process singleton), so SIGNAL and DATA decoding reuse it instead
#: of constructing a fresh ``ViterbiDecoder`` per packet.
_VITERBI = ViterbiDecoder(terminated=True)


@dataclass(frozen=True)
class SignalField:
    """Decoded contents of the PLCP SIGNAL symbol."""

    rate: PhyRate
    length: int  # PSDU length in octets

    @property
    def n_data_symbols(self) -> int:
        return self.rate.n_symbols_for(self.length)


def encode_signal_bits(rate: PhyRate, length: int) -> np.ndarray:
    """Build the 24 uncoded SIGNAL bits."""
    if not 0 < length <= _MAX_LENGTH:
        raise ValueError(f"PSDU length {length} out of range 1..{_MAX_LENGTH}")
    bits = np.zeros(_SIGNAL_BITS, dtype=np.uint8)
    bits[0:4] = rate.signal_rate_bits
    # bit 4 reserved (0); bits 5..16 LENGTH, LSB first.
    for i in range(12):
        bits[5 + i] = (length >> i) & 1
    bits[17] = bits[:17].sum() % 2  # even parity over bits 0..16
    # bits 18..23 tail zeros
    return bits


def decode_signal_bits(bits: np.ndarray) -> Optional[SignalField]:
    """Parse 24 SIGNAL bits; returns None on parity/RATE failure."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size != _SIGNAL_BITS:
        raise ValueError(f"SIGNAL field must be 24 bits, got {bits.size}")
    if bits[:18].sum() % 2 != 0:
        return None
    rate_bits = tuple(int(b) for b in bits[0:4])
    rate = next((r for r in RATE_TABLE.values() if r.signal_rate_bits == rate_bits), None)
    if rate is None:
        return None
    length = int(sum(int(bits[5 + i]) << i for i in range(12)))
    if length == 0:
        return None
    return SignalField(rate=rate, length=length)


def _signal_rate() -> PhyRate:
    return RATE_TABLE[6]  # SIGNAL is always BPSK rate 1/2


def signal_bits_to_symbols(bits: np.ndarray) -> np.ndarray:
    """Encode, interleave and BPSK-map the SIGNAL bits into 48 symbols."""
    rate = _signal_rate()
    coded = conv_encode(np.asarray(bits, dtype=np.uint8))
    interleaved = interleave(coded, rate)
    return get_modulation("bpsk").map_bits(interleaved)


def signal_llrs_to_field(llrs: np.ndarray) -> Optional[SignalField]:
    """Decode the SIGNAL symbol from its 48 per-bit LLRs."""
    return signal_llrs_to_fields(np.asarray(llrs, dtype=np.float64)[None, :])[0]


def signal_llrs_to_fields(llrs2d: np.ndarray) -> List[Optional[SignalField]]:
    """Decode a ``(B, 48)`` batch of SIGNAL symbols in one pass.

    The single-packet :func:`signal_llrs_to_field` is this function at
    ``B = 1``, so batched and per-packet decoding are bit-for-bit equal.
    (SIGNAL is BPSK rate 1/2 — no puncturing — so the composed RX gather
    reduces to the plain deinterleaver permutation.)
    """
    rate = _signal_rate()
    llrs2d = np.atleast_2d(np.asarray(llrs2d, dtype=np.float64))
    deinterleaved = _kernels.deinterleave_rx(
        llrs2d, rate.n_cbps, rate.n_bpsc, rate.code_rate
    )
    bits_rows = _VITERBI.decode_many(list(deinterleaved))
    return [decode_signal_bits(bits) for bits in bits_rows]


def build_data_bits(
    psdu: bytes, rate: PhyRate, scrambler_state: int = DEFAULT_SCRAMBLER_STATE
) -> np.ndarray:
    """SERVICE + PSDU + tail + pad, scrambled with the tail re-zeroed."""
    psdu_bits = bytes_to_bits(psdu)
    n_payload = SERVICE_BITS + psdu_bits.size + TAIL_BITS
    n_symbols = -(-n_payload // rate.n_dbps)
    n_total = n_symbols * rate.n_dbps
    bits = np.zeros(n_total, dtype=np.uint8)
    bits[SERVICE_BITS : SERVICE_BITS + psdu_bits.size] = psdu_bits
    scrambled = Scrambler(scrambler_state).scramble(bits)
    # The tail must be zero *after* scrambling so the encoder flushes to
    # state 0.  We zero the pad bits too (the standard scrambles them)
    # so the trellis stays terminated through the pad — receivers ignore
    # pad contents either way, and this keeps traceback exact at the end
    # of the PSDU.
    tail_start = SERVICE_BITS + psdu_bits.size
    scrambled[tail_start:] = 0
    return scrambled


def encode_data_field(
    psdu: bytes, rate: PhyRate, scrambler_state: int = DEFAULT_SCRAMBLER_STATE
) -> np.ndarray:
    """Full TX bit pipeline: scramble, encode, puncture, interleave.

    Returns the interleaved coded bit stream, one ``n_cbps`` block per OFDM
    data symbol, ready for constellation mapping.
    """
    scrambled = build_data_bits(psdu, rate, scrambler_state)
    coded = puncture(conv_encode(scrambled), rate.code_rate)
    return interleave(coded, rate)


@dataclass(frozen=True)
class DecodedData:
    """Output of the RX bit pipeline.

    ``scrambled_bits`` (the Viterbi output before descrambling) lets the
    CoS receiver re-encode the packet and reconstruct the ideal
    constellation points for EVM feedback without knowing the
    transmitter's scrambler seed.
    """

    psdu: bytes
    descrambled_bits: np.ndarray
    scrambled_bits: np.ndarray


def decode_data_field(llrs: np.ndarray, rate: PhyRate, n_octets: int) -> DecodedData:
    """Full RX bit pipeline: deinterleave, depuncture, Viterbi, descramble.

    Parameters
    ----------
    llrs:
        Per transmitted coded bit LLRs (positive ⇒ 0), ``n_cbps`` per
        symbol.  Erased positions must already be zeroed.
    rate, n_octets:
        From the decoded SIGNAL field.
    """
    llrs = np.asarray(llrs, dtype=np.float64)
    return decode_data_fields(llrs[None, :], rate, n_octets)[0]


def decode_data_fields(
    llrs2d: np.ndarray, rate: PhyRate, n_octets: int
) -> List[DecodedData]:
    """Batched RX bit pipeline over a ``(B, n_symbols * n_cbps)`` block.

    Deinterleaving + depuncturing run as one precomputed gather
    (:func:`repro.kernels.deinterleave_rx`) and all codewords go through
    the backend's batch Viterbi in a single call; descrambling is a cheap
    per-row epilogue.  The single-packet :func:`decode_data_field` is this
    function at ``B = 1``, which is what makes batched and per-packet
    receive paths bit-for-bit identical.
    """
    llrs2d = np.atleast_2d(np.asarray(llrs2d, dtype=np.float64))
    full = _kernels.deinterleave_rx(
        llrs2d, rate.n_cbps, rate.n_bpsc, rate.code_rate, fill=0.0
    )
    decoded_rows = _VITERBI.decode_many(list(full))
    out: List[DecodedData] = []
    for decoded in decoded_rows:
        # Descramble: the first 7 SERVICE bits were zero before scrambling,
        # so they reveal the transmitter's scrambler state.  A badly
        # corrupted frame may present an unreachable (all-zero) pattern;
        # the frame is lost either way, so descrambling is skipped and the
        # CRC rejects it.
        try:
            state = Scrambler.recover_state(decoded[:7])
            descrambled = Scrambler(state).scramble(decoded)
        except ValueError:
            descrambled = decoded
        psdu_bits = descrambled[SERVICE_BITS : SERVICE_BITS + 8 * n_octets]
        out.append(
            DecodedData(
                psdu=bits_to_bytes(psdu_bits),
                descrambled_bits=descrambled,
                scrambled_bits=decoded,
            )
        )
    return out
