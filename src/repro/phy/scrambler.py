"""802.11a data scrambler (clause 18.3.5.5).

A 7-bit LFSR with polynomial S(x) = x^7 + x^4 + 1 generates a length-127
pseudo-random sequence that is XORed onto the data bits.  The same block
descrambles (XOR is an involution).  The sequence generated from the
all-ones state also serves as the *pilot polarity sequence* p_n used by
the OFDM modulator.

The per-bit register walk lives in :mod:`repro.kernels.scramble`; because
the LFSR is maximal-length, every sequence is a tiling of a cached 127-bit
period, so scrambling is a single vectorized XOR.  The original bit-by-bit
walk is kept as :func:`scrambler_sequence_reference` — the test oracle the
vectorized path is checked against.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.scramble import (
    prbs_sequence,
    prbs_sequence_reference,
    prbs_state_table,
)

__all__ = [
    "Scrambler",
    "scrambler_sequence",
    "scrambler_sequence_reference",
    "pilot_polarity_sequence",
]


def scrambler_sequence(n: int, state: int = 0b1111111) -> np.ndarray:
    """Generate ``n`` bits of the LFSR sequence starting from ``state``.

    ``state`` packs the shift register x1..x7 with x7 in the MSB; the
    output bit of each step is x7 XOR x4 and is also fed back into x1.
    Served from the cached 127-bit period (the LFSR is maximal-length).
    """
    return prbs_sequence(n, state)


def scrambler_sequence_reference(n: int, state: int = 0b1111111) -> np.ndarray:
    """The original bit-by-bit LFSR walk — kept as the test oracle."""
    return prbs_sequence_reference(n, state)


class Scrambler:
    """Stateless-per-call scrambler/descrambler.

    The 802.11a transmitter initialises the register to a pseudo-random
    non-zero state for every PPDU; the receiver recovers it from the first
    7 (zero) SERVICE bits.  For a simulator we keep the classic default
    all-ones seed but accept any non-zero state.
    """

    def __init__(self, state: int = 0b1011101):
        if not 0 < state < 128:
            raise ValueError("scrambler state must be a non-zero 7-bit value")
        self.state = state

    def scramble(self, bits: np.ndarray) -> np.ndarray:
        """XOR ``bits`` with the LFSR stream (also descrambles)."""
        bits = np.asarray(bits, dtype=np.uint8)
        seq = scrambler_sequence(bits.size, self.state)
        return bits ^ seq

    @staticmethod
    def recover_state(scrambled_service_prefix: np.ndarray) -> int:
        """Recover the initial state from the first 7 scrambled SERVICE bits.

        The SERVICE field starts with 7 zero bits, so the scrambled bits
        *are* the LFSR output; 7 consecutive outputs determine the state.
        One vectorized match against the precomputed 127x7 state table
        replaces the old per-state brute-force sequence builds.
        """
        bits = np.asarray(scrambled_service_prefix, dtype=np.uint8)
        if bits.size < 7:
            raise ValueError("need at least 7 scrambled service bits")
        matches = np.all(prbs_state_table() == bits[:7], axis=1)
        hit = np.flatnonzero(matches)
        if hit.size == 0:
            raise ValueError("no scrambler state matches the service bits")
        return int(hit[0]) + 1


def pilot_polarity_sequence(n_symbols: int) -> np.ndarray:
    """Pilot polarity p_n for ``n_symbols`` OFDM symbols as ±1 floats.

    Clause 18.3.5.10: p_n is the cyclic extension of the 127-bit scrambler
    sequence seeded with all ones, mapped 0 -> +1 and 1 -> -1.
    """
    seq = scrambler_sequence(n_symbols, 0b1111111)
    return 1.0 - 2.0 * seq.astype(np.float64)
