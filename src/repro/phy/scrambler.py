"""802.11a data scrambler (clause 18.3.5.5).

A 7-bit LFSR with polynomial S(x) = x^7 + x^4 + 1 generates a length-127
pseudo-random sequence that is XORed onto the data bits.  The same block
descrambles (XOR is an involution).  The sequence generated from the
all-ones state also serves as the *pilot polarity sequence* p_n used by
the OFDM modulator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Scrambler", "scrambler_sequence", "pilot_polarity_sequence"]


def scrambler_sequence(n: int, state: int = 0b1111111) -> np.ndarray:
    """Generate ``n`` bits of the LFSR sequence starting from ``state``.

    ``state`` packs the shift register x1..x7 with x7 in the MSB; the
    output bit of each step is x7 XOR x4 and is also fed back into x1.
    """
    if not 0 < state < 128:
        raise ValueError("scrambler state must be a non-zero 7-bit value")
    out = np.empty(n, dtype=np.uint8)
    for i in range(n):
        x7 = (state >> 6) & 1
        x4 = (state >> 3) & 1
        bit = x7 ^ x4
        state = ((state << 1) & 0b1111111) | bit
        out[i] = bit
    return out


class Scrambler:
    """Stateless-per-call scrambler/descrambler.

    The 802.11a transmitter initialises the register to a pseudo-random
    non-zero state for every PPDU; the receiver recovers it from the first
    7 (zero) SERVICE bits.  For a simulator we keep the classic default
    all-ones seed but accept any non-zero state.
    """

    def __init__(self, state: int = 0b1011101):
        if not 0 < state < 128:
            raise ValueError("scrambler state must be a non-zero 7-bit value")
        self.state = state

    def scramble(self, bits: np.ndarray) -> np.ndarray:
        """XOR ``bits`` with the LFSR stream (also descrambles)."""
        bits = np.asarray(bits, dtype=np.uint8)
        seq = scrambler_sequence(bits.size, self.state)
        return bits ^ seq

    @staticmethod
    def recover_state(scrambled_service_prefix: np.ndarray) -> int:
        """Recover the initial state from the first 7 scrambled SERVICE bits.

        The SERVICE field starts with 7 zero bits, so the scrambled bits
        *are* the LFSR output; running the recursion backwards is
        unnecessary because 7 consecutive outputs determine the state.
        """
        bits = np.asarray(scrambled_service_prefix, dtype=np.uint8)
        if bits.size < 7:
            raise ValueError("need at least 7 scrambled service bits")
        # Outputs o0..o6 with register x1..x7: o_i = x7 ^ x4 and the state
        # shifts left absorbing o_i.  Brute-force over the 127 states is
        # simplest and exact.
        for state in range(1, 128):
            if np.array_equal(scrambler_sequence(7, state), bits[:7]):
                return state
        raise ValueError("no scrambler state matches the service bits")


def pilot_polarity_sequence(n_symbols: int) -> np.ndarray:
    """Pilot polarity p_n for ``n_symbols`` OFDM symbols as ±1 floats.

    Clause 18.3.5.10: p_n is the cyclic extension of the 127-bit scrambler
    sequence seeded with all ones, mapped 0 -> +1 and 1 -> -1.
    """
    base = scrambler_sequence(127, 0b1111111)
    reps = -(-n_symbols // 127)
    seq = np.tile(base, reps)[:n_symbols]
    return 1.0 - 2.0 * seq.astype(np.float64)
