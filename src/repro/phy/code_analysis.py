"""Analytical properties of the 802.11a convolutional code.

CoS's capacity argument is a budget argument: the code corrects up to
roughly d_free/2 hard errors (more with soft decisions) per constraint
span, and whatever fading does not consume is available for silences.
This module computes those analytical quantities exactly:

* :func:`free_distance` — minimum Hamming weight of any error event,
  honouring the puncturing pattern (10 / 6 / 5 for rates 1/2, 2/3, 3/4 —
  the classic values for K=7 g=(133,171));
* :func:`union_bound_ber` — the first-event union bound on post-decoding
  BER for hard-decision decoding over a BSC, a pessimistic but shape-true
  reference curve for the waterfall experiment;
* :func:`erasure_budget` — the guaranteed number of *erasures* a
  (punctured) code span can absorb (d_free − 1), the hard floor under
  Fig. 9's measured budgets.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Dict, List, Tuple

import numpy as np
from scipy import special

from repro.phy.convcode import PUNCTURE_PATTERNS
from repro.phy.trellis import N_STATES, shared_trellis

__all__ = ["free_distance", "erasure_budget", "union_bound_ber"]


def _pair_weights(pair_idx: int, mask: Tuple[bool, bool]) -> int:
    """Hamming weight of the transmitted part of an output pair."""
    a = (pair_idx >> 1) & 1
    b = pair_idx & 1
    return a * mask[0] + b * mask[1]


def free_distance(code_rate: Fraction) -> int:
    """Free distance of the (punctured) K=7 code, by Dijkstra over the
    trellis product with the puncture-pattern phase.

    An error event leaves the all-zero state and re-merges with it; its
    weight counts only bits the puncturer actually transmits, minimised
    over the pattern phase at which the event starts.
    """
    pattern = PUNCTURE_PATTERNS[code_rate]
    period = pattern.shape[0]
    trellis = shared_trellis()

    best = np.full((N_STATES, period), np.inf)
    heap: List[Tuple[float, int, int]] = []

    # Seed: diverge from state 0 with input 1, at every pattern phase.
    for phase in range(period):
        mask = tuple(bool(x) for x in pattern[phase])
        ns = int(trellis.next_state[0, 1])
        w = _pair_weights(int(trellis.output_pair[0, 1]), mask)
        nxt = (phase + 1) % period
        if w < best[ns, nxt]:
            best[ns, nxt] = w
            heapq.heappush(heap, (float(w), ns, nxt))

    result = np.inf
    while heap:
        weight, state, phase = heapq.heappop(heap)
        if weight > best[state, phase]:
            continue
        if weight >= result:
            continue
        mask = tuple(bool(x) for x in pattern[phase])
        nxt = (phase + 1) % period
        for bit in (0, 1):
            ns = int(trellis.next_state[state, bit])
            w = weight + _pair_weights(int(trellis.output_pair[state, bit]), mask)
            if ns == 0:
                if bit == 0 and w < result:
                    result = w
                continue  # remerged (bit 1 into state 0 is impossible anyway)
            if w < best[ns, nxt]:
                best[ns, nxt] = w
                heapq.heappush(heap, (float(w), ns, nxt))
    return int(result)


def erasure_budget(code_rate: Fraction) -> int:
    """Guaranteed correctable erasures per error event span: d_free − 1."""
    return free_distance(code_rate) - 1


# First terms of the weight spectrum of the rate-1/2 K=7 (133,171) code:
# (distance d, total information-bit weight B_d), standard published values.
_SPECTRUM_HALF: Dict[int, int] = {10: 36, 12: 211, 14: 1404, 16: 11633}


def union_bound_ber(snr_per_bit_db: float, code_rate: Fraction = Fraction(1, 2)) -> float:
    """First-event union bound on hard-decision post-decoding BER (BSC).

    Only tabulated for the mother rate 1/2 (the punctured spectra are not
    tabulated here); used as the analytic reference in the waterfall
    experiment.  The channel is BPSK over AWGN with hard decisions:
    crossover p = Q(sqrt(2 R Eb/N0)).
    """
    if code_rate != Fraction(1, 2):
        raise ValueError("union bound tabulated for rate 1/2 only")
    ebn0 = 10.0 ** (snr_per_bit_db / 10.0)
    p = 0.5 * special.erfc(np.sqrt(float(code_rate) * ebn0))
    p = min(max(p, 1e-300), 0.5)
    total = 0.0
    for d, b_d in _SPECTRUM_HALF.items():
        # P2(d) for even d includes the tie term; use the standard form.
        ks = np.arange((d // 2) + 1, d + 1)
        p2 = np.sum(special.comb(d, ks) * p**ks * (1 - p) ** (d - ks))
        if d % 2 == 0:
            k = d // 2
            p2 += 0.5 * special.comb(d, k) * p**k * (1 - p) ** (d - k)
        total += b_d * p2
    return float(min(total, 0.5))
