"""PRR surrogate tables: the real PHY, measured once, replayed for free.

``repro.net`` decides frame fates from SINR-keyed curves.  Its default
:class:`~repro.net.sinr.SigmoidErrorModel` is an *analytic* stand-in;
``cos_fidelity="phy"`` runs the full OFDM/Viterbi stack per SINR point —
faithful but far too slow for hundreds of nodes.  This module closes the
gap: it sweeps the **real** PHY over an SINR × rate grid (through the
batched receive path, via :func:`repro.engine.run_sweep`), fits a
monotone PRR curve per rate, and serialises the result as a versioned
JSON table keyed by a hash of the measurement spec.  The network layer
(:class:`repro.net.sinr.SinrModel`, ``cos_fidelity="surrogate"``) then
replays measured-PHY behaviour at table-lookup cost.

Two determinism anchors make the surrogate testable against the live
PHY:

* PRR points are measured by :func:`measure_prr_point`, a pure function
  of the spec fields — re-measuring any grid node reproduces the stored
  raw value bit-for-bit.
* The CoS accuracy curve is sampled at integer dB with **exactly** the
  semantics of :func:`repro.net.control.measured_cos_delivery_prob`
  (same position, seed, packet count, payload), so on grid nodes the
  surrogate and ``cos_fidelity="phy"`` agree to the last bit.

Build via :func:`build_surrogate_table` or ``repro net tables build``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.phy.params import RATE_TABLE

__all__ = [
    "TABLE_VERSION",
    "SurrogateSpec",
    "SurrogateTable",
    "monotone_fit",
    "measure_prr_point",
    "measure_cos_point",
    "build_surrogate_table",
    "default_table_path",
    "load_default_table",
    "profile_spec",
    "profile_table_path",
]

TABLE_VERSION = 1

#: Environment override for the default table location.
_TABLE_ENV = "REPRO_SURROGATE_TABLE"

#: The committed default table (built by ``repro net tables build``).
_DEFAULT_TABLE = Path(__file__).resolve().parent / "tables" / "surrogate_default.json"


@dataclass(frozen=True)
class SurrogateSpec:
    """Everything that determines a surrogate measurement, and nothing else.

    The spec is hashed (canonical JSON, sha256) into the table key; two
    tables with equal hashes were measured identically.  ``cos_position``
    / ``cos_seed`` / ``cos_n_packets`` deliberately mirror the constants
    of :func:`repro.net.control.measured_cos_delivery_prob` so the
    default spec's CoS curve is bit-compatible with ``cos_fidelity="phy"``.
    """

    position: str = "A"
    channel_seeds: Tuple[int, ...] = (0, 1, 2, 3)
    n_packets: int = 50  # per (rate, SINR, seed) PRR probe
    payload_octets: int = 256
    sinr_min_db: float = -2.0
    sinr_max_db: float = 30.0
    sinr_step_db: float = 2.0
    rates_mbps: Tuple[int, ...] = field(
        default_factory=lambda: tuple(sorted(RATE_TABLE))
    )
    cos_position: str = "A"
    cos_seed: int = 0
    cos_n_packets: int = 12

    def sinr_grid_db(self) -> List[float]:
        n = int(round((self.sinr_max_db - self.sinr_min_db) / self.sinr_step_db))
        return [self.sinr_min_db + i * self.sinr_step_db for i in range(n + 1)]

    def cos_grid_db(self) -> List[int]:
        """Integer-dB grid — the caching key of the phy fidelity mode."""
        return list(
            range(int(round(self.sinr_min_db)), int(round(self.sinr_max_db)) + 1)
        )

    def canonical(self) -> Dict:
        return asdict(self)

    def spec_hash(self) -> str:
        text = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:12]


def monotone_fit(values: np.ndarray) -> np.ndarray:
    """Isotonic (non-decreasing) least-squares fit via pool-adjacent-violators.

    PRR is physically non-decreasing in SINR; Monte-Carlo noise is not.
    PAVA pools adjacent violating points to their mean, which both
    restores monotonicity and keeps every fitted value inside the spread
    of the raw points it pools — the property behind the build-time
    ``max |fit - raw|`` check.
    """
    y = np.asarray(values, dtype=np.float64)
    # Blocks of (mean, weight), merged while out of order.
    means: List[float] = []
    weights: List[float] = []
    for value in y:
        means.append(float(value))
        weights.append(1.0)
        while len(means) > 1 and means[-2] > means[-1]:
            w = weights[-2] + weights[-1]
            m = (means[-2] * weights[-2] + means[-1] * weights[-1]) / w
            means[-2:] = [m]
            weights[-2:] = [w]
    out = np.empty_like(y)
    i = 0
    for m, w in zip(means, weights):
        out[i : i + int(w)] = m
        i += int(w)
    return out


# ---------------------------------------------------------------------------
# Measurement primitives (pure in their arguments — re-runnable anywhere)
# ---------------------------------------------------------------------------


def measure_prr_point(
    position: str,
    snr_db: float,
    rate_mbps: int,
    n_packets: int,
    payload_octets: int,
    channel_seed: int,
) -> float:
    """PRR of the real PHY at one (SINR, rate, seed) point, batched.

    Deterministic in its arguments: the channel, transmitter and
    receiver draw from fixed seeds, and the batched receive path is
    bit-for-bit equal to the looped one.
    """
    from repro.channel import IndoorChannel
    from repro.cos.link import measure_operating_point

    channel = IndoorChannel.position(
        position, snr_db=float(snr_db), seed=int(channel_seed)
    )
    point = measure_operating_point(
        channel,
        RATE_TABLE[int(rate_mbps)],
        int(n_packets),
        payload=bytes(int(payload_octets)),
    )
    return point.prr


def measure_cos_point(
    position: str, snr_db: int, seed: int, n_packets: int
) -> float:
    """Closed-loop CoS message accuracy at one integer-dB point.

    This is, line for line, the measurement inside
    :func:`repro.net.control.measured_cos_delivery_prob` — with the
    default :class:`SurrogateSpec` the stored curve therefore replays
    the phy fidelity mode exactly on its own caching grid.
    """
    from repro.channel import IndoorChannel
    from repro.cos import CosLink

    channel = IndoorChannel.position(
        position, snr_db=float(int(snr_db)), seed=int(seed)
    )
    stats = CosLink(channel=channel).run(n_packets=int(n_packets), payload=bytes(256))
    return float(stats.message_accuracy)


def _prr_trial(spec) -> float:
    """Engine trial: one PRR grid point (module-level: picklable)."""
    return measure_prr_point(
        spec["position"],
        spec["snr_db"],
        spec["rate_mbps"],
        spec["n_packets"],
        spec["payload_octets"],
        spec["channel_seed"],
    )


def _cos_trial(spec) -> float:
    """Engine trial: one CoS accuracy grid point (module-level: picklable)."""
    return measure_cos_point(
        spec["position"], spec["snr_db"], spec["seed"], spec["n_packets"]
    )


# ---------------------------------------------------------------------------
# The table
# ---------------------------------------------------------------------------


@dataclass
class SurrogateTable:
    """A measured, monotone-fitted PRR/CoS surrogate of the real PHY."""

    spec: SurrogateSpec
    spec_hash: str
    sinr_grid_db: np.ndarray
    prr_raw: Dict[int, np.ndarray]  # rate Mbps -> raw measured PRR
    prr_fit: Dict[int, np.ndarray]  # rate Mbps -> isotonic fit
    cos_grid_db: np.ndarray  # integer dB
    cos_accuracy: np.ndarray
    version: int = TABLE_VERSION

    def prr(self, sinr_db: float, rate_mbps: int) -> float:
        """Monotone-fitted PRR, linearly interpolated, clamped at the ends."""
        try:
            curve = self.prr_fit[int(rate_mbps)]
        except KeyError:
            raise KeyError(
                f"no surrogate curve for {rate_mbps} Mbps; "
                f"known: {sorted(self.prr_fit)}"
            ) from None
        return float(np.interp(float(sinr_db), self.sinr_grid_db, curve))

    def cos_delivery_prob(self, sinr_db: float) -> float:
        """Per-message CoS accuracy at the carrier's SINR.

        Rounds to integer dB and clamps to the measured range — the same
        key discretisation ``measured_cos_delivery_prob`` caches by, so
        inside the grid this *is* the phy fidelity mode's value.
        """
        key = int(round(float(sinr_db)))
        lo = int(self.cos_grid_db[0])
        hi = int(self.cos_grid_db[-1])
        key = min(max(key, lo), hi)
        return float(self.cos_accuracy[key - lo])

    def max_fit_error(self) -> float:
        """Largest |fit - raw| over every rate and grid node."""
        return max(
            float(np.max(np.abs(self.prr_fit[r] - self.prr_raw[r])))
            for r in self.prr_raw
        )

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "spec": self.spec.canonical(),
            "spec_hash": self.spec_hash,
            "sinr_grid_db": [float(v) for v in self.sinr_grid_db],
            "rates": {
                str(r): {
                    "prr_raw": [float(v) for v in self.prr_raw[r]],
                    "prr_fit": [float(v) for v in self.prr_fit[r]],
                }
                for r in sorted(self.prr_raw)
            },
            "cos_grid_db": [int(v) for v in self.cos_grid_db],
            "cos_accuracy": [float(v) for v in self.cos_accuracy],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SurrogateTable":
        version = int(data.get("version", -1))
        if version != TABLE_VERSION:
            raise ValueError(
                f"surrogate table version {version} unsupported "
                f"(expected {TABLE_VERSION}); rebuild with "
                "'repro net tables build'"
            )
        spec_dict = dict(data["spec"])
        for key in ("channel_seeds", "rates_mbps"):
            spec_dict[key] = tuple(spec_dict[key])
        spec = SurrogateSpec(**spec_dict)
        stored_hash = str(data["spec_hash"])
        if stored_hash != spec.spec_hash():
            raise ValueError(
                f"surrogate table hash mismatch: stored {stored_hash}, "
                f"spec hashes to {spec.spec_hash()} — file corrupt or "
                "hand-edited"
            )
        rates = {
            int(r): entry for r, entry in data["rates"].items()
        }
        return cls(
            spec=spec,
            spec_hash=stored_hash,
            sinr_grid_db=np.asarray(data["sinr_grid_db"], dtype=np.float64),
            prr_raw={
                r: np.asarray(e["prr_raw"], dtype=np.float64)
                for r, e in rates.items()
            },
            prr_fit={
                r: np.asarray(e["prr_fit"], dtype=np.float64)
                for r, e in rates.items()
            },
            cos_grid_db=np.asarray(data["cos_grid_db"], dtype=np.intp),
            cos_accuracy=np.asarray(data["cos_accuracy"], dtype=np.float64),
            version=version,
        )

    def save(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "SurrogateTable":
        return cls.from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Building
# ---------------------------------------------------------------------------


def build_surrogate_table(
    spec: Optional[SurrogateSpec] = None,
    *,
    workers: Optional[int] = None,
) -> SurrogateTable:
    """Sweep the real PHY over the spec's grid and fit the surrogate.

    PRR points run through :func:`repro.engine.run_sweep` (parallel-safe:
    every point is pure in its params), each probing the channel with the
    batched receive path; seeds average into one raw curve per rate,
    which PAVA then makes monotone.  The CoS accuracy curve is measured
    per integer dB with the phy-fidelity semantics.
    """
    from repro.engine import run_sweep
    from repro.experiments.common import init_phy_worker

    spec = spec or SurrogateSpec()
    grid = spec.sinr_grid_db()

    params = [
        {
            "position": spec.position,
            "snr_db": snr,
            "rate_mbps": rate,
            "n_packets": spec.n_packets,
            "payload_octets": spec.payload_octets,
            "channel_seed": seed,
        }
        for rate in spec.rates_mbps
        for snr in grid
        for seed in spec.channel_seeds
    ]
    prrs = run_sweep(
        params, _prr_trial, seed=0, workers=workers,
        init=init_phy_worker, label="surrogate.prr",
    )
    prrs = np.asarray(prrs, dtype=np.float64).reshape(
        len(spec.rates_mbps), len(grid), len(spec.channel_seeds)
    )
    raw = {
        rate: prrs[i].mean(axis=1) for i, rate in enumerate(spec.rates_mbps)
    }
    fit = {rate: monotone_fit(curve) for rate, curve in raw.items()}

    cos_grid = spec.cos_grid_db()
    cos_params = [
        {
            "position": spec.cos_position,
            "snr_db": snr,
            "seed": spec.cos_seed,
            "n_packets": spec.cos_n_packets,
        }
        for snr in cos_grid
    ]
    cos_accuracy = run_sweep(
        cos_params, _cos_trial, seed=0, workers=workers,
        init=init_phy_worker, label="surrogate.cos",
    )

    return SurrogateTable(
        spec=spec,
        spec_hash=spec.spec_hash(),
        sinr_grid_db=np.asarray(grid, dtype=np.float64),
        prr_raw=raw,
        prr_fit=fit,
        cos_grid_db=np.asarray(cos_grid, dtype=np.intp),
        cos_accuracy=np.asarray(cos_accuracy, dtype=np.float64),
    )


# ---------------------------------------------------------------------------
# Default-table resolution
# ---------------------------------------------------------------------------


def default_table_path() -> Path:
    """The table ``cos_fidelity="surrogate"`` loads: env override or the
    committed default."""
    override = os.environ.get(_TABLE_ENV)
    if override:
        return Path(override)
    return _DEFAULT_TABLE


def load_default_table() -> SurrogateTable:
    path = default_table_path()
    if not path.exists():
        raise FileNotFoundError(
            f"no surrogate table at {path}; build one with "
            f"'repro net tables build' (or point {_TABLE_ENV} at one)"
        )
    return SurrogateTable.load(path)


def profile_spec(profile: str) -> SurrogateSpec:
    """The default-shaped measurement spec for a channel severity profile.

    Profile ``"A"`` *is* the default spec; ``"B"``/``"C"`` sweep the
    denser multipath profiles (both the data-PRR and the CoS-accuracy
    probes move to that position, so the whole table describes one
    environment).  Grids, seeds, and packet counts stay identical, so
    profile tables differ only in what was measured — never in shape.
    """
    if profile not in ("A", "B", "C"):
        raise ValueError(f"unknown channel profile {profile!r}; known: A, B, C")
    return SurrogateSpec(position=profile, cos_position=profile)


def profile_table_path(profile: str) -> Path:
    """Where a profile's table lives.

    ``"A"`` resolves through :func:`default_table_path` (committed
    default or the ``REPRO_SURROGATE_TABLE`` override); ``"B"``/``"C"``
    sit next to it as ``surrogate_profile_<P>.json``.  Activating a
    profile table is pointing ``REPRO_SURROGATE_TABLE`` at it — which
    also flows its content hash into the result-store salt
    (:func:`repro.engine.store.store_salt`), so cached trials can never
    replay across profiles.
    """
    if profile not in ("A", "B", "C"):
        raise ValueError(f"unknown channel profile {profile!r}; known: A, B, C")
    if profile == "A":
        return default_table_path()
    return _DEFAULT_TABLE.parent / f"surrogate_profile_{profile}.json"
