"""OFDM (de)modulation: subcarrier mapping, IFFT/FFT, cyclic prefix, pilots.

A *frequency grid* is an ``(n_symbols, 64)`` complex array indexed by FFT
bin (logical subcarrier k maps to bin k mod 64).  The silence symbols of
CoS are realised exactly as the paper describes: the power-controller zeroes
selected data-subcarrier entries of the grid before the IFFT (§III-B).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.phy.params import (
    CP_LEN,
    DATA_SUBCARRIER_INDICES,
    N_FFT,
    PILOT_PATTERN,
    PILOT_SUBCARRIER_INDICES,
    SYMBOL_SAMPLES,
)
from repro.phy.scrambler import pilot_polarity_sequence

__all__ = [
    "DATA_BINS",
    "PILOT_BINS",
    "TIME_SCALE",
    "map_to_grid",
    "extract_data",
    "extract_pilots",
    "grid_to_time",
    "time_to_grid",
    "subcarrier_noise_variance",
]

# FFT-bin indices (0..63) of the data and pilot subcarriers, in ascending
# logical-frequency order (-26 .. +26).
DATA_BINS = np.array([k % N_FFT for k in DATA_SUBCARRIER_INDICES])
PILOT_BINS = np.array([k % N_FFT for k in PILOT_SUBCARRIER_INDICES])

# IFFT output is scaled so a fully-populated symbol has unit average
# time-sample power: |x|^2 = 52 / 64^2 before scaling.
N_USED = 52
TIME_SCALE = N_FFT / np.sqrt(N_USED)


def map_to_grid(data_symbols: np.ndarray, symbol_offset: int = 0) -> np.ndarray:
    """Place data symbols and pilots into frequency grids.

    Parameters
    ----------
    data_symbols:
        ``(n_symbols, 48)`` complex data-subcarrier values in ascending
        subcarrier order.
    symbol_offset:
        Index into the pilot polarity sequence of the first symbol (the
        SIGNAL symbol uses offset 0, the first DATA symbol offset 1).
    """
    data_symbols = np.atleast_2d(np.asarray(data_symbols, dtype=np.complex128))
    n_symbols = data_symbols.shape[0]
    if data_symbols.shape[1] != len(DATA_BINS):
        raise ValueError(f"expected 48 data subcarriers, got {data_symbols.shape[1]}")
    grid = np.zeros((n_symbols, N_FFT), dtype=np.complex128)
    grid[:, DATA_BINS] = data_symbols
    polarity = pilot_polarity_sequence(symbol_offset + n_symbols)[symbol_offset:]
    grid[:, PILOT_BINS] = polarity[:, None] * PILOT_PATTERN[None, :]
    return grid


def extract_data(grid: np.ndarray) -> np.ndarray:
    """Pull the 48 data-subcarrier values out of frequency grids."""
    return np.atleast_2d(grid)[:, DATA_BINS]


def extract_pilots(grid: np.ndarray, symbol_offset: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Return (received pilot values, transmitted pilot values).

    Both arrays have shape ``(n_symbols, 4)``; the transmitted values embed
    the polarity sequence so callers can estimate phase and noise directly.
    """
    grid = np.atleast_2d(grid)
    n_symbols = grid.shape[0]
    received = grid[:, PILOT_BINS]
    polarity = pilot_polarity_sequence(symbol_offset + n_symbols)[symbol_offset:]
    sent = polarity[:, None] * PILOT_PATTERN[None, :]
    return received, sent


def grid_to_time(grid: np.ndarray) -> np.ndarray:
    """IFFT each grid row, prepend the cyclic prefix, concatenate."""
    grid = np.atleast_2d(grid)
    useful = np.fft.ifft(grid, axis=1) * TIME_SCALE
    with_cp = np.concatenate([useful[:, -CP_LEN:], useful], axis=1)
    return with_cp.reshape(-1)


def time_to_grid(samples: np.ndarray) -> np.ndarray:
    """Strip cyclic prefixes and FFT back to frequency grids.

    ``samples`` must be a whole number of 80-sample OFDM symbols aligned at
    a symbol boundary.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.size % SYMBOL_SAMPLES != 0:
        raise ValueError(
            f"{samples.size} samples is not a whole number of "
            f"{SYMBOL_SAMPLES}-sample OFDM symbols"
        )
    blocks = samples.reshape(-1, SYMBOL_SAMPLES)[:, CP_LEN:]
    return np.fft.fft(blocks, axis=1) / TIME_SCALE


def subcarrier_noise_variance(time_noise_var: float) -> float:
    """Noise variance per demodulated subcarrier given time-sample variance.

    With our IFFT scaling, the FFT at the receiver divides by
    ``TIME_SCALE``; white time-domain noise of variance v therefore appears
    on each subcarrier with variance v * 64 / TIME_SCALE^2 = v * 52 / 64.
    """
    return time_noise_var * N_USED / N_FFT
