"""802.11a block interleaver (clause 18.3.5.7).

Coded bits are interleaved per OFDM symbol (block size ``n_cbps``) by two
permutations: the first spreads adjacent coded bits across non-adjacent
subcarriers; the second alternates them between more- and less-significant
constellation bits.  Deinterleaving is the exact inverse and — crucially
for CoS — spreads the zeroed bit metrics of one silence symbol across the
codeword so the erasures look random to the Viterbi decoder.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.phy.params import PhyRate

__all__ = ["interleave", "deinterleave", "interleaver_permutation"]


@lru_cache(maxsize=None)
def _permutations(n_cbps: int, n_bpsc: int) -> Tuple[np.ndarray, np.ndarray]:
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    # First permutation: k -> i.
    i = (n_cbps // 16) * (k % 16) + k // 16
    # Second permutation: i -> j, applied to the already-permuted stream.
    ii = np.arange(n_cbps)
    j = s * (ii // s) + (ii + n_cbps - (16 * ii) // n_cbps) % s
    # Compose: transmitted position of input bit k.
    forward = np.empty(n_cbps, dtype=np.int64)
    forward[j[i]] = k
    # forward maps output position -> input index; build both directions.
    out_to_in = forward
    in_to_out = np.empty(n_cbps, dtype=np.int64)
    in_to_out[out_to_in] = np.arange(n_cbps)
    return in_to_out, out_to_in


def interleaver_permutation(rate: PhyRate) -> np.ndarray:
    """Return ``perm`` with ``out[perm[k]] = in[k]`` for one symbol block."""
    in_to_out, _ = _permutations(rate.n_cbps, rate.n_bpsc)
    return in_to_out


def _blocks(values: np.ndarray, n_cbps: int) -> np.ndarray:
    values = np.asarray(values)
    if values.size % n_cbps != 0:
        raise ValueError(
            f"stream of {values.size} values is not a whole number of "
            f"{n_cbps}-bit interleaver blocks"
        )
    return values.reshape(-1, n_cbps)


def interleave(bits: np.ndarray, rate: PhyRate) -> np.ndarray:
    """Interleave a coded bit stream symbol-block by symbol-block."""
    in_to_out, _ = _permutations(rate.n_cbps, rate.n_bpsc)
    blocks = _blocks(bits, rate.n_cbps)
    out = np.empty_like(blocks)
    out[:, in_to_out] = blocks
    return out.reshape(-1)


def deinterleave(values: np.ndarray, rate: PhyRate) -> np.ndarray:
    """Inverse of :func:`interleave`; works on bits or soft metrics."""
    in_to_out, _ = _permutations(rate.n_cbps, rate.n_bpsc)
    blocks = _blocks(values, rate.n_cbps)
    return blocks[:, in_to_out].reshape(-1)
