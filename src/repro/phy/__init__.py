"""Complete IEEE 802.11a OFDM baseband (the Sora SoftWiFi substitute).

Public surface: the rate table (:mod:`repro.phy.params`), the
:class:`~repro.phy.transmitter.Transmitter` /
:class:`~repro.phy.receiver.Receiver` pair, and the component blocks
(scrambler, convolutional code, interleaver, modulation, OFDM, preamble,
PLCP) for tests and experiments that probe individual stages.
"""

from repro.phy.params import (
    N_DATA_SUBCARRIERS,
    N_FFT,
    RATE_TABLE,
    RATES_MBPS,
    SYMBOL_DURATION_S,
    SYMBOLS_PER_SECOND,
    PhyRate,
    rate_for_mbps,
)
from repro.phy.frames import Mpdu, build_mpdu, parse_mpdu
from repro.phy.modulation import MODULATIONS, Modulation, get_modulation
from repro.phy.receiver import FrameObservation, Receiver, RxResult
from repro.phy.transmitter import Transmitter, TxFrame
from repro.phy.viterbi import ViterbiDecoder

__all__ = [
    "N_DATA_SUBCARRIERS",
    "N_FFT",
    "RATE_TABLE",
    "RATES_MBPS",
    "SYMBOL_DURATION_S",
    "SYMBOLS_PER_SECOND",
    "PhyRate",
    "rate_for_mbps",
    "Mpdu",
    "build_mpdu",
    "parse_mpdu",
    "MODULATIONS",
    "Modulation",
    "get_modulation",
    "FrameObservation",
    "Receiver",
    "RxResult",
    "Transmitter",
    "TxFrame",
    "ViterbiDecoder",
]
