"""802.11a transmitter chain with the CoS power-controller hook.

``Transmitter.transmit`` produces the full baseband PPDU waveform:
preamble, SIGNAL symbol, and DATA symbols.  A boolean ``silence_mask``
(one flag per data-subcarrier symbol) zeroes the chosen constellation
points before the IFFT — precisely how the paper implements silence
symbols "by simply feeding 0 instead of modulated data symbols" (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.trace import span
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import grid_to_time, map_to_grid
from repro.phy.params import N_DATA_SUBCARRIERS, PhyRate
from repro.phy.plcp import (
    DEFAULT_SCRAMBLER_STATE,
    encode_data_field,
    encode_signal_bits,
    signal_bits_to_symbols,
)
from repro.phy.preamble import generate_preamble

__all__ = ["TxFrame", "Transmitter"]


@dataclass(frozen=True)
class TxFrame:
    """A transmitted PPDU plus the ground truth the experiments need.

    Attributes
    ----------
    waveform:
        Complex baseband samples (preamble + SIGNAL + DATA).
    rate:
        PHY rate used for the DATA field.
    psdu:
        The MAC frame handed to the PHY.
    data_symbols:
        ``(n_symbols, 48)`` ideal constellation points *before* silencing —
        the reference for EVM and symbol-error measurements.
    coded_bits:
        Interleaved coded bit stream (the decoder-input ground truth).
    silence_mask:
        ``(n_symbols, 48)`` bool, True where a silence symbol was inserted
        (all False when CoS is idle).
    """

    waveform: np.ndarray
    rate: PhyRate
    psdu: bytes
    data_symbols: np.ndarray
    coded_bits: np.ndarray
    silence_mask: np.ndarray

    @property
    def n_data_symbols(self) -> int:
        return self.data_symbols.shape[0]


class Transmitter:
    """Stateless 802.11a modulator."""

    def __init__(self, scrambler_state: int = DEFAULT_SCRAMBLER_STATE):
        self.scrambler_state = scrambler_state

    def transmit(
        self,
        psdu: bytes,
        rate: PhyRate,
        silence_mask: Optional[np.ndarray] = None,
    ) -> TxFrame:
        """Modulate ``psdu`` at ``rate``, optionally inserting silences.

        ``silence_mask`` must be ``(n_data_symbols, 48)`` boolean; use
        :meth:`n_data_symbols_for` to size it before calling.
        """
        if not psdu:
            raise ValueError("psdu must be non-empty")
        with span("phy.tx.modulate") as sp:
            sp.set(rate_mbps=rate.mbps, psdu_bytes=len(psdu))
            return self._transmit(psdu, rate, silence_mask)

    def _transmit(
        self,
        psdu: bytes,
        rate: PhyRate,
        silence_mask: Optional[np.ndarray],
    ) -> TxFrame:
        coded_bits = encode_data_field(psdu, rate, self.scrambler_state)
        modulation = get_modulation(rate.modulation)
        data_symbols = modulation.map_bits(coded_bits).reshape(-1, N_DATA_SUBCARRIERS)
        n_symbols = data_symbols.shape[0]

        if silence_mask is None:
            silence_mask = np.zeros((n_symbols, N_DATA_SUBCARRIERS), dtype=bool)
        else:
            silence_mask = np.asarray(silence_mask, dtype=bool)
            if silence_mask.shape != data_symbols.shape:
                raise ValueError(
                    f"silence_mask shape {silence_mask.shape} != "
                    f"data grid shape {data_symbols.shape}"
                )

        sent_symbols = np.where(silence_mask, 0.0 + 0.0j, data_symbols)

        signal_symbols = signal_bits_to_symbols(
            encode_signal_bits(rate, len(psdu))
        ).reshape(1, N_DATA_SUBCARRIERS)

        signal_grid = map_to_grid(signal_symbols, symbol_offset=0)
        data_grid = map_to_grid(sent_symbols, symbol_offset=1)

        waveform = np.concatenate(
            [generate_preamble(), grid_to_time(signal_grid), grid_to_time(data_grid)]
        )
        return TxFrame(
            waveform=waveform,
            rate=rate,
            psdu=psdu,
            data_symbols=data_symbols,
            coded_bits=coded_bits,
            silence_mask=silence_mask,
        )

    @staticmethod
    def n_data_symbols_for(psdu_len: int, rate: PhyRate) -> int:
        """Data-symbol count for a PSDU of ``psdu_len`` octets at ``rate``."""
        return rate.n_symbols_for(psdu_len)
