"""Rate-1/2 K=7 convolutional encoder with 802.11a puncturing.

The industry-standard generators g0 = 133o, g1 = 171o produce two coded
bits (A then B) per input bit.  Rates 2/3 and 3/4 are obtained by
*puncturing* — deleting coded bits in a fixed periodic pattern (clause
18.3.5.6).  The deleted positions are re-inserted at the receiver as
**erasures** (zero bit metric), the same mechanism CoS uses for silence
symbols.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "CONSTRAINT_LENGTH",
    "G0_TAPS",
    "G1_TAPS",
    "PUNCTURE_PATTERNS",
    "conv_encode",
    "puncture",
    "depuncture",
    "n_coded_bits",
]

CONSTRAINT_LENGTH = 7

# Tap delays of the generator polynomials: g0 = 133o = 1011011b,
# g1 = 171o = 1111001b, with delay 0 being the current input bit.
G0_TAPS: Tuple[int, ...] = (0, 2, 3, 5, 6)
G1_TAPS: Tuple[int, ...] = (0, 1, 2, 3, 6)

# Puncture patterns over one period of (A, B) output pairs; 1 = transmit.
# Rate 3/4 sends A1 B1 A2 B3 (B2 and A3 stolen); rate 2/3 sends A1 B1 A2.
PUNCTURE_PATTERNS: Dict[Fraction, np.ndarray] = {
    Fraction(1, 2): np.array([[1, 1]], dtype=bool),
    Fraction(2, 3): np.array([[1, 1], [1, 0]], dtype=bool),
    Fraction(3, 4): np.array([[1, 1], [1, 0], [0, 1]], dtype=bool),
}


def _xor_taps(padded: np.ndarray, taps: Tuple[int, ...], n: int) -> np.ndarray:
    out = np.zeros(n, dtype=np.uint8)
    for delay in taps:
        out ^= padded[CONSTRAINT_LENGTH - 1 - delay : CONSTRAINT_LENGTH - 1 - delay + n]
    return out


def conv_encode(bits: np.ndarray) -> np.ndarray:
    """Encode ``bits`` at rate 1/2, returning interlaced output A0 B0 A1 B1 …

    The encoder starts from the all-zero state; callers append 6 tail zeros
    beforehand if they want a terminated trellis (the PLCP layer does).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.size
    padded = np.concatenate([np.zeros(CONSTRAINT_LENGTH - 1, dtype=np.uint8), bits])
    a = _xor_taps(padded, G0_TAPS, n)
    b = _xor_taps(padded, G1_TAPS, n)
    out = np.empty(2 * n, dtype=np.uint8)
    out[0::2] = a
    out[1::2] = b
    return out


def _pattern_mask(code_rate: Fraction, n_pairs: int) -> np.ndarray:
    try:
        pattern = PUNCTURE_PATTERNS[code_rate]
    except KeyError:
        valid = sorted(PUNCTURE_PATTERNS)
        raise ValueError(f"unsupported code rate {code_rate}; valid: {valid}") from None
    reps = -(-n_pairs // pattern.shape[0])
    return np.tile(pattern, (reps, 1))[:n_pairs]


def puncture(coded: np.ndarray, code_rate: Fraction) -> np.ndarray:
    """Delete coded bits according to the puncture pattern of ``code_rate``."""
    coded = np.asarray(coded)
    if coded.size % 2 != 0:
        raise ValueError("coded stream must contain whole (A, B) pairs")
    mask = _pattern_mask(code_rate, coded.size // 2).reshape(-1)
    return coded[mask]


def depuncture(values: np.ndarray, code_rate: Fraction, fill: float = 0.0) -> np.ndarray:
    """Re-insert punctured positions as ``fill`` (an erasure for LLR input).

    ``values`` is the received stream of soft metrics (or hard bits) for the
    *transmitted* positions; the returned array has the full rate-1/2 length
    with ``fill`` at every stolen position.
    """
    values = np.asarray(values, dtype=np.float64)
    pattern = PUNCTURE_PATTERNS[code_rate]
    kept_per_period = int(pattern.sum())
    if values.size % kept_per_period != 0:
        raise ValueError(
            f"stream of {values.size} values is not a whole number of "
            f"puncture periods (period keeps {kept_per_period})"
        )
    n_pairs = (values.size // kept_per_period) * pattern.shape[0]
    mask = _pattern_mask(code_rate, n_pairs).reshape(-1)
    out = np.full(mask.size, fill, dtype=np.float64)
    out[mask] = values
    return out


def n_coded_bits(n_info_bits: int, code_rate: Fraction) -> int:
    """Transmitted coded-bit count for ``n_info_bits`` at ``code_rate``."""
    value = Fraction(n_info_bits) / code_rate
    if value.denominator != 1:
        raise ValueError(
            f"{n_info_bits} info bits is not a whole number of periods at rate {code_rate}"
        )
    return int(value)
