"""802.11a receiver chain with erasure-aware decoding hooks.

The receiver is split into two stages so the CoS layer can interpose:

1. :meth:`Receiver.observe` — synchronise, estimate the channel from the
   LTF, FFT the payload into a raw frequency grid, and decode the SIGNAL
   field.  The raw grid is what the CoS energy detector inspects.
2. :meth:`Receiver.decode` — equalise, compute CSI-weighted LLRs, zero the
   metrics of any erased (silence) symbols, and run the Viterbi pipeline.

``Receiver.receive`` chains both for plain-802.11a use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kernels import backend_name
from repro.obs.trace import span
from repro.phy.frames import Mpdu, parse_mpdu
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import DATA_BINS, extract_data, extract_pilots, time_to_grid
from repro.phy.params import N_DATA_SUBCARRIERS, SYMBOL_SAMPLES
from repro.phy.plcp import (
    DecodedData,
    SignalField,
    decode_data_field,
    signal_llrs_to_field,
)
from repro.phy.preamble import (
    PREAMBLE_SAMPLES,
    SAMPLE_RATE_HZ,
    estimate_cfo,
    estimate_channel,
    estimate_noise_from_ltf,
    synchronize,
)

__all__ = ["FrameObservation", "RxResult", "Receiver"]

_H_FLOOR = 1e-9


@dataclass
class FrameObservation:
    """Stage-1 output: everything measured before data decoding.

    Attributes
    ----------
    h_est:
        LS channel estimate on all 64 FFT bins (guards zero).
    h_data:
        The estimate restricted to the 48 data subcarriers, ascending order.
    noise_var:
        Per-subcarrier noise variance, pilot-refined (paper eq. (5)-(6)).
    signal:
        Decoded SIGNAL field, or None if it failed parity/rate checks.
    raw_data_grid:
        ``(n_symbols, 48)`` un-equalised data-subcarrier values — the CoS
        energy detector operates on these magnitudes.
    eq_data_grid:
        ZF-equalised, pilot-phase-corrected data symbols.
    """

    h_est: np.ndarray
    h_data: np.ndarray
    noise_var: float
    signal: Optional[SignalField]
    raw_data_grid: np.ndarray
    eq_data_grid: np.ndarray


@dataclass
class RxResult:
    """Stage-2 output: the decoded frame plus diagnostics."""

    mpdu: Mpdu
    signal: Optional[SignalField]
    observation: Optional[FrameObservation]
    pre_viterbi_bits: Optional[np.ndarray] = None
    decoded: Optional[DecodedData] = None

    @property
    def ok(self) -> bool:
        return self.mpdu.fcs_ok


class Receiver:
    """Stateless 802.11a demodulator/decoder.

    Parameters
    ----------
    known_timing:
        If True (default — the simulator controls alignment) the frame is
        assumed to start at sample 0; otherwise matched-filter sync runs.
    """

    def __init__(
        self,
        known_timing: bool = True,
        correct_cfo: bool = True,
        decision: str = "soft",
    ):
        if decision not in ("soft", "hard"):
            raise ValueError("decision must be 'soft' or 'hard'")
        self.known_timing = known_timing
        self.correct_cfo = correct_cfo
        self.decision = decision

    # ------------------------------------------------------------------
    # Stage 1: observation
    # ------------------------------------------------------------------

    def observe(self, samples: np.ndarray) -> Optional[FrameObservation]:
        """Synchronise, estimate the channel, and decode SIGNAL.

        Returns ``None`` when the waveform is too short to hold a preamble
        plus SIGNAL symbol.
        """
        with span("phy.rx.observe") as sp:
            obs = self._observe(samples)
            if obs is not None and obs.signal is not None:
                sp.set(rate_mbps=obs.signal.rate.mbps)
            return obs

    def _observe(self, samples: np.ndarray) -> Optional[FrameObservation]:
        samples = np.asarray(samples, dtype=np.complex128)
        start = 0 if self.known_timing else synchronize(samples)
        if samples.size - start < PREAMBLE_SAMPLES + SYMBOL_SAMPLES:
            return None
        if self.correct_cfo:
            # STF/LTF-based CFO estimate, derotated over the whole frame;
            # the pilots then track only the small residual phase drift.
            cfo = estimate_cfo(samples[start : start + PREAMBLE_SAMPLES])
            n = np.arange(samples.size - start)
            samples = samples.copy()
            samples[start:] = samples[start:] * np.exp(
                -2j * np.pi * cfo * n / SAMPLE_RATE_HZ
            )
        preamble = samples[start : start + PREAMBLE_SAMPLES]
        h_est = estimate_channel(preamble)
        noise_ltf = estimate_noise_from_ltf(preamble)

        payload = samples[start + PREAMBLE_SAMPLES :]
        n_whole = payload.size // SYMBOL_SAMPLES
        grid = time_to_grid(payload[: n_whole * SYMBOL_SAMPLES])

        h_data = h_est[DATA_BINS]
        safe_h = np.where(np.abs(h_data) < _H_FLOOR, _H_FLOOR, h_data)

        # SIGNAL symbol (polarity index 0).
        signal_raw = extract_data(grid[:1])[0]
        phase0, pilot_res0 = self._pilot_phase(grid[:1], h_est, symbol_offset=0)
        noise_var = self._refine_noise(noise_ltf, pilot_res0)
        eq_signal = self._equalize(signal_raw, safe_h, noise_var) * np.exp(
            -1j * phase0[0]
        )
        csi = np.abs(h_data) ** 2 / max(noise_var, 1e-15)
        signal_llrs = get_modulation("bpsk").demap_soft(eq_signal, csi)
        signal = signal_llrs_to_field(signal_llrs)

        # DATA symbols (polarity indices 1..n).
        n_data = grid.shape[0] - 1
        if signal is not None:
            n_data = min(n_data, signal.n_data_symbols)
        data_grid = grid[1 : 1 + n_data]
        raw_data = extract_data(data_grid)
        phase, pilot_res = self._pilot_phase(data_grid, h_est, symbol_offset=1)
        noise_var = self._refine_noise(noise_ltf, np.concatenate([pilot_res0, pilot_res]))
        eq_data = self._equalize(raw_data, safe_h[None, :], noise_var) * np.exp(
            -1j * phase
        )[:, None]

        return FrameObservation(
            h_est=h_est,
            h_data=h_data,
            noise_var=noise_var,
            signal=signal,
            raw_data_grid=raw_data,
            eq_data_grid=eq_data,
        )

    @staticmethod
    def _equalize(raw: np.ndarray, h: np.ndarray, noise_var: float) -> np.ndarray:
        """Zero-forcing equalisation.

        For a scalar per-subcarrier channel the *unbiased* MMSE equaliser
        reduces exactly to ZF (the bias correction cancels the
        regularisation), and the CSI weighting in the demapper already
        plays the role MMSE would — so ZF is the whole story here.
        """
        del noise_var
        return raw / h

    @staticmethod
    def _pilot_phase(grid: np.ndarray, h_est: np.ndarray, symbol_offset: int):
        """Common-phase-error per symbol and raw pilot residuals.

        The residuals (received minus expected pilot values, before
        equalisation) feed the pilot-aided noise estimate of eq. (6).
        """
        from repro.phy.ofdm import PILOT_BINS

        received, sent = extract_pilots(grid, symbol_offset)
        h_pilots = h_est[PILOT_BINS]
        expected = sent * h_pilots[None, :]
        corr = np.sum(received * np.conj(expected), axis=1)
        phase = np.angle(np.where(corr == 0, 1.0, corr))
        residuals = received * np.exp(-1j * phase)[:, None] - expected
        return phase, residuals.reshape(-1)

    @staticmethod
    def _refine_noise(noise_ltf: float, pilot_residuals: np.ndarray) -> float:
        """Blend the LTF floor with the pilot residual power (eq. (5)-(6))."""
        if pilot_residuals.size == 0:
            return noise_ltf
        pilot_var = float(np.mean(np.abs(pilot_residuals) ** 2))
        return 0.5 * (noise_ltf + pilot_var)

    # ------------------------------------------------------------------
    # Stage 2: decoding
    # ------------------------------------------------------------------

    def decode(
        self,
        obs: FrameObservation,
        erasure_mask: Optional[np.ndarray] = None,
    ) -> RxResult:
        """Decode the DATA field of an observation.

        ``erasure_mask`` is ``(n_symbols, 48)`` bool; True entries have all
        their bit metrics zeroed before deinterleaving — the EVD rule of
        eq. (7).
        """
        with span("phy.rx.decode") as sp:
            sp.set(kernel_backend=backend_name())
            result = self._decode(obs, erasure_mask)
            if result.signal is not None:
                sp.set(rate_mbps=result.signal.rate.mbps, crc_ok=result.ok)
            return result

    def _decode(
        self,
        obs: FrameObservation,
        erasure_mask: Optional[np.ndarray] = None,
    ) -> RxResult:
        if obs.signal is None:
            return RxResult(mpdu=parse_mpdu(None), signal=None, observation=obs)
        rate = obs.signal.rate
        n_symbols = obs.signal.n_data_symbols
        if obs.eq_data_grid.shape[0] < n_symbols:
            return RxResult(mpdu=parse_mpdu(None), signal=obs.signal, observation=obs)

        modulation = get_modulation(rate.modulation)
        eq = obs.eq_data_grid[:n_symbols]
        if self.decision == "soft":
            csi_row = np.abs(obs.h_data) ** 2 / max(obs.noise_var, 1e-15)
            csi = np.broadcast_to(csi_row, eq.shape)
            llrs = modulation.demap_soft(eq.reshape(-1), csi.reshape(-1))
        else:
            # Hard-decision, CSI-blind input — the fidelity mode matching
            # first-generation software radios like Sora's SoftWiFi, kept
            # for the decoder-fidelity ablation.
            from repro.phy.viterbi import hard_bits_to_llrs

            hard = modulation.demap_hard(eq.reshape(-1))
            llrs = hard_bits_to_llrs(hard)
        llrs = llrs.reshape(n_symbols, N_DATA_SUBCARRIERS, modulation.bits_per_symbol)
        if erasure_mask is not None:
            erasure_mask = np.asarray(erasure_mask, dtype=bool)
            if erasure_mask.shape != (n_symbols, N_DATA_SUBCARRIERS):
                raise ValueError(
                    f"erasure_mask shape {erasure_mask.shape} != "
                    f"({n_symbols}, {N_DATA_SUBCARRIERS})"
                )
            llrs[erasure_mask] = 0.0

        pre_viterbi = modulation.demap_hard(eq.reshape(-1))
        decoded = decode_data_field(llrs.reshape(-1), rate, obs.signal.length)
        return RxResult(
            mpdu=parse_mpdu(decoded.psdu),
            signal=obs.signal,
            observation=obs,
            pre_viterbi_bits=pre_viterbi,
            decoded=decoded,
        )

    # ------------------------------------------------------------------

    def receive(
        self, samples: np.ndarray, erasure_mask: Optional[np.ndarray] = None
    ) -> RxResult:
        """Full pipeline: observe then decode."""
        obs = self.observe(samples)
        if obs is None:
            return RxResult(mpdu=parse_mpdu(None), signal=None, observation=None)
        return self.decode(obs, erasure_mask)
