"""802.11a receiver chain with erasure-aware decoding hooks.

The receiver is split into two stages so the CoS layer can interpose:

1. :meth:`Receiver.observe` — synchronise, estimate the channel from the
   LTF, FFT the payload into a raw frequency grid, and decode the SIGNAL
   field.  The raw grid is what the CoS energy detector inspects.
2. :meth:`Receiver.decode` — equalise, compute CSI-weighted LLRs, zero the
   metrics of any erased (silence) symbols, and run the Viterbi pipeline.

``Receiver.receive`` chains both for plain-802.11a use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import backend_name
from repro.obs.trace import span
from repro.phy.frames import Mpdu, parse_mpdu
from repro.phy.modulation import get_modulation
from repro.phy.ofdm import (
    DATA_BINS,
    PILOT_BINS,
    extract_data,
    extract_pilots,
    time_to_grid,
)
from repro.phy.params import N_DATA_SUBCARRIERS, SYMBOL_SAMPLES
from repro.phy.plcp import (
    DecodedData,
    SignalField,
    decode_data_field,
    decode_data_fields,
    signal_llrs_to_field,
    signal_llrs_to_fields,
)
from repro.phy.preamble import (
    PREAMBLE_SAMPLES,
    SAMPLE_RATE_HZ,
    estimate_cfo,
    estimate_channel,
    estimate_channel_batch,
    estimate_noise_from_ltf,
    estimate_noise_from_ltf_batch,
    synchronize,
)

__all__ = ["FrameObservation", "RxResult", "Receiver"]

_H_FLOOR = 1e-9


def _as_waveform_batch(samples_batch: Sequence[np.ndarray]) -> np.ndarray:
    """Stack a batch of waveforms into a ``(B, n_samples)`` complex array.

    Accepts a 2-D array or any sequence of equal-length 1-D waveforms;
    unequal lengths raise (callers with ragged batches loop the single
    path instead — see ``repro.experiments.common.send_probe_packets``).
    """
    if isinstance(samples_batch, np.ndarray):
        batch = np.asarray(samples_batch, dtype=np.complex128)
    else:
        rows = [np.asarray(row, dtype=np.complex128) for row in samples_batch]
        if any(row.ndim != 1 for row in rows):
            raise ValueError("waveform batch entries must be 1-D sample arrays")
        if len({row.size for row in rows}) > 1:
            raise ValueError(
                "waveform batch entries must share one length; "
                "mixed-length packets go through receive() per packet"
            )
        batch = (
            np.stack(rows) if rows else np.zeros((0, 0), dtype=np.complex128)
        )
    if batch.ndim != 2:
        raise ValueError(
            f"expected a (B, n_samples) waveform batch, got shape {batch.shape}"
        )
    return batch


@dataclass
class FrameObservation:
    """Stage-1 output: everything measured before data decoding.

    Attributes
    ----------
    h_est:
        LS channel estimate on all 64 FFT bins (guards zero).
    h_data:
        The estimate restricted to the 48 data subcarriers, ascending order.
    noise_var:
        Per-subcarrier noise variance, pilot-refined (paper eq. (5)-(6)).
    signal:
        Decoded SIGNAL field, or None if it failed parity/rate checks.
    raw_data_grid:
        ``(n_symbols, 48)`` un-equalised data-subcarrier values — the CoS
        energy detector operates on these magnitudes.
    eq_data_grid:
        ZF-equalised, pilot-phase-corrected data symbols.
    """

    h_est: np.ndarray
    h_data: np.ndarray
    noise_var: float
    signal: Optional[SignalField]
    raw_data_grid: np.ndarray
    eq_data_grid: np.ndarray


@dataclass
class RxResult:
    """Stage-2 output: the decoded frame plus diagnostics."""

    mpdu: Mpdu
    signal: Optional[SignalField]
    observation: Optional[FrameObservation]
    pre_viterbi_bits: Optional[np.ndarray] = None
    decoded: Optional[DecodedData] = None

    @property
    def ok(self) -> bool:
        return self.mpdu.fcs_ok


class Receiver:
    """Stateless 802.11a demodulator/decoder.

    Parameters
    ----------
    known_timing:
        If True (default — the simulator controls alignment) the frame is
        assumed to start at sample 0; otherwise matched-filter sync runs.
    """

    def __init__(
        self,
        known_timing: bool = True,
        correct_cfo: bool = True,
        decision: str = "soft",
    ):
        if decision not in ("soft", "hard"):
            raise ValueError("decision must be 'soft' or 'hard'")
        self.known_timing = known_timing
        self.correct_cfo = correct_cfo
        self.decision = decision

    # ------------------------------------------------------------------
    # Stage 1: observation
    # ------------------------------------------------------------------

    def observe(self, samples: np.ndarray) -> Optional[FrameObservation]:
        """Synchronise, estimate the channel, and decode SIGNAL.

        Returns ``None`` when the waveform is too short to hold a preamble
        plus SIGNAL symbol.
        """
        with span("phy.rx.observe") as sp:
            obs = self._observe(samples)
            if obs is not None and obs.signal is not None:
                sp.set(rate_mbps=obs.signal.rate.mbps)
            return obs

    def _observe(self, samples: np.ndarray) -> Optional[FrameObservation]:
        samples = np.asarray(samples, dtype=np.complex128)
        start = 0 if self.known_timing else synchronize(samples)
        if samples.size - start < PREAMBLE_SAMPLES + SYMBOL_SAMPLES:
            return None
        if self.correct_cfo:
            # STF/LTF-based CFO estimate, derotated over the whole frame;
            # the pilots then track only the small residual phase drift.
            # The estimator returns exactly 0.0 on phase-clean channels
            # (the autocorrelation angle of an unrotated preamble), and
            # multiplying by exp(0j) = 1+0j is a bit-exact identity — so
            # the full-frame copy + derotation is skipped outright.
            cfo = estimate_cfo(samples[start : start + PREAMBLE_SAMPLES])
            if cfo != 0.0:
                n = np.arange(samples.size - start)
                samples = samples.copy()
                samples[start:] = samples[start:] * np.exp(
                    -2j * np.pi * cfo * n / SAMPLE_RATE_HZ
                )
        preamble = samples[start : start + PREAMBLE_SAMPLES]
        h_est = estimate_channel(preamble)
        noise_ltf = estimate_noise_from_ltf(preamble)

        payload = samples[start + PREAMBLE_SAMPLES :]
        n_whole = payload.size // SYMBOL_SAMPLES
        grid = time_to_grid(payload[: n_whole * SYMBOL_SAMPLES])

        h_data = h_est[DATA_BINS]
        safe_h = np.where(np.abs(h_data) < _H_FLOOR, _H_FLOOR, h_data)

        # SIGNAL symbol (polarity index 0).
        signal_raw = extract_data(grid[:1])[0]
        phase0, pilot_res0 = self._pilot_phase(grid[:1], h_est, symbol_offset=0)
        noise_var = self._refine_noise(noise_ltf, pilot_res0)
        eq_signal = self._equalize(signal_raw, safe_h, noise_var) * np.exp(
            -1j * phase0[0]
        )
        csi = np.abs(h_data) ** 2 / max(noise_var, 1e-15)
        signal_llrs = get_modulation("bpsk").demap_soft(eq_signal, csi)
        signal = signal_llrs_to_field(signal_llrs)

        # DATA symbols (polarity indices 1..n).
        n_data = grid.shape[0] - 1
        if signal is not None:
            n_data = min(n_data, signal.n_data_symbols)
        data_grid = grid[1 : 1 + n_data]
        raw_data = extract_data(data_grid)
        phase, pilot_res = self._pilot_phase(data_grid, h_est, symbol_offset=1)
        noise_var = self._refine_noise(noise_ltf, np.concatenate([pilot_res0, pilot_res]))
        eq_data = self._equalize(raw_data, safe_h[None, :], noise_var) * np.exp(
            -1j * phase
        )[:, None]

        return FrameObservation(
            h_est=h_est,
            h_data=h_data,
            noise_var=noise_var,
            signal=signal,
            raw_data_grid=raw_data,
            eq_data_grid=eq_data,
        )

    @staticmethod
    def _equalize(raw: np.ndarray, h: np.ndarray, noise_var: float) -> np.ndarray:
        """Zero-forcing equalisation.

        For a scalar per-subcarrier channel the *unbiased* MMSE equaliser
        reduces exactly to ZF (the bias correction cancels the
        regularisation), and the CSI weighting in the demapper already
        plays the role MMSE would — so ZF is the whole story here.
        """
        del noise_var
        return raw / h

    @staticmethod
    def _pilot_phase(grid: np.ndarray, h_est: np.ndarray, symbol_offset: int):
        """Common-phase-error per symbol and raw pilot residuals.

        The residuals (received minus expected pilot values, before
        equalisation) feed the pilot-aided noise estimate of eq. (6).
        """
        received, sent = extract_pilots(grid, symbol_offset)
        h_pilots = h_est[PILOT_BINS]
        expected = sent * h_pilots[None, :]
        corr = np.sum(received * np.conj(expected), axis=1)
        phase = np.angle(np.where(corr == 0, 1.0, corr))
        residuals = received * np.exp(-1j * phase)[:, None] - expected
        return phase, residuals.reshape(-1)

    @staticmethod
    def _refine_noise(noise_ltf: float, pilot_residuals: np.ndarray) -> float:
        """Blend the LTF floor with the pilot residual power (eq. (5)-(6))."""
        if pilot_residuals.size == 0:
            return noise_ltf
        pilot_var = float(np.mean(np.abs(pilot_residuals) ** 2))
        return 0.5 * (noise_ltf + pilot_var)

    # ------------------------------------------------------------------
    # Stage 1, batched
    # ------------------------------------------------------------------

    def observe_many(
        self, samples_batch: Sequence[np.ndarray]
    ) -> List[Optional[FrameObservation]]:
        """:meth:`observe` over a batch of equal-length waveforms.

        ``samples_batch`` is a ``(B, n_samples)`` complex array (or a
        sequence of equal-length 1-D waveforms).  Entry ``i`` of the result
        equals ``observe(samples_batch[i])`` bit-for-bit: every batched
        stage — row FFTs, channel/noise estimation, pilot phase, demapping,
        SIGNAL decoding — is elementwise or reduces each packet
        independently, so batching changes no rounding (the property tests
        in ``tests/test_phy_batch.py`` enforce this across all rates).
        """
        with span("phy.rx.observe_many") as sp:
            batch = _as_waveform_batch(samples_batch)
            sp.set(n_packets=batch.shape[0])
            return self._observe_many(batch)

    def _observe_many(self, batch: np.ndarray) -> List[Optional[FrameObservation]]:
        n_rows = batch.shape[0]
        if n_rows == 0:
            return []
        if not self.known_timing:
            # Matched-filter sync yields a per-row start offset, which
            # breaks the aligned-stack layout; fall back to per-packet
            # observation (identical by definition).
            return [self._observe(row) for row in batch]
        n_samples = batch.shape[1]
        if n_samples < PREAMBLE_SAMPLES + SYMBOL_SAMPLES:
            return [None] * n_rows

        if self.correct_cfo:
            # Per-row estimate (320 samples each — cheap next to the
            # payload FFTs); rows with a nonzero estimate are derotated
            # with exactly the single-packet expression.
            derotate: Dict[int, float] = {}
            for b in range(n_rows):
                cfo = estimate_cfo(batch[b, :PREAMBLE_SAMPLES])
                if cfo != 0.0:
                    derotate[b] = cfo
            if derotate:
                batch = batch.copy()
                n = np.arange(n_samples)
                for b, cfo in derotate.items():
                    batch[b] = batch[b] * np.exp(
                        -2j * np.pi * cfo * n / SAMPLE_RATE_HZ
                    )

        preambles = batch[:, :PREAMBLE_SAMPLES]
        h_est_b = estimate_channel_batch(preambles)
        noise_ltf_b = estimate_noise_from_ltf_batch(preambles)

        payload = batch[:, PREAMBLE_SAMPLES:]
        n_whole = payload.shape[1] // SYMBOL_SAMPLES
        grid_b = time_to_grid(
            payload[:, : n_whole * SYMBOL_SAMPLES].reshape(-1)
        ).reshape(n_rows, n_whole, -1)

        h_data_b = h_est_b[:, DATA_BINS]
        safe_h_b = np.where(np.abs(h_data_b) < _H_FLOOR, _H_FLOOR, h_data_b)

        # SIGNAL symbols (polarity index 0), demapped and decoded in one
        # pass across the batch.
        signal_raw_b = grid_b[:, 0, :][:, DATA_BINS]
        phase0_b, res0_b = self._pilot_phase_batch(
            grid_b[:, :1], h_est_b, symbol_offset=0
        )
        noise0_b = self._refine_noise_batch(noise_ltf_b, res0_b)
        eq_signal_b = (signal_raw_b / safe_h_b) * np.exp(-1j * phase0_b[:, 0])[
            :, None
        ]
        csi0_b = np.abs(h_data_b) ** 2 / np.maximum(noise0_b, 1e-15)[:, None]
        signal_llrs = (
            get_modulation("bpsk")
            .demap_soft(eq_signal_b.reshape(-1), csi0_b.reshape(-1))
            .reshape(n_rows, -1)
        )
        signals = signal_llrs_to_fields(signal_llrs)

        # DATA symbols (polarity indices 1..n): rows sharing a symbol count
        # (in practice: every row of a same-spec batch) are equalised and
        # phase-tracked as one stack.
        n_avail = n_whole - 1
        groups: Dict[int, List[int]] = {}
        for b, signal in enumerate(signals):
            n_data = n_avail
            if signal is not None:
                n_data = min(n_data, signal.n_data_symbols)
            groups.setdefault(n_data, []).append(b)

        out: List[Optional[FrameObservation]] = [None] * n_rows
        for n_data, members in groups.items():
            rows = np.asarray(members, dtype=np.intp)
            data_grid_g = grid_b[rows, 1 : 1 + n_data]
            raw_g = data_grid_g[:, :, DATA_BINS]
            phase_g, res_g = self._pilot_phase_batch(
                data_grid_g, h_est_b[rows], symbol_offset=1
            )
            noise_g = self._refine_noise_batch(
                noise_ltf_b[rows], np.concatenate([res0_b[rows], res_g], axis=1)
            )
            eq_g = (raw_g / safe_h_b[rows][:, None, :]) * np.exp(-1j * phase_g)[
                :, :, None
            ]
            for i, b in enumerate(members):
                out[b] = FrameObservation(
                    h_est=h_est_b[b],
                    h_data=h_data_b[b],
                    noise_var=float(noise_g[i]),
                    signal=signals[b],
                    raw_data_grid=raw_g[i],
                    eq_data_grid=eq_g[i],
                )
        return out

    @staticmethod
    def _pilot_phase_batch(
        grids: np.ndarray, h_est_b: np.ndarray, symbol_offset: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`_pilot_phase` over a ``(B, n_symbols, 64)`` grid stack."""
        received = grids[:, :, PILOT_BINS]
        # The transmitted pilot values depend only on (n_symbols, offset);
        # reuse the single-packet helper so the arithmetic stays shared.
        _, sent = extract_pilots(grids[0], symbol_offset)
        h_pilots = h_est_b[:, PILOT_BINS]
        expected = sent[None, :, :] * h_pilots[:, None, :]
        # The correlation must reduce a C-contiguous array: numpy picks a
        # different accumulation order for strided reduction inputs, which
        # would move the sum (and hence the phase) off the scalar path by
        # an ulp.
        products = np.ascontiguousarray(received * np.conj(expected))
        corr = np.sum(products, axis=2)
        phase = np.angle(np.where(corr == 0, 1.0, corr))
        residuals = received * np.exp(-1j * phase)[:, :, None] - expected
        return phase, residuals.reshape(grids.shape[0], -1)

    @staticmethod
    def _refine_noise_batch(
        noise_ltf_b: np.ndarray, pilot_residuals_b: np.ndarray
    ) -> np.ndarray:
        """:meth:`_refine_noise` over per-row residual stacks.

        The residual-power mean reduces one row at a time: numpy's axis-1
        reduction can split its pairwise summation differently than the
        1-D reduction of the scalar path, shifting the result by an ulp.
        """
        if pilot_residuals_b.shape[1] == 0:
            return np.asarray(noise_ltf_b, dtype=np.float64)
        power = np.abs(pilot_residuals_b) ** 2
        pilot_var = np.array([float(np.mean(row)) for row in power])
        return 0.5 * (noise_ltf_b + pilot_var)

    # ------------------------------------------------------------------
    # Stage 2: decoding
    # ------------------------------------------------------------------

    def decode(
        self,
        obs: FrameObservation,
        erasure_mask: Optional[np.ndarray] = None,
    ) -> RxResult:
        """Decode the DATA field of an observation.

        ``erasure_mask`` is ``(n_symbols, 48)`` bool; True entries have all
        their bit metrics zeroed before deinterleaving — the EVD rule of
        eq. (7).
        """
        with span("phy.rx.decode") as sp:
            sp.set(kernel_backend=backend_name())
            result = self._decode(obs, erasure_mask)
            if result.signal is not None:
                sp.set(rate_mbps=result.signal.rate.mbps, crc_ok=result.ok)
            return result

    def _decode(
        self,
        obs: FrameObservation,
        erasure_mask: Optional[np.ndarray] = None,
    ) -> RxResult:
        if obs.signal is None:
            return RxResult(mpdu=parse_mpdu(None), signal=None, observation=obs)
        rate = obs.signal.rate
        n_symbols = obs.signal.n_data_symbols
        if obs.eq_data_grid.shape[0] < n_symbols:
            return RxResult(mpdu=parse_mpdu(None), signal=obs.signal, observation=obs)

        modulation = get_modulation(rate.modulation)
        eq = obs.eq_data_grid[:n_symbols]
        if self.decision == "soft":
            csi_row = np.abs(obs.h_data) ** 2 / max(obs.noise_var, 1e-15)
            csi = np.broadcast_to(csi_row, eq.shape)
            llrs = modulation.demap_soft(eq.reshape(-1), csi.reshape(-1))
        else:
            # Hard-decision, CSI-blind input — the fidelity mode matching
            # first-generation software radios like Sora's SoftWiFi, kept
            # for the decoder-fidelity ablation.
            from repro.phy.viterbi import hard_bits_to_llrs

            hard = modulation.demap_hard(eq.reshape(-1))
            llrs = hard_bits_to_llrs(hard)
        llrs = llrs.reshape(n_symbols, N_DATA_SUBCARRIERS, modulation.bits_per_symbol)
        if erasure_mask is not None:
            erasure_mask = np.asarray(erasure_mask, dtype=bool)
            if erasure_mask.shape != (n_symbols, N_DATA_SUBCARRIERS):
                raise ValueError(
                    f"erasure_mask shape {erasure_mask.shape} != "
                    f"({n_symbols}, {N_DATA_SUBCARRIERS})"
                )
            llrs[erasure_mask] = 0.0

        pre_viterbi = modulation.demap_hard(eq.reshape(-1))
        decoded = decode_data_field(llrs.reshape(-1), rate, obs.signal.length)
        return RxResult(
            mpdu=parse_mpdu(decoded.psdu),
            signal=obs.signal,
            observation=obs,
            pre_viterbi_bits=pre_viterbi,
            decoded=decoded,
        )

    # ------------------------------------------------------------------
    # Stage 2, batched
    # ------------------------------------------------------------------

    def decode_many(
        self,
        observations: Sequence[Optional[FrameObservation]],
        erasure_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[RxResult]:
        """:meth:`decode` over a batch of observations.

        Observations sharing a (rate, length) — every member of a
        same-spec batch — are demapped in one :meth:`Modulation.demap_soft`
        call and Viterbi-decoded through the backend's batch kernel;
        stragglers (failed SIGNAL, truncated grids, ``None`` entries from
        :meth:`observe_many`) take the per-packet path.  Entry ``i`` equals
        ``decode(observations[i], erasure_masks[i])`` bit-for-bit.
        """
        if erasure_masks is not None and len(erasure_masks) != len(observations):
            raise ValueError(
                f"{len(erasure_masks)} erasure masks for "
                f"{len(observations)} observations"
            )
        with span("phy.rx.decode_many") as sp:
            sp.set(n_packets=len(observations), kernel_backend=backend_name())
            return self._decode_many(observations, erasure_masks)

    def _decode_many(
        self,
        observations: Sequence[Optional[FrameObservation]],
        erasure_masks: Optional[Sequence[Optional[np.ndarray]]],
    ) -> List[RxResult]:
        def mask_for(i: int) -> Optional[np.ndarray]:
            return None if erasure_masks is None else erasure_masks[i]

        out: List[Optional[RxResult]] = [None] * len(observations)
        groups: Dict[Tuple[float, int], List[int]] = {}
        for i, obs in enumerate(observations):
            if obs is None:
                out[i] = RxResult(mpdu=parse_mpdu(None), signal=None, observation=None)
            elif (
                obs.signal is None
                or obs.eq_data_grid.shape[0] < obs.signal.n_data_symbols
            ):
                out[i] = self._decode(obs, mask_for(i))
            else:
                key = (obs.signal.rate.mbps, obs.signal.length)
                groups.setdefault(key, []).append(i)

        for members in groups.values():
            first = observations[members[0]]
            rate = first.signal.rate
            length = first.signal.length
            n_symbols = first.signal.n_data_symbols
            modulation = get_modulation(rate.modulation)
            eq_g = np.stack(
                [observations[i].eq_data_grid[:n_symbols] for i in members]
            )
            if self.decision == "soft":
                csi_rows = np.stack(
                    [
                        np.abs(observations[i].h_data) ** 2
                        / max(observations[i].noise_var, 1e-15)
                        for i in members
                    ]
                )
                csi_full = np.broadcast_to(csi_rows[:, None, :], eq_g.shape)
                llrs = modulation.demap_soft(
                    eq_g.reshape(-1), csi_full.reshape(-1)
                )
            else:
                from repro.phy.viterbi import hard_bits_to_llrs

                hard = modulation.demap_hard(eq_g.reshape(-1))
                llrs = hard_bits_to_llrs(hard)
            llrs = llrs.reshape(
                len(members), n_symbols, N_DATA_SUBCARRIERS,
                modulation.bits_per_symbol,
            )
            for row, i in enumerate(members):
                mask = mask_for(i)
                if mask is not None:
                    mask = np.asarray(mask, dtype=bool)
                    if mask.shape != (n_symbols, N_DATA_SUBCARRIERS):
                        raise ValueError(
                            f"erasure_mask shape {mask.shape} != "
                            f"({n_symbols}, {N_DATA_SUBCARRIERS})"
                        )
                    llrs[row, mask] = 0.0
            pre_viterbi = modulation.demap_hard(eq_g.reshape(-1)).reshape(
                len(members), -1
            )
            decoded_rows = decode_data_fields(
                llrs.reshape(len(members), -1), rate, length
            )
            for row, i in enumerate(members):
                obs = observations[i]
                out[i] = RxResult(
                    mpdu=parse_mpdu(decoded_rows[row].psdu),
                    signal=obs.signal,
                    observation=obs,
                    pre_viterbi_bits=pre_viterbi[row],
                    decoded=decoded_rows[row],
                )
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def receive(
        self, samples: np.ndarray, erasure_mask: Optional[np.ndarray] = None
    ) -> RxResult:
        """Full pipeline: observe then decode."""
        obs = self.observe(samples)
        if obs is None:
            return RxResult(mpdu=parse_mpdu(None), signal=None, observation=None)
        return self.decode(obs, erasure_mask)

    def receive_many(
        self,
        samples_batch: Sequence[np.ndarray],
        erasure_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[RxResult]:
        """Batched full pipeline over equal-length waveforms.

        Bit-for-bit equal to ``[receive(w, m) for w, m in zip(...)]`` —
        same PSDUs, same CRC outcomes, same soft metrics — while running
        the per-packet work (FFTs, channel estimation, demapping, Viterbi)
        as stacked array operations.
        """
        observations = self.observe_many(samples_batch)
        return self.decode_many(observations, erasure_masks)
