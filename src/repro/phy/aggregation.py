"""A-MPDU frame aggregation (802.11n-style, simplified).

The paper's capacity measurements "adopt the frame aggregation scheme"
(§IV-B): several MAC frames share one PHY preamble, which is what makes
long data packets — and hence a roomy control stream — the common case.

Each subframe is::

    +-----------+---------+---------+-------------+
    | length(2) | crc8(1) | sig(1)  | MPDU ... pad|
    +-----------+---------+---------+-------------+

with the MPDU (payload + FCS) padded to a 4-byte boundary.  The parser
validates each delimiter (CRC-8 over the length field plus the 0x4E
signature byte); on a corrupt delimiter it hunts forward in 4-byte steps
until the next valid one, so a single corrupted subframe does not take
down the rest of the aggregate — the standard A-MPDU resilience property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.phy.frames import Mpdu, build_mpdu, parse_mpdu
from repro.utils.crc import crc8

__all__ = ["AmpduSubframe", "build_ampdu", "parse_ampdu", "DELIMITER_LEN", "MAX_SUBFRAME_LEN"]

DELIMITER_LEN = 4
_SIGNATURE = 0x4E
MAX_SUBFRAME_LEN = (1 << 16) - 1


@dataclass(frozen=True)
class AmpduSubframe:
    """One recovered subframe: its MPDU plus where it sat in the PSDU."""

    mpdu: Mpdu
    offset: int


def _delimiter(mpdu_len: int) -> bytes:
    length = mpdu_len.to_bytes(2, "little")
    return length + bytes([crc8(length), _SIGNATURE])


def build_ampdu(payloads: Sequence[bytes]) -> bytes:
    """Aggregate MAC payloads into one PSDU.

    Each payload gets its own FCS, delimiter, and 4-byte padding; the
    receiver CRC-checks subframes independently.
    """
    if not payloads:
        raise ValueError("aggregate must contain at least one payload")
    out = bytearray()
    for payload in payloads:
        mpdu = build_mpdu(payload)
        if len(mpdu) > MAX_SUBFRAME_LEN:
            raise ValueError(f"MPDU of {len(mpdu)} bytes exceeds the length field")
        out += _delimiter(len(mpdu))
        out += mpdu
        if len(out) % 4:
            out += bytes(4 - len(out) % 4)
    return bytes(out)


def _valid_delimiter(block: bytes) -> bool:
    return (
        len(block) >= DELIMITER_LEN
        and block[3] == _SIGNATURE
        and crc8(block[0:2]) == block[2]
    )


def parse_ampdu(psdu: bytes) -> List[AmpduSubframe]:
    """Recover subframes from a (possibly corrupted) aggregate PSDU.

    Subframes whose delimiter is intact are returned with their own
    CRC verdict; corrupted delimiters trigger 4-byte-aligned hunting.
    """
    subframes: List[AmpduSubframe] = []
    pos = 0
    n = len(psdu)
    while pos + DELIMITER_LEN <= n:
        block = psdu[pos : pos + DELIMITER_LEN]
        if _valid_delimiter(block):
            mpdu_len = int.from_bytes(block[0:2], "little")
            start = pos + DELIMITER_LEN
            end = start + mpdu_len
            if mpdu_len == 0 or end > n:
                pos += 4  # bogus length: resume hunting
                continue
            subframes.append(
                AmpduSubframe(mpdu=parse_mpdu(psdu[start:end]), offset=pos)
            )
            pos = end + ((4 - (end % 4)) % 4)
        else:
            pos += 4  # delimiter hunting, 4-byte aligned as in 802.11n
    return subframes
