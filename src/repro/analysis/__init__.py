"""Measurement and statistics helpers shared by tests and experiments."""

from repro.analysis.metrics import (
    bit_error_rate,
    packet_reception_rate,
    symbol_error_positions,
    symbol_error_rate_per_subcarrier,
)
from repro.analysis.report import generate_report, write_report
from repro.analysis.statistics import binomial_confidence, empirical_cdf, wilson_interval

__all__ = [
    "bit_error_rate",
    "packet_reception_rate",
    "symbol_error_positions",
    "symbol_error_rate_per_subcarrier",
    "generate_report",
    "write_report",
    "binomial_confidence",
    "empirical_cdf",
    "wilson_interval",
]
