"""Small statistics helpers: empirical CDFs and binomial confidence bounds."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import stats

__all__ = ["empirical_cdf", "binomial_confidence", "wilson_interval"]


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, cumulative probabilities) for plotting a CDF."""
    values = np.sort(np.asarray(list(samples), dtype=np.float64))
    if values.size == 0:
        raise ValueError("need at least one sample")
    probs = np.arange(1, values.size + 1) / values.size
    return values, probs


def binomial_confidence(successes: int, trials: int, level: float = 0.95) -> Tuple[float, float]:
    """Clopper–Pearson exact interval for a success probability."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in 0..trials")
    alpha = 1.0 - level
    low = 0.0 if successes == 0 else stats.beta.ppf(alpha / 2, successes, trials - successes + 1)
    high = 1.0 if successes == trials else stats.beta.ppf(
        1 - alpha / 2, successes + 1, trials - successes
    )
    return float(low), float(high)


def wilson_interval(successes: int, trials: int, level: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval (cheaper, good small-sample behaviour)."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    z = stats.norm.ppf(0.5 + level / 2.0)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = z * np.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    return float(max(0.0, centre - half)), float(min(1.0, centre + half))
