"""Markdown report generation from experiment results.

``python -m repro.cli report [path]`` runs every figure harness and
writes a self-contained results file — the programmatic companion to the
hand-annotated ``EXPERIMENTS.md``.  Useful after changing the simulator:
regenerate and diff.
"""

from __future__ import annotations

import io
from contextlib import redirect_stdout
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

__all__ = ["generate_report", "write_report"]


def _capture(fn: Callable[[], None]) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        fn()
    return buffer.getvalue().strip()


def generate_report(stages: Optional[List[str]] = None,
                    workers: Optional[int] = None) -> str:
    """Run the requested experiment stages and return a markdown report.

    ``workers`` selects the trial engine's executor (see
    :mod:`repro.engine`); the rendered results are identical either way.
    """
    from repro.experiments import (
        ablations,
        fig2,
        fig3,
        fig5,
        fig6,
        fig7,
        fig9,
        fig10,
        network,
        waterfall,
    )
    from repro.experiments.common import full_mode

    w = workers
    catalogue: List[Tuple[str, str, Callable[[], None]]] = [
        ("fig2", "Fig. 2 — SNR gap", lambda: fig2.print_result(fig2.run(workers=w))),
        ("fig3", "Fig. 3 — decoder-input BER", lambda: fig3.print_result(fig3.run(workers=w))),
        ("fig5", "Fig. 5 — per-subcarrier EVM", lambda: fig5.print_result(fig5.run(workers=w))),
        ("fig6", "Fig. 6 — symbol error pattern", lambda: fig6.print_result(fig6.run(workers=w))),
        ("fig7", "Fig. 7 — temporal stability", lambda: fig7.print_result(fig7.run(workers=w))),
        ("fig9", "Fig. 9 — control capacity", lambda: fig9.print_result(fig9.run(workers=w))),
        ("fig10", "Fig. 10 — detection accuracy", lambda: fig10.print_result(fig10.run(workers=w))),
        (
            "ablations",
            "Ablations — placement and EVD",
            lambda: (
                ablations.print_placement(ablations.run_placement(workers=w)),
                ablations.print_evd(ablations.run_evd(workers=w)),
            ),
        ),
        ("network", "Network — explicit vs CoS control",
         lambda: network.print_result(network.run(workers=w))),
        ("waterfall", "PHY waterfall validation",
         lambda: waterfall.print_result(waterfall.run(workers=w))),
    ]
    selected = [
        entry for entry in catalogue if stages is None or entry[0] in stages
    ]

    scale = "paper scale (REPRO_FULL=1)" if full_mode() else "quick scale"
    parts = [
        "# CoS reproduction — generated results",
        "",
        f"Run mode: **{scale}**. Regenerate with "
        "`python -m repro.cli report`.",
        "",
    ]
    for key, title, fn in selected:
        parts.append(f"## {title}")
        parts.append("")
        parts.append("```")
        parts.append(_capture(fn))
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write_report(path: Union[str, Path], stages: Optional[List[str]] = None,
                 workers: Optional[int] = None) -> Path:
    """Generate and write the report; returns the path written."""
    path = Path(path)
    path.write_text(generate_report(stages, workers=workers))
    return path
