"""Error-rate and reception metrics used across the experiments."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "bit_error_rate",
    "symbol_error_positions",
    "symbol_error_rate_per_subcarrier",
    "packet_reception_rate",
]


def bit_error_rate(sent: np.ndarray, received: np.ndarray) -> float:
    """Fraction of differing bits between two equal-length bit arrays."""
    sent = np.asarray(sent, dtype=np.uint8)
    received = np.asarray(received, dtype=np.uint8)
    if sent.shape != received.shape:
        raise ValueError(f"shape mismatch: {sent.shape} vs {received.shape}")
    if sent.size == 0:
        return 0.0
    return float(np.mean(sent != received))


def symbol_error_positions(
    sent_symbols: np.ndarray,
    received_hard_symbols: np.ndarray,
    exclude_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Boolean ``(n_symbols, 48)`` grid of symbol errors.

    ``exclude_mask`` cells (silence symbols) are never counted as errors.
    """
    sent = np.asarray(sent_symbols)
    got = np.asarray(received_hard_symbols)
    if sent.shape != got.shape:
        raise ValueError("symbol grids differ in shape")
    errors = ~np.isclose(sent, got, atol=1e-9)
    if exclude_mask is not None:
        errors = errors & ~np.asarray(exclude_mask, dtype=bool)
    return errors


def symbol_error_rate_per_subcarrier(error_grids: Sequence[np.ndarray]) -> np.ndarray:
    """Average SER per data subcarrier over many packets (Fig. 6(b))."""
    if not error_grids:
        raise ValueError("need at least one error grid")
    stacked = np.concatenate([np.asarray(g, dtype=bool) for g in error_grids], axis=0)
    return stacked.mean(axis=0)


def packet_reception_rate(outcomes: Sequence[bool]) -> float:
    """PRR over a sequence of per-packet success flags."""
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    return float(np.mean(outcomes))
