"""Likelihood-ratio silence detection (an extension beyond the paper).

The paper's detector thresholds raw subcarrier *energy* against the noise
floor (§III-C).  That is optimal only when the active-symbol energy is
known and constant; under QAM the active hypothesis is a *mixture* over
constellation points scaled by the local channel gain.  This module
implements the exact Neyman–Pearson test between

* H0 (silence):  Y ~ CN(0, sigma^2)
* H1 (active):   Y ~ (1/M) * sum_m CN(H * x_m, sigma^2)

deciding silence when  p(Y | H0) * prior_odds > p(Y | H1).

Because both densities depend on |Y| only through the distances to the
hypothesised means, the test reduces to a per-subcarrier scalar decision
that can be precomputed.  The ablation benchmark compares it with the
energy detector; the gain concentrates exactly where the paper's scheme is
weakest — low-energy inner QAM points on weak subcarriers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cos.energy import DetectionReport
from repro.phy.modulation import Modulation
from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = ["MlSilenceDetector"]


class MlSilenceDetector:
    """Exact mixture likelihood-ratio detector for silence symbols.

    Parameters
    ----------
    prior_silence:
        Prior probability that a control-subcarrier cell is silent.  With
        the paper's k = 4 interval coding, roughly 1 / 8.5 of control
        cells are silent; the default reflects that.  The prior enters the
        decision as log-odds, so moderate misspecification is benign.
    """

    def __init__(self, prior_silence: float = 0.12):
        if not 0.0 < prior_silence < 1.0:
            raise ValueError("prior_silence must be in (0, 1)")
        self.prior_silence = prior_silence

    def detect(
        self,
        raw_data_grid: np.ndarray,
        control_subcarriers: Sequence[int],
        noise_var: float,
        h_data: np.ndarray,
        modulation: Modulation,
    ) -> DetectionReport:
        """Classify each control cell as silent or active.

        Parameters
        ----------
        raw_data_grid:
            ``(n_symbols, 48)`` un-equalised data-subcarrier values.
        noise_var:
            Per-subcarrier noise variance estimate.
        h_data:
            Estimated complex channel gains on the 48 data subcarriers.
        modulation:
            Active constellation (defines the H1 mixture).
        """
        grid = np.atleast_2d(np.asarray(raw_data_grid, dtype=np.complex128))
        if grid.shape[1] != N_DATA_SUBCARRIERS:
            raise ValueError(f"expected 48 data subcarriers, got {grid.shape[1]}")
        control = np.asarray(sorted(int(c) for c in control_subcarriers), dtype=np.int64)
        if control.size and (control.min() < 0 or control.max() >= N_DATA_SUBCARRIERS):
            raise ValueError("control subcarrier indices must be in 0..47")
        noise_var = max(float(noise_var), 1e-30)
        h = np.asarray(h_data, dtype=np.complex128)

        y = grid[:, control]  # (n_symbols, n_control)
        points = modulation.constellation  # (M,)
        means = h[control][None, :, None] * points[None, None, :]  # (1, C, M)

        # Log-likelihoods; constant factors (pi * sigma^2) cancel.
        log_h0 = -np.abs(y) ** 2 / noise_var  # (S, C)
        d2 = np.abs(y[:, :, None] - means) ** 2 / noise_var  # (S, C, M)
        # logsumexp over the mixture, minus log M.
        d2_min = d2.min(axis=2, keepdims=True)
        log_h1 = (
            -d2_min[:, :, 0]
            + np.log(np.mean(np.exp(-(d2 - d2_min)), axis=2))
        )

        log_prior_odds = np.log(self.prior_silence / (1.0 - self.prior_silence))
        detected = (log_h0 + log_prior_odds) > log_h1

        mask = np.zeros(grid.shape, dtype=bool)
        mask[:, control] = detected
        energies = np.abs(y) ** 2
        # The equivalent scalar threshold is data-dependent; report the
        # median active/silent decision boundary for diagnostics.
        return DetectionReport(mask=mask, threshold=float(noise_var), energies=energies)
