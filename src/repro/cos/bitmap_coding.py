"""Bitmap silence coding — the strawman interval coding beats.

The obvious way to signal bits with silences is a *bitmap*: one control
cell per bit, silence = 1, active = 0.  The paper instead encodes k bits
in the gap between silences.  This module implements the bitmap codec so
the trade-off can be measured (see ``bench_ablation_coding``):

* **silence cost** — bitmap spends E[bits]/2 silences per bit (every
  1-bit is a silence); interval coding spends 1/k silences per bit —
  8× fewer at k = 4 for uniform bits.  Silences consume the channel
  code's correction budget, so this is the capacity-relevant cost.
* **stream cost** — bitmap needs exactly 1 cell/bit; interval coding
  needs (E[v]+1)/k ≈ 2.1 cells/bit.  Cells are cheap (any data symbol on
  a control subcarrier); the code budget is not.
* **error behaviour** — a single detection error flips one bitmap bit
  but desynchronises *all* interval groups after it.  Bitmap degrades
  gracefully; intervals fail loudly (and detectably).

The planner mirrors :class:`repro.cos.silence.SilencePlanner`'s API so
the two schemes are drop-in interchangeable in experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cos.silence import DEFAULT_CONTROL_SUBCARRIERS, SilencePlan
from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = ["BitmapPlanner"]


class BitmapPlanner:
    """Silence-bitmap planner: control cell i carries control bit i."""

    def __init__(self, control_subcarriers: Sequence[int] = DEFAULT_CONTROL_SUBCARRIERS):
        subcarriers = [int(c) for c in control_subcarriers]
        if not subcarriers:
            raise ValueError("need at least one control subcarrier")
        if len(set(subcarriers)) != len(subcarriers):
            raise ValueError("control subcarriers must be distinct")
        if any(not 0 <= c < N_DATA_SUBCARRIERS for c in subcarriers):
            raise ValueError("control subcarrier indices must be in 0..47")
        self.control_subcarriers = sorted(subcarriers)

    @property
    def n_control(self) -> int:
        return len(self.control_subcarriers)

    def stream_length(self, n_symbols: int) -> int:
        return n_symbols * self.n_control

    def capacity_bits(self, n_symbols: int) -> int:
        """One bit per control cell."""
        return self.stream_length(n_symbols)

    def plan(self, control_bits: Sequence[int], n_symbols: int) -> SilencePlan:
        """Embed a prefix of ``control_bits``, one bit per cell."""
        bits = np.asarray(control_bits, dtype=np.uint8)
        usable = min(bits.size, self.stream_length(n_symbols))
        bits = bits[:usable]
        mask = np.zeros((n_symbols, N_DATA_SUBCARRIERS), dtype=bool)
        for position in np.nonzero(bits)[0]:
            slot = int(position) // self.n_control
            subcarrier = self.control_subcarriers[int(position) % self.n_control]
            mask[slot, subcarrier] = True
        return SilencePlan(
            mask=mask, embedded_bits=bits, n_silences=int(bits.sum())
        )

    def recover_bits(self, mask: np.ndarray, n_bits: Optional[int] = None) -> np.ndarray:
        """Read the bitmap back from a (detected) silence mask.

        Unlike interval decoding the receiver must know ``n_bits`` (or it
        reads the whole stream) — bitmap coding has no built-in framing,
        one more reason the paper's scheme wins.
        """
        mask = np.asarray(mask, dtype=bool)
        bits = []
        for slot in range(mask.shape[0]):
            for subcarrier in self.control_subcarriers:
                bits.append(int(mask[slot, subcarrier]))
        out = np.asarray(bits, dtype=np.uint8)
        return out if n_bits is None else out[:n_bits]

    def silences_for(self, bits: Sequence[int]) -> int:
        """Silence symbols spent on this particular message."""
        return int(np.asarray(bits, dtype=np.uint8).sum())
