"""Adaptive rate selection for control messages (§III-F).

Like data-rate adaptation, CoS keeps a lookup table mapping the receiver's
measured SNR to the maximum sustainable silence-symbol rate Rm (Fig. 9)
and picks the control-message rate accordingly, so the inserted silences
never exceed the channel code's spare correction capability and the data
PRR stays at its target (99.3 % in the paper).  When a data packet fails,
no feedback arrives and the sender falls back to the lowest control rate.

The default table is shaped after Fig. 9: within each data-rate band Rm
grows with SNR (more spare redundancy) and saturates; ceilings drop with
modulation order and code rate, from 148 k silences/s in the QPSK-1/2
band down to 33 k at the 64QAM-3/4 band edge (22.4 dB).  Running
``repro.experiments.fig9`` recalibrates the table for this simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cos.intervals import IntervalCodec
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.phy.params import PhyRate, SYMBOL_DURATION_S
from repro.rateadapt import RateAdapter

__all__ = ["DEFAULT_RM_TABLE", "ControlRateTable", "ControlAllocation", "ControlRateController"]

# mbps -> (Rm at band low edge, Rm at band high edge), silences per second.
DEFAULT_RM_TABLE: Dict[int, Tuple[float, float]] = {
    6: (40_000.0, 70_000.0),
    9: (60_000.0, 85_000.0),
    12: (110_000.0, 148_000.0),
    18: (95_000.0, 125_000.0),
    24: (80_000.0, 118_000.0),
    36: (60_000.0, 88_000.0),
    48: (50_000.0, 70_000.0),
    54: (33_000.0, 52_000.0),
}

_PREAMBLE_S = 16e-6
_SIGNAL_S = 4e-6
_TOP_BAND_WIDTH_DB = 3.0


@dataclass(frozen=True)
class ControlRateTable:
    """Piecewise-linear Rm(SNR), one segment per data-rate band."""

    adapter: RateAdapter = field(default_factory=RateAdapter)
    rm_by_rate: Dict[int, Tuple[float, float]] = field(
        default_factory=lambda: dict(DEFAULT_RM_TABLE)
    )

    def __post_init__(self):
        for mbps, (low, high) in self.rm_by_rate.items():
            if low < 0 or high < 0:
                raise ValueError(f"negative Rm for {mbps} Mbps")

    def rm_for(self, measured_snr_db: float) -> float:
        """Max sustainable silence symbols per second at this SNR."""
        rate = self.adapter.select(measured_snr_db)
        try:
            rm_low, rm_high = self.rm_by_rate[rate.mbps]
        except KeyError:
            raise KeyError(f"no Rm entry for {rate.mbps} Mbps") from None
        low, high = self.adapter.band(rate)
        if high == float("inf"):
            high = low + _TOP_BAND_WIDTH_DB
        span = max(high - low, 1e-9)
        frac = min(max((measured_snr_db - low) / span, 0.0), 1.0)
        return rm_low + frac * (rm_high - rm_low)

    def lowest_rm(self) -> float:
        """The conservative fallback rate used after a data-packet failure."""
        return min(min(pair) for pair in self.rm_by_rate.values())

    def with_entry(self, mbps: int, rm_low: float, rm_high: float) -> "ControlRateTable":
        """A copy with one band recalibrated (used by the Fig. 9 harness)."""
        updated = dict(self.rm_by_rate)
        updated[mbps] = (rm_low, rm_high)
        return ControlRateTable(adapter=self.adapter, rm_by_rate=updated)

    @classmethod
    def from_measurements(
        cls,
        points,
        adapter: Optional[RateAdapter] = None,
        base: Optional["ControlRateTable"] = None,
    ) -> "ControlRateTable":
        """Build a table from Fig. 9-style capacity measurements.

        ``points`` is an iterable of objects with ``measured_snr_db``,
        ``rate_mbps`` and ``rm_per_sec`` attributes (e.g.
        :class:`repro.experiments.fig9.CapacityPoint`).  For each rate band
        the lowest-SNR measurement calibrates the band-low Rm and the
        highest-SNR one the band-high Rm; bands with no measurements keep
        the ``base`` table's entries.  This is exactly the lookup-table
        construction the paper describes in §III-F ("based on our
        extensive experiments, we can obtain the mapping between channel
        SNRs and control message rates").
        """
        adapter = adapter or RateAdapter()
        table = base or cls(adapter=adapter)
        by_rate: Dict[int, list] = {}
        for point in points:
            by_rate.setdefault(point.rate_mbps, []).append(point)
        for mbps, band_points in by_rate.items():
            band_points.sort(key=lambda p: p.measured_snr_db)
            rm_low = band_points[0].rm_per_sec
            rm_high = band_points[-1].rm_per_sec
            table = table.with_entry(mbps, rm_low, max(rm_high, rm_low))
        return table


@dataclass(frozen=True)
class ControlAllocation:
    """Per-packet control-channel budget.

    Attributes
    ----------
    n_control_subcarriers:
        How many (weakest) subcarriers the selector should pick.
    max_control_bits:
        Whole k-bit groups the packet may carry at the chosen rate.
    target_silences:
        The silence budget the allocation was derived from.
    """

    n_control_subcarriers: int
    max_control_bits: int
    target_silences: int


class ControlRateController:
    """Turns the Rm table into concrete per-packet allocations.

    Parameters
    ----------
    table:
        SNR -> Rm lookup.
    codec:
        Interval codec (sets bits per silence and expected stream usage).
    safety:
        Fraction of Rm actually used (headroom against EVM prediction
        error); the paper tunes R up to Rm, we default slightly under.
    max_subcarriers:
        Cap on control subcarriers per packet.
    """

    def __init__(
        self,
        table: Optional[ControlRateTable] = None,
        codec: Optional[IntervalCodec] = None,
        safety: float = 0.9,
        max_subcarriers: int = 16,
    ):
        if not 0.0 < safety <= 1.0:
            raise ValueError("safety must be in (0, 1]")
        if max_subcarriers < 1:
            raise ValueError("max_subcarriers must be >= 1")
        self.table = table or ControlRateTable()
        self.codec = codec or IntervalCodec()
        self.safety = safety
        self.max_subcarriers = max_subcarriers
        self._fallback = False

    # ------------------------------------------------------------------

    @staticmethod
    def packet_airtime_s(n_data_symbols: int) -> float:
        """PPDU airtime: preamble + SIGNAL + data symbols."""
        return _PREAMBLE_S + _SIGNAL_S + n_data_symbols * SYMBOL_DURATION_S

    def on_data_result(self, data_ok: bool) -> None:
        """Record the fate of the last packet (failure triggers fallback).

        Fallback enter/exit transitions are counted in the metrics
        registry (``repro_rate_fallback_transitions_total``) and the
        current state is mirrored in ``repro_rate_in_fallback``.
        """
        was = self._fallback
        self._fallback = not data_ok
        if was != self._fallback:
            registry = get_registry()
            registry.counter(
                "repro_rate_fallback_transitions_total",
                help="Control-rate controller fallback enter/exit transitions.",
            ).labels(direction="enter" if self._fallback else "exit").inc()
            registry.gauge(
                "repro_rate_in_fallback",
                help="1 while the control-rate controller is in fallback.",
            ).set(1.0 if self._fallback else 0.0)

    @property
    def in_fallback(self) -> bool:
        return self._fallback

    def allocation(self, measured_snr_db: float, n_data_symbols: int) -> ControlAllocation:
        """Budget for the next packet at the current channel state."""
        if n_data_symbols < 1:
            raise ValueError("packet must contain at least one data symbol")
        with span("cos.rate_control.allocation") as sp:
            alloc = self._allocation(measured_snr_db, n_data_symbols)
            sp.set(target_silences=alloc.target_silences,
                   in_fallback=self._fallback)
            return alloc

    def _allocation(self, measured_snr_db: float, n_data_symbols: int) -> ControlAllocation:
        rm = self.table.lowest_rm() if self._fallback else self.table.rm_for(measured_snr_db)
        airtime = self.packet_airtime_s(n_data_symbols)
        target_silences = int(rm * airtime * self.safety)
        if target_silences < 2:
            return ControlAllocation(1, 0, target_silences)

        # Each interval (one k-bit group) costs one silence plus E[v] active
        # positions; size the control stream to fit the budget.
        k = self.codec.k
        per_interval_positions = self.codec.max_interval / 2.0 + 1.0
        needed_positions = 1 + (target_silences - 1) * per_interval_positions
        n_subcarriers = int(-(-needed_positions // n_data_symbols))
        n_subcarriers = max(1, min(n_subcarriers, self.max_subcarriers))
        max_bits = (target_silences - 1) * k
        return ControlAllocation(
            n_control_subcarriers=n_subcarriers,
            max_control_bits=max_bits,
            target_silences=target_silences,
        )

    def control_capacity_bps(self, measured_snr_db: float) -> float:
        """Steady-state control throughput (bits/s) at this SNR.

        One silence symbol terminates each k-bit interval, so the capacity
        is ``Rm * k`` — the paper's 132 kbps at Rm = 33 000 with k = 4.
        """
        return self.table.rm_for(measured_snr_db) * self.codec.k
