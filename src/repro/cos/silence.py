"""The power controller: planning silence-symbol positions in a packet.

The transmitter-side half of CoS modulation (§III-B).  Given the set of
control subcarriers fed back by the receiver and a queue of control bits,
the planner converts interval-coded positions into a boolean
``(n_symbols, 48)`` silence mask that the PHY transmitter zeroes before
its IFFT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cos.intervals import IntervalCodec
from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = ["SilencePlan", "SilencePlanner", "DEFAULT_CONTROL_SUBCARRIERS"]

# Before any EVM feedback arrives both ends fall back to a fixed agreed set
# (the paper's Fig. 10(a) demo uses eight contiguous data subcarriers).
DEFAULT_CONTROL_SUBCARRIERS: Tuple[int, ...] = tuple(range(9, 17))


@dataclass(frozen=True)
class SilencePlan:
    """A concrete placement of silence symbols for one packet.

    Attributes
    ----------
    mask:
        ``(n_symbols, 48)`` bool, True = transmit this data-subcarrier
        symbol at zero power.
    embedded_bits:
        The control bits actually carried (a prefix of what was offered if
        the packet was too short).
    n_silences:
        Total silence symbols inserted.
    """

    mask: np.ndarray
    embedded_bits: np.ndarray
    n_silences: int


class SilencePlanner:
    """Maps control bits onto the control-subcarrier symbol stream.

    Parameters
    ----------
    control_subcarriers:
        Logical data-subcarrier indices (0..47) carrying the control
        channel, as selected by the receiver's EVM feedback.
    codec:
        Interval codec (k = 4 in the paper).
    """

    def __init__(
        self,
        control_subcarriers: Sequence[int] = DEFAULT_CONTROL_SUBCARRIERS,
        codec: Optional[IntervalCodec] = None,
    ):
        subcarriers = [int(c) for c in control_subcarriers]
        if not subcarriers:
            raise ValueError("need at least one control subcarrier")
        if len(set(subcarriers)) != len(subcarriers):
            raise ValueError("control subcarriers must be distinct")
        if any(not 0 <= c < N_DATA_SUBCARRIERS for c in subcarriers):
            raise ValueError("control subcarrier indices must be in 0..47")
        self.control_subcarriers = sorted(subcarriers)
        self.codec = codec or IntervalCodec()

    # ------------------------------------------------------------------

    @property
    def n_control(self) -> int:
        return len(self.control_subcarriers)

    def stream_length(self, n_symbols: int) -> int:
        """Control-stream positions available in an ``n_symbols`` packet."""
        return n_symbols * self.n_control

    def capacity_bits(self, n_symbols: int, worst_case: bool = False) -> int:
        """Control bits one packet can carry.

        ``worst_case=True`` assumes every interval takes its maximum length
        (the guaranteed capacity); otherwise the expected capacity for
        uniform bits is returned.
        """
        stream = self.stream_length(n_symbols)
        k = self.codec.k
        if worst_case:
            per_interval = self.codec.max_interval + 1
        else:
            per_interval = self.codec.max_interval / 2.0 + 1.0
        n_intervals = max(0, int((stream - 1) // per_interval))
        return n_intervals * k

    # ------------------------------------------------------------------

    def _position_to_cell(self, position: int) -> Tuple[int, int]:
        slot = position // self.n_control
        subcarrier = self.control_subcarriers[position % self.n_control]
        return slot, subcarrier

    def plan(self, control_bits: Sequence[int], n_symbols: int) -> SilencePlan:
        """Place as many whole k-bit groups of ``control_bits`` as fit.

        The planner greedily embeds the longest prefix whose silence
        positions stay inside the packet's control stream; the caller keeps
        the unembedded suffix for the next packet.
        """
        bits = np.asarray(control_bits, dtype=np.uint8)
        k = self.codec.k
        usable = (bits.size // k) * k
        bits = bits[:usable]

        stream = self.stream_length(n_symbols)
        mask = np.zeros((n_symbols, N_DATA_SUBCARRIERS), dtype=bool)
        if stream < 1 or n_symbols == 0:
            return SilencePlan(mask=mask, embedded_bits=bits[:0], n_silences=0)

        positions: List[int] = [0]
        n_groups = 0
        for value in self.codec.bits_to_intervals(bits):
            nxt = positions[-1] + value + 1
            if nxt >= stream:
                break
            positions.append(nxt)
            n_groups += 1

        if n_groups == 0:
            # Nothing fits beyond (possibly) the bare start marker; send no
            # silences at all so the receiver sees an empty message.
            return SilencePlan(mask=mask, embedded_bits=bits[:0], n_silences=0)

        for position in positions:
            slot, subcarrier = self._position_to_cell(position)
            mask[slot, subcarrier] = True
        return SilencePlan(
            mask=mask,
            embedded_bits=bits[: n_groups * k],
            n_silences=len(positions),
        )

    # ------------------------------------------------------------------

    def mask_to_positions(self, mask: np.ndarray) -> List[int]:
        """Invert a (possibly detected) mask into control-stream positions."""
        mask = np.asarray(mask, dtype=bool)
        positions = []
        for slot in range(mask.shape[0]):
            for idx, subcarrier in enumerate(self.control_subcarriers):
                if mask[slot, subcarrier]:
                    positions.append(slot * self.n_control + idx)
        return positions

    def recover_bits(self, mask: np.ndarray) -> np.ndarray:
        """Decode control bits from a detected silence mask.

        Raises ``ValueError`` when the detected pattern is inconsistent
        (an interval longer than the codec allows — i.e. a missed silence).
        """
        return self.codec.positions_to_bits(self.mask_to_positions(mask))
