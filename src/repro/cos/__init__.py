"""CoS — the paper's contribution: a free control channel in silence symbols.

Components mirror Fig. 8's architecture:

* :class:`~repro.cos.intervals.IntervalCodec` — control bits <-> intervals;
* :class:`~repro.cos.silence.SilencePlanner` — the power controller;
* :class:`~repro.cos.energy.EnergyDetector` — symbol-level silence location;
* :mod:`repro.cos.evm` — per-subcarrier EVM (eq. (1)) and ∇EVM (eq. (2));
* :class:`~repro.cos.selection.SubcarrierSelector` — weak-subcarrier choice
  plus the one-symbol feedback vector;
* :mod:`repro.cos.evd` — erasure Viterbi decoding (eq. (7)–(8));
* :class:`~repro.cos.rate_control.ControlRateController` — SNR-indexed
  control-message rate with failure fallback;
* :class:`~repro.cos.link.CosLink` — the closed loop.
"""

from repro.cos.bitmap_coding import BitmapPlanner
from repro.cos.energy import DetectionReport, EnergyDetector
from repro.cos.evd import ErasureViterbiDecoder, erase_bit_metrics
from repro.cos.evm import error_vector_magnitudes, nabla_evm, per_subcarrier_evm
from repro.cos.flashback import FlashbackDetector, FlashbackTransmitter, FlashPlan
from repro.cos.intervals import IntervalCodec
from repro.cos.link import (
    CosLink,
    CosReceiver,
    CosRxResult,
    CosTransmitter,
    CosTxRecord,
    ExchangeOutcome,
    LinkStats,
    reconstruct_reference_symbols,
)
from repro.cos.ml_detection import MlSilenceDetector
from repro.cos.predictor import EvmPredictor
from repro.cos.messages import (
    AckMessage,
    AirtimeGrant,
    ControlMessage,
    LoadReport,
    RateRequest,
    decode_message,
    encode_message,
)
from repro.cos.rate_control import (
    DEFAULT_RM_TABLE,
    ControlAllocation,
    ControlRateController,
    ControlRateTable,
)
from repro.cos.selection import FeedbackCodec, SelectionResult, SubcarrierSelector
from repro.cos.stream import ReliableControlReceiver, ReliableControlSender
from repro.cos.silence import DEFAULT_CONTROL_SUBCARRIERS, SilencePlan, SilencePlanner
from repro.cos.visualize import render_silence_grid

__all__ = [
    "BitmapPlanner",
    "DetectionReport",
    "EnergyDetector",
    "ErasureViterbiDecoder",
    "erase_bit_metrics",
    "error_vector_magnitudes",
    "nabla_evm",
    "per_subcarrier_evm",
    "FlashbackDetector",
    "FlashbackTransmitter",
    "FlashPlan",
    "IntervalCodec",
    "MlSilenceDetector",
    "EvmPredictor",
    "CosLink",
    "CosReceiver",
    "CosRxResult",
    "CosTransmitter",
    "CosTxRecord",
    "ExchangeOutcome",
    "LinkStats",
    "reconstruct_reference_symbols",
    "AckMessage",
    "AirtimeGrant",
    "ControlMessage",
    "LoadReport",
    "RateRequest",
    "decode_message",
    "encode_message",
    "DEFAULT_RM_TABLE",
    "ControlAllocation",
    "ControlRateController",
    "ControlRateTable",
    "FeedbackCodec",
    "SelectionResult",
    "SubcarrierSelector",
    "DEFAULT_CONTROL_SUBCARRIERS",
    "SilencePlan",
    "SilencePlanner",
    "ReliableControlReceiver",
    "ReliableControlSender",
    "render_silence_grid",
]
