"""Flashback-style baseline: control via intended *interference* spikes.

The closest prior art the paper argues against ([20] hJam, [21]
Flashback, §V): instead of silencing its own symbols, a node injects
short high-power time-domain spikes ("flashes") on top of the
transmission and encodes bits in the flash positions.

Modelled faithfully to the original design:

* a flash is a **single-sample** spike of ``flash_power`` times the data
  sample power (the paper quotes 64x).  The FFT spreads its energy evenly
  over all 64 bins, so the flashed OFDM symbol sees roughly one extra
  signal-power's worth of wideband interference — degraded, not erased;
* the receiver detects flashes in the **time domain** (a 64x spike is
  unmistakable) and interval-decodes their symbol positions;
* we grant the baseline perfect sample alignment, which real Flashback —
  transmitted by a *different*, unsynchronised node — does not get.

The measurable critiques from §V, which the tests pin down:

* **detect/harm dilemma** — a spike strong enough to stand clear of
  OFDM's peak-to-average ratio (~64x) puts signal-level interference on
  every subcarrier of its symbol (SIR ~0 dB), and because 802.11a
  interleaves per symbol, that symbol's data is unrecoverable: the
  flashed packet dies.  A gentle spike (~8x) lets the data live but
  drowns in the signal's own PAPR peaks — undetectable.  CoS's silences
  have *infinite* negative contrast at zero transmit power, dissolving
  the dilemma;
* **energy** — each flash costs ``flash_power`` sample-energies of extra
  transmit power; silences save energy;
* **rate** — one flash lane per packet versus one CoS lane per control
  subcarrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cos.intervals import IntervalCodec
from repro.phy.params import CP_LEN, SYMBOL_SAMPLES
from repro.phy.preamble import PREAMBLE_SAMPLES
from repro.utils.rng import RngLike, make_rng

__all__ = ["FlashPlan", "FlashbackTransmitter", "FlashbackDetector", "FLASH_POWER"]

FLASH_POWER = 64.0  # spike power relative to unit data sample power
_FLASH_OFFSET = CP_LEN + 7  # sample within the symbol carrying the spike


@dataclass(frozen=True)
class FlashPlan:
    """Chosen flash positions for one packet."""

    symbol_indices: np.ndarray  # OFDM data-symbol indices carrying a flash
    embedded_bits: np.ndarray

    @property
    def n_flashes(self) -> int:
        return int(self.symbol_indices.size)


class FlashbackTransmitter:
    """Adds interval-coded single-sample flashes onto a waveform."""

    def __init__(self, codec: Optional[IntervalCodec] = None,
                 flash_power: float = FLASH_POWER, rng: RngLike = None):
        if flash_power <= 0:
            raise ValueError("flash_power must be positive")
        self.codec = codec or IntervalCodec()
        self.flash_power = flash_power
        self.rng = make_rng(rng)

    def plan(self, control_bits: Sequence[int], n_data_symbols: int) -> FlashPlan:
        """Interval-code bits onto OFDM-symbol positions (a single lane)."""
        bits = np.asarray(control_bits, dtype=np.uint8)
        k = self.codec.k
        bits = bits[: (bits.size // k) * k]
        positions = [0]
        n_groups = 0
        for value in self.codec.bits_to_intervals(bits):
            nxt = positions[-1] + value + 1
            if nxt >= n_data_symbols:
                break
            positions.append(nxt)
            n_groups += 1
        if n_groups == 0:
            return FlashPlan(
                symbol_indices=np.zeros(0, dtype=np.int64),
                embedded_bits=bits[:0],
            )
        return FlashPlan(
            symbol_indices=np.asarray(positions, dtype=np.int64),
            embedded_bits=bits[: n_groups * k],
        )

    def apply(self, waveform: np.ndarray, plan: FlashPlan) -> np.ndarray:
        """Add one spike per flashed symbol (perfect sample alignment)."""
        out = np.asarray(waveform, dtype=np.complex128).copy()
        amp = np.sqrt(self.flash_power)
        for symbol_idx in plan.symbol_indices:
            pos = (
                PREAMBLE_SAMPLES
                + SYMBOL_SAMPLES * (1 + int(symbol_idx))
                + _FLASH_OFFSET
            )
            if pos < out.size:
                phase = np.exp(2j * np.pi * self.rng.random())
                out[pos] += amp * phase
        return out

    def energy_cost(self, plan: FlashPlan) -> float:
        """Extra transmit energy, in units of data-sample energies."""
        return self.flash_power * plan.n_flashes


class FlashbackDetector:
    """Detects flashes as time-domain amplitude spikes."""

    def __init__(self, threshold_factor: float = 25.0,
                 codec: Optional[IntervalCodec] = None):
        if threshold_factor <= 1.0:
            raise ValueError("threshold_factor must exceed 1")
        self.threshold_factor = threshold_factor
        self.codec = codec or IntervalCodec()

    def detect(self, samples: np.ndarray, n_data_symbols: int) -> np.ndarray:
        """Flashed data-symbol indices from the raw received waveform."""
        samples = np.asarray(samples, dtype=np.complex128)
        power = np.abs(samples) ** 2
        if power.size == 0:
            return np.zeros(0, dtype=np.int64)
        floor = np.mean(power)
        spikes = np.nonzero(power > self.threshold_factor * floor)[0]
        symbols = (spikes - PREAMBLE_SAMPLES) // SYMBOL_SAMPLES - 1
        symbols = symbols[(symbols >= 0) & (symbols < n_data_symbols)]
        return np.unique(symbols)

    def recover_bits(self, samples: np.ndarray, n_data_symbols: int) -> np.ndarray:
        """Interval-decode the detected flash positions."""
        positions = self.detect(samples, n_data_symbols)
        return self.codec.positions_to_bits(positions.tolist())
