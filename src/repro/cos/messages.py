"""Typed control messages carried over the CoS channel.

The paper motivates CoS with upper-layer uses — access coordination,
resource allocation, load balancing (§I).  This module gives the examples
and tests a small, concrete message vocabulary: each message serialises to
a 4-bit type tag plus a fixed-width payload, with total widths chosen as
multiples of k = 4 so messages pack cleanly into interval groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Type

import numpy as np

from repro.utils.bitops import bits_to_int, int_to_bits

__all__ = [
    "ControlMessage",
    "AckMessage",
    "LoadReport",
    "RateRequest",
    "AirtimeGrant",
    "encode_message",
    "decode_message",
]

_TYPE_BITS = 4


@dataclass(frozen=True)
class ControlMessage:
    """Base class; subclasses define TYPE_ID and field widths."""

    TYPE_ID: ClassVar[int] = -1
    FIELDS: ClassVar[Dict[str, int]] = {}

    def to_bits(self) -> np.ndarray:
        parts = [int_to_bits(self.TYPE_ID, _TYPE_BITS, lsb_first=False)]
        for name, width in self.FIELDS.items():
            parts.append(int_to_bits(getattr(self, name), width, lsb_first=False))
        return np.concatenate(parts)

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "ControlMessage":
        bits = np.asarray(bits, dtype=np.uint8)
        expected = cls.n_bits()
        if bits.size != expected:
            raise ValueError(f"{cls.__name__} needs {expected} bits, got {bits.size}")
        offset = _TYPE_BITS
        kwargs = {}
        for name, width in cls.FIELDS.items():
            kwargs[name] = bits_to_int(bits[offset : offset + width], lsb_first=False)
            offset += width
        return cls(**kwargs)

    @classmethod
    def n_bits(cls) -> int:
        return _TYPE_BITS + sum(cls.FIELDS.values())


@dataclass(frozen=True)
class AckMessage(ControlMessage):
    """Block-ack style acknowledgement of a sequence number (16 bits)."""

    seq: int = 0
    TYPE_ID: ClassVar[int] = 1
    FIELDS: ClassVar[Dict[str, int]] = {"seq": 12}


@dataclass(frozen=True)
class LoadReport(ControlMessage):
    """AP load report for client steering / load balancing (16 bits)."""

    station_count: int = 0  # 0..255
    load_level: int = 0  # quantised utilisation 0..15
    TYPE_ID: ClassVar[int] = 2
    FIELDS: ClassVar[Dict[str, int]] = {"station_count": 8, "load_level": 4}


@dataclass(frozen=True)
class RateRequest(ControlMessage):
    """Receiver asks the sender to switch PHY rate (8 bits)."""

    rate_index: int = 0  # index into RATES_MBPS
    TYPE_ID: ClassVar[int] = 3
    FIELDS: ClassVar[Dict[str, int]] = {"rate_index": 4}


@dataclass(frozen=True)
class AirtimeGrant(ControlMessage):
    """Access coordination: grant a station a number of tx slots (20 bits)."""

    station: int = 0  # 0..255
    slots: int = 0  # 0..255
    TYPE_ID: ClassVar[int] = 4
    FIELDS: ClassVar[Dict[str, int]] = {"station": 8, "slots": 8}


_REGISTRY: Dict[int, Type[ControlMessage]] = {
    cls.TYPE_ID: cls for cls in (AckMessage, LoadReport, RateRequest, AirtimeGrant)
}


def encode_message(message: ControlMessage) -> np.ndarray:
    """Serialise a message to its bit representation."""
    if message.TYPE_ID not in _REGISTRY:
        raise ValueError(f"unregistered message type {type(message).__name__}")
    return message.to_bits()


def decode_message(bits: np.ndarray) -> ControlMessage:
    """Parse one message from ``bits`` (which must be exactly one message)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size < _TYPE_BITS:
        raise ValueError("too few bits for a message header")
    type_id = bits_to_int(bits[:_TYPE_BITS], lsb_first=False)
    try:
        cls = _REGISTRY[type_id]
    except KeyError:
        raise ValueError(f"unknown message type id {type_id}") from None
    return cls.from_bits(bits)
