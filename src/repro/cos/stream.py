"""Reliable in-order byte delivery over the lossy CoS control channel.

The raw CoS channel is a datagram service: each data packet carries some
control bits, and a missed/spurious silence loses that packet's message.
Applications that need more (configuration blobs, multi-part reports) can
run this minimal stop-and-wait ARQ on top:

* the sender splits its payload into fixed chunks, each framed as
  ``seq (4b) | data (16b) | checksum (4b)`` — 24 bits, a whole number of
  interval groups;
* the receiver validates the checksum, delivers in-order chunks, ignores
  duplicates, and returns the next-expected sequence number as its ack
  (carried back over the reverse link's CoS channel);
* the sender retransmits the current chunk until it is acked.

Stop-and-wait is the right complexity here: a CoS carrier departs with
every data packet anyway, so the "window" is the data traffic itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.bitops import bits_to_bytes, bits_to_int, bytes_to_bits, int_to_bits

__all__ = ["CHUNK_BITS", "FRAME_BITS", "ReliableControlSender", "ReliableControlReceiver"]

SEQ_BITS = 4
CHUNK_BITS = 16
CHECKSUM_BITS = 4
FRAME_BITS = SEQ_BITS + CHUNK_BITS + CHECKSUM_BITS
_SEQ_MOD = 1 << SEQ_BITS


def _checksum(bits: np.ndarray) -> int:
    """4-bit XOR of the header+data nibbles."""
    nibbles = bits.reshape(-1, 4)
    out = 0
    for nibble in nibbles:
        out ^= bits_to_int(nibble, lsb_first=False)
    return out


def _frame(seq: int, chunk_bits: np.ndarray) -> np.ndarray:
    body = np.concatenate([int_to_bits(seq, SEQ_BITS, lsb_first=False), chunk_bits])
    return np.concatenate([body, int_to_bits(_checksum(body), CHECKSUM_BITS, lsb_first=False)])


def _parse(frame_bits: np.ndarray) -> Optional[tuple]:
    frame_bits = np.asarray(frame_bits, dtype=np.uint8)
    if frame_bits.size != FRAME_BITS:
        return None
    body = frame_bits[: SEQ_BITS + CHUNK_BITS]
    check = bits_to_int(frame_bits[SEQ_BITS + CHUNK_BITS :], lsb_first=False)
    if _checksum(body) != check:
        return None
    seq = bits_to_int(body[:SEQ_BITS], lsb_first=False)
    return seq, body[SEQ_BITS:]


class ReliableControlSender:
    """Stop-and-wait sender; one frame per outgoing data packet."""

    def __init__(self, data: bytes):
        if not data:
            raise ValueError("data must be non-empty")
        bits = bytes_to_bits(data)
        pad = (-bits.size) % CHUNK_BITS
        bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
        self._chunks = bits.reshape(-1, CHUNK_BITS)
        self._n_pad_bits = pad
        self._next = 0  # index of the first unacked chunk

    @property
    def done(self) -> bool:
        return self._next >= len(self._chunks)

    @property
    def chunks_total(self) -> int:
        return len(self._chunks)

    def next_payload(self) -> np.ndarray:
        """The control bits to embed in the next data packet."""
        if self.done:
            raise StopIteration("all chunks acknowledged")
        seq = self._next % _SEQ_MOD
        return _frame(seq, self._chunks[self._next])

    def on_ack(self, ack_seq: int) -> None:
        """Process the receiver's cumulative ack (next expected seq)."""
        if self.done:
            return
        expected_ack = (self._next + 1) % _SEQ_MOD
        if ack_seq % _SEQ_MOD == expected_ack:
            self._next += 1


class ReliableControlReceiver:
    """Stop-and-wait receiver; returns the cumulative ack to send back."""

    def __init__(self):
        self._chunks: list = []

    @property
    def chunks_received(self) -> int:
        return len(self._chunks)

    def on_payload(self, control_bits: np.ndarray) -> int:
        """Consume a received frame; returns the ack (next expected seq).

        Corrupt or out-of-order frames leave the state unchanged (the
        repeated ack triggers the sender's retransmission).
        """
        parsed = _parse(np.asarray(control_bits, dtype=np.uint8))
        if parsed is not None:
            seq, chunk = parsed
            if seq == len(self._chunks) % _SEQ_MOD:
                self._chunks.append(chunk)
        return len(self._chunks) % _SEQ_MOD

    def data(self, n_bytes: Optional[int] = None) -> bytes:
        """Bytes assembled so far (optionally truncated to ``n_bytes``)."""
        if not self._chunks:
            return b""
        bits = np.concatenate(self._chunks)
        usable = (bits.size // 8) * 8
        out = bits_to_bytes(bits[:usable])
        return out if n_bytes is None else out[:n_bytes]
