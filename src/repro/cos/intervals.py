"""Interval modulation: control bits <-> gaps between silence symbols.

CoS encodes k bits (k = 4 in the paper) in the number of *normal* symbols
between two consecutive silence symbols on the control subcarriers
(§II-A).  The first silence symbol marks the start of the message; each
subsequent interval of length v in [0, 2^k - 1] spells one k-bit group,
MSB first (the paper's example maps "0010" -> 2 and "0110" -> 6).

Positions are indices into the *control symbol stream*: the control
subcarriers of each OFDM symbol scanned slot-major (all control
subcarriers of slot 1, then slot 2, …) — consistent with Fig. 1(a), where
S1,4 followed by S2,5 over six subcarriers is an interval of 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.bitops import bits_to_int, int_to_bits

__all__ = ["IntervalCodec"]


@dataclass(frozen=True)
class IntervalCodec:
    """Bidirectional mapping between bit strings and silence positions.

    Parameters
    ----------
    k:
        Bits per interval; the maximum interval length is ``2**k - 1``.
    """

    k: int = 4

    def __post_init__(self):
        if not 1 <= self.k <= 16:
            raise ValueError("k must be in 1..16")

    @property
    def max_interval(self) -> int:
        return (1 << self.k) - 1

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def bits_to_intervals(self, bits: Sequence[int]) -> List[int]:
        """Group ``bits`` (length multiple of k) into interval values."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size % self.k != 0:
            raise ValueError(f"bit count {bits.size} is not a multiple of k={self.k}")
        groups = bits.reshape(-1, self.k)
        return [bits_to_int(g, lsb_first=False) for g in groups]

    def bits_to_positions(self, bits: Sequence[int]) -> List[int]:
        """Silence-symbol positions in the control stream for ``bits``.

        Position 0 is always silent (the start marker); each interval v
        places the next silence v + 1 positions later.
        """
        positions = [0]
        for value in self.bits_to_intervals(bits):
            positions.append(positions[-1] + value + 1)
        return positions

    def positions_needed(self, n_bits: int) -> int:
        """Worst-case stream length for ``n_bits`` (every interval maximal)."""
        if n_bits % self.k != 0:
            raise ValueError(f"bit count {n_bits} is not a multiple of k={self.k}")
        n_intervals = n_bits // self.k
        return 1 + n_intervals * (self.max_interval + 1)

    def expected_positions(self, n_bits: int) -> float:
        """Average stream length for uniform random bits.

        Each interval consumes E[v] + 1 = (2^k - 1)/2 + 1 positions.
        """
        n_intervals = n_bits / self.k
        return 1 + n_intervals * ((self.max_interval / 2.0) + 1.0)

    def silences_for(self, n_bits: int) -> int:
        """Silence symbols spent on ``n_bits`` (start marker + one each)."""
        if n_bits % self.k != 0:
            raise ValueError(f"bit count {n_bits} is not a multiple of k={self.k}")
        return 1 + n_bits // self.k

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def positions_to_bits(self, positions: Sequence[int]) -> np.ndarray:
        """Recover bits from detected silence positions (sorted ascending).

        Intervals larger than ``max_interval`` are invalid — they signal a
        missed silence symbol — and raise ``ValueError`` so callers can
        count the message as lost rather than silently corrupting it.
        """
        positions = sorted(int(p) for p in positions)
        if len(positions) < 2:
            return np.zeros(0, dtype=np.uint8)
        out: List[np.ndarray] = []
        for prev, cur in zip(positions, positions[1:]):
            value = cur - prev - 1
            if value < 0:
                raise ValueError("duplicate silence positions")
            if value > self.max_interval:
                raise ValueError(
                    f"interval {value} exceeds max {self.max_interval} "
                    "(missed silence symbol?)"
                )
            out.append(int_to_bits(value, self.k, lsb_first=False))
        return np.concatenate(out)
