"""End-to-end CoS link: the architecture of Fig. 8, in software.

``CosTransmitter`` adds the power-controller path to the 802.11a
transmitter: control bits from a queue are interval-coded into silence
positions on the control subcarriers the receiver fed back, at the rate
the adaptive controller allows.

``CosReceiver`` adds the energy-detector path: silences are located on the
raw FFT grid, interpreted into control bits, and passed to the erasure
Viterbi decoding as zeroed bit metrics.  After a CRC-clean packet it
re-encodes the decoded bits, reconstructs the ideal constellation points,
computes per-subcarrier EVM (silences excluded) and selects the weak
subcarriers for the next packet (§III-D).

``CosLink`` closes the loop over an :class:`~repro.channel.IndoorChannel`:
NIC-SNR-driven data-rate adaptation, subcarrier-selection feedback (only
delivered when the data packet succeeded, as in the paper), control-rate
fallback on failure, and walking-speed channel evolution between packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.channel.link import IndoorChannel
from repro.cos.energy import DetectionReport, EnergyDetector
from repro.obs.flight import current_recorder
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.cos.evm import per_subcarrier_evm
from repro.cos.intervals import IntervalCodec
from repro.cos.predictor import EvmPredictor
from repro.cos.rate_control import ControlAllocation, ControlRateController
from repro.cos.selection import SelectionResult, SubcarrierSelector
from repro.cos.silence import DEFAULT_CONTROL_SUBCARRIERS, SilencePlan, SilencePlanner
from repro.phy.convcode import conv_encode, puncture
from repro.phy.frames import build_mpdu, parse_mpdu
from repro.phy.interleaver import interleave
from repro.phy.modulation import get_modulation
from repro.phy.params import N_DATA_SUBCARRIERS, PhyRate
from repro.phy.receiver import Receiver, RxResult
from repro.phy.transmitter import Transmitter, TxFrame
from repro.rateadapt import RateAdapter

__all__ = [
    "reconstruct_reference_symbols",
    "CosTxRecord",
    "CosRxResult",
    "CosTransmitter",
    "CosReceiver",
    "ExchangeOutcome",
    "CosLink",
    "OperatingPoint",
    "control_group_accuracy",
    "measure_operating_point",
]


def control_group_accuracy(
    sent: np.ndarray, received: np.ndarray, k: int = 4
) -> float:
    """Fraction of k-bit interval groups delivered intact, in order.

    This is the granularity at which the paper reports "detection
    accuracy of control messages": one missed/spurious silence breaks
    the groups after it, not the ones before.  Returns 1.0 when no
    control bits were sent.
    """
    n_groups = sent.size // k
    if n_groups == 0:
        return 1.0
    good = 0
    for g in range(n_groups):
        lo, hi = g * k, (g + 1) * k
        if hi > received.size:
            break
        if np.array_equal(sent[lo:hi], received[lo:hi]):
            good += 1
        else:
            break
    return good / n_groups


def reconstruct_reference_symbols(scrambled_bits: np.ndarray, rate: PhyRate) -> np.ndarray:
    """Re-encode decoded (still-scrambled) bits into ideal symbols.

    This is the paper's post-CRC re-mapping step: once the packet decodes
    cleanly, the transmitted constellation points are known exactly and
    EVM can be computed without a pilot-only approximation.
    """
    coded = puncture(conv_encode(np.asarray(scrambled_bits, dtype=np.uint8)), rate.code_rate)
    interleaved = interleave(coded, rate)
    modulation = get_modulation(rate.modulation)
    return modulation.map_bits(interleaved).reshape(-1, N_DATA_SUBCARRIERS)


# ---------------------------------------------------------------------------
# Transmitter
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CosTxRecord:
    """What one CoS transmission actually put on the air."""

    frame: TxFrame
    plan: SilencePlan
    allocation: ControlAllocation
    control_subcarriers: List[int]


class CosTransmitter:
    """802.11a transmitter with the CoS power-controller extension."""

    def __init__(
        self,
        controller: Optional[ControlRateController] = None,
        codec: Optional[IntervalCodec] = None,
        control_subcarriers: Sequence[int] = DEFAULT_CONTROL_SUBCARRIERS,
    ):
        self.codec = codec or IntervalCodec()
        self.controller = controller or ControlRateController(codec=self.codec)
        self.control_subcarriers = list(control_subcarriers)
        self._phy = Transmitter()
        self._queue: List[int] = []

    # -- control plane --------------------------------------------------

    def enqueue_control(self, bits: Sequence[int]) -> None:
        """Append control bits to the outgoing queue."""
        self._queue.extend(int(b) & 1 for b in bits)

    @property
    def backlog_bits(self) -> int:
        return len(self._queue)

    def update_control_subcarriers(self, subcarriers: Sequence[int]) -> None:
        """Apply the receiver's subcarrier-selection feedback."""
        subcarriers = sorted(set(int(c) for c in subcarriers))
        if subcarriers:
            self.control_subcarriers = subcarriers

    # -- data plane ------------------------------------------------------

    def build(self, payload: bytes, rate: PhyRate, measured_snr_db: float) -> CosTxRecord:
        """Build one PPDU carrying ``payload`` plus queued control bits."""
        psdu = build_mpdu(payload)
        n_symbols = rate.n_symbols_for(len(psdu))
        allocation = self.controller.allocation(measured_snr_db, n_symbols)

        with span("cos.tx.plan") as sp:
            planner = SilencePlanner(self.control_subcarriers, self.codec)
            offered = np.asarray(
                self._queue[: allocation.max_control_bits], dtype=np.uint8
            )
            plan = planner.plan(offered, n_symbols)
            del self._queue[: plan.embedded_bits.size]
            sp.set(n_silences=plan.n_silences,
                   embedded_bits=int(plan.embedded_bits.size))

        frame = self._phy.transmit(psdu, rate, silence_mask=plan.mask)

        registry = get_registry()
        registry.counter(
            "repro_tx_packets_total", help="CoS PPDUs built."
        ).inc()
        registry.counter(
            "repro_tx_silences_total", help="Silence symbols inserted."
        ).inc(plan.n_silences)
        registry.counter(
            "repro_tx_control_bits_total", help="Control bits embedded."
        ).inc(int(plan.embedded_bits.size))

        return CosTxRecord(
            frame=frame,
            plan=plan,
            allocation=allocation,
            control_subcarriers=list(self.control_subcarriers),
        )


# ---------------------------------------------------------------------------
# Receiver
# ---------------------------------------------------------------------------


@dataclass
class CosRxResult:
    """Everything a CoS receiver extracts from one PPDU."""

    phy: RxResult
    detection: Optional[DetectionReport]
    control_bits: np.ndarray
    control_error: Optional[str]
    evms: Optional[np.ndarray]
    selection: Optional[SelectionResult]

    @property
    def data_ok(self) -> bool:
        return self.phy.ok

    @property
    def payload(self) -> bytes:
        return self.phy.mpdu.payload


class CosReceiver:
    """802.11a receiver with energy detection, EVD, and EVM feedback."""

    def __init__(
        self,
        detector: Optional[EnergyDetector] = None,
        selector: Optional[SubcarrierSelector] = None,
        codec: Optional[IntervalCodec] = None,
        control_subcarriers: Sequence[int] = DEFAULT_CONTROL_SUBCARRIERS,
        predictor: Optional[EvmPredictor] = None,
        phy_receiver: Optional[Receiver] = None,
    ):
        self.detector = detector or EnergyDetector()
        self.selector = selector or SubcarrierSelector()
        self.codec = codec or IntervalCodec()
        self.control_subcarriers = list(control_subcarriers)
        self.predictor = predictor
        self._phy = phy_receiver or Receiver()

    def update_control_subcarriers(self, subcarriers: Sequence[int]) -> None:
        subcarriers = sorted(set(int(c) for c in subcarriers))
        if subcarriers:
            self.control_subcarriers = subcarriers

    def receive(
        self,
        waveform: np.ndarray,
        next_target_count: Optional[int] = None,
    ) -> CosRxResult:
        """Process one PPDU: detect silences, EVD-decode, extract feedback.

        ``next_target_count`` is the control-subcarrier count the rate
        controller wants for the *next* packet (None keeps the threshold
        rule of §III-D).
        """
        obs = self._phy.observe(waveform)
        if obs is None or obs.signal is None:
            if obs is not None:
                phy_result = self._phy.decode(obs)
            else:
                phy_result = RxResult(mpdu=parse_mpdu(None), signal=None, observation=None)
            return CosRxResult(
                phy=phy_result,
                detection=None,
                control_bits=np.zeros(0, dtype=np.uint8),
                control_error="signal field undecodable",
                evms=None,
                selection=None,
            )

        modulation = get_modulation(obs.signal.rate.modulation)
        h_gains = np.abs(obs.h_data) ** 2
        detection = self.detector.detect(
            obs.raw_data_grid,
            self.control_subcarriers,
            obs.noise_var,
            h_gains=h_gains,
            min_symbol_energy=modulation.min_symbol_energy,
        )
        phy_result = self._phy.decode(obs, erasure_mask=detection.mask)

        with span("cos.rx.recover") as sp:
            planner = SilencePlanner(self.control_subcarriers, self.codec)
            control_error: Optional[str] = None
            # Guard: a control subcarrier faded so deep that its *active*
            # symbols sit near the detection threshold cannot host silence
            # signalling — bits "recovered" through it would be garbage.
            # Declare the control message lost; the detected mask still
            # serves as erasure input for data decoding (the safe direction).
            floor = self.detector.threshold_for(obs.noise_var)
            undetectable = [
                c
                for c in self.control_subcarriers
                if modulation.min_symbol_energy * h_gains[c] < 2.0 * floor
            ]
            if undetectable:
                control_bits = np.zeros(0, dtype=np.uint8)
                control_error = (
                    f"control subcarriers {undetectable} too faded for "
                    "silence detection"
                )
            else:
                try:
                    control_bits = planner.recover_bits(detection.mask)
                except ValueError as exc:
                    control_bits = np.zeros(0, dtype=np.uint8)
                    control_error = str(exc)
            sp.set(recovered_bits=int(control_bits.size),
                   error=control_error)

        evms: Optional[np.ndarray] = None
        selection: Optional[SelectionResult] = None
        if phy_result.ok and phy_result.decoded is not None:
            with span("cos.rx.evm") as sp:
                rate = obs.signal.rate
                reference = reconstruct_reference_symbols(
                    phy_result.decoded.scrambled_bits, rate
                )
                evms = per_subcarrier_evm(
                    obs.eq_data_grid[: reference.shape[0]],
                    reference,
                    get_modulation(rate.modulation),
                    exclude_mask=detection.mask[: reference.shape[0]],
                )
                selection_evms = (
                    self.predictor.update(evms) if self.predictor is not None else evms
                )
                selection = self.selector.select(
                    selection_evms,
                    get_modulation(rate.modulation),
                    target_count=next_target_count,
                )
                sp.set(n_selected=len(selection.subcarriers))

        return CosRxResult(
            phy=phy_result,
            detection=detection,
            control_bits=control_bits,
            control_error=control_error,
            evms=evms,
            selection=selection,
        )


# ---------------------------------------------------------------------------
# Closed loop
# ---------------------------------------------------------------------------


@dataclass
class ExchangeOutcome:
    """Per-packet results of :meth:`CosLink.exchange`."""

    data_ok: bool
    control_sent: np.ndarray
    control_received: np.ndarray
    rate_mbps: int
    measured_snr_db: float
    actual_snr_db: float
    n_silences: int
    detection_fp: float
    detection_fn: float
    control_error: Optional[str] = None
    evms: Optional[np.ndarray] = None

    @property
    def control_ok(self) -> bool:
        """True when every embedded control bit was recovered exactly."""
        return (
            self.control_sent.size == self.control_received.size
            and bool(np.all(self.control_sent == self.control_received))
        )

    def control_group_accuracy(self, k: int = 4) -> float:
        """See :func:`control_group_accuracy` (module-level helper)."""
        return control_group_accuracy(self.control_sent, self.control_received, k)


@dataclass
class LinkStats:
    """Aggregates over a :meth:`CosLink.run`."""

    outcomes: List[ExchangeOutcome] = field(default_factory=list)

    @property
    def n_packets(self) -> int:
        return len(self.outcomes)

    @property
    def prr(self) -> float:
        """Packet reception rate (the paper targets >= 99.3 %)."""
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.data_ok for o in self.outcomes]))

    @property
    def control_accuracy(self) -> float:
        """Fraction of packets whose control message arrived intact."""
        with_control = [o for o in self.outcomes if o.control_sent.size > 0]
        if not with_control:
            return 1.0
        return float(np.mean([o.control_ok for o in with_control]))

    @property
    def control_bits_delivered(self) -> int:
        return int(sum(o.control_sent.size for o in self.outcomes if o.control_ok))

    @property
    def message_accuracy(self) -> float:
        """Mean per-group control accuracy (the paper's headline metric)."""
        with_control = [o for o in self.outcomes if o.control_sent.size > 0]
        if not with_control:
            return 1.0
        return float(np.mean([o.control_group_accuracy() for o in with_control]))

    @property
    def total_silences(self) -> int:
        return int(sum(o.n_silences for o in self.outcomes))


class CosLink:
    """A full closed-loop CoS session between two stations.

    Parameters
    ----------
    channel:
        The :class:`IndoorChannel` between the stations.
    adapter:
        Data-rate adaptation (defaults to the paper's SNR thresholds).
    controller:
        Control-message rate controller (shared with the transmitter).
    inter_packet_gap_s:
        Channel evolution applied between packets (frame aggregation in
        the paper keeps this small).
    """

    def __init__(
        self,
        channel: IndoorChannel,
        adapter: Optional[RateAdapter] = None,
        controller: Optional[ControlRateController] = None,
        inter_packet_gap_s: float = 1e-3,
        codec: Optional[IntervalCodec] = None,
    ):
        self.channel = channel
        self.adapter = adapter or RateAdapter()
        self.codec = codec or IntervalCodec()
        self.controller = controller or ControlRateController(codec=self.codec)
        self.inter_packet_gap_s = inter_packet_gap_s
        self.tx = CosTransmitter(controller=self.controller, codec=self.codec)
        self.rx = CosReceiver(codec=self.codec)

    def exchange(self, payload: bytes, control_bits: Sequence[int]) -> ExchangeOutcome:
        """Send one data packet carrying ``control_bits`` over the channel.

        The exchange is fully instrumented: every stage runs under a
        :func:`repro.obs.trace.span` (root span ``cos.exchange``), and
        when a flight recorder is configured the complete decision chain
        is emitted as one :class:`repro.obs.flight.FlightRecord`.
        """
        with span("cos.exchange") as root:
            with span("cos.rate_select"):
                measured = self.channel.measured_snr_db
                actual = self.channel.actual_snr_db
                rate = self.adapter.select(measured)
            root.set(rate_mbps=rate.mbps, measured_snr_db=measured)

            with span("cos.tx.build"):
                self.tx.enqueue_control(control_bits)
                record = self.tx.build(payload, rate, measured)
            # channel.transmit carries its own span (direct child here).
            rx_waveform = self.channel.transmit(record.frame.waveform)

            next_alloc = self.controller.allocation(
                measured, record.frame.n_data_symbols
            )
            with span("cos.rx.receive"):
                result = self.rx.receive(
                    rx_waveform, next_target_count=next_alloc.n_control_subcarriers
                )

            with span("cos.feedback"):
                # Detection accuracy vs ground truth (available in
                # simulation).  A mis-decoded SIGNAL field can leave the
                # detection grid with a different symbol count than what
                # was sent; every silence in the unobserved region counts
                # as missed.
                if (
                    result.detection is not None
                    and result.detection.mask.shape == record.frame.silence_mask.shape
                ):
                    fp, fn = EnergyDetector.confusion(
                        result.detection.mask,
                        record.frame.silence_mask,
                        record.control_subcarriers,
                    )
                else:
                    fp, fn = 0.0, (1.0 if record.plan.n_silences else 0.0)

                # Closed-loop bookkeeping: rate fallback and subcarrier
                # feedback only flow when the data packet (and hence the
                # ACK) succeeded.
                fallback_before = self.controller.in_fallback
                self.controller.on_data_result(result.data_ok)
                fallback_after = self.controller.in_fallback
                if result.data_ok and result.selection is not None:
                    self.tx.update_control_subcarriers(result.selection.subcarriers)
                    self.rx.update_control_subcarriers(result.selection.subcarriers)

                if self.rx.predictor is not None:
                    self.rx.predictor.advance(self.inter_packet_gap_s)
            self.channel.evolve(self.inter_packet_gap_s)

            outcome = ExchangeOutcome(
                data_ok=result.data_ok,
                control_sent=record.plan.embedded_bits,
                control_received=result.control_bits,
                rate_mbps=rate.mbps,
                measured_snr_db=measured,
                actual_snr_db=actual,
                n_silences=record.plan.n_silences,
                detection_fp=fp,
                detection_fn=fn,
                control_error=result.control_error,
                evms=result.evms,
            )
            with span("cos.flight"):
                self._account(outcome, record, result,
                              fallback_before, fallback_after)
            return outcome

    def _account(
        self,
        outcome: ExchangeOutcome,
        record: CosTxRecord,
        result: CosRxResult,
        fallback_before: bool,
        fallback_after: bool,
    ) -> None:
        """Update the metrics registry and emit the flight record."""
        registry = get_registry()
        registry.counter(
            "repro_exchanges_total", help="Closed-loop CoS exchanges."
        ).inc()
        if not outcome.data_ok:
            registry.counter(
                "repro_data_crc_fail_total", help="Exchanges whose data CRC failed."
            ).inc()
        if outcome.control_ok:
            registry.counter(
                "repro_control_bits_delivered_total",
                help="Control bits recovered exactly.",
            ).inc(int(outcome.control_sent.size))

        recorder = current_recorder()
        if recorder is None:
            return
        if fallback_after != fallback_before:
            transition: Optional[str] = "enter" if fallback_after else "exit"
        else:
            transition = None
        evd_erasures = (
            int(np.count_nonzero(result.detection.mask))
            if result.detection is not None
            else 0
        )
        recorder.record(
            rate_mbps=outcome.rate_mbps,
            measured_snr_db=outcome.measured_snr_db,
            actual_snr_db=outcome.actual_snr_db,
            min_required_snr_db=self.adapter.min_required_snr_db(
                record.frame.rate
            ),
            in_fallback=fallback_after,
            fallback_transition=transition,
            allocation=record.allocation,
            control_subcarriers=record.control_subcarriers,
            silence_mask=record.frame.silence_mask,
            detection=result.detection,
            evd_erasures=evd_erasures,
            signal_ok=result.phy.signal is not None,
            crc_ok=outcome.data_ok,
            control_sent=outcome.control_sent,
            control_received=outcome.control_received,
            control_ok=outcome.control_ok,
            control_error=outcome.control_error,
            detection_fp=outcome.detection_fp,
            detection_fn=outcome.detection_fn,
            evm_selected=(
                result.selection.subcarriers if result.selection is not None else None
            ),
        )

    def run(
        self,
        n_packets: int,
        payload: bytes,
        rng: Optional[np.random.Generator] = None,
    ) -> LinkStats:
        """Exchange ``n_packets`` packets with random control messages."""
        rng = rng or np.random.default_rng(0)
        stats = LinkStats()
        for _ in range(n_packets):
            bits = rng.integers(0, 2, size=self.codec.k * 8, dtype=np.uint8)
            stats.outcomes.append(self.exchange(payload, bits))
        return stats


# ---------------------------------------------------------------------------
# Open-loop operating-point measurement (batched)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperatingPoint:
    """Open-loop link measurement at one (channel, rate) point."""

    n_packets: int
    prr: float
    message_accuracy: float
    n_control_packets: int


def measure_operating_point(
    channel: IndoorChannel,
    rate: PhyRate,
    n_packets: int,
    payload: bytes = bytes(256),
    control_bits_per_packet: int = 0,
    codec: Optional[IntervalCodec] = None,
    control_subcarriers: Sequence[int] = DEFAULT_CONTROL_SUBCARRIERS,
    select_subcarriers: bool = True,
    gap_s: float = 1e-3,
    rng: Optional[np.random.Generator] = None,
) -> OperatingPoint:
    """Measure PRR (and optionally CoS control accuracy) at a fixed point.

    Unlike :meth:`CosLink.exchange` this probe is **open-loop**: the rate
    and control subcarriers stay fixed, nothing feeds back, and the only
    channel coupling between packets is :meth:`IndoorChannel.evolve` —
    which runs entirely during transmission.  That independence is what
    lets the whole probe batch flow through the stacked receiver path:
    all ``n_packets`` waveforms are synthesised first, then observed in
    one :meth:`Receiver.observe_many`, energy-detected per packet, and
    decoded in one :meth:`Receiver.decode_many` (batched demap + Viterbi).
    This is the probe engine behind :mod:`repro.phy.surrogate`'s PRR
    sweeps.

    With ``control_bits_per_packet = 0`` the packets are silence-free and
    ``message_accuracy`` is vacuously 1.0; otherwise each packet embeds
    that many random control bits (a multiple of ``codec.k``) and the
    accuracy is the mean per-packet :func:`control_group_accuracy`.  When
    ``select_subcarriers`` is set (the default) a silence-free lead-in
    packet runs §III-D subcarrier selection once, standing in for the
    converged state a closed-loop session reaches through feedback —
    without it the fixed default subcarriers may sit in a fade, where
    :class:`CosReceiver`'s detectability guard (replicated here, per
    packet) declares every control message lost.
    """
    codec = codec or IntervalCodec()
    if control_bits_per_packet % codec.k != 0:
        raise ValueError(
            f"control_bits_per_packet={control_bits_per_packet} is not a "
            f"multiple of codec.k={codec.k}"
        )
    tx = Transmitter()
    rx = Receiver()
    detector = EnergyDetector()
    rng = rng or np.random.default_rng(0)
    psdu = build_mpdu(payload)
    n_symbols = rate.n_symbols_for(len(psdu))
    modulation = get_modulation(rate.modulation)
    control_subcarriers = list(control_subcarriers)

    if control_bits_per_packet and select_subcarriers:
        lead = rx.receive(channel.transmit(tx.transmit(psdu, rate).waveform))
        channel.evolve(gap_s)
        if lead.ok and lead.decoded is not None and lead.observation is not None:
            reference = reconstruct_reference_symbols(
                lead.decoded.scrambled_bits, rate
            )
            evms = per_subcarrier_evm(
                lead.observation.eq_data_grid[: reference.shape[0]],
                reference,
                modulation,
            )
            selection = SubcarrierSelector().select(
                evms, modulation, target_count=len(control_subcarriers)
            )
            if selection.subcarriers:
                control_subcarriers = list(selection.subcarriers)

    planner = SilencePlanner(control_subcarriers, codec)
    waves: List[np.ndarray] = []
    sent_bits: List[np.ndarray] = []
    for _ in range(n_packets):
        if control_bits_per_packet:
            bits = rng.integers(
                0, 2, size=control_bits_per_packet, dtype=np.uint8
            )
            plan = planner.plan(bits, n_symbols)
            frame = tx.transmit(psdu, rate, silence_mask=plan.mask)
            sent_bits.append(plan.embedded_bits)
        else:
            frame = tx.transmit(psdu, rate)
            sent_bits.append(np.zeros(0, dtype=np.uint8))
        waves.append(channel.transmit(frame.waveform))
        channel.evolve(gap_s)

    observations = rx.observe_many(waves) if waves else []
    masks: List[Optional[np.ndarray]] = []
    control_lost: List[bool] = []
    for obs in observations:
        if obs is None or obs.signal is None:
            masks.append(None)
            control_lost.append(True)
            continue
        h_gains = np.abs(obs.h_data) ** 2
        report = detector.detect(
            obs.raw_data_grid,
            control_subcarriers,
            obs.noise_var,
            h_gains=h_gains,
            min_symbol_energy=modulation.min_symbol_energy,
        )
        masks.append(report.mask)
        # CosReceiver's detectability guard: a control subcarrier whose
        # active symbols sit near the detection threshold cannot host
        # silence signalling — the message is lost, though the detected
        # mask still serves as erasure input (the safe direction).
        floor = detector.threshold_for(obs.noise_var)
        control_lost.append(
            any(
                modulation.min_symbol_energy * h_gains[c] < 2.0 * floor
                for c in control_subcarriers
            )
        )
    results = rx.decode_many(observations, masks)

    accuracies: List[float] = []
    for bits, mask, lost in zip(sent_bits, masks, control_lost):
        if bits.size == 0:
            continue
        recovered = np.zeros(0, dtype=np.uint8)
        if mask is not None and not lost:
            try:
                recovered = planner.recover_bits(mask)
            except ValueError:
                pass
        accuracies.append(control_group_accuracy(bits, recovered, codec.k))

    prr = float(np.mean([r.ok for r in results])) if results else 0.0
    accuracy = float(np.mean(accuracies)) if accuracies else 1.0
    return OperatingPoint(
        n_packets=n_packets,
        prr=prr,
        message_accuracy=accuracy,
        n_control_packets=len(accuracies),
    )
