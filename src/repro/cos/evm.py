"""Per-subcarrier error vector magnitude — the paper's channel-quality
metric (eq. (1)) and its temporal-change metric (eq. (2)).

EVM is computed from CRC-clean packets only: the receiver re-encodes the
decoded bits to reconstruct the ideal constellation points, then compares
them with the equalised received symbols (§III-D).  Silence symbols are
excluded — their "error vector" is the signal itself, not channel noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.phy.modulation import Modulation
from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = ["per_subcarrier_evm", "nabla_evm", "error_vector_magnitudes"]


def _validate(received: np.ndarray, reference: np.ndarray) -> None:
    if received.shape != reference.shape:
        raise ValueError(f"shape mismatch: {received.shape} vs {reference.shape}")
    if received.ndim != 2 or received.shape[1] != N_DATA_SUBCARRIERS:
        raise ValueError("expected (n_symbols, 48) symbol grids")


def per_subcarrier_evm(
    received: np.ndarray,
    reference: np.ndarray,
    modulation: Modulation,
    exclude_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """EVM per data subcarrier, eq. (1), as a fraction (multiply by 100 for %).

    Parameters
    ----------
    received / reference:
        ``(n_symbols, 48)`` equalised vs ideal constellation points.
    modulation:
        Supplies the constellation for the RMS reference power
        (1/M * sum |s_m|^2 — unity for the normalised 802.11a maps, but
        computed explicitly to follow the paper's definition).
    exclude_mask:
        ``(n_symbols, 48)`` bool; True cells (silence symbols) are dropped
        from the average.
    """
    received = np.asarray(received, dtype=np.complex128)
    reference = np.asarray(reference, dtype=np.complex128)
    _validate(received, reference)

    err2 = np.abs(received - reference) ** 2
    if exclude_mask is not None:
        exclude_mask = np.asarray(exclude_mask, dtype=bool)
        if exclude_mask.shape != received.shape:
            raise ValueError("exclude_mask shape mismatch")
        weights = (~exclude_mask).astype(np.float64)
    else:
        weights = np.ones_like(err2)

    counts = weights.sum(axis=0)
    sums = (err2 * weights).sum(axis=0)
    mean_err2 = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)

    const = modulation.constellation
    ref_power = float(np.mean(np.abs(const) ** 2))
    return np.sqrt(mean_err2 / ref_power)


def error_vector_magnitudes(
    received: np.ndarray,
    reference: np.ndarray,
    exclude_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Mean |error vector| per subcarrier — the vector D(t) of eq. (2)."""
    received = np.asarray(received, dtype=np.complex128)
    reference = np.asarray(reference, dtype=np.complex128)
    _validate(received, reference)
    err = np.abs(received - reference)
    if exclude_mask is not None:
        keep = ~np.asarray(exclude_mask, dtype=bool)
        counts = keep.sum(axis=0)
        sums = (err * keep).sum(axis=0)
        return np.divide(sums, counts, out=np.zeros(err.shape[1]), where=counts > 0)
    return err.mean(axis=0)


def nabla_evm(d_now: np.ndarray, d_later: np.ndarray) -> float:
    """Normalised EVM change between two snapshots, eq. (2).

    ∇EVM(τ) = ||D(t) − D(t+τ)||_2 / ||D(t+τ)||_2 with the Euclidean norm.
    Small values mean the frequency-diversity pattern is stable and the
    receiver can predict next-packet subcarrier quality.
    """
    d_now = np.asarray(d_now, dtype=np.float64)
    d_later = np.asarray(d_later, dtype=np.float64)
    if d_now.shape != d_later.shape:
        raise ValueError("snapshot shapes differ")
    denom = np.linalg.norm(d_later)
    if denom == 0:
        raise ValueError("reference snapshot has zero norm")
    return float(np.linalg.norm(d_now - d_later) / denom)
