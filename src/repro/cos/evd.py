"""Erasure Viterbi decoding (EVD), §III-E.

EVD marks every detected silence symbol as an *erasure* before
demodulation: the bit metrics of all log2(M) bits of an erased symbol are
set to zero (eq. (7)), so they contribute nothing to any path metric,
while normal symbols keep their max-log metrics (eq. (8)).  Because the
deinterleaver then spreads those zeroed metrics across the codeword, the
standard Viterbi recursion needs no modification — only the metric
calculation changes, exactly as the paper emphasises.

The PHY receiver already implements the metric zeroing given an erasure
mask; this module provides the standalone decoder used by the ablation
study (EVD vs error-only decoding) and the mask plumbing helpers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.phy.convcode import depuncture
from repro.phy.interleaver import deinterleave
from repro.phy.modulation import get_modulation
from repro.phy.params import N_DATA_SUBCARRIERS, PhyRate
from repro.phy.viterbi import ViterbiDecoder

__all__ = ["erase_bit_metrics", "ErasureViterbiDecoder"]


def erase_bit_metrics(llrs: np.ndarray, erasure_mask: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Zero the metrics of erased symbols in a per-symbol-grid LLR stream.

    ``llrs`` is the flat interleaved stream (n_symbols * 48 * n_bpsc);
    ``erasure_mask`` is ``(n_symbols, 48)`` bool.
    """
    llrs = np.asarray(llrs, dtype=np.float64).copy()
    mask = np.asarray(erasure_mask, dtype=bool)
    expected = mask.size * n_bpsc
    if llrs.size != expected:
        raise ValueError(f"LLR stream of {llrs.size} != {expected} for mask {mask.shape}")
    grid = llrs.reshape(mask.shape[0], N_DATA_SUBCARRIERS, n_bpsc)
    grid[mask] = 0.0
    return grid.reshape(-1)


class ErasureViterbiDecoder:
    """Demodulate + (optionally) erase + deinterleave + Viterbi.

    A compact error-and-erasure decoding unit over one packet's equalised
    symbol grid, used directly by the EVD-vs-error-only ablation: with
    ``erasure_mask=None`` the silences are demodulated as if they were
    (worthless) signal and handled as plain symbol errors.
    """

    def __init__(self, rate: PhyRate):
        self.rate = rate
        self.modulation = get_modulation(rate.modulation)
        self._viterbi = ViterbiDecoder(terminated=True)

    def decode(
        self,
        eq_symbols: np.ndarray,
        csi: np.ndarray | float = 1.0,
        erasure_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Decode an ``(n_symbols, 48)`` equalised grid into info bits."""
        return self._viterbi.decode(self._codeword_llrs(eq_symbols, csi, erasure_mask))

    def decode_many(
        self,
        grids: Sequence[np.ndarray],
        csi: np.ndarray | float = 1.0,
        erasure_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[np.ndarray]:
        """Decode a batch of equalised grids in one Viterbi dispatch.

        ``erasure_masks`` pairs each grid with its silence mask (``None``
        entries decode erasure-free).  Bit-for-bit identical to looping
        :meth:`decode`; the batched entry point amortizes kernel dispatch
        — equal-length codewords (the common case: one sounding batch at
        one rate) run through a single backend call.
        """
        if erasure_masks is None:
            erasure_masks = [None] * len(grids)
        if len(erasure_masks) != len(grids):
            raise ValueError(
                f"{len(erasure_masks)} erasure masks for {len(grids)} grids"
            )
        codewords = [
            self._codeword_llrs(grid, csi, mask)
            for grid, mask in zip(grids, erasure_masks)
        ]
        return self._viterbi.decode_many(codewords)

    def _codeword_llrs(
        self,
        eq_symbols: np.ndarray,
        csi: np.ndarray | float,
        erasure_mask: Optional[np.ndarray],
    ) -> np.ndarray:
        """Demap + (optionally) erase + deinterleave + depuncture one grid."""
        eq_symbols = np.atleast_2d(np.asarray(eq_symbols, dtype=np.complex128))
        csi_arr = np.broadcast_to(np.asarray(csi, dtype=np.float64), eq_symbols.shape)
        llrs = self.modulation.demap_soft(eq_symbols.reshape(-1), csi_arr.reshape(-1))
        if erasure_mask is not None:
            llrs = erase_bit_metrics(llrs, erasure_mask, self.modulation.bits_per_symbol)
        deinterleaved = deinterleave(llrs, self.rate)
        return depuncture(deinterleaved, self.rate.code_rate, fill=0.0)
