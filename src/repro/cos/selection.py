"""Control-subcarrier selection and its silence-coded feedback (§III-D).

After a CRC-clean packet the receiver compares each subcarrier's EVM with
half the minimum constellation distance (Dm/2) of the *next* packet's
modulation: a symbol whose error vector exceeds Dm/2 lands in the wrong
decision region, so such subcarriers will produce symbol errors anyway —
making them the cheapest hosts for silence symbols.

The selected set is fed back as a bit vector V occupying a single OFDM
symbol in which a silence on subcarrier j means "j is a control
subcarrier" — CoS bootstraps its own feedback channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.phy.modulation import Modulation
from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = ["SubcarrierSelector", "FeedbackCodec", "SelectionResult"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one selection round.

    Attributes
    ----------
    subcarriers:
        Sorted logical indices (0..47) chosen as control subcarriers.
    bit_vector:
        Length-48 uint8 vector V (1 = selected), the feedback payload.
    threshold:
        The Dm/2 value the EVMs were compared against.
    """

    subcarriers: List[int]
    bit_vector: np.ndarray
    threshold: float


class SubcarrierSelector:
    """EVM-vs-Dm/2 subcarrier selection.

    Parameters
    ----------
    min_count / max_count:
        Bounds on the selected set size.  The paper's threshold rule alone
        can select zero subcarriers on a clean channel (no control channel
        at all) or dozens on a bad one (overwhelming the code budget);
        the rate controller supplies the cap, and ``min_count`` guarantees
        the weakest subcarriers are used even when none cross Dm/2.
    detectability_factor:
        Detectability guard.  Silence detection needs the *weakest active
        constellation point* on a control subcarrier to sit well above the
        noise floor: ``e_min * snr_k >= detectability_factor``, where
        ``e_min`` is the modulation's minimum symbol energy and
        ``snr_k ≈ 1 / EVM_k^2``.  Subcarriers failing the guard (too
        deeply faded — an active symbol there already looks like silence)
        are only used as a last resort.  The per-modulation EVM ceiling is
        ``sqrt(e_min / detectability_factor)``.
    evm_ceiling:
        Explicit ceiling overriding the computed one (mostly for tests).
    """

    def __init__(
        self,
        min_count: int = 1,
        max_count: int = 16,
        detectability_factor: float = 60.0,
        evm_ceiling: Optional[float] = None,
    ):
        if min_count < 0 or max_count < max(min_count, 1):
            raise ValueError("require 0 <= min_count <= max_count and max_count >= 1")
        if detectability_factor <= 0:
            raise ValueError("detectability_factor must be positive")
        if evm_ceiling is not None and evm_ceiling <= 0:
            raise ValueError("evm_ceiling must be positive")
        self.min_count = min_count
        self.max_count = max_count
        self.detectability_factor = detectability_factor
        self.evm_ceiling = evm_ceiling

    def ceiling_for(self, modulation: Modulation) -> float:
        """EVM ceiling above which silences on a subcarrier are undetectable."""
        if self.evm_ceiling is not None:
            return self.evm_ceiling
        return float(np.sqrt(modulation.min_symbol_energy / self.detectability_factor))

    def select(
        self,
        evms: np.ndarray,
        modulation: Modulation,
        target_count: Optional[int] = None,
    ) -> SelectionResult:
        """Choose control subcarriers from per-subcarrier EVM.

        ``evms`` is the EVM *fraction* per data subcarrier (eq. (1)).
        ``target_count`` (from the rate controller) overrides the set size
        while still preferring the weakest subcarriers.
        """
        evms = np.asarray(evms, dtype=np.float64)
        if evms.shape != (N_DATA_SUBCARRIERS,):
            raise ValueError(f"expected 48 EVM values, got shape {evms.shape}")
        # EVM is normalised by RMS constellation power; Dm is a distance in
        # the same normalised space.
        threshold = modulation.min_distance / 2.0

        if target_count is not None:
            count = int(np.clip(target_count, self.min_count, self.max_count))
        else:
            count = int(np.count_nonzero(evms > threshold))
            count = int(np.clip(count, self.min_count, self.max_count))

        # Preference order: weakest *detectable* subcarriers first (highest
        # EVM at or below the ceiling), then the too-dead ones (least dead
        # first) only if the budget cannot otherwise be met.
        ceiling = self.ceiling_for(modulation)
        indices = np.arange(N_DATA_SUBCARRIERS)
        alive = indices[evms <= ceiling]
        dead = indices[evms > ceiling]
        alive_ranked = alive[np.argsort(evms[alive])[::-1]]
        dead_ranked = dead[np.argsort(evms[dead])]
        order = np.concatenate([alive_ranked, dead_ranked])
        chosen = sorted(int(i) for i in order[:count])

        bit_vector = np.zeros(N_DATA_SUBCARRIERS, dtype=np.uint8)
        bit_vector[chosen] = 1
        return SelectionResult(subcarriers=chosen, bit_vector=bit_vector, threshold=threshold)


class FeedbackCodec:
    """Encode/decode the selection bit vector as one silence-coded symbol."""

    @staticmethod
    def encode(subcarriers: Sequence[int]) -> np.ndarray:
        """A ``(1, 48)`` silence mask: silence on each selected subcarrier."""
        mask = np.zeros((1, N_DATA_SUBCARRIERS), dtype=bool)
        for c in subcarriers:
            if not 0 <= int(c) < N_DATA_SUBCARRIERS:
                raise ValueError("subcarrier indices must be in 0..47")
            mask[0, int(c)] = True
        return mask

    @staticmethod
    def decode(mask: np.ndarray) -> List[int]:
        """Recover the selected set from a detected feedback-symbol mask."""
        mask = np.asarray(mask, dtype=bool)
        row = mask.reshape(-1, N_DATA_SUBCARRIERS)[0]
        return [int(i) for i in np.nonzero(row)[0]]
