"""Symbol-level energy detection of silence symbols (§III-B/C).

The receiver inspects the *un-equalised* FFT output: a silence symbol
carries only noise, so its subcarrier magnitude sits at the noise floor,
while an active symbol carries |H_k| worth of signal.  The detection
threshold is set "slightly higher than the estimated noise floor", with
the floor obtained from the pilot-aided estimator of eq. (5)–(6) (the PHY
receiver computes it from pilot residuals and the LTF twins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.kernels.energy import silence_energies, silence_mask
from repro.obs.trace import span
from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = ["DetectionReport", "EnergyDetector"]


@dataclass(frozen=True)
class DetectionReport:
    """Outcome of silence detection over one packet.

    Attributes
    ----------
    mask:
        ``(n_symbols, 48)`` bool — True where a silence was detected
        (always False outside the control subcarriers).
    threshold:
        The energy threshold used (same units as |Y|^2).
    energies:
        ``(n_symbols, n_control)`` raw subcarrier energies on the control
        subcarriers, for diagnostics and the Fig. 10 sweeps.
    """

    mask: np.ndarray
    threshold: float
    energies: np.ndarray


class EnergyDetector:
    """Thresholded symbol-by-symbol energy detector.

    Parameters
    ----------
    margin_db:
        How far above the estimated noise floor the global threshold sits.
        Subcarrier noise energy is exponentially distributed with mean
        sigma^2, so the false-negative probability of a silence symbol is
        exp(-threshold / sigma^2); the 7 dB default (threshold = 5 sigma^2)
        gives FN ≈ 0.7 %, matching the paper's "below 0.01" (Fig. 10(c)).
    adaptive:
        When channel gains are supplied to :meth:`detect`, raise the
        threshold per subcarrier toward the geometric mean of the noise
        floor and the weakest active-symbol energy on that subcarrier —
        never beyond half that symbol energy, so inner QAM points are not
        misread as silence.  This keeps FN low on strong subcarriers
        without inflating FP on weak ones.
    """

    def __init__(self, margin_db: float = 7.0, adaptive: bool = True):
        self.margin_db = margin_db
        self.adaptive = adaptive

    def threshold_for(self, noise_var: float) -> float:
        """Global (noise-floor-only) energy threshold."""
        if noise_var < 0:
            raise ValueError("noise_var must be non-negative")
        return noise_var * (10.0 ** (self.margin_db / 10.0))

    def _per_subcarrier_thresholds(
        self,
        noise_var: float,
        gains: np.ndarray | None,
        min_symbol_energy: float,
    ) -> np.ndarray | float:
        base = self.threshold_for(noise_var)
        if not self.adaptive or gains is None:
            return base
        signal_floor = min_symbol_energy * np.asarray(gains, dtype=np.float64)
        geometric = np.sqrt(np.maximum(noise_var, 1e-30) * signal_floor)
        raised = np.minimum(geometric, 0.5 * signal_floor)
        return np.maximum(base, raised)

    def detect(
        self,
        raw_data_grid: np.ndarray,
        control_subcarriers: Sequence[int],
        noise_var: float,
        threshold: float | None = None,
        h_gains: np.ndarray | None = None,
        min_symbol_energy: float = 1.0,
    ) -> DetectionReport:
        """Locate silence symbols on the control subcarriers.

        Parameters
        ----------
        raw_data_grid:
            ``(n_symbols, 48)`` un-equalised data-subcarrier values from
            :class:`repro.phy.receiver.FrameObservation`.
        control_subcarriers:
            Logical indices (0..47) to inspect.
        noise_var:
            Pilot-aided noise-floor estimate (per subcarrier).
        threshold:
            Explicit energy threshold overriding the adaptive one — used
            by the Fig. 10(b) threshold sweep.
        h_gains:
            Estimated ``|H_k|^2`` on all 48 data subcarriers (enables the
            adaptive per-subcarrier raise).
        min_symbol_energy:
            Weakest constellation-point energy of the active modulation
            (``Modulation.min_symbol_energy``).
        """
        grid = np.atleast_2d(np.asarray(raw_data_grid, dtype=np.complex128))
        if grid.shape[1] != N_DATA_SUBCARRIERS:
            raise ValueError(f"expected 48 data subcarriers, got {grid.shape[1]}")
        control = np.asarray(sorted(int(c) for c in control_subcarriers), dtype=np.int64)
        if control.size and (control.min() < 0 or control.max() >= N_DATA_SUBCARRIERS):
            raise ValueError("control subcarrier indices must be in 0..47")

        if threshold is None:
            thresholds = self._per_subcarrier_thresholds(
                noise_var, h_gains, min_symbol_energy
            )
            if isinstance(thresholds, np.ndarray):
                thresholds = thresholds[control]
        else:
            thresholds = float(threshold)
        with span("cos.energy.detect") as sp:
            energies = silence_energies(grid, control)
            detected = silence_mask(energies, thresholds)

            mask = np.zeros(grid.shape, dtype=bool)
            mask[:, control] = detected
            scalar_threshold = (
                float(np.mean(thresholds)) if isinstance(thresholds, np.ndarray)
                else float(thresholds)
            )
            sp.set(n_silences=int(np.count_nonzero(detected)),
                   n_control=int(control.size))
        return DetectionReport(mask=mask, threshold=scalar_threshold, energies=energies)

    @staticmethod
    def confusion(
        detected_mask: np.ndarray, true_mask: np.ndarray, control_subcarriers: Sequence[int]
    ) -> Tuple[float, float]:
        """(false positive rate, false negative rate) over control cells.

        A false positive is an active symbol detected as silent; a false
        negative is a silence symbol that went undetected (§IV-C).
        Rates are conditional: FP is normalised by the number of active
        control cells, FN by the number of true silences.
        """
        detected = np.asarray(detected_mask, dtype=bool)
        truth = np.asarray(true_mask, dtype=bool)
        if detected.shape != truth.shape:
            raise ValueError("mask shapes differ")
        control = sorted(int(c) for c in control_subcarriers)
        d = detected[:, control]
        t = truth[:, control]
        n_active = np.count_nonzero(~t)
        n_silent = np.count_nonzero(t)
        fp = np.count_nonzero(d & ~t) / n_active if n_active else 0.0
        fn = np.count_nonzero(~d & t) / n_silent if n_silent else 0.0
        return float(fp), float(fn)
