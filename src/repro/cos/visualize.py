"""ASCII rendering of the time–frequency grid (the paper's Fig. 1(a)).

Terminal-friendly visualisation of where a packet's silence symbols sit:
columns are OFDM symbols (time slots), rows are data subcarriers, ``█``
marks a silence, ``·`` an active control-subcarrier cell, and space a
plain data cell.  Used by the quickstart example and handy in a REPL::

    print(render_silence_grid(plan.mask, control_subcarriers=[9, 12, 15]))
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = ["render_silence_grid"]


def render_silence_grid(
    mask: np.ndarray,
    control_subcarriers: Optional[Sequence[int]] = None,
    max_symbols: int = 60,
    only_control_rows: bool = True,
) -> str:
    """Render a silence mask as ASCII art.

    Parameters
    ----------
    mask:
        ``(n_symbols, 48)`` boolean silence mask.
    control_subcarriers:
        Highlighted rows; defaults to every row containing a silence.
    max_symbols:
        Truncate the time axis (with an ellipsis marker) beyond this.
    only_control_rows:
        Show only the control rows (True) or all 48 subcarriers.
    """
    mask = np.atleast_2d(np.asarray(mask, dtype=bool))
    if mask.shape[1] != N_DATA_SUBCARRIERS:
        raise ValueError(f"expected 48 data subcarriers, got {mask.shape[1]}")
    n_symbols = mask.shape[0]
    shown = min(n_symbols, max_symbols)

    if control_subcarriers is None:
        control_subcarriers = sorted(int(c) for c in np.nonzero(mask.any(axis=0))[0])
    control = set(int(c) for c in control_subcarriers)

    rows = (
        sorted(control)
        if only_control_rows
        else list(range(N_DATA_SUBCARRIERS))
    )
    if not rows:
        return "(no silences planned)"

    lines = []
    header = "subcarrier ╲ time slot 0.." + str(shown - 1) + (
        " (truncated)" if shown < n_symbols else ""
    )
    lines.append(header)
    for subcarrier in rows:
        cells = []
        for slot in range(shown):
            if mask[slot, subcarrier]:
                cells.append("█")
            elif subcarrier in control:
                cells.append("·")
            else:
                cells.append(" ")
        lines.append(f"{subcarrier:>4} │{''.join(cells)}│")
    lines.append(f"     █ = silence symbol   · = active control cell   "
                 f"({int(mask.sum())} silences)")
    return "\n".join(lines)
