"""Per-subcarrier quality prediction across packets.

Fig. 7 shows per-subcarrier EVM is stable over tens of milliseconds, so
the *current* measurement predicts the *next* packet — that is all the
paper uses.  This module adds the natural engineering refinement: an
exponentially-weighted moving average over the EVM history, which
suppresses single-packet estimation noise (the dominant error source in
our Fig. 7 reproduction) while tracking slow drift, plus a staleness rule
that falls back to the raw measurement when the history is too old to
trust (gap >> coherence time).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = ["EvmPredictor"]


class EvmPredictor:
    """EWMA smoother for per-subcarrier EVM feedback.

    Parameters
    ----------
    alpha:
        Weight of the newest measurement (1.0 disables smoothing).
    max_age_s:
        History older than this is discarded — beyond a few coherence
        times the old pattern misleads more than it smooths.  The 80 ms
        default is ~2 coherence times at the paper's effective Doppler.
    """

    def __init__(self, alpha: float = 0.4, max_age_s: float = 0.08):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if max_age_s <= 0:
            raise ValueError("max_age_s must be positive")
        self.alpha = alpha
        self.max_age_s = max_age_s
        self._state: Optional[np.ndarray] = None
        self._age_s = 0.0

    @property
    def has_history(self) -> bool:
        return self._state is not None

    def advance(self, elapsed_s: float) -> None:
        """Age the history by ``elapsed_s`` (call once per packet gap)."""
        if elapsed_s < 0:
            raise ValueError("elapsed_s must be non-negative")
        self._age_s += elapsed_s
        if self._age_s > self.max_age_s:
            self.reset()

    def update(self, evms: np.ndarray) -> np.ndarray:
        """Fold a new measurement in; returns the smoothed prediction."""
        evms = np.asarray(evms, dtype=np.float64)
        if evms.shape != (N_DATA_SUBCARRIERS,):
            raise ValueError(f"expected 48 EVM values, got shape {evms.shape}")
        if self._state is None:
            self._state = evms.copy()
        else:
            self._state = self.alpha * evms + (1.0 - self.alpha) * self._state
        self._age_s = 0.0
        return self._state.copy()

    def predict(self) -> Optional[np.ndarray]:
        """Current prediction, or None when no (fresh) history exists."""
        if self._state is None:
            return None
        return self._state.copy()

    def reset(self) -> None:
        self._state = None
        self._age_s = 0.0
