"""``repro.obs`` — observability for the CoS pipeline.

Three cooperating pieces, all optional and all off by default:

* :mod:`repro.obs.metrics` — process-wide counters / gauges / histograms,
  exportable as Prometheus text or JSON;
* :mod:`repro.obs.trace` — ``span("rx.evd")`` nested wall-clock tracing
  with a sub-microsecond no-op path when disabled;
* :mod:`repro.obs.flight` — per-exchange flight records explaining every
  CoS decision (rate, silences, detection, EVD, CRC, feedback).

:func:`configure` wires all three to one sink::

    import repro.obs as obs

    with obs.configure(trace_out="trace.jsonl") as session:
        link.run(n_packets=100, payload=b"x" * 512)
    print(session.registry.to_prometheus())

and ``repro obs summarize trace.jsonl`` renders the per-stage latency
and failure-cause tables offline (:mod:`repro.obs.summarize`).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Union

from repro.obs import flight as _flight
from repro.obs import trace as _trace
from repro.obs.flight import (
    FlightRecord,
    FlightRecorder,
    classify_failure,
    classify_net_failure,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.sink import (
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    read_jsonl,
)
from repro.obs.summarize import (
    TraceSummary,
    format_summary,
    summarize_events,
    summarize_trace,
)
from repro.obs.timeline import extract_intervals, render_timeline
from repro.obs.trace import Tracer, current_tracer, event, span, tracing

__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "Sink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "SCHEMA_VERSION",
    "read_jsonl",
    "Tracer",
    "span",
    "event",
    "tracing",
    "current_tracer",
    "FlightRecord",
    "FlightRecorder",
    "classify_failure",
    "classify_net_failure",
    "TraceSummary",
    "summarize_events",
    "summarize_trace",
    "format_summary",
    "extract_intervals",
    "render_timeline",
    "ObsSession",
    "configure",
    "shutdown",
]


class ObsSession:
    """A live observability configuration (use as a context manager)."""

    def __init__(self, sink: Sink, tracer: Optional[Tracer],
                 recorder: Optional[FlightRecorder],
                 registry: MetricsRegistry) -> None:
        self.sink = sink
        self.tracer = tracer
        self.recorder = recorder
        self.registry = registry
        self._closed = False

    def close(self) -> None:
        """Disable tracing/flight recording and close the sink."""
        if self._closed:
            return
        self._closed = True
        if _trace.current_tracer() is self.tracer:
            _trace.disable()  # closes the sink
        if _flight.current_recorder() is self.recorder:
            _flight.disable()
        self.sink.close()

    def __enter__(self) -> "ObsSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def configure(
    trace_out: Union[str, Path, io.TextIOBase, Sink, None] = None,
    registry: Optional[MetricsRegistry] = None,
    enable_trace: bool = True,
    enable_flight: bool = True,
) -> ObsSession:
    """Enable tracing and/or flight recording, all feeding one sink.

    ``trace_out`` may be a path (JSONL file), an open text stream, a
    :class:`Sink`, or None (events kept in a :class:`MemorySink`).
    """
    registry = registry if registry is not None else get_registry()
    if isinstance(trace_out, Sink):
        sink: Sink = trace_out
    elif trace_out is None:
        sink = MemorySink()
    else:
        sink = JsonlSink(trace_out)
    tracer = _trace.enable(sink, registry) if enable_trace else None
    recorder = _flight.enable(sink, registry) if enable_flight else None
    return ObsSession(sink=sink, tracer=tracer, recorder=recorder,
                      registry=registry)


def shutdown() -> None:
    """Hard-disable everything (used by tests for isolation)."""
    _trace.disable()
    _flight.disable()
