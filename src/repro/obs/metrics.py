"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny and dependency-free — a strict subset of
the Prometheus client data model, enough to make the CoS pipeline's
behaviour observable without pulling a client library into the simulator:

* :class:`Counter` — monotonically increasing float;
* :class:`Gauge` — last-write-wins float;
* :class:`Histogram` — fixed upper-bound buckets with cumulative counts,
  ``sum`` and ``count`` (so rates and means survive aggregation), plus a
  linear-interpolated quantile estimate for quick local inspection.

Every metric family supports Prometheus-style labels via
:meth:`MetricFamily.labels`::

    reg = MetricsRegistry()
    reg.counter("cos_tx_packets_total").inc()
    reg.histogram("span_seconds", buckets=LATENCY_BUCKETS_S).labels(
        name="rx.decode").observe(0.004)

Snapshots are plain dicts (:meth:`MetricsRegistry.snapshot`), exportable
as Prometheus text exposition format (:meth:`MetricsRegistry.to_prometheus`)
or JSON (:meth:`MetricsRegistry.to_json`).  A process-wide default
registry is reachable through :func:`get_registry`.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

# Default latency buckets: 1 µs .. 10 s in roughly 1-2.5-5 decades.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(pairs: LabelPairs, extra: Sequence[Tuple[str, str]] = ()) -> str:
    items = list(pairs) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """Last-write-wins value with inc/dec convenience."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative on export, per-bucket inside).

    ``buckets`` are finite upper bounds in strictly increasing order; an
    implicit ``+Inf`` bucket catches the overflow.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        out: List[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style).

        Returns ``nan`` when empty.  Values in the +Inf bucket clamp to
        the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        running = 0
        for i, c in enumerate(self.bucket_counts):
            prev = running
            running += c
            if running >= target and c > 0:
                if i >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i]
                frac = (target - prev) / c
                return lo + frac * (hi - lo)
        return self.buckets[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class MetricFamily:
    """A named metric plus its labelled children."""

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[LabelPairs, object] = {}
        self._lock = threading.Lock()

    def _make(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        if self.kind == "histogram":
            return Histogram(self._buckets or LATENCY_BUCKETS_S)
        raise AssertionError(f"unknown metric kind {self.kind!r}")

    def labels(self, **labels: str):
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make())
        return child

    # Label-less shortcut: family acts as its own unlabelled child.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self.labels().set(value)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self.labels().observe(value)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        return self.labels().value  # type: ignore[union-attr]

    def items(self) -> Iterable[Tuple[LabelPairs, object]]:
        return sorted(self._children.items())


class MetricsRegistry:
    """Registry of metric families, snapshot-able and exportable."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- creation ------------------------------------------------------

    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}, not {kind}"
                )
            return fam
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = MetricFamily(name, kind, help=help, buckets=buckets)
                self._families[name] = fam
            return fam

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS_S) -> MetricFamily:
        return self._family(name, "histogram", help, buckets=buckets)

    # -- introspection -------------------------------------------------

    def families(self) -> List[MetricFamily]:
        return [self._families[n] for n in sorted(self._families)]

    def reset(self) -> None:
        """Drop all families (tests and per-run isolation)."""
        with self._lock:
            self._families.clear()

    def merge(self, other: "MetricsRegistry | Dict[str, dict]") -> None:
        """Fold another registry (or a :meth:`snapshot` dict) into this one.

        Merge semantics mirror Prometheus federation: counters and
        histogram ``sum``/``count``/bucket counts **add**; gauges are
        last-write-wins (the merged-in value overwrites).  This is how
        ``repro.engine`` folds worker-process metrics back into the
        parent registry — snapshots are plain dicts, so they cross
        process boundaries as pickles with no shared state.

        Raises :class:`ValueError` on kind or histogram-bucket mismatch
        so silent double-registration bugs cannot corrupt counts — and
        validates the *whole* snapshot before touching this registry, so
        a rejected merge leaves it untouched rather than half-applied
        (chunked executors retry/refold snapshots; partial application
        would double-count).  Empty snapshots and empty registries merge
        as no-ops; a family with no series still registers (kind and
        help are preserved).  Duplicate label sets within one snapshot
        apply in order: counters/histograms accumulate, gauges keep the
        last value.
        """
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) else other

        # Phase 1 — parse and validate against current state, mutating
        # nothing (not even implicit family/child creation).
        plan: List[tuple] = []
        for name in sorted(snapshot):
            data = snapshot[name]
            kind = data.get("kind")
            if kind not in ("counter", "gauge", "histogram"):
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            existing = self._families.get(name)
            if existing is not None and existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {kind}"
                )
            help_ = data.get("help", "")
            series = data.get("series", [])
            fam_buckets: Optional[Tuple[float, ...]] = None
            if kind == "histogram":
                if existing is not None:
                    fam_buckets = tuple(existing._buckets or LATENCY_BUCKETS_S)
                elif series:
                    fam_buckets = tuple(float(b) for b in series[0]["buckets"])
            entries: List[tuple] = []
            for entry in series:
                labels = {str(k): str(v)
                          for k, v in entry.get("labels", {}).items()}
                if kind == "counter":
                    value = float(entry["value"])
                    if value < 0:
                        raise ValueError(
                            f"cannot merge counter {name!r}: negative "
                            f"increment {value}"
                        )
                    entries.append((labels, value))
                elif kind == "gauge":
                    entries.append((labels, float(entry["value"])))
                else:
                    bounds = tuple(float(b) for b in entry["buckets"])
                    if bounds != fam_buckets:
                        raise ValueError(
                            f"cannot merge histogram {name!r}: bucket bounds "
                            f"differ ({fam_buckets} vs {bounds})"
                        )
                    counts = [int(c) for c in entry["bucket_counts"]]
                    if len(counts) != len(bounds) + 1:
                        raise ValueError(
                            f"cannot merge histogram {name!r}: bucket count "
                            "mismatch"
                        )
                    entries.append(
                        (labels,
                         (float(entry["sum"]), int(entry["count"]), counts))
                    )
            plan.append((name, kind, help_, fam_buckets, entries))

        # Phase 2 — apply; validated input cannot raise below.
        for name, kind, help_, fam_buckets, entries in plan:
            if kind == "counter":
                fam = self.counter(name, help_)
                for labels, value in entries:
                    fam.labels(**labels).inc(value)
            elif kind == "gauge":
                fam = self.gauge(name, help_)
                for labels, value in entries:
                    fam.labels(**labels).set(value)
            else:
                fam = self.histogram(
                    name, help_, buckets=fam_buckets or LATENCY_BUCKETS_S
                )
                for labels, (total, count, counts) in entries:
                    child = fam.labels(**labels)
                    child.sum += total
                    child.count += count
                    for i, c in enumerate(counts):
                        child.bucket_counts[i] += c

    def snapshot(self) -> Dict[str, dict]:
        """Plain-dict snapshot: ``{name: {kind, help, series: [...]}}``."""
        out: Dict[str, dict] = {}
        for fam in self.families():
            series = []
            for pairs, child in fam.items():
                entry: Dict[str, object] = {"labels": dict(pairs)}
                if isinstance(child, Histogram):
                    entry.update(
                        sum=child.sum,
                        count=child.count,
                        buckets=list(child.buckets),
                        bucket_counts=list(child.bucket_counts),
                        p50=child.quantile(0.5),
                        p95=child.quantile(0.95),
                    )
                else:
                    entry["value"] = child.value  # type: ignore[union-attr]
                series.append(entry)
            out[fam.name] = {"kind": fam.kind, "help": fam.help, "series": series}
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for fam in self.families():
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for pairs, child in fam.items():
                if isinstance(child, Histogram):
                    cumulative = child.cumulative_counts()
                    for bound, cum in zip(child.buckets, cumulative):
                        lines.append(
                            f"{fam.name}_bucket"
                            f"{_format_labels(pairs, [('le', repr(bound))])} {cum}"
                        )
                    lines.append(
                        f"{fam.name}_bucket"
                        f"{_format_labels(pairs, [('le', '+Inf')])} {cumulative[-1]}"
                    )
                    lines.append(f"{fam.name}_sum{_format_labels(pairs)} {child.sum}")
                    lines.append(f"{fam.name}_count{_format_labels(pairs)} {child.count}")
                else:
                    value = child.value  # type: ignore[union-attr]
                    lines.append(f"{fam.name}{_format_labels(pairs)} {value}")
        return "\n".join(lines) + ("\n" if lines else "")


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
