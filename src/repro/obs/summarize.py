"""Offline trace analysis: ``repro obs summarize trace.jsonl``.

Reads a JSONL trace produced by :mod:`repro.obs` and — without re-running
any simulation — reports:

* a per-stage latency table (count, total, mean, p50, p95 per span name,
  exact percentiles from the recorded durations);
* span coverage of the exchange wall-clock (how much of each
  ``cos.exchange`` span is accounted for by direct child spans — the
  acceptance bar is ≥ 90 %);
* a failure-cause breakdown from the flight records (CRC fail vs.
  detection miss vs. feedback loss, see :mod:`repro.obs.flight`);
* for net-lens traces (``type == "net"``, see :mod:`repro.net.lens`):
  event counts by type and a frame-outcome breakdown over the net-layer
  failure-cause taxonomy (``ok`` / ``collision`` / ``channel_error`` /
  ``rx_busy`` / ``retry_exhausted``).

Kept free of imports from higher layers (``repro.experiments`` etc.) so
``repro.obs`` stays at the bottom of the stack.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.obs.flight import FAILURE_CAUSES, NET_FAILURE_CAUSES
from repro.obs.sink import read_jsonl

__all__ = ["StageStats", "TraceSummary", "summarize_events", "summarize_trace",
           "format_summary"]

ROOT_SPAN = "cos.exchange"


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted data."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class StageStats:
    """Latency statistics for one span name."""

    name: str
    count: int
    total_s: float
    mean_s: float
    p50_s: float
    p95_s: float
    max_s: float


@dataclass
class TraceSummary:
    """Everything ``repro obs summarize`` reports."""

    stages: List[StageStats] = field(default_factory=list)
    causes: Dict[str, int] = field(default_factory=dict)
    n_spans: int = 0
    n_flights: int = 0
    n_events: int = 0
    n_net_events: int = 0
    net_events: Dict[str, int] = field(default_factory=dict)
    net_causes: Dict[str, int] = field(default_factory=dict)
    exchange_total_s: float = 0.0
    exchange_covered_s: float = 0.0

    @property
    def exchange_coverage(self) -> float:
        """Fraction of exchange wall-clock covered by direct child spans."""
        if self.exchange_total_s <= 0.0:
            return 0.0
        return min(self.exchange_covered_s / self.exchange_total_s, 1.0)

    def stage(self, name: str) -> StageStats:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(name)


def summarize_events(events: Iterable[dict]) -> TraceSummary:
    """Aggregate parsed trace events into a :class:`TraceSummary`."""
    durations: Dict[str, List[float]] = defaultdict(list)
    causes: Dict[str, int] = defaultdict(int)
    net_events: Dict[str, int] = defaultdict(int)
    net_causes: Dict[str, int] = defaultdict(int)
    spans: List[dict] = []
    n_flights = n_events = n_net = 0

    for ev in events:
        kind = ev.get("type")
        if kind == "span":
            spans.append(ev)
            durations[ev.get("name", "?")].append(float(ev.get("dur_s", 0.0)))
        elif kind == "flight":
            n_flights += 1
            causes[ev.get("failure_cause", "unknown")] += 1
        elif kind == "net":
            n_net += 1
            net_events[ev.get("event", "?")] += 1
            # Addressed tx_end records and drops carry the net-layer
            # failure-cause taxonomy; together they partition frame fates.
            cause = ev.get("cause")
            if cause is not None:
                net_causes[cause] += 1
        else:
            n_events += 1

    # Coverage needs two passes: child spans close (and are emitted)
    # *before* their parent exchange span appears in the stream.
    exchange_ids = {ev.get("id") for ev in spans if ev.get("name") == ROOT_SPAN}
    exchange_total = sum(
        float(ev.get("dur_s", 0.0)) for ev in spans if ev.get("name") == ROOT_SPAN
    )
    covered = sum(
        float(ev.get("dur_s", 0.0))
        for ev in spans
        if ev.get("name") != ROOT_SPAN and ev.get("parent") in exchange_ids
    )
    n_spans = len(spans)

    stages = []
    for name in sorted(durations):
        vals = sorted(durations[name])
        stages.append(StageStats(
            name=name,
            count=len(vals),
            total_s=sum(vals),
            mean_s=sum(vals) / len(vals),
            p50_s=_percentile(vals, 0.50),
            p95_s=_percentile(vals, 0.95),
            max_s=vals[-1],
        ))
    # Child spans are attributed by direct parent id, so nested
    # grandchildren are *not* double-counted in the coverage figure.
    return TraceSummary(
        stages=stages,
        causes=dict(causes),
        n_spans=n_spans,
        n_flights=n_flights,
        n_events=n_events,
        n_net_events=n_net,
        net_events=dict(net_events),
        net_causes=dict(net_causes),
        exchange_total_s=exchange_total,
        exchange_covered_s=covered,
    )


def summarize_trace(path: Union[str, Path]) -> TraceSummary:
    """Read a JSONL trace file and summarize it."""
    return summarize_events(read_jsonl(path))


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]],
           title: str) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"\n== {title} ==",
             "  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def format_summary(summary: TraceSummary) -> str:
    """Render the per-stage latency and failure-cause tables as text."""
    lines: List[str] = []
    lines += _table(
        ["stage", "count", "total ms", "mean ms", "p50 ms", "p95 ms", "max ms"],
        [
            (s.name, str(s.count), _ms(s.total_s), _ms(s.mean_s),
             _ms(s.p50_s), _ms(s.p95_s), _ms(s.max_s))
            for s in summary.stages
        ],
        title="Per-stage latency",
    )
    if summary.exchange_total_s > 0:
        lines.append(
            f"\nexchange wall-clock: {summary.exchange_total_s * 1e3:.1f} ms, "
            f"span coverage: {summary.exchange_coverage * 100:.1f} %"
        )

    total = sum(summary.causes.values())
    if total:
        known = [c for c in FAILURE_CAUSES if c in summary.causes]
        extra = sorted(set(summary.causes) - set(known))
        rows = [
            (cause, str(summary.causes[cause]),
             f"{summary.causes[cause] / total * 100:.1f}")
            for cause in known + extra
        ]
        lines += _table(["cause", "exchanges", "%"], rows,
                        title="Failure causes (flight records)")

    if summary.net_events:
        lines += _table(
            ["event", "count"],
            [(name, str(summary.net_events[name]))
             for name in sorted(summary.net_events)],
            title="Net events",
        )
    net_total = sum(summary.net_causes.values())
    if net_total:
        known = [c for c in NET_FAILURE_CAUSES if c in summary.net_causes]
        extra = sorted(set(summary.net_causes) - set(known))
        lines += _table(
            ["cause", "frames", "%"],
            [(cause, str(summary.net_causes[cause]),
              f"{summary.net_causes[cause] / net_total * 100:.1f}")
             for cause in known + extra],
            title="Net frame outcomes",
        )
    lines.append(
        f"\n{summary.n_spans} spans, {summary.n_flights} flight records, "
        f"{summary.n_net_events} net events, {summary.n_events} events"
    )
    return "\n".join(lines)
