"""ASCII airtime timelines from net-lens event traces.

``repro obs timeline trace.jsonl`` renders, without re-running any
simulation, the picture the hidden-node story is usually told with:
one row per transmitting node, simulation time left to right, each
on-air interval painted with its frame kind::

    == Airtime timeline (0.0 - 30000.0 us) ==
    channel     ##### ## ########  ####...
    ap          ....a .. a....
    sta_hidden  DDDDD       DDDDDD
    sta_near         DD DDD

Characters: ``D`` data, ``C`` explicit control, ``a`` ACK, ``B``
beacon, ``!`` interferer burst; the ``channel`` row marks the union of
all transmissions (``#``).  A cell covering several kinds shows the
highest-priority one (data > control > ack > beacon > interference).
Multi-BSS traces (``tx_start`` records stamped with a ``bss`` field by
:class:`repro.net.lens.NetLens`) group the per-node rows by serving AP,
separated by ``-- bss <ap> --`` headers.

Only ``type == "net"`` / ``event == "tx_start"`` records are consumed
(they carry start time, duration, source, and kind), so any trace file
that interleaves spans, flight records, and net events works unchanged.
Kept import-free of higher layers: ``repro.obs`` stays at the bottom of
the stack, and net traces arrive here as plain parsed dicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["TxInterval", "extract_intervals", "render_timeline",
           "utilization_table"]

#: Paint characters by frame kind, in descending paint priority.
KIND_CHARS = (
    ("data", "D"),
    ("control", "C"),
    ("ack", "a"),
    ("beacon", "B"),
    ("interference", "!"),
)
_CHAR_FOR = dict(KIND_CHARS)
_PRIORITY = {kind: i for i, (kind, _c) in enumerate(KIND_CHARS)}


@dataclass
class TxInterval:
    """One on-air interval reconstructed from a ``tx_start`` record."""

    src: str
    kind: str
    start_us: float
    end_us: float
    bss: Optional[str] = None


def extract_intervals(events: Iterable[dict]) -> Tuple[List[TxInterval], float]:
    """Pull transmission intervals (and the time horizon) out of a trace.

    The horizon is the latest simulation time mentioned by *any* net
    record, so trailing silence (e.g. a drained scenario) still shows.
    """
    intervals: List[TxInterval] = []
    horizon = 0.0
    for ev in events:
        if ev.get("type") != "net":
            continue
        t_us = float(ev.get("t_us", 0.0))
        horizon = max(horizon, t_us)
        if ev.get("event") != "tx_start":
            continue
        kind = ev.get("kind", "data")
        if ev.get("dst") is None and kind not in _CHAR_FOR:
            kind = "interference"  # legacy traces: un-kinded broadcast
        elif kind not in _CHAR_FOR:
            kind = "data"
        end = t_us + float(ev.get("duration_us", 0.0))
        horizon = max(horizon, end)
        intervals.append(TxInterval(
            src=str(ev.get("src", "?")), kind=kind,
            start_us=t_us, end_us=end, bss=ev.get("bss"),
        ))
    return intervals, horizon


def _paint(row: List[Optional[str]], iv: TxInterval, t0: float,
           us_per_cell: float) -> None:
    lo = int((iv.start_us - t0) / us_per_cell)
    hi = int((iv.end_us - t0) / us_per_cell)
    # A sub-cell transmission (an ACK, usually) still gets one cell.
    for i in range(max(lo, 0), min(hi + 1, len(row))):
        old = row[i]
        if old is None or _PRIORITY[iv.kind] < _PRIORITY.get(old, 99):
            row[i] = iv.kind


def utilization_table(intervals: Sequence[TxInterval],
                      horizon_us: float) -> List[str]:
    """Per-node airtime-by-kind table plus the channel-busy union."""
    per_node: Dict[str, Dict[str, float]] = {}
    for iv in intervals:
        per_node.setdefault(iv.src, {})
        per_node[iv.src][iv.kind] = (
            per_node[iv.src].get(iv.kind, 0.0) + (iv.end_us - iv.start_us)
        )
    # Channel-busy union via boundary sweep.
    busy_us = 0.0
    edges = sorted(
        [(iv.start_us, 1) for iv in intervals]
        + [(iv.end_us, -1) for iv in intervals]
    )
    active, opened = 0, 0.0
    for t, delta in edges:
        if active == 0 and delta > 0:
            opened = t
        active += delta
        if active == 0 and delta < 0:
            busy_us += t - opened
    total = horizon_us or 1.0

    headers = ["node", "tx", "data us", "ctrl us", "ack us", "airtime %"]
    rows = []
    for name in sorted(per_node):
        kinds = per_node[name]
        n_tx = sum(1 for iv in intervals if iv.src == name)
        tx_us = sum(kinds.values())
        rows.append((
            name, str(n_tx),
            f"{kinds.get('data', 0.0):.0f}",
            f"{kinds.get('control', 0.0):.0f}",
            f"{kinds.get('ack', 0.0):.0f}",
            f"{tx_us / total * 100:.1f}",
        ))
    rows.append(("(channel)", str(len(intervals)), "", "", "",
                 f"{busy_us / total * 100:.1f}"))

    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


def render_timeline(events: Iterable[dict], width: int = 72) -> str:
    """Render per-node ASCII timelines + the channel-utilization table."""
    intervals, horizon = extract_intervals(events)
    if not intervals:
        return "no net tx_start events in trace"
    width = max(int(width), 8)
    t0 = 0.0
    us_per_cell = (horizon - t0) / width if horizon > t0 else 1.0

    bss_of: Dict[str, Optional[str]] = {}
    for iv in intervals:
        if iv.bss is not None:
            bss_of[iv.src] = iv.bss
    # Group rows by serving BSS when the trace carries the stamp; nodes
    # without one (interferers, single-BSS traces) sort after, by name.
    nodes = sorted({iv.src for iv in intervals},
                   key=lambda n: (bss_of.get(n) is None, bss_of.get(n, ""), n))
    rows: Dict[str, List[Optional[str]]] = {n: [None] * width for n in nodes}
    channel: List[Optional[str]] = [None] * width
    for iv in intervals:
        _paint(rows[iv.src], iv, t0, us_per_cell)
        _paint(channel, iv, t0, us_per_cell)

    label_w = max(len("channel"), max(len(n) for n in nodes))
    lines = [f"== Airtime timeline ({t0:.1f} - {horizon:.1f} us, "
             f"{us_per_cell:.1f} us/cell) =="]
    lines.append(
        "channel".ljust(label_w) + "  "
        + "".join("#" if c is not None else " " for c in channel)
    )
    grouped = any(b is not None for b in bss_of.values())
    current_bss: Optional[str] = None
    for name in nodes:
        bss = bss_of.get(name)
        if grouped and bss != current_bss:
            current_bss = bss
            lines.append(f"-- bss {bss if bss is not None else '(none)'} --")
        lines.append(
            name.ljust(label_w) + "  "
            + "".join(_CHAR_FOR[c] if c is not None else "." for c in rows[name])
        )
    legend = "  ".join(f"{c}={kind}" for kind, c in KIND_CHARS)
    lines.append(f"({legend}; #=channel busy)")
    lines.append("")
    lines += utilization_table(intervals, horizon)
    return "\n".join(lines)
