"""Span-based tracing with a no-op fast path.

Usage — instrumented code calls the module-level :func:`span` context
manager unconditionally::

    from repro.obs.trace import span

    with span("rx.evd", rate_mbps=24):
        ...

When tracing is **disabled** (the default), :func:`span` returns a shared
immutable null object: the total overhead is one global load, one ``is
None`` test and a pair of no-op ``__enter__``/``__exit__`` calls — well
under a microsecond (asserted by ``benchmarks/bench_obs_overhead.py``),
so hot paths stay hot.

When **enabled** (:func:`enable`), each span records wall-clock duration
via ``time.perf_counter()``, its nesting depth and parent span id (spans
form a tree per thread), and optional labels.  On exit the span is
emitted to the configured :class:`~repro.obs.sink.Sink` as a ``"span"``
event and observed into the ``repro_span_seconds`` histogram of the
metrics registry, labelled by span name.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Optional

from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry, get_registry
from repro.obs.sink import SCHEMA_VERSION, MemorySink, Sink

__all__ = [
    "NullSpan",
    "Span",
    "TimerSpan",
    "Tracer",
    "span",
    "timed_span",
    "event",
    "enable",
    "disable",
    "current_tracer",
    "tracing",
]


class NullSpan:
    """The disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **labels) -> "NullSpan":
        return self

    @property
    def enabled(self) -> bool:
        return False


_NULL_SPAN = NullSpan()


class Span:
    """One live span.  Created by :class:`Tracer`, not directly."""

    __slots__ = ("tracer", "name", "labels", "span_id", "parent_id",
                 "depth", "ts", "_t0", "duration_s")

    def __init__(self, tracer: "Tracer", name: str, labels: Dict) -> None:
        self.tracer = tracer
        self.name = name
        self.labels = labels
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.ts = 0.0
        self._t0 = 0.0
        self.duration_s = 0.0

    def set(self, **labels) -> "Span":
        """Attach labels discovered after entry (e.g. decoded rate)."""
        self.labels.update(labels)
        return self

    @property
    def enabled(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.labels.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)
        return False


class Tracer:
    """Owns the sink, the span-id counter, and per-thread span stacks."""

    def __init__(self, sink: Optional[Sink] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self.registry = registry if registry is not None else get_registry()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._span_hist = self.registry.histogram(
            "repro_span_seconds",
            help="Wall-clock duration of traced spans, by span name.",
            buckets=LATENCY_BUCKETS_S,
        )

    # -- span lifecycle ------------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **labels) -> Span:
        return Span(self, name, labels)

    def _push(self, sp: Span) -> None:
        stack = self._stack()
        sp.span_id = next(self._ids)
        sp.parent_id = stack[-1].span_id if stack else None
        sp.depth = len(stack)
        stack.append(sp)

    def _pop(self, sp: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:  # tolerate out-of-order exits
            stack.remove(sp)
        self._span_hist.labels(name=sp.name).observe(sp.duration_s)
        self.sink.emit({
            "type": "span",
            "schema": SCHEMA_VERSION,
            "name": sp.name,
            "ts": sp.ts,
            "dur_s": sp.duration_s,
            "id": sp.span_id,
            "parent": sp.parent_id,
            "depth": sp.depth,
            "labels": sp.labels,
        })

    # -- point events --------------------------------------------------

    def event(self, name: str, **fields) -> None:
        stack = self._stack()
        self.sink.emit({
            "type": "event",
            "schema": SCHEMA_VERSION,
            "name": name,
            "ts": time.time(),
            "parent": stack[-1].span_id if stack else None,
            **fields,
        })

    def emit(self, event_dict: Dict) -> None:
        """Emit a pre-built event (flight records use this)."""
        self.sink.emit(event_dict)

    def close(self) -> None:
        self.sink.close()


# ---------------------------------------------------------------------------
# Module-level switch (the fast path)
# ---------------------------------------------------------------------------

_tracer: Optional[Tracer] = None


def span(name: str, **labels):
    """A span context manager, or the shared null span when disabled."""
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return Span(tracer, name, labels)


class TimerSpan:
    """A measuring stand-in for :class:`Span` when tracing is disabled.

    Unlike :class:`NullSpan` it records ``duration_s``, so callers that
    *report* timings (e.g. the experiment runner's per-stage log lines)
    have one timing source whether or not tracing is on.  Nothing is
    emitted anywhere — it is a stopwatch, not a trace event.
    """

    __slots__ = ("duration_s", "_t0")

    def __init__(self) -> None:
        self.duration_s = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "TimerSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        return False

    def set(self, **labels) -> "TimerSpan":
        return self

    @property
    def enabled(self) -> bool:
        return False


def timed_span(name: str, **labels):
    """Like :func:`span`, but ``duration_s`` is valid even when disabled.

    With tracing enabled this *is* a traced span (recorded to the sink
    and the ``repro_span_seconds`` histogram); disabled, it degrades to a
    plain stopwatch.  Use for coarse stage timing that feeds log lines —
    never on hot paths (the whole point of :class:`NullSpan` is that hot
    paths pay nothing when tracing is off).
    """
    tracer = _tracer
    if tracer is None:
        return TimerSpan()
    return Span(tracer, name, labels)


def event(name: str, **fields) -> None:
    """Record a point event (no-op when disabled)."""
    tracer = _tracer
    if tracer is not None:
        tracer.event(name, **fields)


def enable(sink: Optional[Sink] = None,
           registry: Optional[MetricsRegistry] = None) -> Tracer:
    """Turn tracing on; returns the active :class:`Tracer`."""
    global _tracer
    _tracer = Tracer(sink=sink, registry=registry)
    return _tracer


def disable() -> None:
    """Turn tracing off (restores the sub-microsecond null path)."""
    global _tracer
    if _tracer is not None:
        _tracer.close()
    _tracer = None


def current_tracer() -> Optional[Tracer]:
    return _tracer


class tracing:
    """``with tracing(sink):`` — scoped enable/disable for tests."""

    def __init__(self, sink: Optional[Sink] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self._sink = sink
        self._registry = registry
        self.tracer: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self.tracer = enable(self._sink, self._registry)
        return self.tracer

    def __exit__(self, *exc) -> None:
        global _tracer
        if _tracer is self.tracer:
            _tracer = None  # leave the sink open for the caller to inspect
