"""Event sinks: where trace spans and flight records go.

Events are flat-ish dicts with a ``type`` field (``"span"``, ``"flight"``,
``"event"``).  The JSONL sink writes one JSON object per line so traces
can be streamed, tailed, grepped, and post-processed without loading the
whole file; :func:`read_jsonl` is the matching reader used by
``repro obs summarize``.

Numpy scalars/arrays are converted to plain Python types on the way out,
so instrumented code can hand over whatever it has.

Every record carries a ``schema`` version field (:data:`SCHEMA_VERSION`,
stamped at the emission sites in :mod:`repro.obs.trace`,
:mod:`repro.obs.flight`, and :mod:`repro.net.lens`) so downstream
tooling can evolve the formats without guessing.  :func:`read_jsonl`
tolerates a truncated *final* line — the normal state of a trace whose
producer crashed or was killed mid-write — instead of raising.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

__all__ = ["SCHEMA_VERSION", "Sink", "JsonlSink", "MemorySink", "NullSink",
           "read_jsonl"]

#: Version stamped into every emitted JSONL event record.
SCHEMA_VERSION = 1


def _jsonable(value):
    """Best-effort conversion of numpy containers to JSON-native types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class Sink:
    """Interface: ``emit`` one event dict, ``close`` when done."""

    def emit(self, event: Dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(Sink):
    """Swallows everything."""

    def emit(self, event: Dict) -> None:
        pass


class MemorySink(Sink):
    """Keeps events in a list — the test/debug sink."""

    def __init__(self) -> None:
        self.events: List[Dict] = []

    def emit(self, event: Dict) -> None:
        self.events.append(_jsonable(event))


class JsonlSink(Sink):
    """Writes one JSON object per line to a file or file-like object."""

    def __init__(self, target: Union[str, Path, io.TextIOBase]) -> None:
        if isinstance(target, (str, Path)):
            self._fh: Optional[io.TextIOBase] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.n_events = 0

    def emit(self, event: Dict) -> None:
        if self._fh is None:
            raise ValueError("sink is closed")
        json.dump(_jsonable(event), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.n_events += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None and self._owns:
            self._fh.close()
        self._fh = None


def read_jsonl(path: Union[str, Path], strict: bool = False) -> Iterator[Dict]:
    """Yield events from a JSONL trace file, skipping blank lines.

    A line that fails to parse is tolerated **iff** it is the last
    non-blank line of the file — the signature of a producer that died
    mid-write — so crashed-run traces stay readable.  A malformed line
    with valid records after it is real corruption and still raises
    (always raises with ``strict=True``).
    """
    with open(path, "r", encoding="utf-8") as fh:
        pending: Optional[str] = None
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                # The bad line was not final after all: genuine corruption.
                json.loads(pending)  # re-raise with the offending payload
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if strict:
                    raise
                pending = line
                continue
            yield record
