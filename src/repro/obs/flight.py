"""Per-exchange flight records: why a CoS packet succeeded or failed.

One :class:`FlightRecord` captures the whole decision chain of a single
:meth:`~repro.cos.link.CosLink.exchange` — the selected data rate and the
SNR gap it left, the control-rate allocation, where silences were placed,
what the energy detector saw (threshold vs. per-symbol energies), how
many bit metrics the erasure Viterbi decoder zeroed, the CRC outcome,
the EVM-selected subcarriers fed back, and the control-rate controller's
fallback transitions — so a failed exchange can be replayed and
*explained* after the fact instead of re-run.

Records are emitted as ``"flight"`` events through the same sink the
tracer uses, and tallied into ``repro_flight_total{cause=...}`` so the
failure breakdown is available from the metrics registry too.

Failure-cause taxonomy (``failure_cause``):

* ``ok`` — CRC clean and every control bit recovered;
* ``signal_loss`` — the SIGNAL field was undecodable (nothing downstream
  could run);
* ``crc_fail`` — the data field failed CRC (EVD could not recover the
  erasures/noise);
* ``feedback_loss`` — data fine but the control message was declared
  lost (faded control subcarriers or interval-decode error);
* ``detection_miss`` — data fine, recovery ran, but the recovered
  control bits differ from what was embedded (missed/spurious silences).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.sink import SCHEMA_VERSION, MemorySink, Sink

__all__ = [
    "FlightRecord",
    "FlightRecorder",
    "classify_failure",
    "classify_net_failure",
    "enable",
    "disable",
    "current_recorder",
]

FAILURE_CAUSES = ("ok", "signal_loss", "crc_fail", "feedback_loss", "detection_miss")

#: Net-layer extension of the taxonomy: why a *frame* (not a CoS
#: exchange) died in the multi-node simulator.  ``collision`` is a
#: capture-gate loss (SINR below the capture threshold — a concurrent
#: transmission won), ``channel_error`` is a noise-floor loss (SINR
#: cleared capture but the rate-dependent error draw failed),
#: ``rx_busy`` is a half-duplex loss (the destination was itself
#: transmitting), and ``retry_exhausted`` is the MAC giving up after
#: MAX_RETRIES failed exchanges.
NET_FAILURE_CAUSES = ("ok", "collision", "channel_error", "rx_busy",
                      "retry_exhausted")


def classify_failure(
    signal_ok: bool,
    crc_ok: bool,
    control_sent: int,
    control_ok: bool,
    control_error: Optional[str],
) -> str:
    """Collapse an exchange outcome into one failure cause (see module doc)."""
    if not signal_ok:
        return "signal_loss"
    if not crc_ok:
        return "crc_fail"
    if control_sent and not control_ok:
        return "feedback_loss" if control_error else "detection_miss"
    return "ok"


def classify_net_failure(ok: bool, reason: str) -> str:
    """Map a medium-level reception outcome onto :data:`NET_FAILURE_CAUSES`.

    ``reason`` is what :meth:`repro.net.sinr.ReceptionModel.decide` (or
    the medium's half-duplex gate) reported.  Unknown reasons collapse to
    ``channel_error`` rather than raising, so the trace stays writable
    when new loss modes are added below this layer.
    """
    if ok:
        return "ok"
    if reason in NET_FAILURE_CAUSES:
        return reason
    return "channel_error"


@dataclass
class FlightRecord:
    """The CoS decision chain of one exchange (JSON-friendly fields only)."""

    seq: int
    rate_mbps: int
    measured_snr_db: float
    actual_snr_db: float
    snr_gap_db: float
    in_fallback: bool
    fallback_transition: Optional[str]  # "enter" | "exit" | None
    n_control_subcarriers: int
    max_control_bits: int
    target_silences: int
    control_subcarriers: List[int]
    n_silences: int
    silence_positions: List[List[int]]  # [symbol, subcarrier], capped
    detection_threshold: float
    energy_min: float
    energy_mean: float
    energy_max: float
    symbol_min_energy: List[float]  # per-symbol min over control subcarriers
    evd_erasures: int
    signal_ok: bool
    crc_ok: bool
    control_sent_bits: int
    control_received_bits: int
    control_ok: bool
    control_error: Optional[str]
    detection_fp: float
    detection_fn: float
    evm_selected_subcarriers: List[int] = field(default_factory=list)
    failure_cause: str = "ok"

    def to_event(self) -> Dict:
        event = asdict(self)
        event["type"] = "flight"
        event["schema"] = SCHEMA_VERSION
        return event


class FlightRecorder:
    """Builds, classifies, emits, and keeps flight records.

    Parameters
    ----------
    sink:
        Where ``"flight"`` events go (shared with the tracer under
        :func:`repro.obs.configure`).
    registry:
        Metrics registry for the ``repro_flight_total`` cause counters.
    max_positions:
        Cap on stored silence positions / per-symbol energies per record,
        to bound record size on long packets.
    keep:
        Also retain records in :attr:`records` (handy in-process; the CLI
        relies on the sink instead).
    """

    def __init__(
        self,
        sink: Optional[Sink] = None,
        registry: Optional[MetricsRegistry] = None,
        max_positions: int = 512,
        keep: bool = True,
    ) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self.registry = registry if registry is not None else get_registry()
        self.max_positions = max_positions
        self.keep = keep
        self.records: List[FlightRecord] = []
        self._seq = 0
        self._cause_counter = self.registry.counter(
            "repro_flight_total",
            help="CoS exchanges recorded, by failure cause.",
        )

    def record(
        self,
        *,
        rate_mbps: int,
        measured_snr_db: float,
        actual_snr_db: float,
        min_required_snr_db: float,
        in_fallback: bool,
        fallback_transition: Optional[str],
        allocation,
        control_subcarriers,
        silence_mask: Optional[np.ndarray],
        detection,
        evd_erasures: int,
        signal_ok: bool,
        crc_ok: bool,
        control_sent: np.ndarray,
        control_received: np.ndarray,
        control_ok: bool,
        control_error: Optional[str],
        detection_fp: float,
        detection_fn: float,
        evm_selected,
    ) -> FlightRecord:
        """Assemble and emit one record (called by ``CosLink.exchange``)."""
        cap = self.max_positions
        if silence_mask is not None:
            positions = np.argwhere(np.asarray(silence_mask, dtype=bool))
            n_silences = int(positions.shape[0])
            positions = positions[:cap].tolist()
        else:
            positions, n_silences = [], 0

        if detection is not None:
            threshold = float(detection.threshold)
            energies = np.asarray(detection.energies, dtype=np.float64)
            if energies.size:
                energy_min = float(energies.min())
                energy_mean = float(energies.mean())
                energy_max = float(energies.max())
                symbol_min = energies.min(axis=1)[:cap].tolist()
            else:
                energy_min = energy_mean = energy_max = float("nan")
                symbol_min = []
        else:
            threshold = float("nan")
            energy_min = energy_mean = energy_max = float("nan")
            symbol_min = []

        cause = classify_failure(
            signal_ok, crc_ok, int(control_sent.size), control_ok, control_error
        )
        record = FlightRecord(
            seq=self._seq,
            rate_mbps=int(rate_mbps),
            measured_snr_db=float(measured_snr_db),
            actual_snr_db=float(actual_snr_db),
            snr_gap_db=float(actual_snr_db - min_required_snr_db),
            in_fallback=bool(in_fallback),
            fallback_transition=fallback_transition,
            n_control_subcarriers=int(allocation.n_control_subcarriers),
            max_control_bits=int(allocation.max_control_bits),
            target_silences=int(allocation.target_silences),
            control_subcarriers=[int(c) for c in control_subcarriers],
            n_silences=n_silences,
            silence_positions=positions,
            detection_threshold=threshold,
            energy_min=energy_min,
            energy_mean=energy_mean,
            energy_max=energy_max,
            symbol_min_energy=symbol_min,
            evd_erasures=int(evd_erasures),
            signal_ok=bool(signal_ok),
            crc_ok=bool(crc_ok),
            control_sent_bits=int(control_sent.size),
            control_received_bits=int(control_received.size),
            control_ok=bool(control_ok),
            control_error=control_error,
            detection_fp=float(detection_fp),
            detection_fn=float(detection_fn),
            evm_selected_subcarriers=(
                [int(c) for c in evm_selected] if evm_selected is not None else []
            ),
            failure_cause=cause,
        )
        self._seq += 1
        self._cause_counter.labels(cause=cause).inc()
        self.sink.emit(record.to_event())
        if self.keep:
            self.records.append(record)
        return record


# ---------------------------------------------------------------------------
# Module-level switch (mirrors repro.obs.trace)
# ---------------------------------------------------------------------------

_recorder: Optional[FlightRecorder] = None


def enable(sink: Optional[Sink] = None,
           registry: Optional[MetricsRegistry] = None,
           **kwargs) -> FlightRecorder:
    global _recorder
    _recorder = FlightRecorder(sink=sink, registry=registry, **kwargs)
    return _recorder


def disable() -> None:
    global _recorder
    _recorder = None


def current_recorder() -> Optional[FlightRecorder]:
    """The active recorder, or None when flight recording is off."""
    return _recorder
