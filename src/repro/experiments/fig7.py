"""Fig. 7 — temporal stability of per-subcarrier quality (mobile scenario).

The receiver moves at walking speed; the harness snapshots the error-vector
magnitude vector D(t) (one entry per data subcarrier), advances the channel
by τ ∈ {10, 20, 30, 40} ms, snapshots D(t+τ), and accumulates the
normalised change ∇EVM (eq. (2)).  Small ∇EVM means the current feedback
predicts the next packet's weak subcarriers.

Engine trials: one "snapshots" trial for Fig. 7(a) plus one "instant"
trial per measurement instant of Fig. 7(b).  Each trial owns an
independent channel (its own seed offset), so the instants parallelise;
the τ ladder *within* a trial stays sequential because the channel
evolves through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import engine
from repro.cos.evm import error_vector_magnitudes, nabla_evm
from repro.experiments.common import (
    ExperimentConfig,
    init_phy_worker,
    phy_pair,
    print_table,
    scaled,
)
from repro.phy import RATE_TABLE, build_mpdu

__all__ = ["TemporalResult", "run", "print_result"]

TAUS_MS = (10.0, 20.0, 30.0, 40.0)


@dataclass
class TemporalResult:
    """∇EVM samples per time gap plus EVM snapshots for Fig. 7(a)."""

    nabla_samples: Dict[float, List[float]] = field(default_factory=dict)
    evm_snapshots: Dict[float, np.ndarray] = field(default_factory=dict)

    def median_nabla(self, tau_ms: float) -> float:
        return float(np.median(self.nabla_samples[tau_ms]))

    def nabla_grows_with_tau(self) -> bool:
        medians = [self.median_nabla(t) for t in sorted(self.nabla_samples)]
        return all(b >= a - 1e-6 for a, b in zip(medians, medians[1:]))


# The paper's ∇EVM stays within a few percent out to 40 ms.  Under the
# Gauss-Markov/Jakes model the tap innovation scale at lag tau is
# sqrt(1 - J0(2 pi f_d tau)^2), so ∇EVM <= 0.06 at 40 ms requires an
# *effective* Doppler below ~0.5 Hz — far under the nominal 12 Hz
# walking-speed maximum, i.e. the dominant scatterers in the paper's lab
# are quasi-static (roughly 1 Hz reproduces both the small magnitude
# and the gentle growth with tau).  The nominal walking value remains the library
# default elsewhere; this harness uses the calibrated effective value.
EFFECTIVE_DOPPLER_HZ = 1.0


def _snapshot(channel, rate, payload, n_avg: int = 12) -> Optional[np.ndarray]:
    """Average the per-subcarrier |error vector| over ``n_avg`` packets.

    Averaging suppresses the sampling noise of a single packet so ∇EVM
    reflects channel drift, as in the paper's trace-based measurement.
    The channel is *not* evolved between the averaging packets.
    """
    tx, rx = phy_pair()
    snapshots = []
    for _ in range(n_avg):
        frame = tx.transmit(build_mpdu(payload), rate)
        result = rx.receive(channel.transmit(frame.waveform))
        obs = result.observation
        if obs is None or obs.eq_data_grid.shape[0] < frame.n_data_symbols:
            continue
        snapshots.append(
            error_vector_magnitudes(
                obs.eq_data_grid[: frame.n_data_symbols], frame.data_symbols
            )
        )
    if not snapshots:
        return None
    return np.mean(snapshots, axis=0)


def _trial(spec: engine.TrialSpec):
    """One Fig. 7 trial: the (a) snapshot ladder or one (b) instant."""
    config: ExperimentConfig = spec["config"]
    rate = RATE_TABLE[spec["rate_mbps"]]
    snr_db = spec["snr_db"]

    if spec["kind"] == "snapshots":
        # Fig. 7(a): snapshots at increasing gaps from a common t.
        channel = config.channel(snr_db, doppler_hz=EFFECTIVE_DOPPLER_HZ)
        snapshots = {0.0: _snapshot(channel, rate, config.payload)}
        elapsed = 0.0
        for tau in TAUS_MS:
            channel.evolve((tau - elapsed) * 1e-3)
            elapsed = tau
            snapshots[tau] = _snapshot(channel, rate, config.payload)
        return snapshots

    # Fig. 7(b): ∇EVM at each τ for one independent instant.
    channel = config.channel(
        snr_db, seed_offset=101 + spec["trial"], doppler_hz=EFFECTIVE_DOPPLER_HZ
    )
    d_now = _snapshot(channel, rate, config.payload)
    if d_now is None:
        return {}
    nablas: Dict[float, float] = {}
    elapsed = 0.0
    for tau in TAUS_MS:
        channel.evolve((tau - elapsed) * 1e-3)
        elapsed = tau
        d_later = _snapshot(channel, rate, config.payload)
        if d_later is None:
            continue
        nablas[tau] = nabla_evm(d_now, d_later)
    return nablas


def run(
    config: Optional[ExperimentConfig] = None,
    snr_db: float = 18.0,
    n_trials: Optional[int] = None,
    rate_mbps: int = 24,
    workers: Optional[int] = None,
) -> TemporalResult:
    """Measure ∇EVM for each τ over ``n_trials`` independent instants."""
    config = config or ExperimentConfig(payload=bytes(1368))
    n_trials = n_trials if n_trials is not None else scaled(6, 40)

    base = {"config": config, "snr_db": snr_db, "rate_mbps": rate_mbps}
    params = [{**base, "kind": "snapshots"}] + [
        {**base, "kind": "instant", "trial": t} for t in range(n_trials)
    ]
    outcomes = engine.run_sweep(
        params, _trial, seed=config.seed, workers=workers,
        init=init_phy_worker, label="fig7",
    )

    result = TemporalResult(nabla_samples={t: [] for t in TAUS_MS})
    result.evm_snapshots.update(outcomes[0])
    for nablas in outcomes[1:]:
        for tau, value in nablas.items():
            result.nabla_samples[tau].append(value)
    return result


def print_result(result: TemporalResult) -> None:
    print("\n== Fig. 7 — temporal selectivity (walking speed) ==")
    rows = []
    for tau in sorted(result.nabla_samples):
        samples = np.array(result.nabla_samples[tau])
        rows.append(
            (
                tau,
                float(np.median(samples)),
                float(np.percentile(samples, 90)),
                len(samples),
            )
        )
    print_table(["tau ms", "median ∇EVM", "p90 ∇EVM", "samples"], rows,
                title="(b) ∇EVM vs time gap")


if __name__ == "__main__":
    print_result(run())
