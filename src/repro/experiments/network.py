"""Network-level experiment: the system-wide value of free control.

Not a paper figure — the paper evaluates CoS at the link level — but the
quantitative version of its motivation (§I): control messages carried by
explicit frames consume airtime and contention slots; CoS carries them
for free.  The harness sweeps contention (station count) and reports
goodput, control airtime share, and control latency for both schemes on
the DCF substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import engine
from repro.experiments.common import print_table
from repro.mac.overhead import ControlScheme, OverheadResult, run_overhead_comparison

__all__ = ["NetworkComparisonResult", "run", "print_result"]


@dataclass
class NetworkComparisonResult:
    """Per-contention-level pairs of (explicit, cos) outcomes."""

    station_counts: List[int] = field(default_factory=list)
    explicit: List[OverheadResult] = field(default_factory=list)
    cos: List[OverheadResult] = field(default_factory=list)

    def cos_never_loses_goodput(self) -> bool:
        return all(
            c.goodput_mbps >= e.goodput_mbps - 1e-9
            for c, e in zip(self.cos, self.explicit)
        )

    def explicit_control_airtime(self) -> float:
        """Mean control airtime fraction paid by the explicit scheme."""
        if not self.explicit:
            return 0.0
        return sum(r.control_airtime_fraction for r in self.explicit) / len(self.explicit)


def _trial(spec: engine.TrialSpec) -> OverheadResult:
    """One DCF simulation: a (scheme, contention level) pair."""
    if spec["scheme"] == ControlScheme.COS:
        return run_overhead_comparison(
            ControlScheme.COS,
            n_stations=spec["n_stations"],
            cos_delivery_prob=spec["cos_delivery_prob"],
            seed=spec["seed"],
        )
    return run_overhead_comparison(
        ControlScheme.EXPLICIT, n_stations=spec["n_stations"], seed=spec["seed"]
    )


def run(
    station_counts: Optional[List[int]] = None,
    cos_delivery_prob: float = 0.97,
    seed: int = 7,
    workers: Optional[int] = None,
) -> NetworkComparisonResult:
    """Compare the two control schemes across contention levels.

    One engine trial per (scheme, station count) — each DCF simulation
    is seeded independently, so all cells run in parallel.
    """
    station_counts = station_counts or [2, 4, 8, 12]
    params = [
        {
            "scheme": scheme,
            "n_stations": n,
            "cos_delivery_prob": cos_delivery_prob,
            "seed": seed,
        }
        for n in station_counts
        for scheme in (ControlScheme.EXPLICIT, ControlScheme.COS)
    ]
    outcomes = engine.run_sweep(
        params, _trial, seed=seed, workers=workers, label="network"
    )

    result = NetworkComparisonResult(station_counts=list(station_counts))
    for i in range(len(station_counts)):
        result.explicit.append(outcomes[2 * i])
        result.cos.append(outcomes[2 * i + 1])
    return result


def print_result(result: NetworkComparisonResult) -> None:
    rows = []
    for n, e, c in zip(result.station_counts, result.explicit, result.cos):
        rows.append(
            (
                n,
                e.goodput_mbps,
                c.goodput_mbps,
                e.control_airtime_fraction * 100,
                e.mean_control_latency_us / 1e3,
                c.mean_control_latency_us / 1e3,
            )
        )
    print_table(
        [
            "stations",
            "goodput explicit (Mbps)",
            "goodput CoS (Mbps)",
            "explicit ctrl airtime %",
            "latency explicit (ms)",
            "latency CoS (ms)",
        ],
        rows,
        title="Network comparison — explicit control frames vs CoS piggyback",
    )


if __name__ == "__main__":
    print_result(run())
