"""Network-level experiment: the system-wide value of free control.

Not a paper figure — the paper evaluates CoS at the link level — but the
quantitative version of its motivation (§I): control messages carried by
explicit frames consume airtime and contention slots; CoS carries them
for free.  The harness sweeps contention (station count) and reports
goodput, control airtime share, and control latency for both schemes.

Two backends price the contention:

* ``fast`` (default) — the original single-collision-domain slotted DCF
  model (:func:`repro.mac.overhead.run_overhead_comparison`).  Every
  station hears every other; collisions are perfectly symmetric.
* ``net`` — the spatial event-driven simulator (:mod:`repro.net`): the
  same contention ring rendered as a :func:`repro.net.scenarios
  .contention` scenario, with log-distance path loss, SINR + capture
  reception, and per-node DCF machines.  Slower, but control frames pay
  their airtime in a physically grounded medium.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import engine
from repro.experiments.common import print_table
from repro.mac.overhead import ControlScheme, OverheadResult, run_overhead_comparison

__all__ = [
    "GOODPUT_REL_TOL",
    "NetSchemeResult",
    "NetworkComparisonResult",
    "run",
    "print_result",
]

#: Relative slack when asserting "CoS never loses goodput": CoS may trail
#: explicit by at most this fraction before we call it a loss.  Distinct
#: seeds make the two schemes' contention realisations non-identical, so
#: an exact (or absolute-epsilon) comparison is the wrong tool.
GOODPUT_REL_TOL = 1e-6


@dataclass
class NetSchemeResult:
    """Adapter giving a :class:`repro.net.NetResult` the fast-backend shape.

    ``NetworkComparisonResult`` only needs ``goodput_mbps``,
    ``control_airtime_fraction`` and ``mean_control_latency_us`` from a
    scheme outcome; this wraps the spatial simulator's result so both
    backends duck-type identically (the full ``NetResult`` stays
    reachable via ``.net``).
    """

    net: object  # repro.net.NetResult

    @property
    def goodput_mbps(self) -> float:
        return self.net.aggregate_goodput_mbps

    @property
    def control_airtime_fraction(self) -> float:
        return self.net.control_airtime_fraction

    @property
    def mean_control_latency_us(self) -> float:
        latencies = [
            lat
            for stats in self.net.per_node.values()
            for lat in stats.control_latencies_us
        ]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)


@dataclass
class NetworkComparisonResult:
    """Per-contention-level pairs of (explicit, cos) outcomes."""

    station_counts: List[int] = field(default_factory=list)
    explicit: List[object] = field(default_factory=list)
    cos: List[object] = field(default_factory=list)
    backend: str = "fast"

    def goodput_violations(
        self, rel_tol: float = GOODPUT_REL_TOL
    ) -> List[Tuple[int, float, float]]:
        """Station counts where CoS goodput trails explicit beyond tolerance.

        Returns ``(n_stations, explicit_mbps, cos_mbps)`` triples.
        """
        return [
            (n, e.goodput_mbps, c.goodput_mbps)
            for n, e, c in zip(self.station_counts, self.explicit, self.cos)
            if c.goodput_mbps < e.goodput_mbps * (1.0 - rel_tol)
        ]

    def cos_never_loses_goodput(self, rel_tol: float = GOODPUT_REL_TOL) -> bool:
        return not self.goodput_violations(rel_tol)

    def explicit_control_airtime(self) -> float:
        """Mean control airtime fraction paid by the explicit scheme."""
        if not self.explicit:
            return 0.0
        return sum(r.control_airtime_fraction for r in self.explicit) / len(self.explicit)


def _trial(spec: engine.TrialSpec) -> OverheadResult:
    """One slotted DCF simulation: a (scheme, contention level) pair."""
    kwargs = dict(
        n_stations=spec["n_stations"],
        packets_per_station=spec["packets_per_station"],
        payload_octets=spec["payload_octets"],
        data_rate_mbps=spec["data_rate_mbps"],
        seed=spec["seed"],
    )
    if spec["scheme"] == ControlScheme.COS:
        return run_overhead_comparison(
            ControlScheme.COS,
            cos_delivery_prob=spec["cos_delivery_prob"],
            **kwargs,
        )
    return run_overhead_comparison(ControlScheme.EXPLICIT, **kwargs)


def _net_trial(spec: engine.TrialSpec) -> NetSchemeResult:
    """One spatial simulation of the contention ring (module-level: picklable)."""
    from repro.net import run_scenario
    from repro.net.scenarios import contention

    scenario = contention(
        control=str(spec["scheme"].value
                    if isinstance(spec["scheme"], ControlScheme)
                    else spec["scheme"]),
        n_stations=spec["n_stations"],
        n_packets=spec["packets_per_station"],
        payload_octets=spec["payload_octets"],
        data_rate_mbps=spec["data_rate_mbps"],
    )
    if spec["cos_delivery_prob"] is not None:
        scenario = dataclasses.replace(
            scenario, cos_delivery_prob=spec["cos_delivery_prob"]
        )
    return NetSchemeResult(net=run_scenario(scenario, rng=spec["seed"]))


def run(
    station_counts: Optional[List[int]] = None,
    cos_delivery_prob: float = 0.97,
    seed: int = 7,
    workers: Optional[int] = None,
    payload_octets: int = 1024,
    data_rate_mbps: int = 24,
    packets_per_station: int = 50,
    backend: str = "fast",
) -> NetworkComparisonResult:
    """Compare the two control schemes across contention levels.

    One engine trial per (scheme, station count) — each simulation is
    seeded independently, so all cells run in parallel.  ``backend``
    selects the contention model: ``"fast"`` (slotted single-domain DCF)
    or ``"net"`` (spatial SINR simulator, see module docstring).
    """
    if backend not in ("fast", "net"):
        raise ValueError(f"unknown backend {backend!r}; use 'fast' or 'net'")
    station_counts = station_counts or [2, 4, 8, 12]
    params = [
        {
            "scheme": scheme,
            "n_stations": n,
            "cos_delivery_prob": cos_delivery_prob,
            "payload_octets": payload_octets,
            "data_rate_mbps": data_rate_mbps,
            "packets_per_station": packets_per_station,
            "seed": seed,
        }
        for n in station_counts
        for scheme in (ControlScheme.EXPLICIT, ControlScheme.COS)
    ]
    trial = _trial if backend == "fast" else _net_trial
    outcomes = engine.run_sweep(
        params, trial, seed=seed, workers=workers, label=f"network-{backend}"
    )

    result = NetworkComparisonResult(
        station_counts=list(station_counts), backend=backend
    )
    for i in range(len(station_counts)):
        result.explicit.append(outcomes[2 * i])
        result.cos.append(outcomes[2 * i + 1])
    return result


def print_result(result: NetworkComparisonResult) -> None:
    rows = []
    for n, e, c in zip(result.station_counts, result.explicit, result.cos):
        rows.append(
            (
                n,
                e.goodput_mbps,
                c.goodput_mbps,
                e.control_airtime_fraction * 100,
                e.mean_control_latency_us / 1e3,
                c.mean_control_latency_us / 1e3,
            )
        )
    print_table(
        [
            "stations",
            "goodput explicit (Mbps)",
            "goodput CoS (Mbps)",
            "explicit ctrl airtime %",
            "latency explicit (ms)",
            "latency CoS (ms)",
        ],
        rows,
        title=(
            "Network comparison — explicit control frames vs CoS piggyback "
            f"[{result.backend} backend]"
        ),
    )
    for n, e_mbps, c_mbps in result.goodput_violations():
        print(
            f"FAIL: CoS loses goodput at {n} stations "
            f"(explicit {e_mbps:.3f} Mbps vs CoS {c_mbps:.3f} Mbps, "
            f"rel tol {GOODPUT_REL_TOL:g})"
        )


if __name__ == "__main__":
    print_result(run())
