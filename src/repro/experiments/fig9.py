"""Fig. 9 — capacity of free control messages: max silence rate Rm vs SNR.

For each 802.11a rate band the harness finds, by search over the insertion
rate, the maximum number of silence symbols per second (Rm) that keeps the
data packet reception rate at the paper's 99.3 % target.  Expected shape
(paper §IV-B): within a band Rm grows with SNR (more spare redundancy) and
saturates; ceilings order by code rate (1/2 > 3/4 at fixed modulation) and
by modulation (QPSK > 16QAM > 64QAM at fixed code rate), so the envelope
decreases from ≈148 k silences/s in the QPSK-1/2 band to ≈33 k at the
64QAM-3/4 band edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import engine
from repro.cos.intervals import IntervalCodec
from repro.cos.link import CosLink
from repro.cos.rate_control import ControlAllocation, ControlRateController
from repro.experiments.common import ExperimentConfig, print_table, scaled
from repro.rateadapt import RateAdapter

__all__ = ["CapacityPoint", "CapacityResult", "run", "print_result", "measure_prr"]

PRR_TARGET = 0.993
_BANDS_MBPS = (12, 18, 24, 36, 48, 54)


class _FixedBudgetController(ControlRateController):
    """A controller that always allocates a fixed number of k-bit groups.

    Used to *measure* Rm; the adaptive table in
    :mod:`repro.cos.rate_control` is the consumer of those measurements.
    """

    def __init__(self, groups_per_packet: int, codec: Optional[IntervalCodec] = None):
        super().__init__(codec=codec)
        self.groups_per_packet = int(groups_per_packet)

    def allocation(self, measured_snr_db: float, n_data_symbols: int) -> ControlAllocation:
        if self.groups_per_packet <= 0:
            return ControlAllocation(1, 0, 0)
        k = self.codec.k
        per_interval = self.codec.max_interval / 2.0 + 1.0
        needed = 1 + self.groups_per_packet * per_interval
        n_sub = int(-(-needed // n_data_symbols))
        n_sub = max(1, min(n_sub, self.max_subcarriers))
        return ControlAllocation(
            n_control_subcarriers=n_sub,
            max_control_bits=self.groups_per_packet * k,
            target_silences=self.groups_per_packet + 1,
        )


def measure_prr(
    config: ExperimentConfig,
    snr_db: float,
    groups_per_packet: int,
    n_packets: int,
    seed_offsets=(0, 1009),
) -> tuple:
    """(data PRR, mean silences/packet, mean airtime) at a fixed insertion.

    Packets are split across ``seed_offsets`` independent channel
    realizations so one unlucky draw does not dominate the estimate.
    """
    ok = 0
    total = 0
    silences = []
    airtimes = []
    per_real = max(n_packets // len(seed_offsets), 1)
    for seed_offset in seed_offsets:
        channel = config.channel(snr_db, seed_offset=seed_offset)
        controller = _FixedBudgetController(groups_per_packet)
        link = CosLink(channel=channel, controller=controller)
        rng = np.random.default_rng(config.seed + 977 + seed_offset)
        for _ in range(per_real):
            bits = rng.integers(0, 2, size=4 * groups_per_packet, dtype=np.uint8)
            outcome = link.exchange(config.payload, bits)
            ok += outcome.data_ok
            total += 1
            silences.append(outcome.n_silences)
            n_symbols = link.adapter.select(outcome.measured_snr_db).n_symbols_for(
                len(config.payload) + 4
            )
            airtimes.append(ControlRateController.packet_airtime_s(n_symbols))
    return ok / total, float(np.mean(silences)), float(np.mean(airtimes))


@dataclass(frozen=True)
class CapacityPoint:
    measured_snr_db: float
    rate_mbps: int
    rm_per_sec: float
    control_kbps: float
    prr: float


@dataclass
class CapacityResult:
    points: List[CapacityPoint] = field(default_factory=list)

    def ceiling(self, mbps: int) -> float:
        """Max Rm observed within a rate band."""
        values = [p.rm_per_sec for p in self.points if p.rate_mbps == mbps]
        return max(values) if values else 0.0

    def rm_rises_within_band(self, mbps: int) -> bool:
        values = [p.rm_per_sec for p in sorted(
            (p for p in self.points if p.rate_mbps == mbps),
            key=lambda p: p.measured_snr_db,
        )]
        return len(values) < 2 or values[-1] >= values[0]


def _find_rm(
    config: ExperimentConfig, snr_db: float, n_packets: int, max_failures: int
) -> CapacityPoint:
    adapter = RateAdapter()
    rate = adapter.select(snr_db)
    n_symbols = rate.n_symbols_for(len(config.payload) + 4)
    stream_cap = 16 * n_symbols
    hi_groups = max(int(stream_cap / 8.5) - 1, 1)
    target = 1.0 - max_failures / n_packets

    def passes(groups: int):
        prr, silences, airtime = measure_prr(config, snr_db, groups, n_packets)
        return prr >= target, prr, silences, airtime

    # Exponential descent from the top, then binary search.
    lo, hi = 0, hi_groups
    best = (0, 1.0, 0.0, ControlRateController.packet_airtime_s(n_symbols))
    while lo < hi:
        mid = (lo + hi + 1) // 2
        ok, prr, silences, airtime = passes(mid)
        if ok:
            best = (mid, prr, silences, airtime)
            lo = mid
        else:
            hi = mid - 1

    groups, prr, silences, airtime = best
    rm = silences / airtime if groups > 0 else 0.0
    return CapacityPoint(
        measured_snr_db=snr_db,
        rate_mbps=rate.mbps,
        rm_per_sec=rm,
        control_kbps=groups * 4 / airtime / 1e3,
        prr=prr,
    )


def _trial(spec: engine.TrialSpec) -> CapacityPoint:
    """One band point: the full Rm search at a fixed measured SNR."""
    return _find_rm(
        spec["config"], spec["snr_db"], spec["n_packets"], spec["max_failures"]
    )


def run(
    config: Optional[ExperimentConfig] = None,
    n_packets: Optional[int] = None,
    points_per_band: int = 2,
    bands_mbps=None,
    workers: Optional[int] = None,
) -> CapacityResult:
    """Measure Rm at ``points_per_band`` SNRs inside each rate band.

    Each band point is one engine trial (the Rm binary search within a
    point is adaptive, hence sequential; points are independent).
    """
    config = config or ExperimentConfig()
    n_packets = n_packets if n_packets is not None else scaled(24, 150)
    # At paper scale (>=150 packets) this is the exact 99.3 % criterion; at
    # quick scale one failure is tolerated so a single unlucky draw does
    # not collapse the search.
    max_failures = max(1, int(n_packets * (1 - PRR_TARGET)))
    adapter = RateAdapter()
    bands = bands_mbps or _BANDS_MBPS

    from repro.phy import RATE_TABLE

    params = []
    for mbps in bands:
        low, high = adapter.band(RATE_TABLE[mbps])
        if high == float("inf"):
            high = low + 3.0
        snrs = np.linspace(low + 0.3, high - 0.3, points_per_band)
        params.extend(
            {
                "config": config,
                "snr_db": float(snr),
                "n_packets": n_packets,
                "max_failures": max_failures,
            }
            for snr in snrs
        )
    points = engine.run_sweep(
        params, _trial, seed=config.seed, workers=workers, label="fig9"
    )
    return CapacityResult(points=list(points))


def print_result(result: CapacityResult) -> None:
    print_table(
        ["measured dB", "rate Mbps", "Rm /s", "control kbps", "PRR"],
        [
            (p.measured_snr_db, p.rate_mbps, int(p.rm_per_sec), p.control_kbps, p.prr)
            for p in sorted(result.points, key=lambda p: p.measured_snr_db)
        ],
        title="Fig. 9 — max silence-symbol rate Rm vs measured SNR",
    )


if __name__ == "__main__":
    print_result(run())
