"""Fig. 6 — symbol-error distribution within a packet (position A).

(a) The frequency of symbol errors by *symbol position* (symbols numbered
in transmission order) shows a periodic trend whose period equals the
number of data subcarriers (48): every deep-faded subcarrier recurs once
per OFDM symbol.  (b) The per-subcarrier symbol error rate confirms that
a few weak subcarriers produce most of the erroneous symbols.

The packet stream is one engine trial: the channel **evolves** between
packets (Gauss–Markov tap drift), so the stream is irreducibly
sequential — splitting it across workers would change which channel
state each packet sees.  Declaring it through :mod:`repro.engine` still
buys the shared error reporting, spans, and metrics plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import engine
from repro.analysis import symbol_error_rate_per_subcarrier
from repro.experiments.common import (
    ExperimentConfig,
    init_phy_worker,
    print_table,
    scaled,
    send_probe_packets,
)
from repro.phy import RATE_TABLE
from repro.phy.modulation import get_modulation
from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = ["ErrorPatternResult", "run", "print_result"]


@dataclass
class ErrorPatternResult:
    """Symbol-error statistics of Fig. 6."""

    position_error_freq: np.ndarray = field(default_factory=lambda: np.zeros(0))
    subcarrier_ser: np.ndarray = field(default_factory=lambda: np.zeros(0))
    n_packets: int = 0

    def dominant_period(self) -> int:
        """Estimated period of the positional error pattern (≈ 48)."""
        x = self.position_error_freq - self.position_error_freq.mean()
        if np.allclose(x, 0):
            return 0
        corr = np.correlate(x, x, mode="full")[x.size :]
        if corr.size < 2 * N_DATA_SUBCARRIERS:
            return 0
        # Search only around one fundamental period: with a sparse error
        # sample the 2x harmonic can spuriously edge out the fundamental.
        lo, hi = N_DATA_SUBCARRIERS // 2, N_DATA_SUBCARRIERS * 3 // 2
        return int(np.argmax(corr[lo:hi]) + lo)

    def weak_subcarrier_error_share(self, n_weak: int = 8) -> float:
        """Fraction of all symbol errors produced by the n weakest subcarriers."""
        total = self.subcarrier_ser.sum()
        if total == 0:
            return 0.0
        worst = np.sort(self.subcarrier_ser)[::-1][:n_weak]
        return float(worst.sum() / total)


def _trial(spec: engine.TrialSpec) -> ErrorPatternResult:
    """The full (sequential) packet stream of Fig. 6."""
    config: ExperimentConfig = spec["config"]
    rate = RATE_TABLE[spec["rate_mbps"]]
    modulation = get_modulation(rate.modulation)
    channel = config.channel(spec["snr_db"])

    error_grids = []
    for frame, result in send_probe_packets(
        channel, rate, spec["n_packets"], payload=config.payload, gap_s=2e-3
    ):
        obs = result.observation
        if obs is None or obs.eq_data_grid.shape[0] < frame.n_data_symbols:
            continue
        eq = obs.eq_data_grid[: frame.n_data_symbols]
        hard = modulation.demap_hard(eq.reshape(-1))
        sent = frame.coded_bits
        bits_per = modulation.bits_per_symbol
        errors = (
            (hard != sent)
            .reshape(frame.n_data_symbols, N_DATA_SUBCARRIERS, bits_per)
            .any(axis=2)
        )
        error_grids.append(errors)

    if not error_grids:
        raise RuntimeError("no packets observed")
    stacked = np.stack(error_grids)  # (n_packets, n_symbols, 48)
    flat = stacked.reshape(stacked.shape[0], -1)  # transmission order
    freq = flat.mean(axis=0)[: spec["max_positions"]]
    ser = symbol_error_rate_per_subcarrier([g for g in stacked])
    return ErrorPatternResult(
        position_error_freq=freq, subcarrier_ser=ser, n_packets=len(error_grids)
    )


def run(
    config: Optional[ExperimentConfig] = None,
    snr_db: float = 14.0,
    rate_mbps: int = 24,
    n_packets: Optional[int] = None,
    max_positions: int = 1000,
    workers: Optional[int] = None,
) -> ErrorPatternResult:
    """Send a fixed known packet repeatedly, recording symbol errors."""
    config = config or ExperimentConfig()
    n_packets = n_packets if n_packets is not None else scaled(30, 300)
    params = [{
        "config": config,
        "snr_db": snr_db,
        "rate_mbps": rate_mbps,
        "n_packets": n_packets,
        "max_positions": max_positions,
    }]
    (result,) = engine.run_sweep(
        params, _trial, seed=config.seed, workers=workers,
        init=init_phy_worker, label="fig6",
    )
    return result


def print_result(result: ErrorPatternResult) -> None:
    print(f"\n== Fig. 6 — symbol error pattern ({result.n_packets} packets) ==")
    print(f"(a) dominant period of positional errors: {result.dominant_period()} "
          f"(number of data subcarriers = {N_DATA_SUBCARRIERS})")
    print_table(
        ["subcarrier", "SER"],
        [(k + 1, float(s)) for k, s in enumerate(result.subcarrier_ser)],
        title="(b) per-subcarrier symbol error rate",
    )
    print(f"8 weakest subcarriers produce "
          f"{result.weak_subcarrier_error_share(8) * 100:.1f} % of all symbol errors")


if __name__ == "__main__":
    print_result(run())
