"""Fig. 2 — the SNR gap between minimum-required and actual channel SNR.

For each target *measured* SNR (the NIC's report, which drives rate
adaptation), the harness records the minimum SNR required by the selected
data rate (the stair-case) and the ground-truth actual SNR from the
channel sounder.  The paper's headline example: at measured 15 dB the
selected rate is 24 Mbps, whose requirement is 12 dB, while the actual
SNR is 16.7 dB — a 4.7 dB gap.

Trials (one per grid SNR) run through :mod:`repro.engine`: the trial
function averages ``realizations`` independent channel draws, the
reduction attaches the rate-adaptation staircase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import engine
from repro.experiments.common import ExperimentConfig, print_table
from repro.rateadapt import RateAdapter

__all__ = ["SnrGapPoint", "SnrGapResult", "run", "print_result"]


@dataclass(frozen=True)
class SnrGapPoint:
    measured_snr_db: float
    min_required_snr_db: float
    actual_snr_db: float
    rate_mbps: int

    @property
    def gap_db(self) -> float:
        """The exploitable SNR gap (actual minus required)."""
        return self.actual_snr_db - self.min_required_snr_db


@dataclass
class SnrGapResult:
    points: List[SnrGapPoint] = field(default_factory=list)

    @property
    def gaps_db(self) -> np.ndarray:
        return np.array([p.gap_db for p in self.points])

    def gap_always_positive(self) -> bool:
        """The paper's core observation: actual SNR > minimum required."""
        return bool(np.all(self.gaps_db > 0))


def _trial(spec: engine.TrialSpec) -> float:
    """Mean ground-truth SNR over the point's channel realizations."""
    config: ExperimentConfig = spec["config"]
    snr = spec["snr_db"]
    actuals = [
        config.channel(snr, seed_offset=17 * r).actual_snr_db
        for r in range(spec["realizations"])
    ]
    return float(np.mean(actuals))


def run(
    config: Optional[ExperimentConfig] = None,
    snr_grid: Optional[np.ndarray] = None,
    realizations: int = 3,
    workers: Optional[int] = None,
) -> SnrGapResult:
    """Sweep measured SNR 5–25 dB and record the three curves of Fig. 2.

    ``realizations`` channel draws are averaged per point (the paper's
    points come from distinct receiver placements).
    """
    config = config or ExperimentConfig()
    if snr_grid is None:
        snr_grid = np.arange(5.0, 25.5, 1.0)
    adapter = RateAdapter()

    params = [
        {"config": config, "snr_db": float(snr), "realizations": realizations}
        for snr in snr_grid
    ]
    actuals = engine.run_sweep(
        params, _trial, seed=config.seed, workers=workers, label="fig2"
    )

    points: List[SnrGapPoint] = []
    for snr, actual in zip(snr_grid, actuals):
        rate = adapter.select(float(snr))
        points.append(
            SnrGapPoint(
                measured_snr_db=float(snr),
                min_required_snr_db=adapter.min_required_snr_db(rate),
                actual_snr_db=actual,
                rate_mbps=rate.mbps,
            )
        )
    return SnrGapResult(points=points)


def print_result(result: SnrGapResult) -> None:
    print_table(
        ["measured dB", "rate Mbps", "min required dB", "actual dB", "gap dB"],
        [
            (p.measured_snr_db, p.rate_mbps, p.min_required_snr_db, p.actual_snr_db, p.gap_db)
            for p in result.points
        ],
        title="Fig. 2 — SNR gap (actual vs minimum required)",
    )


if __name__ == "__main__":
    print_result(run())
