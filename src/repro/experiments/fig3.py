"""Fig. 3 — decoder-input BER vs measured SNR at 24 Mbps.

The *actual BER* is the hard-decision bit error rate at the Viterbi
decoder's input (after demapping, before decoding).  The *redundant BER*
is the extra error rate the code could still absorb: the decoder-input
BER at the rate's minimum required SNR (12 dB) minus the actual BER at
the operating point.  It grows with measured SNR — that growth is the
correction capability CoS converts into silence symbols.

Trials (one per (SNR, channel realization)) run through
:mod:`repro.engine`; the reduction averages the per-packet BERs of each
grid SNR and subtracts the reference point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import engine
from repro.analysis import bit_error_rate
from repro.experiments.common import (
    ExperimentConfig,
    init_phy_worker,
    print_table,
    scaled,
    send_probe_packets,
)
from repro.phy import RATE_TABLE

__all__ = ["DecoderBerPoint", "DecoderBerResult", "run", "print_result"]


@dataclass(frozen=True)
class DecoderBerPoint:
    measured_snr_db: float
    actual_ber: float
    redundant_ber: float


@dataclass
class DecoderBerResult:
    points: List[DecoderBerPoint] = field(default_factory=list)
    reference_ber: float = 0.0  # decoder-input BER at the minimum required SNR

    def redundant_increases_with_snr(self) -> bool:
        reds = [p.redundant_ber for p in self.points]
        return all(b >= a - 1e-4 for a, b in zip(reds, reds[1:]))


def _trial(spec: engine.TrialSpec) -> List[float]:
    """Decoder-input BERs of one channel realization's probe packets."""
    config: ExperimentConfig = spec["config"]
    rate = RATE_TABLE[24]
    channel = config.channel(spec["snr_db"], seed_offset=31 * spec["realization"])
    bers = []
    for frame, result in send_probe_packets(
        channel, rate, spec["n_packets"], payload=config.payload
    ):
        if result.pre_viterbi_bits is None:
            continue
        bers.append(bit_error_rate(frame.coded_bits, result.pre_viterbi_bits))
    return bers


def run(
    config: Optional[ExperimentConfig] = None,
    snr_grid: Optional[np.ndarray] = None,
    n_packets: Optional[int] = None,
    realizations: int = 2,
    workers: Optional[int] = None,
) -> DecoderBerResult:
    """Reproduce Fig. 3 over the 24 Mbps band (measured SNR 12–17.3 dB)."""
    config = config or ExperimentConfig()
    if snr_grid is None:
        snr_grid = np.array([12.0, 12.5, 13.0, 13.5, 14.0, 14.5, 15.0, 15.5, 16.0, 16.5, 17.0, 17.3])
    n_packets = n_packets if n_packets is not None else scaled(6, 40)

    params = [
        {"config": config, "snr_db": float(snr), "realization": r, "n_packets": n_packets}
        for snr in snr_grid
        for r in range(realizations)
    ]
    per_trial = engine.run_sweep(
        params, _trial, seed=config.seed, workers=workers,
        init=init_phy_worker, label="fig3",
    )

    def mean_ber(grid_index: int) -> float:
        bers: List[float] = []
        for r in range(realizations):
            bers.extend(per_trial[grid_index * realizations + r])
        return float(np.mean(bers)) if bers else float("nan")

    reference = mean_ber(0)
    points = []
    for i, snr in enumerate(snr_grid):
        actual = reference if i == 0 else mean_ber(i)
        points.append(
            DecoderBerPoint(
                measured_snr_db=float(snr),
                actual_ber=actual,
                redundant_ber=max(reference - actual, 0.0),
            )
        )
    return DecoderBerResult(points=points, reference_ber=reference)


def print_result(result: DecoderBerResult) -> None:
    print_table(
        ["measured dB", "actual BER", "redundant BER"],
        [(p.measured_snr_db, p.actual_ber, p.redundant_ber) for p in result.points],
        title="Fig. 3 — decoder-input BER at 24 Mbps",
    )


if __name__ == "__main__":
    print_result(run())
