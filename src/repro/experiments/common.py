"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module exposes a ``run(config, ..., workers=None)``
returning a dataclass of plain arrays plus a ``print_result`` that
renders the same rows/series the paper's figure reports.  Benchmarks
call ``run`` with the quick defaults; set ``REPRO_FULL=1`` for
paper-scale packet counts (slower, smoother curves, same shapes).

Trial execution goes through :mod:`repro.engine`: each module declares a
module-level trial function plus a reduction, and ``workers``
(``--workers`` / ``REPRO_WORKERS``) selects serial or process-pool
execution with bit-identical results.  :func:`init_phy_worker` is the
engine ``init`` hook that pre-builds one ``Transmitter``/``Receiver``
pair per worker process; :func:`send_probe_packets` reuses that pair
instead of reconstructing the PHY per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.channel import IndoorChannel
from repro.engine.worker import worker_state
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu
from repro.phy.params import PhyRate
from repro.utils.env import env_bool

__all__ = [
    "full_mode",
    "scaled",
    "ExperimentConfig",
    "print_table",
    "send_probe_packets",
    "init_phy_worker",
    "phy_pair",
    "DEFAULT_PAYLOAD",
]

DEFAULT_PAYLOAD = bytes(range(256)) * 2  # 512 B of known, non-trivial payload


def full_mode() -> bool:
    """True when ``REPRO_FULL=1`` requests paper-scale runs."""
    return env_bool("REPRO_FULL", default=False)


def scaled(quick: int, full: int) -> int:
    """Pick a packet/trial budget according to the mode."""
    return full if full_mode() else quick


@dataclass
class ExperimentConfig:
    """Common knobs for the figure harnesses."""

    seed: int = 7
    position: str = "A"
    payload: bytes = DEFAULT_PAYLOAD

    def channel(self, snr_db: float, *, seed_offset: int = 0, **kwargs) -> IndoorChannel:
        return IndoorChannel.position(
            self.position, snr_db=snr_db, seed=self.seed + seed_offset, **kwargs
        )


def print_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> None:
    """Render a plain-text table (the textual equivalent of a figure)."""
    rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    if title:
        print(f"\n== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# ---------------------------------------------------------------------------
# Per-worker PHY reuse
# ---------------------------------------------------------------------------

_PHY_PAIR_KEY = "experiments.phy_pair"


def phy_pair() -> Tuple[Transmitter, Receiver]:
    """The process-local ``(Transmitter, Receiver)`` pair, built lazily.

    Both objects are stateless across packets (the scrambler state is a
    constructor constant), so sharing one pair per process is bit-exact
    with constructing them per call — it just stops re-paying the
    construction cost once per probe batch.
    """
    pair = worker_state().get(_PHY_PAIR_KEY)
    if pair is None:
        pair = (Transmitter(), Receiver())
        worker_state()[_PHY_PAIR_KEY] = pair
    return pair


def init_phy_worker() -> None:
    """Engine ``init`` hook: pre-build the PHY pair in each worker.

    Also pre-warms the compute-kernel backend so table builds / JIT
    compilation never land inside a measured trial (the process-pool
    initializer does this too; calling again is an idempotent no-op —
    this covers the serial path).
    """
    from repro import kernels

    kernels.warmup()
    phy_pair()


def send_probe_packets(
    channel: IndoorChannel,
    rate: PhyRate,
    n_packets: int,
    payload: bytes = DEFAULT_PAYLOAD,
    gap_s: float = 1e-3,
) -> List:
    """Send ``n_packets`` plain (silence-free) packets, returning RxResults
    paired with their TxFrames: ``[(tx_frame, rx_result), ...]``.

    Uses the per-worker PHY pair from :func:`phy_pair` — call sites no
    longer construct a fresh ``Transmitter``/``Receiver`` per batch.
    """
    tx, rx = phy_pair()
    psdu = build_mpdu(payload)
    frames = []
    waves = []
    for _ in range(n_packets):
        frame = tx.transmit(psdu, rate)
        frames.append(frame)
        waves.append(channel.transmit(frame.waveform))
        channel.evolve(gap_s)
    # All channel randomness is consumed during the TX loop above (the
    # receiver never touches the channel), so deferring reception is
    # bit-exact with the old interleaved loop — and equal-length probes
    # (the only kind this helper sends) flow through the stacked
    # ``receive_many`` path in one batch of FFTs/demaps/Viterbi calls.
    if waves and len({w.size for w in waves}) == 1:
        received = rx.receive_many(waves)
    else:
        received = [rx.receive(w) for w in waves]
    return list(zip(frames, received))
