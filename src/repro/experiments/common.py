"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module exposes a ``run(config)`` returning a dataclass of
plain arrays plus a ``print_result`` that renders the same rows/series the
paper's figure reports.  Benchmarks call ``run`` with the quick defaults;
set ``REPRO_FULL=1`` for paper-scale packet counts (slower, smoother
curves, same shapes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.channel import IndoorChannel
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu
from repro.phy.params import PhyRate

__all__ = [
    "full_mode",
    "scaled",
    "ExperimentConfig",
    "print_table",
    "send_probe_packets",
    "DEFAULT_PAYLOAD",
]

DEFAULT_PAYLOAD = bytes(range(256)) * 2  # 512 B of known, non-trivial payload


def full_mode() -> bool:
    """True when REPRO_FULL=1 requests paper-scale runs."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")


def scaled(quick: int, full: int) -> int:
    """Pick a packet/trial budget according to the mode."""
    return full if full_mode() else quick


@dataclass
class ExperimentConfig:
    """Common knobs for the figure harnesses."""

    seed: int = 7
    position: str = "A"
    payload: bytes = DEFAULT_PAYLOAD

    def channel(self, snr_db: float, *, seed_offset: int = 0, **kwargs) -> IndoorChannel:
        return IndoorChannel.position(
            self.position, snr_db=snr_db, seed=self.seed + seed_offset, **kwargs
        )


def print_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> None:
    """Render a plain-text table (the textual equivalent of a figure)."""
    rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    if title:
        print(f"\n== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def send_probe_packets(
    channel: IndoorChannel,
    rate: PhyRate,
    n_packets: int,
    payload: bytes = DEFAULT_PAYLOAD,
    gap_s: float = 1e-3,
) -> List:
    """Send ``n_packets`` plain (silence-free) packets, returning RxResults
    paired with their TxFrames: ``[(tx_frame, rx_result), ...]``.
    """
    tx = Transmitter()
    rx = Receiver()
    psdu = build_mpdu(payload)
    results = []
    for _ in range(n_packets):
        frame = tx.transmit(psdu, rate)
        received = rx.receive(channel.transmit(frame.waveform))
        results.append((frame, received))
        channel.evolve(gap_s)
    return results
