"""Run every figure harness in sequence and print the paper-style tables.

Usage::

    python -m repro.experiments.runner                    # quick, serial
    python -m repro.experiments.runner --workers 4        # process pool
    python -m repro.experiments.runner fig2 fig9          # subset
    REPRO_FULL=1 python -m repro.experiments.runner       # paper-scale
    REPRO_WORKERS=4 python -m repro.experiments.runner    # pool via env

Stage timing comes from the ``experiment.<stage>`` spans themselves
(:func:`repro.obs.trace.timed_span`): when tracing is enabled the stage
timings land in the JSONL trace and the ``repro_span_seconds``
histograms exactly as logged — there is no second, hand-rolled
``perf_counter`` path to drift out of sync.  Diagnostics go through the
``repro.experiments.runner`` logger — ``repro --log-level``/``--quiet``
control them; the result tables themselves always print to stdout.

``--workers N`` (default: the ``REPRO_WORKERS`` environment flag, else
serial) is forwarded to every stage's ``run(workers=...)``; trial
results are bit-for-bit identical either way (see ``docs/engine.md``).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from repro.engine import resolve_workers
from repro.experiments import ablations, fig2, fig3, fig5, fig6, fig7, fig9, fig10, network, waterfall
from repro.obs.trace import timed_span

log = logging.getLogger("repro.experiments.runner")


def _stages(network_kwargs=None):
    network_kwargs = network_kwargs or {}
    return [
        ("fig2", lambda w: fig2.print_result(fig2.run(workers=w))),
        ("fig3", lambda w: fig3.print_result(fig3.run(workers=w))),
        ("fig5", lambda w: fig5.print_result(fig5.run(workers=w))),
        ("fig6", lambda w: fig6.print_result(fig6.run(workers=w))),
        ("fig7", lambda w: fig7.print_result(fig7.run(workers=w))),
        ("fig9", lambda w: fig9.print_result(fig9.run(workers=w))),
        ("fig10", lambda w: fig10.print_result(fig10.run(workers=w))),
        ("ablations", lambda w: (
            ablations.print_placement(ablations.run_placement(workers=w)),
            ablations.print_evd(ablations.run_evd(workers=w)),
        )),
        ("network", lambda w: network.print_result(
            network.run(workers=w, **network_kwargs))),
        ("waterfall", lambda w: waterfall.print_result(waterfall.run(workers=w))),
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="run the figure harnesses and print the paper-style tables",
    )
    parser.add_argument(
        "stages", nargs="*", metavar="stage",
        help="subset to run, e.g. fig2 fig9 ablations (default: all)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="trial-engine worker processes (0 = serial; "
             "default: REPRO_WORKERS or serial)",
    )
    net = parser.add_argument_group("network stage")
    net.add_argument("--payload-octets", type=int, default=1024, metavar="B",
                     help="data payload per frame in the network stage")
    net.add_argument("--data-rate-mbps", type=int, default=24, metavar="R",
                     help="802.11a data rate in the network stage")
    net.add_argument("--packets-per-station", type=int, default=50, metavar="P",
                     help="frames each station offers in the network stage")
    net.add_argument("--network-backend", choices=["fast", "net"],
                     default="fast",
                     help="contention model: slotted single-domain DCF "
                          "(fast) or the spatial SINR simulator (net)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv if argv is not None else sys.argv[1:])
    only = set(args.stages)
    workers = args.workers  # None defers to REPRO_WORKERS inside the engine

    stages = _stages(network_kwargs={
        "payload_octets": args.payload_octets,
        "data_rate_mbps": args.data_rate_mbps,
        "packets_per_station": args.packets_per_station,
        "backend": args.network_backend,
    })
    unknown = only - {name for name, _ in stages}
    if unknown:
        log.warning("unknown stage(s) requested: %s", ", ".join(sorted(unknown)))
    log.info("trial engine: %s",
             "serial" if resolve_workers(workers) == 0
             else f"{resolve_workers(workers)} workers")
    for name, stage in stages:
        if only and name not in only:
            continue
        log.info("stage %s starting", name)
        with timed_span(f"experiment.{name}") as sp:
            stage(workers)
        log.info("stage %s done in %.1fs", name, sp.duration_s)
    return 0


if __name__ == "__main__":
    logging.basicConfig(level=logging.INFO, format="%(levelname)s %(name)s: %(message)s")
    raise SystemExit(main())
