"""Run every figure harness in sequence and print the paper-style tables.

Usage::

    python -m repro.experiments.runner           # quick mode
    REPRO_FULL=1 python -m repro.experiments.runner  # paper-scale
"""

from __future__ import annotations

import sys
import time

from repro.experiments import ablations, fig2, fig3, fig5, fig6, fig7, fig9, fig10, network, waterfall


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    only = set(argv)

    stages = [
        ("fig2", lambda: fig2.print_result(fig2.run())),
        ("fig3", lambda: fig3.print_result(fig3.run())),
        ("fig5", lambda: fig5.print_result(fig5.run())),
        ("fig6", lambda: fig6.print_result(fig6.run())),
        ("fig7", lambda: fig7.print_result(fig7.run())),
        ("fig9", lambda: fig9.print_result(fig9.run())),
        ("fig10", lambda: fig10.print_result(fig10.run())),
        ("ablations", lambda: (
            ablations.print_placement(ablations.run_placement()),
            ablations.print_evd(ablations.run_evd()),
        )),
        ("network", lambda: network.print_result(network.run())),
        ("waterfall", lambda: waterfall.print_result(waterfall.run())),
    ]
    for name, stage in stages:
        if only and name not in only:
            continue
        start = time.time()
        stage()
        print(f"[{name} done in {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
