"""Run every figure harness in sequence and print the paper-style tables.

Usage::

    python -m repro.experiments.runner           # quick mode
    REPRO_FULL=1 python -m repro.experiments.runner  # paper-scale

Stage timing uses ``time.perf_counter`` via the :mod:`repro.obs` span API
(span names ``experiment.<stage>``), so when tracing is enabled the
harness timings land in the same JSONL trace and ``repro_span_seconds``
histograms as the link instrumentation.  Diagnostics go through the
``repro.experiments.runner`` logger — ``repro --log-level``/``--quiet``
control them; the result tables themselves always print to stdout.
"""

from __future__ import annotations

import logging
import sys
import time

from repro.experiments import ablations, fig2, fig3, fig5, fig6, fig7, fig9, fig10, network, waterfall
from repro.obs.trace import span

log = logging.getLogger("repro.experiments.runner")


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    only = set(argv)

    stages = [
        ("fig2", lambda: fig2.print_result(fig2.run())),
        ("fig3", lambda: fig3.print_result(fig3.run())),
        ("fig5", lambda: fig5.print_result(fig5.run())),
        ("fig6", lambda: fig6.print_result(fig6.run())),
        ("fig7", lambda: fig7.print_result(fig7.run())),
        ("fig9", lambda: fig9.print_result(fig9.run())),
        ("fig10", lambda: fig10.print_result(fig10.run())),
        ("ablations", lambda: (
            ablations.print_placement(ablations.run_placement()),
            ablations.print_evd(ablations.run_evd()),
        )),
        ("network", lambda: network.print_result(network.run())),
        ("waterfall", lambda: waterfall.print_result(waterfall.run())),
    ]
    unknown = only - {name for name, _ in stages}
    if unknown:
        log.warning("unknown stage(s) requested: %s", ", ".join(sorted(unknown)))
    for name, stage in stages:
        if only and name not in only:
            continue
        log.info("stage %s starting", name)
        start = time.perf_counter()
        with span(f"experiment.{name}"):
            stage()
        log.info("stage %s done in %.1fs", name, time.perf_counter() - start)
    return 0


if __name__ == "__main__":
    logging.basicConfig(level=logging.INFO, format="%(levelname)s %(name)s: %(message)s")
    raise SystemExit(main())
