"""PHY validation: packet-error waterfall curves per rate.

Not a paper figure — a conformance check on the substrate.  For each
802.11a rate the packet error rate is swept against SNR on a mild
channel; the curves must fall monotonically and order by rate (higher
rates need more SNR), and the rate-1/2 hard-decision union bound from
:mod:`repro.phy.code_analysis` must upper-bound the soft decoder's BER
region.  Experiments built on a PHY that fails these checks measure
nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import engine
from repro.experiments.common import (
    ExperimentConfig,
    init_phy_worker,
    phy_pair,
    print_table,
    scaled,
)
from repro.phy import RATE_TABLE, build_mpdu

__all__ = ["WaterfallResult", "run", "print_result"]

_DEFAULT_RATES = (6, 12, 24, 54)


@dataclass
class WaterfallResult:
    """PER per (rate, SNR)."""

    snrs_db: np.ndarray = field(default_factory=lambda: np.zeros(0))
    per: Dict[int, np.ndarray] = field(default_factory=dict)

    def monotone_non_increasing(self, mbps: int, slack: float = 0.1) -> bool:
        values = self.per[mbps]
        return all(b <= a + slack for a, b in zip(values, values[1:]))

    def snr_for_per(self, mbps: int, target: float = 0.1) -> float:
        """First SNR at which PER drops to ``target`` (inf if never)."""
        for snr, per in zip(self.snrs_db, self.per[mbps]):
            if per <= target:
                return float(snr)
        return float("inf")

    def rates_ordered(self) -> bool:
        """Higher rates require at least as much SNR for PER <= 0.1."""
        thresholds = [self.snr_for_per(m) for m in sorted(self.per)]
        return all(b >= a - 1.0 for a, b in zip(thresholds, thresholds[1:]))


def _trial(spec: engine.TrialSpec) -> float:
    """PER of one (rate, SNR) grid cell over its packet budget."""
    config: ExperimentConfig = spec["config"]
    tx, rx = phy_pair()
    psdu = build_mpdu(bytes(spec["payload_octets"]))
    rate = RATE_TABLE[spec["rate_mbps"]]
    n_packets = spec["n_packets"]
    failures = 0
    for i in range(n_packets):
        channel = config.channel(spec["snr_db"], seed_offset=13 * i)
        frame = tx.transmit(psdu, rate)
        if not rx.receive(channel.transmit(frame.waveform)).ok:
            failures += 1
    return failures / n_packets


def run(
    config: Optional[ExperimentConfig] = None,
    snrs_db: Optional[np.ndarray] = None,
    n_packets: Optional[int] = None,
    rates_mbps=_DEFAULT_RATES,
    payload_octets: int = 256,
    workers: Optional[int] = None,
) -> WaterfallResult:
    """Measure PER waterfalls on the mild position-C channel.

    One engine trial per (rate, SNR) cell — each packet's channel is an
    independent seeded draw, so the grid parallelises freely.
    """
    config = config or ExperimentConfig(position="C")
    n_packets = n_packets if n_packets is not None else scaled(12, 100)
    if snrs_db is None:
        snrs_db = np.arange(0.0, 26.0, 2.0)

    params = [
        {
            "config": config,
            "rate_mbps": mbps,
            "snr_db": float(snr),
            "n_packets": n_packets,
            "payload_octets": payload_octets,
        }
        for mbps in rates_mbps
        for snr in snrs_db
    ]
    pers = engine.run_sweep(
        params, _trial, seed=config.seed, workers=workers,
        init=init_phy_worker, label="waterfall",
    )

    result = WaterfallResult(snrs_db=np.asarray(snrs_db, dtype=np.float64))
    n_snrs = len(result.snrs_db)
    for r, mbps in enumerate(rates_mbps):
        result.per[mbps] = np.array(pers[r * n_snrs : (r + 1) * n_snrs])
    return result


def print_result(result: WaterfallResult) -> None:
    rates = sorted(result.per)
    rows = []
    for i, snr in enumerate(result.snrs_db):
        rows.append([snr] + [result.per[m][i] for m in rates])
    print_table(
        ["SNR dB"] + [f"PER {m} Mbps" for m in rates],
        rows,
        title="PHY waterfall — packet error rate vs SNR",
    )
    for m in rates:
        print(f"{m} Mbps reaches PER<=0.1 at {result.snr_for_per(m):.1f} dB")


if __name__ == "__main__":
    print_result(run())
