"""Experiment harnesses — one module per paper figure plus ablations.

Each module exposes ``run(...) -> result`` and ``print_result(result)``;
``python -m repro.experiments.runner`` executes every figure in sequence.
Quick defaults keep the full suite to minutes; set ``REPRO_FULL=1`` for
paper-scale statistics.
"""

from repro.experiments import (
    ablations,
    common,
    fig2,
    fig3,
    fig5,
    fig6,
    fig7,
    fig9,
    fig10,
    network,
    waterfall,
)
from repro.experiments.common import ExperimentConfig, full_mode, scaled

__all__ = [
    "ablations",
    "common",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "network",
    "waterfall",
    "ExperimentConfig",
    "full_mode",
    "scaled",
]
