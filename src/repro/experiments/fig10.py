"""Fig. 10 — detection accuracy of silence symbols.

(a) FFT-magnitude snapshot of one OFDM symbol with silences on eight
contiguous control subcarriers (the paper's [10..17]); inactive
subcarriers are visibly at the noise floor.
(b) False-positive/false-negative trade-off vs detection threshold at a
fixed SNR (too high a threshold misreads deep fades as silence; too low
misses real silences).
(c) Both probabilities vs measured SNR with the adaptive (pilot-aided)
threshold: FN stays below 0.01 everywhere; FP is near zero above ~10 dB
and grows only at very low SNR.
(d) FN vs SNR under strong pulse interference: bursts landing on silence
symbols raise their energy above threshold, so FN explodes — the one
scenario CoS does not handle (the paper defers it to MAC coordination).

Engine trials are per *packet*: each packet draws its silences (and its
interferer, for (d)) from the trial's own ``SeedSequence`` stream, so
packets are independent and the sweeps parallelise freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import engine
from repro.channel import PulseInterferer
from repro.cos.energy import EnergyDetector
from repro.cos.silence import SilencePlanner
from repro.experiments.common import (
    ExperimentConfig,
    init_phy_worker,
    phy_pair,
    print_table,
    scaled,
)
from repro.phy import RATE_TABLE, build_mpdu
from repro.phy.modulation import get_modulation

__all__ = [
    "SnapshotResult",
    "ThresholdSweepResult",
    "AccuracyResult",
    "run_snapshot",
    "run_threshold_sweep",
    "run_accuracy_vs_snr",
    "run_interference",
    "print_result",
    "Fig10Result",
    "run",
]

CONTROL_SUBCARRIERS = tuple(range(9, 17))  # paper's subcarriers 10..17 (1-based)


def _one_packet_with_silences(
    config: ExperimentConfig,
    snr_db: float,
    rate_mbps: int,
    rng: np.random.Generator,
    seed_offset: int = 0,
    interferer: Optional[PulseInterferer] = None,
):
    """Transmit one packet with random silences on the fixed control set."""
    channel = config.channel(snr_db, seed_offset=seed_offset, interferer=interferer)
    rate = RATE_TABLE[rate_mbps]
    tx, rx = phy_pair()
    psdu = build_mpdu(config.payload)
    planner = SilencePlanner(CONTROL_SUBCARRIERS)
    n_symbols = rate.n_symbols_for(len(psdu))
    bits = rng.integers(0, 2, size=4 * max(n_symbols // 2, 4), dtype=np.uint8)
    plan = planner.plan(bits, n_symbols)
    frame = tx.transmit(psdu, rate, silence_mask=plan.mask)
    obs = rx.observe(channel.transmit(frame.waveform))
    return frame, obs, channel


# ---------------------------------------------------------------------------
# (a) snapshot
# ---------------------------------------------------------------------------


@dataclass
class SnapshotResult:
    magnitudes: np.ndarray  # relative FFT magnitude per used subcarrier (52)
    silent_data_subcarriers: List[int] = field(default_factory=list)

    def contrast_db(self) -> float:
        """Active-vs-silent median magnitude ratio on the control set."""
        silent = [m for k, m in enumerate(self.magnitudes[:48]) if k in self.silent_data_subcarriers]
        active = [
            m
            for k, m in enumerate(self.magnitudes[:48])
            if k in CONTROL_SUBCARRIERS and k not in self.silent_data_subcarriers
        ]
        if not silent or not active:
            return 0.0
        return float(20 * np.log10(np.median(active) / max(np.median(silent), 1e-12)))


def run_snapshot(
    config: Optional[ExperimentConfig] = None, snr_db: float = 15.0
) -> SnapshotResult:
    """Fig. 10(a): magnitudes of one OFDM symbol carrying silences."""
    config = config or ExperimentConfig()
    rng = np.random.default_rng(config.seed)
    frame, obs, _ = _one_packet_with_silences(config, snr_db, 24, rng)
    # Find a data symbol containing at least two silences.
    counts = frame.silence_mask.sum(axis=1)
    idx = int(np.argmax(counts))
    data_mags = np.abs(obs.raw_data_grid[idx])
    pilot_mags = np.full(4, np.abs(obs.h_data).mean())
    mags = np.concatenate([data_mags, pilot_mags])
    mags = mags / mags.max()
    silent = [int(k) for k in np.nonzero(frame.silence_mask[idx])[0]]
    return SnapshotResult(magnitudes=mags, silent_data_subcarriers=silent)


# ---------------------------------------------------------------------------
# (b) threshold sweep
# ---------------------------------------------------------------------------


@dataclass
class ThresholdSweepResult:
    thresholds_db: np.ndarray  # relative to the true noise floor
    false_positive: np.ndarray
    false_negative: np.ndarray

    def crossover_db(self) -> float:
        """Threshold (dB over noise floor) where FP and FN curves cross."""
        diff = self.false_positive - self.false_negative
        sign_change = np.nonzero(np.diff(np.sign(diff)))[0]
        if sign_change.size == 0:
            return float("nan")
        return float(self.thresholds_db[sign_change[0]])


def _threshold_trial(spec: engine.TrialSpec) -> Optional[Tuple[List[float], List[float]]]:
    """One packet's FP/FN at every candidate threshold (None if unheard)."""
    config: ExperimentConfig = spec["config"]
    detector = EnergyDetector(adaptive=False)
    frame, obs, _ = _one_packet_with_silences(
        config, spec["snr_db"], 12, spec.rng(), seed_offset=spec["packet"]
    )
    if obs is None:
        return None
    n_sym = frame.n_data_symbols
    fps, fns = [], []
    for t_db in spec["thresholds_db"]:
        threshold = obs.noise_var * 10.0 ** (t_db / 10.0)
        report = detector.detect(
            obs.raw_data_grid[:n_sym],
            CONTROL_SUBCARRIERS,
            obs.noise_var,
            threshold=threshold,
        )
        fp, fn = EnergyDetector.confusion(
            report.mask, frame.silence_mask, CONTROL_SUBCARRIERS
        )
        fps.append(fp)
        fns.append(fn)
    return fps, fns


def run_threshold_sweep(
    config: Optional[ExperimentConfig] = None,
    snr_db: float = 9.2,
    n_packets: Optional[int] = None,
    thresholds_db: Optional[np.ndarray] = None,
    workers: Optional[int] = None,
) -> ThresholdSweepResult:
    """Fig. 10(b): FP/FN vs the (fixed, global) detection threshold."""
    config = config or ExperimentConfig()
    n_packets = n_packets if n_packets is not None else scaled(12, 100)
    if thresholds_db is None:
        thresholds_db = np.arange(-6.0, 22.0, 2.0)

    params = [
        {
            "config": config,
            "snr_db": snr_db,
            "packet": i,
            "thresholds_db": tuple(float(t) for t in thresholds_db),
        }
        for i in range(n_packets)
    ]
    outcomes = engine.run_sweep(
        params, _threshold_trial, seed=config.seed + 1, workers=workers,
        init=init_phy_worker, label="fig10.threshold",
    )
    fps = [o[0] for o in outcomes if o is not None]
    fns = [o[1] for o in outcomes if o is not None]
    return ThresholdSweepResult(
        thresholds_db=np.asarray(thresholds_db, dtype=np.float64),
        false_positive=np.mean(fps, axis=0),
        false_negative=np.mean(fns, axis=0),
    )


# ---------------------------------------------------------------------------
# (c) / (d) accuracy vs SNR
# ---------------------------------------------------------------------------


@dataclass
class AccuracyResult:
    snrs_db: np.ndarray
    false_positive: np.ndarray
    false_negative: np.ndarray
    interference: bool = False


def _accuracy_trial(spec: engine.TrialSpec):
    """One packet's (FP, FN) under the adaptive threshold.

    Returns ``(fp, fn)``; either entry may be ``None`` when that packet
    contributes no sample (e.g. interference broke the SIGNAL field and
    the packet carried no silences).
    """
    config: ExperimentConfig = spec["config"]
    detector = EnergyDetector()
    modulation = get_modulation("qpsk")
    power = spec["interferer_power"]
    interferer = (
        PulseInterferer(
            pulse_power=power, symbol_probability=0.25, rng=spec.child_rng(1)
        )
        if power is not None
        else None
    )
    frame, obs, _ = _one_packet_with_silences(
        config, spec["snr_db"], 12, spec.rng(),
        seed_offset=100 + spec["packet"], interferer=interferer,
    )
    n_sym = frame.n_data_symbols
    if obs is None or obs.raw_data_grid.shape[0] < n_sym:
        # Interference broke even the SIGNAL field: the receiver
        # obtains neither data nor control — every silence missed.
        if frame.silence_mask.any():
            return None, 1.0
        return None, None
    report = detector.detect(
        obs.raw_data_grid[:n_sym],
        CONTROL_SUBCARRIERS,
        obs.noise_var,
        h_gains=np.abs(obs.h_data) ** 2,
        min_symbol_energy=modulation.min_symbol_energy,
    )
    fp, fn = EnergyDetector.confusion(
        report.mask, frame.silence_mask, CONTROL_SUBCARRIERS
    )
    return fp, fn


def _accuracy_vs_snr(
    config: ExperimentConfig,
    snrs_db: np.ndarray,
    n_packets: int,
    interferer_power: Optional[float],
    workers: Optional[int] = None,
) -> AccuracyResult:
    params = [
        {
            "config": config,
            "snr_db": float(snr),
            "packet": i,
            "interferer_power": interferer_power,
        }
        for snr in snrs_db
        for i in range(n_packets)
    ]
    label = "fig10.interference" if interferer_power is not None else "fig10.accuracy"
    outcomes = engine.run_sweep(
        params, _accuracy_trial, seed=config.seed + 2, workers=workers,
        init=init_phy_worker, label=label,
    )
    fps, fns = [], []
    for s in range(len(snrs_db)):
        chunk = outcomes[s * n_packets : (s + 1) * n_packets]
        fp_list = [fp for fp, _ in chunk if fp is not None]
        fn_list = [fn for _, fn in chunk if fn is not None]
        fps.append(np.mean(fp_list) if fp_list else float("nan"))
        fns.append(np.mean(fn_list) if fn_list else float("nan"))
    return AccuracyResult(
        snrs_db=np.asarray(snrs_db, dtype=np.float64),
        false_positive=np.array(fps),
        false_negative=np.array(fns),
        interference=interferer_power is not None,
    )


def run_accuracy_vs_snr(
    config: Optional[ExperimentConfig] = None,
    snrs_db: Optional[np.ndarray] = None,
    n_packets: Optional[int] = None,
    workers: Optional[int] = None,
) -> AccuracyResult:
    """Fig. 10(c): FP/FN vs SNR with the adaptive threshold."""
    config = config or ExperimentConfig()
    n_packets = n_packets if n_packets is not None else scaled(10, 100)
    if snrs_db is None:
        snrs_db = np.array([3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0])
    return _accuracy_vs_snr(config, snrs_db, n_packets, interferer_power=None,
                            workers=workers)


def run_interference(
    config: Optional[ExperimentConfig] = None,
    snrs_db: Optional[np.ndarray] = None,
    n_packets: Optional[int] = None,
    pulse_power: float = 20.0,
    workers: Optional[int] = None,
) -> AccuracyResult:
    """Fig. 10(d): FN vs SNR under strong pulse interference."""
    config = config or ExperimentConfig()
    n_packets = n_packets if n_packets is not None else scaled(10, 100)
    if snrs_db is None:
        snrs_db = np.array([3.0, 6.0, 10.0, 14.0, 18.0, 20.0])
    return _accuracy_vs_snr(config, snrs_db, n_packets, interferer_power=pulse_power,
                            workers=workers)


# ---------------------------------------------------------------------------
# Combined runner
# ---------------------------------------------------------------------------


@dataclass
class Fig10Result:
    snapshot: SnapshotResult
    threshold_sweep: ThresholdSweepResult
    accuracy: AccuracyResult
    interference: AccuracyResult


def run(config: Optional[ExperimentConfig] = None,
        workers: Optional[int] = None) -> Fig10Result:
    config = config or ExperimentConfig()
    return Fig10Result(
        snapshot=run_snapshot(config),
        threshold_sweep=run_threshold_sweep(config, workers=workers),
        accuracy=run_accuracy_vs_snr(config, workers=workers),
        interference=run_interference(config, workers=workers),
    )


def print_result(result: Fig10Result) -> None:
    snap = result.snapshot
    print("\n== Fig. 10(a) — FFT magnitude snapshot ==")
    print(f"silent data subcarriers (0-based): {snap.silent_data_subcarriers}")
    print(f"active/silent contrast: {snap.contrast_db():.1f} dB")

    sweep = result.threshold_sweep
    print_table(
        ["threshold dB(rel floor)", "false positive", "false negative"],
        list(zip(sweep.thresholds_db, sweep.false_positive, sweep.false_negative)),
        title="Fig. 10(b) — threshold trade-off at 9.2 dB",
    )

    acc = result.accuracy
    print_table(
        ["measured dB", "false positive", "false negative"],
        list(zip(acc.snrs_db, acc.false_positive, acc.false_negative)),
        title="Fig. 10(c) — adaptive threshold accuracy vs SNR",
    )

    intf = result.interference
    print_table(
        ["measured dB", "FN (interference)", "FN (clean)"],
        [
            (s, fn_i, float(np.interp(s, acc.snrs_db, acc.false_negative)))
            for s, fn_i in zip(intf.snrs_db, intf.false_negative)
        ],
        title="Fig. 10(d) — impact of strong pulse interference",
    )


if __name__ == "__main__":
    print_result(run())
