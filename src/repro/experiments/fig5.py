"""Fig. 5 — per-subcarrier EVM at three receiver positions.

A fixed packet with symbols known to both ends is sent repeatedly; the
receiver computes EVM per data subcarrier (eq. (1)).  Different positions
exhibit different degrees of frequency-selective fading, with EVM spreads
up to ~13 % across subcarriers of a single link in the paper.

One engine trial per receiver position (each position is an independent
channel, so positions measure in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import engine
from repro.cos.evm import per_subcarrier_evm
from repro.experiments.common import (
    ExperimentConfig,
    init_phy_worker,
    print_table,
    scaled,
    send_probe_packets,
)
from repro.phy import RATE_TABLE
from repro.phy.modulation import get_modulation

__all__ = ["EvmResult", "run", "print_result", "measure_evm"]


@dataclass
class EvmResult:
    """EVM (fraction) per subcarrier, keyed by position name."""

    evms: Dict[str, np.ndarray] = field(default_factory=dict)
    snr_db: float = 15.0

    def spread_percent(self, position: str) -> float:
        """Max-minus-min EVM across subcarriers, in percent."""
        e = self.evms[position]
        return float((e.max() - e.min()) * 100.0)


def measure_evm(
    channel, rate_mbps: int, n_packets: int, payload: bytes
) -> np.ndarray:
    """EVM per subcarrier using known transmitted symbols as reference."""
    rate = RATE_TABLE[rate_mbps]
    modulation = get_modulation(rate.modulation)
    evms = []
    for frame, result in send_probe_packets(channel, rate, n_packets, payload=payload):
        obs = result.observation
        if obs is None or obs.eq_data_grid.shape[0] < frame.n_data_symbols:
            continue
        evms.append(
            per_subcarrier_evm(
                obs.eq_data_grid[: frame.n_data_symbols],
                frame.data_symbols,
                modulation,
            )
        )
    if not evms:
        raise RuntimeError("no packets observed")
    return np.mean(evms, axis=0)


# A seed whose channel draws sit at the median selectivity of each profile
# (single links, as in the paper's three-position measurement).
REPRESENTATIVE_SEED = 27


def _trial(spec: engine.TrialSpec) -> np.ndarray:
    """Per-subcarrier EVM of one receiver position."""
    cfg = ExperimentConfig(
        seed=spec["seed"], position=spec["position"], payload=spec["payload"]
    )
    channel = cfg.channel(spec["snr_db"])
    return measure_evm(channel, 24, spec["n_packets"], spec["payload"])


def run(
    config: Optional[ExperimentConfig] = None,
    snr_db: float = 15.0,
    n_packets: Optional[int] = None,
    positions: Optional[List[str]] = None,
    workers: Optional[int] = None,
) -> EvmResult:
    """Measure Fig. 5's per-subcarrier EVM at positions A, B and C."""
    config = config or ExperimentConfig(seed=REPRESENTATIVE_SEED)
    n_packets = n_packets if n_packets is not None else scaled(8, 50)
    positions = positions or ["A", "B", "C"]

    params = [
        {
            "seed": config.seed,
            "position": position,
            "payload": config.payload,
            "snr_db": snr_db,
            "n_packets": n_packets,
        }
        for position in positions
    ]
    evms = engine.run_sweep(
        params, _trial, seed=config.seed, workers=workers,
        init=init_phy_worker, label="fig5",
    )

    result = EvmResult(snr_db=snr_db)
    for position, evm in zip(positions, evms):
        result.evms[position] = evm
    return result


def print_result(result: EvmResult) -> None:
    positions = sorted(result.evms)
    rows = []
    n = len(next(iter(result.evms.values())))
    for k in range(n):
        rows.append([k + 1] + [result.evms[p][k] * 100.0 for p in positions])
    print_table(
        ["subcarrier"] + [f"EVM% pos {p}" for p in positions],
        rows,
        title=f"Fig. 5 — per-subcarrier EVM at {result.snr_db} dB",
    )
    for p in positions:
        print(f"position {p}: EVM spread {result.spread_percent(p):.1f} %")


if __name__ == "__main__":
    print_result(run())
