"""Ablation studies for the design choices the paper argues for.

1. **Placement** (§II-D): silences on the *weak* subcarriers overlap with
   symbols that would have been corrupted anyway, so at a fixed insertion
   rate the data PRR is at least as high as with random or strong-
   subcarrier placement — equivalently, weak placement sustains a higher
   Rm.
2. **EVD vs error-only decoding** (§III-E): zeroing the bit metrics of
   detected silences (erasures) beats letting the demapper treat the
   noise-only observation as signal (errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import engine
from repro.cos.silence import SilencePlanner
from repro.experiments.common import (
    ExperimentConfig,
    init_phy_worker,
    phy_pair,
    print_table,
    scaled,
)
from repro.phy import RATE_TABLE, build_mpdu
from repro.phy.params import N_DATA_SUBCARRIERS

__all__ = [
    "PlacementResult",
    "run_placement",
    "EvdResult",
    "run_evd",
    "print_placement",
    "print_evd",
]


def _subcarrier_order(channel, strategy: str, rng: np.random.Generator) -> np.ndarray:
    gains = channel.data_subcarrier_snrs()
    if strategy == "weak":
        return np.argsort(gains)  # weakest first
    if strategy == "strong":
        return np.argsort(gains)[::-1]
    if strategy == "random":
        return rng.permutation(N_DATA_SUBCARRIERS)
    raise ValueError(f"unknown strategy {strategy!r}")


def _prr_with_placement(
    config: ExperimentConfig,
    snr_db: float,
    rate_mbps: int,
    n_control: int,
    groups: int,
    strategy: str,
    n_packets: int,
    use_erasures: bool = True,
) -> float:
    """PRR with ``groups`` interval groups on subcarriers picked by strategy.

    Detection is bypassed (the true silence mask is used) so the ablation
    isolates the *decoding* cost of placement, not detector behaviour.
    """
    rate = RATE_TABLE[rate_mbps]
    tx, rx = phy_pair()
    psdu = build_mpdu(config.payload)
    rng = np.random.default_rng(config.seed + 13)
    channel = config.channel(snr_db)
    ok = 0
    for _ in range(n_packets):
        order = _subcarrier_order(channel, strategy, rng)
        planner = SilencePlanner(sorted(int(c) for c in order[:n_control]))
        bits = rng.integers(0, 2, size=4 * groups, dtype=np.uint8)
        plan = planner.plan(bits, rate.n_symbols_for(len(psdu)))
        frame = tx.transmit(psdu, rate, silence_mask=plan.mask)
        result = rx.receive(
            channel.transmit(frame.waveform),
            erasure_mask=frame.silence_mask if use_erasures else None,
        )
        ok += result.ok
        channel.evolve(1e-3)
    return ok / n_packets


@dataclass
class PlacementResult:
    """PRR by placement strategy at increasing insertion rates."""

    groups_grid: List[int] = field(default_factory=list)
    prr: Dict[str, List[float]] = field(default_factory=dict)

    def weak_dominates(self) -> bool:
        """Weak placement should never lose badly to the alternatives."""
        weak = np.array(self.prr["weak"])
        return all(
            np.all(weak >= np.array(self.prr[s]) - 0.05)
            for s in self.prr
            if s != "weak"
        )


def _trial(spec: engine.TrialSpec) -> float:
    """One grid cell: PRR of one (strategy, insertion-rate) pair."""
    return _prr_with_placement(
        spec["config"],
        spec["snr_db"],
        spec["rate_mbps"],
        16,
        spec["groups"],
        spec["strategy"],
        spec["n_packets"],
        use_erasures=spec["use_erasures"],
    )


def _default_groups_grid(config: ExperimentConfig, rate_mbps: int) -> List[int]:
    rate = RATE_TABLE[rate_mbps]
    n_symbols = rate.n_symbols_for(len(config.payload) + 4)
    cap = int(16 * n_symbols / 8.5)
    return [max(cap // 4, 1), max(cap // 2, 2), max(3 * cap // 4, 3),
            max(int(0.95 * cap), 4)]


def run_placement(
    config: Optional[ExperimentConfig] = None,
    snr_db: float = 9.6,
    rate_mbps: int = 18,
    n_packets: Optional[int] = None,
    groups_grid: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
) -> PlacementResult:
    config = config or ExperimentConfig()
    n_packets = n_packets if n_packets is not None else scaled(20, 120)
    if groups_grid is None:
        groups_grid = _default_groups_grid(config, rate_mbps)

    strategies = ("weak", "random", "strong")
    params = [
        {
            "config": config,
            "snr_db": snr_db,
            "rate_mbps": rate_mbps,
            "groups": g,
            "strategy": strategy,
            "n_packets": n_packets,
            "use_erasures": True,
        }
        for strategy in strategies
        for g in groups_grid
    ]
    prrs = engine.run_sweep(
        params, _trial, seed=config.seed, workers=workers,
        init=init_phy_worker, label="ablation.placement",
    )

    result = PlacementResult(groups_grid=list(groups_grid))
    for s, strategy in enumerate(strategies):
        result.prr[strategy] = prrs[s * len(groups_grid) : (s + 1) * len(groups_grid)]
    return result


@dataclass
class EvdResult:
    """PRR with erasure decoding vs error-only decoding."""

    groups_grid: List[int] = field(default_factory=list)
    prr_evd: List[float] = field(default_factory=list)
    prr_error_only: List[float] = field(default_factory=list)

    def evd_dominates(self) -> bool:
        return all(e >= o - 0.05 for e, o in zip(self.prr_evd, self.prr_error_only))


def run_evd(
    config: Optional[ExperimentConfig] = None,
    snr_db: float = 9.6,
    rate_mbps: int = 18,
    n_packets: Optional[int] = None,
    groups_grid: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
) -> EvdResult:
    config = config or ExperimentConfig()
    n_packets = n_packets if n_packets is not None else scaled(20, 120)
    if groups_grid is None:
        groups_grid = _default_groups_grid(config, rate_mbps)

    params = [
        {
            "config": config,
            "snr_db": snr_db,
            "rate_mbps": rate_mbps,
            "groups": groups,
            "strategy": "weak",
            "n_packets": n_packets,
            "use_erasures": use_erasures,
        }
        for groups in groups_grid
        for use_erasures in (True, False)
    ]
    prrs = engine.run_sweep(
        params, _trial, seed=config.seed, workers=workers,
        init=init_phy_worker, label="ablation.evd",
    )

    result = EvdResult(groups_grid=list(groups_grid))
    for i in range(len(groups_grid)):
        result.prr_evd.append(prrs[2 * i])
        result.prr_error_only.append(prrs[2 * i + 1])
    return result


def print_placement(result: PlacementResult) -> None:
    rows = []
    for i, g in enumerate(result.groups_grid):
        rows.append(
            (g, result.prr["weak"][i], result.prr["random"][i], result.prr["strong"][i])
        )
    print_table(
        ["interval groups/packet", "PRR weak", "PRR random", "PRR strong"],
        rows,
        title="Ablation — silence placement strategy",
    )


def print_evd(result: EvdResult) -> None:
    rows = list(zip(result.groups_grid, result.prr_evd, result.prr_error_only))
    print_table(
        ["interval groups/packet", "PRR with EVD", "PRR error-only"],
        rows,
        title="Ablation — erasure vs error-only Viterbi decoding",
    )


if __name__ == "__main__":
    print_placement(run_placement())
    print_evd(run_evd())
