"""Slotted CSMA/CA (DCF) substrate for network-level CoS experiments.

The paper motivates CoS with upper-layer uses — access coordination,
resource allocation, load balancing — whose common cost is that control
messages *contend for airtime* like any other frame.  This package
provides a compact slotted 802.11 DCF simulator and the comparison
experiment: explicit control frames vs CoS piggyback at the network
level (aggregate goodput and control-delivery latency).
"""

from repro.mac.dcf import (
    CW_MAX,
    CW_MIN,
    DIFS_US,
    SIFS_US,
    SLOT_US,
    DcfSimulator,
    Frame,
    MacStats,
    Station,
)
from repro.mac.overhead import ControlScheme, OverheadResult, run_overhead_comparison

__all__ = [
    "CW_MAX",
    "CW_MIN",
    "DIFS_US",
    "SIFS_US",
    "SLOT_US",
    "DcfSimulator",
    "Frame",
    "MacStats",
    "Station",
    "ControlScheme",
    "OverheadResult",
    "run_overhead_comparison",
]
