"""Slotted 802.11 DCF (CSMA/CA with binary exponential backoff).

A deliberately compact but faithful model: time advances in 9 µs slots;
a station with a pending frame draws a backoff from [0, CW] and counts
down during idle slots; reaching zero it transmits for the frame's
duration (rounded up to slots) plus SIFS + ACK.  Two stations reaching
zero in the same slot collide: both double their CW (bounded by CW_MAX)
and redraw.  Successful delivery resets CW to CW_MIN.

This is the textbook Bianchi-style DCF abstraction — sufficient to price
the *airtime* of control traffic, which is what the CoS comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.utils.rng import RngLike, make_rng

__all__ = [
    "SLOT_US",
    "SIFS_US",
    "DIFS_US",
    "CW_MIN",
    "CW_MAX",
    "ACK_US",
    "MAX_RETRIES",
    "Frame",
    "BackoffState",
    "Station",
    "MacStats",
    "DcfSimulator",
]

SLOT_US = 9.0
SIFS_US = 16.0
DIFS_US = 34.0
ACK_US = 44.0  # preamble + SIGNAL + 14-byte ACK at 6 Mbps (rounded)
CW_MIN = 15
CW_MAX = 1023
MAX_RETRIES = 7


@dataclass
class Frame:
    """A MAC frame awaiting transmission.

    Attributes
    ----------
    kind:
        ``"data"`` or ``"control"`` (for airtime accounting).
    duration_us:
        On-air time of the frame itself (preamble + symbols).
    payload_bits:
        Goodput credited on success (0 for pure control frames).
    created_us:
        Enqueue time, for latency accounting.
    """

    kind: str
    duration_us: float
    payload_bits: int = 0
    created_us: float = 0.0
    retries: int = 0


@dataclass
class BackoffState:
    """Binary-exponential backoff bookkeeping (CW window + drawn slots).

    The contention-window rules of 802.11 DCF, factored out so the
    slotted single-domain :class:`DcfSimulator` and the event-driven
    per-node MAC (:class:`repro.net.mac.NodeMac`) share one
    implementation: draw uniform in ``[0, CW]``, double ``CW`` (bounded
    by ``CW_MAX``) on a failed exchange, reset to ``CW_MIN`` on success.
    """

    cw: int = CW_MIN
    slots: Optional[int] = None

    def draw(self, rng: np.random.Generator) -> int:
        self.slots = int(rng.integers(0, self.cw + 1))
        return self.slots

    def on_failure(self) -> None:
        self.cw = min(2 * (self.cw + 1) - 1, CW_MAX)
        self.slots = None

    def reset(self) -> None:
        self.cw = CW_MIN
        self.slots = None


class Station:
    """One contender with a FIFO of frames.

    ``cw`` and ``backoff`` remain plain attributes of the station (the
    slotted simulator decrements ``backoff`` in place); both delegate to
    the shared :class:`BackoffState`.
    """

    def __init__(self, name: str, queue: Optional[List[Frame]] = None,
                 cw: int = CW_MIN, backoff: Optional[int] = None):
        self.name = name
        self.queue: List[Frame] = queue if queue is not None else []
        self.backoff_state = BackoffState(cw=cw, slots=backoff)

    @property
    def cw(self) -> int:
        return self.backoff_state.cw

    @cw.setter
    def cw(self, value: int) -> None:
        self.backoff_state.cw = value

    @property
    def backoff(self) -> Optional[int]:
        return self.backoff_state.slots

    @backoff.setter
    def backoff(self, value: Optional[int]) -> None:
        self.backoff_state.slots = value

    def has_traffic(self) -> bool:
        return bool(self.queue)

    def draw_backoff(self, rng: np.random.Generator) -> None:
        self.backoff_state.draw(rng)

    def on_collision(self, rng: np.random.Generator) -> None:
        head = self.queue[0]
        head.retries += 1
        if head.retries > MAX_RETRIES:
            self.queue.pop(0)
            self.backoff_state.reset()
        else:
            self.backoff_state.on_failure()

    def on_success(self) -> Frame:
        frame = self.queue.pop(0)
        self.backoff_state.reset()
        return frame


@dataclass
class MacStats:
    """Aggregate outcomes of a DCF run."""

    elapsed_us: float = 0.0
    delivered_bits: int = 0
    collisions: int = 0
    drops: int = 0
    airtime_us: Dict[str, float] = field(
        default_factory=lambda: {"data": 0.0, "control": 0.0, "ack": 0.0, "idle": 0.0}
    )
    control_latencies_us: List[float] = field(default_factory=list)
    delivered_frames: int = 0

    @property
    def goodput_mbps(self) -> float:
        if self.elapsed_us == 0:
            return 0.0
        return self.delivered_bits / self.elapsed_us  # bits/us == Mbps

    @property
    def control_airtime_fraction(self) -> float:
        busy = sum(v for k, v in self.airtime_us.items() if k != "idle")
        if busy == 0:
            return 0.0
        return self.airtime_us["control"] / busy

    @property
    def mean_control_latency_us(self) -> float:
        if not self.control_latencies_us:
            return 0.0
        return float(np.mean(self.control_latencies_us))


class DcfSimulator:
    """Run slotted DCF contention among ``stations`` for a wall-clock span."""

    def __init__(self, stations: List[Station], rng: RngLike = None):
        if not stations:
            raise ValueError("need at least one station")
        names = [s.name for s in stations]
        if len(set(names)) != len(names):
            raise ValueError("station names must be unique")
        self.stations = stations
        self.rng = make_rng(rng)

    def run(self, duration_us: float) -> MacStats:
        """Simulate ``duration_us`` of channel time."""
        stats = MacStats()
        now = 0.0
        while now < duration_us:
            contenders = [s for s in self.stations if s.has_traffic()]
            if not contenders:
                stats.airtime_us["idle"] += duration_us - now
                now = duration_us
                break
            for station in contenders:
                if station.backoff is None:
                    station.draw_backoff(self.rng)

            # Advance to the next countdown expiry.
            min_backoff = min(s.backoff for s in contenders)
            idle_time = DIFS_US + min_backoff * SLOT_US
            stats.airtime_us["idle"] += idle_time
            now += idle_time
            winners = [s for s in contenders if s.backoff == min_backoff]
            for station in contenders:
                station.backoff -= min_backoff

            if len(winners) == 1:
                station = winners[0]
                frame = station.on_success()
                on_air = frame.duration_us + SIFS_US + ACK_US
                stats.airtime_us[frame.kind] += frame.duration_us
                stats.airtime_us["ack"] += ACK_US
                now += on_air
                stats.delivered_bits += frame.payload_bits
                stats.delivered_frames += 1
                if frame.kind == "control":
                    stats.control_latencies_us.append(now - frame.created_us)
            else:
                # Collision: the medium is busy for the longest frame; no ACK.
                longest = max(w.queue[0].duration_us for w in winners)
                stats.collisions += 1
                for station in winners:
                    before = len(station.queue)
                    station.on_collision(self.rng)
                    if len(station.queue) < before:
                        stats.drops += 1
                stats.airtime_us["data"] += longest
                now += longest + DIFS_US

        stats.elapsed_us = now
        return stats
