"""Network-level comparison: explicit control frames vs CoS piggyback.

Scenario: N stations stream fixed-size data packets; every data packet
generates one lightweight control message (a report/ack of
``control_bits`` bits) that must reach the peer.

* **EXPLICIT** — each control message becomes its own MAC frame (sent at
  the base rate, as 802.11 control/management frames are) and contends
  for the medium alongside data.
* **COS** — control messages ride inside the next data packet's silence
  symbols: zero airtime, but each attempt only succeeds with probability
  ``cos_delivery_prob`` (the per-message accuracy measured at the PHY
  level — see Fig. 10 / `LinkStats.message_accuracy`); failures retry on
  the following data packet.

The result quantifies the paper's motivation: what a WLAN buys by making
control messages free.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

import numpy as np

from repro.mac.dcf import DcfSimulator, Frame, MacStats, Station
from repro.phy.params import RATE_TABLE, PhyRate
from repro.utils.rng import RngLike, make_rng

__all__ = [
    "ControlScheme",
    "OverheadResult",
    "run_overhead_comparison",
    "frame_airtime_us",
    "BASE_RATE_MBPS",
]

_PREAMBLE_SIGNAL_US = 20.0
BASE_RATE_MBPS = 6
_BASE_RATE = RATE_TABLE[BASE_RATE_MBPS]


class ControlScheme(str, Enum):
    EXPLICIT = "explicit"
    COS = "cos"


def frame_airtime_us(n_octets: int, rate: PhyRate) -> float:
    """On-air time of an ``n_octets`` PSDU: PLCP preamble + SIGNAL + symbols."""
    return _PREAMBLE_SIGNAL_US + rate.n_symbols_for(n_octets) * 4.0


# Backward-compatible private alias (pre-refactor name).
_frame_airtime_us = frame_airtime_us


@dataclass
class OverheadResult:
    """Outcomes of one scheme's run."""

    scheme: ControlScheme
    mac: MacStats
    control_messages_delivered: int
    control_attempts: int
    mean_control_latency_us: float

    @property
    def goodput_mbps(self) -> float:
        return self.mac.goodput_mbps

    @property
    def control_airtime_fraction(self) -> float:
        return self.mac.control_airtime_fraction


def run_overhead_comparison(
    scheme: ControlScheme,
    n_stations: int = 4,
    packets_per_station: int = 50,
    payload_octets: int = 1024,
    data_rate_mbps: int = 24,
    control_octets: int = 14,
    cos_delivery_prob: float = 0.97,
    duration_us: float = 500_000.0,
    seed: RngLike = 0,
) -> OverheadResult:
    """Simulate one scheme and return its network-level statistics.

    ``cos_delivery_prob`` should come from a PHY-level measurement
    (``LinkStats.message_accuracy`` at the operating SNR); the default is
    the working-region value.
    """
    rng = make_rng(seed)
    rate = RATE_TABLE[data_rate_mbps]
    data_airtime = _frame_airtime_us(payload_octets, rate)
    control_airtime = _frame_airtime_us(control_octets, _BASE_RATE)

    stations: List[Station] = []
    for i in range(n_stations):
        queue: List[Frame] = []
        for p in range(packets_per_station):
            queue.append(
                Frame(
                    kind="data",
                    duration_us=data_airtime,
                    payload_bits=payload_octets * 8,
                    created_us=0.0,
                )
            )
            if scheme is ControlScheme.EXPLICIT:
                queue.append(
                    Frame(kind="control", duration_us=control_airtime, created_us=0.0)
                )
        stations.append(Station(name=f"sta{i}", queue=queue))

    sim = DcfSimulator(stations, rng=rng)
    mac = sim.run(duration_us)

    if scheme is ControlScheme.EXPLICIT:
        delivered = len(mac.control_latencies_us)
        attempts = delivered
        latency = mac.mean_control_latency_us
    else:
        # CoS: every delivered data frame carries one control attempt; a
        # failed attempt retries on the carrier's next data frame.  With
        # i.i.d. per-attempt success p, the number of carriers consumed
        # per message is geometric; latency is the inter-data-frame gap
        # times the extra carriers needed.
        data_frames = mac.delivered_frames
        p = cos_delivery_prob
        outcomes = rng.random(data_frames) < p
        delivered = int(outcomes.sum())
        attempts = data_frames
        if data_frames:
            inter_frame_gap = mac.elapsed_us / data_frames
            extra_carriers = (1.0 / max(p, 1e-9)) - 1.0
            latency = inter_frame_gap * (1.0 + extra_carriers)
        else:
            latency = 0.0

    return OverheadResult(
        scheme=scheme,
        mac=mac,
        control_messages_delivered=delivered,
        control_attempts=attempts,
        mean_control_latency_us=latency,
    )
