"""Deprecated module path — the staircase moved to ``repro.ratectl``.

The SNR-threshold adapter now lives at
:mod:`repro.ratectl.staircase`, wrapped behind the pluggable
:class:`repro.ratectl.RateController` interface as the
``"snr-threshold"`` controller.  This module re-exports the public names
unchanged so old imports keep working, but emits a
``DeprecationWarning`` at import time; ``tests/test_rateadapt.py``
asserts the two paths stay decision-for-decision identical.
"""

from __future__ import annotations

import warnings

from repro.ratectl.staircase import (  # noqa: F401 — re-exports
    DEFAULT_THRESHOLDS,
    RateAdapter,
    min_required_snr_db,
    select_rate,
)

__all__ = ["DEFAULT_THRESHOLDS", "RateAdapter", "select_rate", "min_required_snr_db"]

warnings.warn(
    "repro.rateadapt.snr_rate_adaptation moved to repro.ratectl.staircase; "
    "import from repro.ratectl instead",
    DeprecationWarning,
    stacklevel=2,
)
