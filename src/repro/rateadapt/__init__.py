"""SNR-threshold data-rate adaptation (the paper's reference [6] scheme).

Compatibility alias: the implementation moved to
:mod:`repro.ratectl.staircase` when rate control became a pluggable
subsystem (see :mod:`repro.ratectl`).  Importing from here keeps
working; the old submodule path ``repro.rateadapt.snr_rate_adaptation``
also still resolves, with a ``DeprecationWarning``.
"""

from repro.ratectl.staircase import (
    DEFAULT_THRESHOLDS,
    RateAdapter,
    min_required_snr_db,
    select_rate,
)

__all__ = ["DEFAULT_THRESHOLDS", "RateAdapter", "min_required_snr_db", "select_rate"]
