"""SNR-threshold data-rate adaptation (the paper's reference [6] scheme)."""

from repro.rateadapt.snr_rate_adaptation import (
    DEFAULT_THRESHOLDS,
    RateAdapter,
    min_required_snr_db,
    select_rate,
)

__all__ = ["DEFAULT_THRESHOLDS", "RateAdapter", "min_required_snr_db", "select_rate"]
