"""Composed deinterleave + depuncture as a single precomputed gather.

The receive bit pipeline undoes the transmitter's per-symbol interleaving
and re-inserts the punctured coded bits as erasures before Viterbi
decoding.  Both are pure index shuffles, so for a given 802.11a rate the
whole thing collapses into one scatter/gather pair per OFDM symbol:

    out[..., sym, scatter] = llrs[..., sym, gather]      (rest = fill)

where ``gather`` is the deinterleaver permutation over the ``n_cbps``
received metrics and ``scatter`` places them at the transmitted positions
of the full ``2 · n_dbps`` rate-1/2 stream.  The per-symbol composition is
exact because every 802.11a rate's ``n_dbps`` is a whole number of
puncture periods (24/48/96 at rate 1/2, 192 at 2/3, 36/72/144/216 at
3/4), so the stream-tiled puncture mask always aligns to symbol
boundaries.

Three implementations share the cached tables:

* :func:`deinterleave_rx_numpy` — one fancy-indexed assignment over the
  whole ``(..., n_symbols, n_cbps)`` batch; exact by construction (pure
  element moves, no arithmetic).
* :func:`deinterleave_rx_numba` — the same loop JIT-compiled, used by the
  numba backend (guarded by ``HAVE_NUMBA``; identical output).
* :func:`deinterleave_rx_oracle` — a pure-Python nested loop kept as the
  semantics anchor for the equivalence tests, wired to the ``reference``
  backend.

Callers go through :func:`repro.kernels.dispatch.deinterleave_rx`, which
routes to the active backend's implementation.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import NamedTuple

import numpy as np

from repro.kernels.numba_backend import HAVE_NUMBA

__all__ = [
    "RxGatherTables",
    "rx_gather_tables",
    "deinterleave_rx_numpy",
    "deinterleave_rx_numba",
    "deinterleave_rx_oracle",
]


class RxGatherTables(NamedTuple):
    """Per-(rate) gather/scatter tables for one OFDM symbol.

    Attributes
    ----------
    gather:
        ``(n_cbps,)`` intp — deinterleaver permutation: received metric
        ``gather[i]`` is the ``i``-th transmitted coded bit of the symbol.
    scatter:
        ``(n_cbps,)`` intp — position of transmitted coded bit ``i`` in
        the full rate-1/2 stream of the symbol (length ``n_out``).
    n_cbps:
        Coded bits per symbol (input block size).
    n_out:
        ``2 · n_dbps`` — full rate-1/2 coded bits per symbol (output
        block size; positions not in ``scatter`` are erasures).
    """

    gather: np.ndarray
    scatter: np.ndarray
    n_cbps: int
    n_out: int


@lru_cache(maxsize=None)
def rx_gather_tables(n_cbps: int, n_bpsc: int, code_rate: Fraction) -> RxGatherTables:
    """Build (and cache) the composed RX gather tables for one rate."""
    from repro.phy.convcode import PUNCTURE_PATTERNS
    from repro.phy.interleaver import _permutations

    gather, _ = _permutations(n_cbps, n_bpsc)
    pattern = PUNCTURE_PATTERNS[code_rate]
    kept_per_period = int(pattern.sum())
    if n_cbps % kept_per_period != 0:
        raise ValueError(
            f"n_cbps={n_cbps} is not a whole number of puncture periods "
            f"for rate {code_rate}"
        )
    n_pairs = (n_cbps // kept_per_period) * pattern.shape[0]
    mask = np.tile(pattern, (n_pairs // pattern.shape[0], 1)).reshape(-1)
    scatter = np.flatnonzero(mask).astype(np.intp)
    assert scatter.size == n_cbps
    return RxGatherTables(
        gather=np.ascontiguousarray(gather, dtype=np.intp),
        scatter=scatter,
        n_cbps=n_cbps,
        n_out=2 * n_pairs,
    )


def _blocks(values: np.ndarray, n_cbps: int) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.shape[-1] % n_cbps != 0:
        raise ValueError(
            f"last axis of {values.shape} is not a whole number of "
            f"{n_cbps}-bit interleaver blocks"
        )
    return values.reshape(values.shape[:-1] + (-1, n_cbps))


def deinterleave_rx_numpy(
    values: np.ndarray,
    n_cbps: int,
    n_bpsc: int,
    code_rate: Fraction,
    fill: float = 0.0,
) -> np.ndarray:
    """Deinterleave + depuncture ``(..., n_symbols * n_cbps)`` metrics.

    Returns ``(..., n_symbols * n_out)`` float64 with ``fill`` at every
    punctured position.  Works on any leading batch shape; each trailing
    block is handled independently, so batched output rows are identical
    to per-row calls.
    """
    tables = rx_gather_tables(n_cbps, n_bpsc, code_rate)
    blocks = _blocks(values, n_cbps)
    out = np.full(blocks.shape[:-1] + (tables.n_out,), fill, dtype=np.float64)
    out[..., tables.scatter] = blocks[..., tables.gather]
    return out.reshape(blocks.shape[:-2] + (-1,))


if HAVE_NUMBA:  # pragma: no cover — exercised only where numba is installed
    import numba

    @numba.njit(cache=True)
    def _deinterleave_rx_jit(blocks2d, gather, scatter, n_out, fill):
        n_blocks = blocks2d.shape[0]
        n_cbps = gather.shape[0]
        out = np.full((n_blocks, n_out), fill, dtype=np.float64)
        for b in range(n_blocks):
            for i in range(n_cbps):
                out[b, scatter[i]] = blocks2d[b, gather[i]]
        return out


def deinterleave_rx_numba(
    values: np.ndarray,
    n_cbps: int,
    n_bpsc: int,
    code_rate: Fraction,
    fill: float = 0.0,
) -> np.ndarray:
    """JIT variant of :func:`deinterleave_rx_numpy` (requires numba)."""
    if not HAVE_NUMBA:  # pragma: no cover — defensive; dispatch gates this
        raise RuntimeError("numba is not available")
    tables = rx_gather_tables(n_cbps, n_bpsc, code_rate)
    blocks = _blocks(values, n_cbps)
    flat = np.ascontiguousarray(blocks.reshape(-1, n_cbps))
    out = _deinterleave_rx_jit(
        flat, tables.gather, tables.scatter, tables.n_out, float(fill)
    )
    return out.reshape(blocks.shape[:-2] + (-1,))


def deinterleave_rx_oracle(
    values: np.ndarray,
    n_cbps: int,
    n_bpsc: int,
    code_rate: Fraction,
    fill: float = 0.0,
) -> np.ndarray:
    """Pure-Python anchor: per-symbol loops, no vectorization."""
    tables = rx_gather_tables(n_cbps, n_bpsc, code_rate)
    blocks = _blocks(values, n_cbps)
    lead = blocks.shape[:-2]
    flat = blocks.reshape(-1, blocks.shape[-2], n_cbps)
    out = np.full((flat.shape[0], flat.shape[1], tables.n_out), fill,
                  dtype=np.float64)
    for row in range(flat.shape[0]):
        for sym in range(flat.shape[1]):
            for i in range(n_cbps):
                out[row, sym, int(tables.scatter[i])] = flat[
                    row, sym, int(tables.gather[i])
                ]
    return out.reshape(lead + (-1,))


def warmup_rx_gather() -> None:
    """Pre-build the gather tables (and JIT) for every 802.11a rate."""
    from repro.phy.params import RATE_TABLE

    tiny_ok = True
    for rate in RATE_TABLE.values():
        rx_gather_tables(rate.n_cbps, rate.n_bpsc, rate.code_rate)
        if HAVE_NUMBA and tiny_ok:  # pragma: no cover — numba-only
            deinterleave_rx_numba(
                np.zeros(rate.n_cbps), rate.n_cbps, rate.n_bpsc, rate.code_rate
            )
