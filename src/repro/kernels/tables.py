"""Precomputed trellis tables for the blocked Viterbi kernels.

The 802.11a trellis has 64 states and 2 branches per state.  The blocked
kernel fuses ``k`` consecutive steps into one *super-step* over the same 64
states with ``2^k`` super-branches.  A super-branch into end-state ``s`` is
indexed by ``j`` whose bit ``i`` is the reverse-trellis branch label (the
LSB shifted out of the encoder window) taken at relative step ``i`` —
``j``'s MSB is therefore the *last* step's label, which makes ``argmax``'s
first-occurrence tie rule reproduce the per-step ACS tie rule exactly (the
later step's preference dominates, each preferring label 0).

Because each pair metric is ``±llr_A ± llr_B``, a super-branch metric is a
fixed ±1 linear combination of the block's ``2k`` LLRs.  :func:`block_tables`
returns that combination two ways: a ``(2k, 64·2^k)`` *sign matrix* (one
matmul yields every super-step's branch metrics) and a ``(k, 64·2^k)``
*pair-index* table (``pair_index[i]`` names which of the four per-step pair
metrics step ``i`` contributes).  The blocked kernel uses the pair-index
form: accumulating ``k`` gathered pair metrics in fixed step order is
batch-shape-invariant — unlike BLAS, whose summation order (and therefore
last-ulp rounding) can differ between a ``(1, 2k)`` and a ``(64·n, 2k)``
left operand — which is what makes the batched decoder bit-for-bit equal
to the single-codeword path on *all* float inputs, not just exact ones.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple

import numpy as np

from repro.phy.trellis import N_STATES, shared_trellis

__all__ = ["BlockTables", "block_tables", "PAIR_SIGN_A", "PAIR_SIGN_B", "MAX_BLOCK"]

#: Metric of hypothesis pair p = 2*A + B: +LLR for an expected 0, -LLR for 1.
PAIR_SIGN_A = np.array([1.0, 1.0, -1.0, -1.0])
PAIR_SIGN_B = np.array([1.0, -1.0, 1.0, -1.0])

#: Largest supported block size.  Past ~6 the sign-matrix matmul (64·2^k
#: columns) starts to dominate; 8 keeps the decision store in uint8.
MAX_BLOCK = 8


class BlockTables(NamedTuple):
    """Tables for a ``k``-step super-trellis.

    Attributes
    ----------
    k:
        Steps fused per super-step.
    prev_state:
        ``(64, 2^k)`` intp — state ``k`` steps before end-state ``s`` along
        super-branch ``j``.
    info_bits:
        ``(64, 2^k, k)`` uint8 — the information bits emitted along the
        super-branch, in forward step order.
    sign_matrix_t:
        ``(2k, 64·2^k)`` float64, C-contiguous — transposed sign matrix;
        ``block_llrs @ sign_matrix_t`` yields the flat ``(s, j)`` branch
        metrics of each super-step.
    pair_index:
        ``(k, 64·2^k)`` intp — ``pair_index[i, s * 2^k + j]`` is the pair
        hypothesis (``2*A + B``) taken at relative step ``i`` along
        super-branch ``j`` into state ``s``.  Gathering the per-step pair
        metrics through it and summing in step order gives the same branch
        metrics as the sign matrix with a *fixed*, batch-independent
        rounding order.
    combo_index:
        ``(64·2^k,)`` intp — the base-4 digit string of a super-branch's
        pair hypotheses, earliest step in the highest digit:
        ``combo_index[s * 2^k + j] = Σ_i pair_index[i, ·] · 4^(k-1-i)``.
        The kernel left-folds the ``k`` per-step pair metrics into a
        ``4^k`` sums table (one fixed-order add tree, independent of the
        batch shape) and gathers branch metrics through this index —
        ~6× fewer element touches than gathering per step.
    """

    k: int
    prev_state: np.ndarray
    info_bits: np.ndarray
    sign_matrix_t: np.ndarray
    pair_index: np.ndarray
    combo_index: np.ndarray


@lru_cache(maxsize=None)
def block_tables(k: int) -> BlockTables:
    """Build (and cache) the ``k``-step super-trellis tables."""
    if not 1 <= k <= MAX_BLOCK:
        raise ValueError(f"block size must be in 1..{MAX_BLOCK}, got {k}")
    trellis = shared_trellis()
    n_branches = 1 << k
    prev_k = np.empty((N_STATES, n_branches), dtype=np.intp)
    bits_k = np.empty((N_STATES, n_branches, k), dtype=np.uint8)
    signs = np.zeros((N_STATES, n_branches, 2 * k))
    pair_index = np.empty((k, N_STATES * n_branches), dtype=np.intp)
    for s in range(N_STATES):
        for j in range(n_branches):
            state = s
            # Walk backward from the end state: bit i of j is the branch
            # label at relative step i, so step k-1 is peeled off first.
            for i in range(k - 1, -1, -1):
                x = (j >> i) & 1
                pair = int(trellis.branch_pair[state, x])
                signs[s, j, 2 * i] = PAIR_SIGN_A[pair]
                signs[s, j, 2 * i + 1] = PAIR_SIGN_B[pair]
                pair_index[i, s * n_branches + j] = pair
                bits_k[s, j, i] = trellis.input_bit[state]
                state = int(trellis.prev_state[state, x])
            prev_k[s, j] = state
    sign_matrix_t = np.ascontiguousarray(
        signs.reshape(N_STATES * n_branches, 2 * k).T
    )
    combo_index = np.zeros(N_STATES * n_branches, dtype=np.intp)
    for i in range(k):
        combo_index = combo_index * 4 + pair_index[i]
    return BlockTables(k=k, prev_state=prev_k, info_bits=bits_k,
                       sign_matrix_t=sign_matrix_t, pair_index=pair_index,
                       combo_index=combo_index)
