"""Optional C Viterbi backend, compiled on demand with the system compiler.

The scalar add-compare-select recursion is tiny (a few dozen lines of
C), and an ``-O3`` build of it runs the whole 64-state trellis an order
of magnitude faster than any NumPy formulation — NumPy's per-call
dispatch overhead is the floor there, not the arithmetic.  This module
embeds that C source, builds it into a shared library the first time it
is needed (``cc``/``gcc``/``clang``, whichever exists), caches the
artifact under a content-hashed name in the per-user temp directory, and
loads it with :mod:`ctypes`.  No toolchain, no build step, no new
dependency: machines without a C compiler simply don't register the
backend, and a failed build falls back to the blocked NumPy kernel with
a one-time warning.

Semantics are identical to every other backend (same pair-metric signs,
same ``c1 > c0`` tie rule, same lowest-state preference for the
unterminated start) — the equivalence suite decodes through this backend
against the scalar oracle like all the others.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shutil
import subprocess
import tempfile
import threading
from typing import List, Optional

import numpy as np

from repro.phy.trellis import N_STATES, shared_trellis

__all__ = ["compiler_available", "ensure_built", "decode_c"]

log = logging.getLogger("repro.kernels")

_SOURCE = r"""
#include <stdint.h>

#define N_STATES 64
#define NEG_INF (-1e18)
#define NORM_INTERVAL 256

/* Scalar ACS Viterbi for the 802.11a K=7 rate-1/2 code.
 *
 * llrs:        2*n_steps soft values (A0 B0 A1 B1 ...), positive => bit 0
 * prev_state:  64x2 int64, predecessor state per (state, branch)
 * branch_pair: 64x2 int64, pair-metric index per (state, branch)
 * input_bit:   64 uint8, info bit associated with each state
 * decisions:   n_steps x 64 uint8 scratch (caller-allocated)
 * bits_out:    n_steps uint8 decoded info bits
 *
 * Tie rule: branch 1 wins only on strict c1 > c0; unterminated start
 * state is the lowest-index maximiser.  Metrics are re-centred about
 * their peak every NORM_INTERVAL steps (a float-range guard only).
 */
void viterbi_decode(
    const double *llrs,
    int64_t n_steps,
    const int64_t *prev_state,
    const int64_t *branch_pair,
    const uint8_t *input_bit,
    int terminated,
    uint8_t *decisions,
    uint8_t *bits_out)
{
    double metric[N_STATES];
    double next[N_STATES];
    int s;
    int64_t t;

    for (s = 0; s < N_STATES; s++) metric[s] = NEG_INF;
    metric[0] = 0.0;

    for (t = 0; t < n_steps; t++) {
        const double la = llrs[2 * t];
        const double lb = llrs[2 * t + 1];
        const double pm[4] = {la + lb, la - lb, lb - la, -la - lb};
        uint8_t *row = decisions + t * N_STATES;
        for (s = 0; s < N_STATES; s++) {
            const double c0 = metric[prev_state[2 * s]] + pm[branch_pair[2 * s]];
            const double c1 =
                metric[prev_state[2 * s + 1]] + pm[branch_pair[2 * s + 1]];
            if (c1 > c0) {
                row[s] = 1;
                next[s] = c1;
            } else {
                row[s] = 0;
                next[s] = c0;
            }
        }
        if ((t & (NORM_INTERVAL - 1)) == NORM_INTERVAL - 1) {
            double peak = next[0];
            for (s = 1; s < N_STATES; s++)
                if (next[s] > peak) peak = next[s];
            for (s = 0; s < N_STATES; s++) metric[s] = next[s] - peak;
        } else {
            for (s = 0; s < N_STATES; s++) metric[s] = next[s];
        }
    }

    int state = 0;
    if (!terminated) {
        double best = NEG_INF;
        for (s = 0; s < N_STATES; s++)
            if (metric[s] > best) { best = metric[s]; state = s; }
    }
    for (t = n_steps - 1; t >= 0; t--) {
        bits_out[t] = input_bit[state];
        state = (int)prev_state[2 * state + decisions[t * N_STATES + state]];
    }
}
"""

_COMPILERS = ("cc", "gcc", "clang")

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_build_failed = False
_warned_fallback = False


def _find_compiler() -> Optional[str]:
    candidates: List[str] = []
    env_cc = os.environ.get("CC")
    if env_cc:
        candidates.append(env_cc)
    candidates.extend(_COMPILERS)
    for cand in candidates:
        path = shutil.which(cand)
        if path:
            return path
    return None


def compiler_available() -> bool:
    """Cheap registration check: is any C compiler on PATH?"""
    return _find_compiler() is not None


def _cache_dir() -> str:
    root = os.environ.get("REPRO_CEXT_CACHE") or os.path.join(
        tempfile.gettempdir(), f"repro-kernels-{os.getuid()}"
    )
    os.makedirs(root, mode=0o700, exist_ok=True)
    return root


def _build_library() -> Optional[ctypes.CDLL]:
    compiler = _find_compiler()
    if compiler is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"viterbi_{digest}.so")
    if not os.path.exists(so_path):
        src_path = os.path.join(cache, f"viterbi_{digest}.c")
        tmp_path = f"{so_path}.tmp{os.getpid()}"
        with open(src_path, "w") as fh:
            fh.write(_SOURCE)
        proc = subprocess.run(
            [compiler, "-O3", "-fPIC", "-shared", "-o", tmp_path, src_path],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            log.warning("cext kernel build failed:\n%s", proc.stderr.strip())
            return None
        os.replace(tmp_path, so_path)  # atomic: safe under concurrent builds
    lib = ctypes.CDLL(so_path)
    u8 = np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS")
    i64 = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
    f64 = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
    lib.viterbi_decode.argtypes = [
        f64, ctypes.c_int64, i64, i64, u8, ctypes.c_int, u8, u8,
    ]
    lib.viterbi_decode.restype = None
    return lib


def ensure_built() -> bool:
    """Build/load the library once; False when unavailable or broken."""
    global _lib, _build_failed
    if _lib is not None:
        return True
    if _build_failed:
        return False
    with _lock:
        if _lib is None and not _build_failed:
            try:
                _lib = _build_library()
            except Exception:  # pragma: no cover — defensive
                log.warning("cext kernel load failed", exc_info=True)
                _lib = None
            if _lib is None:
                _build_failed = True
    return _lib is not None


_trellis_cache = None


def _trellis_args():
    global _trellis_cache
    if _trellis_cache is None:
        trellis = shared_trellis()
        _trellis_cache = (
            np.ascontiguousarray(trellis.prev_state, dtype=np.int64),
            np.ascontiguousarray(trellis.branch_pair, dtype=np.int64),
            np.ascontiguousarray(trellis.input_bit, dtype=np.uint8),
        )
    return _trellis_cache


def decode_c(llrs: np.ndarray, terminated: bool = True) -> np.ndarray:
    """Decode one rate-1/2 LLR stream through the compiled kernel.

    Falls back to the blocked NumPy kernel (with a one-time warning) when
    the library cannot be built — callers never need to care.
    """
    global _warned_fallback
    llrs = np.ascontiguousarray(llrs, dtype=np.float64)
    if llrs.size % 2 != 0:
        raise ValueError("LLR stream must contain whole (A, B) pairs")
    n_steps = llrs.size // 2
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)
    if not ensure_built():
        if not _warned_fallback:
            log.warning(
                "cext kernel unavailable; falling back to the NumPy backend"
            )
            _warned_fallback = True
        from repro.kernels.viterbi_numpy import decode_blocked

        return decode_blocked(llrs, terminated)
    prev_state, branch_pair, input_bit = _trellis_args()
    decisions = np.empty(n_steps * N_STATES, dtype=np.uint8)
    bits = np.empty(n_steps, dtype=np.uint8)
    _lib.viterbi_decode(
        llrs, n_steps, prev_state, branch_pair, input_bit,
        int(terminated), decisions, bits,
    )
    return bits
