"""Vectorized 802.11a scrambler kernels (clause 18.3.5.5).

The 7-bit LFSR ``S(x) = x^7 + x^4 + 1`` is maximal-length: from any
non-zero seed its output is periodic with period 127.  So the per-bit
register walk only ever needs to run once per seed — :func:`prbs_sequence`
caches the 127-bit period per state and serves arbitrary lengths by tiling
it, turning the former O(n) Python loop into an O(1)-loop ``np.tile``.

:func:`prbs_sequence_reference` is the original bit-by-bit walk, kept both
as the cache filler and as the test oracle the vectorized path is checked
against.  :func:`prbs_state_table` precomputes the first seven output bits
of all 127 states, which lets scrambler-seed recovery from the SERVICE
field be a single vectorized table match instead of 127 sequence builds.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "prbs_sequence",
    "prbs_sequence_reference",
    "prbs_period",
    "prbs_state_table",
    "PRBS_PERIOD",
]

PRBS_PERIOD = 127


def _check_state(state: int) -> None:
    if not 0 < state < 128:
        raise ValueError("scrambler state must be a non-zero 7-bit value")


def prbs_sequence_reference(n: int, state: int = 0b1111111) -> np.ndarray:
    """Bit-by-bit LFSR walk — the legacy path, kept as the test oracle.

    ``state`` packs the shift register x1..x7 with x7 in the MSB; each
    step outputs x7 XOR x4 and feeds it back into x1.
    """
    _check_state(state)
    out = np.empty(n, dtype=np.uint8)
    for i in range(n):
        x7 = (state >> 6) & 1
        x4 = (state >> 3) & 1
        bit = x7 ^ x4
        state = ((state << 1) & 0b1111111) | bit
        out[i] = bit
    return out


@lru_cache(maxsize=128)
def prbs_period(state: int) -> np.ndarray:
    """The full 127-bit period starting from ``state`` (read-only, cached)."""
    _check_state(state)
    period = prbs_sequence_reference(PRBS_PERIOD, state)
    period.setflags(write=False)
    return period


def prbs_sequence(n: int, state: int = 0b1111111) -> np.ndarray:
    """``n`` bits of the LFSR sequence from ``state``, via the tiled period."""
    _check_state(state)
    if n < 0:
        raise ValueError("sequence length must be non-negative")
    period = prbs_period(state)
    if n <= PRBS_PERIOD:
        return period[:n].copy()
    reps = -(-n // PRBS_PERIOD)
    return np.tile(period, reps)[:n]


@lru_cache(maxsize=1)
def prbs_state_table() -> np.ndarray:
    """``(127, 7)`` uint8 — first 7 output bits of every state 1..127.

    Row ``i`` holds state ``i + 1``.  Seven consecutive outputs uniquely
    determine the state, so matching a scrambled SERVICE prefix against
    this table recovers the transmitter's seed in one vectorized compare.
    """
    table = np.empty((PRBS_PERIOD, 7), dtype=np.uint8)
    for state in range(1, 128):
        table[state - 1] = prbs_period(state)[:7]
    table.setflags(write=False)
    return table
