"""NumPy Viterbi kernels: blocked ACS (default) and the step reference.

Both functions decode a rate-1/2 LLR stream (``A0 B0 A1 B1 …``, positive
favours 0, zero = erasure) into ``n_steps = len(llrs) // 2`` information
bits.  Semantics are identical; only the execution strategy differs:

* :func:`decode_reference` — the legacy one-step-per-iteration recursion,
  kept verbatim as the semantics anchor for equivalence tests.
* :func:`decode_blocked` — fuses ``block`` steps per iteration.  Branch
  metrics for *all* super-steps come from a single matmul against the
  precomputed sign matrix (:mod:`repro.kernels.tables`); the Python-level
  ACS loop then runs ``n_steps / block`` times over ``(64, 2^block)``
  candidates, and traceback emits ``block`` bits per iteration.  ~4× the
  reference's packet-decode throughput at ``block=4``.

Tie handling is identical by construction: ``argmax`` picks the first
(lowest-``j``) maximiser, and ``j``'s bit order makes that the same path
the per-step rule keeps.  On exact-arithmetic inputs (integer LLRs, hard
decisions, erasures) the two are bit-for-bit interchangeable, ties
included; on generic floats they agree wherever no exact metric tie or
rounding-order coincidence occurs (see ``docs/performance.md``).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.tables import PAIR_SIGN_A, PAIR_SIGN_B, block_tables
from repro.phy.trellis import N_STATES, shared_trellis

__all__ = ["decode_blocked", "decode_reference", "DEFAULT_BLOCK", "NEG_INF"]

NEG_INF = -1e18

#: Default steps fused per super-step.  Sweet spot on CPython+NumPy: the
#: matmul stays tiny while the interpreted loop count drops 4×.
DEFAULT_BLOCK = 4

#: Re-centre path metrics about their max this often (in trellis steps).
#: Purely a float-range guard — metrics grow ~|LLR|·steps and float64 has
#: headroom for any realistic packet, so the cadence is uncritical.
NORM_INTERVAL = 256

_IDX64 = np.arange(N_STATES)


def _segment_plan(n_steps: int, block: int):
    """Split ``n_steps`` into a run of ``block``-sized super-steps plus a
    remainder segment (handled by the ``k = remainder`` tables)."""
    n_blocks, rem = divmod(n_steps, block)
    plan = []
    if n_blocks:
        plan.append((block, n_blocks))
    if rem:
        plan.append((rem, 1))
    return plan


def decode_blocked(
    llrs: np.ndarray, terminated: bool = True, block: int = DEFAULT_BLOCK
) -> np.ndarray:
    """Blocked add-compare-select Viterbi decode (the fast NumPy path)."""
    llrs = np.asarray(llrs, dtype=np.float64)
    if llrs.size % 2 != 0:
        raise ValueError("LLR stream must contain whole (A, B) pairs")
    n_steps = llrs.size // 2
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)

    metric = np.full(N_STATES, NEG_INF)
    metric[0] = 0.0
    segments = []  # (tables, decisions, start_step)
    pos = 0
    for k, n_blocks in _segment_plan(n_steps, block):
        tables = block_tables(k)
        blk = llrs[2 * pos : 2 * (pos + k * n_blocks)].reshape(n_blocks, 2 * k)
        # One matmul: branch metrics of every super-step, flat over (s, j).
        branch_metrics = blk @ tables.sign_matrix_t
        prev_flat = tables.prev_state.reshape(-1)
        n_branches = 1 << k
        decisions = np.empty((n_blocks, N_STATES), dtype=np.uint8)
        norm_every = max(1, NORM_INTERVAL // k)
        for t in range(n_blocks):
            cand = (metric[prev_flat] + branch_metrics[t]).reshape(
                N_STATES, n_branches
            )
            j = cand.argmax(axis=1)
            decisions[t] = j
            metric = cand[_IDX64, j]
            if t % norm_every == norm_every - 1:
                metric = metric - metric.max()
        segments.append((tables, decisions, pos))
        pos += k * n_blocks

    state = 0 if terminated else int(metric.argmax())
    bits = np.empty(n_steps, dtype=np.uint8)
    for tables, decisions, start in reversed(segments):
        k = tables.k
        prev_k, bits_k = tables.prev_state, tables.info_bits
        for t in range(decisions.shape[0] - 1, -1, -1):
            j = decisions[t, state]
            bits[start + t * k : start + (t + 1) * k] = bits_k[state, j]
            state = int(prev_k[state, j])
    return bits


def decode_reference(llrs: np.ndarray, terminated: bool = True) -> np.ndarray:
    """The legacy step-by-step NumPy recursion (semantics anchor)."""
    llrs = np.asarray(llrs, dtype=np.float64)
    if llrs.size % 2 != 0:
        raise ValueError("LLR stream must contain whole (A, B) pairs")
    n_steps = llrs.size // 2
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)

    llr_a = llrs[0::2]
    llr_b = llrs[1::2]
    pair_metrics = llr_a[:, None] * PAIR_SIGN_A + llr_b[:, None] * PAIR_SIGN_B

    trellis = shared_trellis()
    prev_state = trellis.prev_state
    branch_pair = trellis.branch_pair

    metric = np.full(N_STATES, NEG_INF)
    metric[0] = 0.0
    decisions = np.empty((n_steps, N_STATES), dtype=np.uint8)
    for t in range(n_steps):
        cand = metric[prev_state] + pair_metrics[t][branch_pair]
        choice = cand[:, 1] > cand[:, 0]
        decisions[t] = choice
        metric = np.where(choice, cand[:, 1], cand[:, 0])
        metric -= metric.max()  # keep metrics bounded

    state = 0 if terminated else int(metric.argmax())
    bits = np.empty(n_steps, dtype=np.uint8)
    input_bit = trellis.input_bit
    for t in range(n_steps - 1, -1, -1):
        bits[t] = input_bit[state]
        state = int(prev_state[state, decisions[t, state]])
    return bits
