"""NumPy Viterbi kernels: blocked ACS (default, batched) and the step reference.

The functions decode rate-1/2 LLR streams (``A0 B0 A1 B1 …``, positive
favours 0, zero = erasure) into ``n_steps = len(llrs) // 2`` information
bits.  Semantics are identical; only the execution strategy differs:

* :func:`decode_reference` — the legacy one-step-per-iteration recursion,
  kept verbatim as the semantics anchor for equivalence tests.
* :func:`decode_blocked_batch` — fuses ``block`` steps per iteration for a
  whole ``(B, 2n)`` batch of equal-length codewords at once.  Branch
  metrics are built by left-folding the per-step pair metrics into a
  ``4^block`` sums table and gathering it through the precomputed combo
  index (:mod:`repro.kernels.tables`); the Python-level ACS loop then
  runs ``n_steps / block`` times over ``(B, 64, 2^block)`` candidates and
  a vectorized traceback emits ``block`` bits per iteration for all rows.
* :func:`decode_blocked` — the single-codeword entry point, literally the
  batch kernel applied to one row.

Because every array operation in the batch kernel is elementwise, a
gather, or a per-row reduction, the result for row ``i`` of a batch is
**bit-for-bit identical** to decoding that row alone — for *any* float
input, not just exact-arithmetic ones.  (The previous implementation
computed branch metrics with a BLAS matmul, whose summation order — and
therefore last-ulp rounding — differs between gemv and gemm and between
batch shapes; the fixed-order pair-metric accumulation removes that
dependency at equal flop count, since ``2k ≤ 16``.)

Tie handling is identical to the reference by construction: ``argmax``
picks the first (lowest-``j``) maximiser, and ``j``'s bit order makes
that the same path the per-step rule keeps.  On exact-arithmetic inputs
(integer LLRs, hard decisions, erasures) blocked and reference decoders
are bit-for-bit interchangeable, ties included; on generic floats they
agree wherever no exact metric tie or rounding-order coincidence occurs
(see ``docs/performance.md``).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.tables import PAIR_SIGN_A, PAIR_SIGN_B, block_tables
from repro.phy.trellis import N_STATES, shared_trellis

__all__ = [
    "decode_blocked",
    "decode_blocked_batch",
    "decode_reference",
    "DEFAULT_BLOCK",
    "NEG_INF",
]

NEG_INF = -1e18

#: Default steps fused per super-step.  Joint sweet spot for the single
#: and batched paths on CPython+NumPy: at ``B = 1`` the interpreted loop
#: count still halves, while at large ``B`` the ``(B, 64·2^k)`` candidate
#: buffers stay cache-resident (k = 4 is ~5% faster single but ~2.5×
#: slower at batch 64; see docs/performance.md).
DEFAULT_BLOCK = 2

#: Re-centre path metrics about their max this often (in trellis steps).
#: Purely a float-range guard — metrics grow ~|LLR|·steps and float64 has
#: headroom for any realistic packet, so the cadence is uncritical.
NORM_INTERVAL = 256

#: Upper bound on the branch-metric scratch buffer, in float64 elements
#: (``B × chunk × 64·2^k``).  Chunking the per-super-step metrics keeps the
#: working set cache-friendly for large batches without changing results
#: (the accumulation order per element is independent of the chunking).
#: 2^15 ≈ a 256 KiB buffer: measured 25–45% faster at batch 64 than
#: megabyte-scale chunks, with no effect on the B = 1 path.
_BM_CHUNK_ELEMS = 1 << 15


def _segment_plan(n_steps: int, block: int):
    """Split ``n_steps`` into a run of ``block``-sized super-steps plus a
    remainder segment (handled by the ``k = remainder`` tables)."""
    n_blocks, rem = divmod(n_steps, block)
    plan = []
    if n_blocks:
        plan.append((block, n_blocks))
    if rem:
        plan.append((rem, 1))
    return plan


def decode_blocked_batch(
    llrs2d: np.ndarray, terminated: bool = True, block: int = DEFAULT_BLOCK
) -> np.ndarray:
    """Blocked ACS Viterbi decode of a ``(B, 2n)`` equal-length batch.

    Returns ``(B, n)`` uint8 information bits.  Row ``i`` is bit-for-bit
    identical to ``decode_blocked(llrs2d[i])`` — the single path *is* this
    kernel at ``B = 1``.
    """
    llrs2d = np.atleast_2d(np.asarray(llrs2d, dtype=np.float64))
    if llrs2d.ndim != 2:
        raise ValueError("batch must be a (B, 2 * n_steps) array")
    if llrs2d.shape[1] % 2 != 0:
        raise ValueError("LLR stream must contain whole (A, B) pairs")
    n_rows = llrs2d.shape[0]
    n_steps = llrs2d.shape[1] // 2
    if n_steps == 0 or n_rows == 0:
        return np.zeros((n_rows, n_steps), dtype=np.uint8)

    # Per-step pair metrics, shared by every segment: pm[b, t, p] is the
    # metric of pair hypothesis p = 2*A + B at trellis step t of row b.
    llr_a = llrs2d[:, 0::2]
    llr_b = llrs2d[:, 1::2]
    pair_metrics = llr_a[:, :, None] * PAIR_SIGN_A + llr_b[:, :, None] * PAIR_SIGN_B

    metric = np.full((n_rows, N_STATES), NEG_INF)
    metric[:, 0] = 0.0
    rows = np.arange(n_rows)
    segments = []  # (tables, decisions, start_step)
    pos = 0
    for k, n_blocks in _segment_plan(n_steps, block):
        tables = block_tables(k)
        combo_index = tables.combo_index
        prev_flat = tables.prev_state.reshape(-1)
        n_branches = 1 << k
        n_flat = N_STATES * n_branches
        pm_seg = pair_metrics[:, pos : pos + k * n_blocks].reshape(
            n_rows, n_blocks, k, 4
        )
        decisions = np.empty((n_blocks, n_rows, N_STATES), dtype=np.uint8)
        norm_every = max(1, NORM_INTERVAL // k)
        chunk = max(1, _BM_CHUNK_ELEMS // (n_rows * n_flat))
        for t0 in range(0, n_blocks, chunk):
            t1 = min(t0 + chunk, n_blocks)
            # Branch metrics for super-steps t0..t1: left-fold the k
            # per-step pair metrics into a 4^k sums table, then gather
            # through the precomputed combo index.  Every op is
            # elementwise per (row, t, combo) in a fixed fold order, so
            # the result is independent of both the batch size and the
            # chunking — and the fold touches ~6× fewer elements than
            # gathering the full (·, 64·2^k) buffer once per step.
            sums = pm_seg[:, t0:t1, 0, :]
            for i in range(1, k):
                sums = (
                    sums[:, :, :, None] + pm_seg[:, t0:t1, i, None, :]
                ).reshape(n_rows, t1 - t0, -1)
            bm = sums[:, :, combo_index]
            for t in range(t0, t1):
                cand = (metric[:, prev_flat] + bm[:, t - t0]).reshape(
                    n_rows, N_STATES, n_branches
                )
                j = cand.argmax(axis=2)
                decisions[t] = j
                metric = cand[rows[:, None], np.arange(N_STATES)[None, :], j]
                if t % norm_every == norm_every - 1:
                    metric = metric - metric.max(axis=1, keepdims=True)
        segments.append((tables, decisions, pos))
        pos += k * n_blocks

    if terminated:
        state = np.zeros(n_rows, dtype=np.intp)
    else:
        state = metric.argmax(axis=1)
    bits = np.empty((n_rows, n_steps), dtype=np.uint8)
    for tables, decisions, start in reversed(segments):
        k = tables.k
        prev_k, bits_k = tables.prev_state, tables.info_bits
        for t in range(decisions.shape[0] - 1, -1, -1):
            j = decisions[t, rows, state]
            bits[:, start + t * k : start + (t + 1) * k] = bits_k[state, j]
            state = prev_k[state, j]
    return bits


def decode_blocked(
    llrs: np.ndarray, terminated: bool = True, block: int = DEFAULT_BLOCK
) -> np.ndarray:
    """Blocked add-compare-select Viterbi decode of one codeword.

    A thin wrapper over :func:`decode_blocked_batch` with ``B = 1`` — the
    single and batched paths share every arithmetic operation, which is
    what guarantees ``receive_many`` equals looped ``receive`` bitwise.
    """
    llrs = np.asarray(llrs, dtype=np.float64)
    if llrs.ndim != 1:
        raise ValueError("expected a flat LLR stream")
    return decode_blocked_batch(llrs[None, :], terminated, block)[0]


def decode_reference(llrs: np.ndarray, terminated: bool = True) -> np.ndarray:
    """The legacy step-by-step NumPy recursion (semantics anchor)."""
    llrs = np.asarray(llrs, dtype=np.float64)
    if llrs.size % 2 != 0:
        raise ValueError("LLR stream must contain whole (A, B) pairs")
    n_steps = llrs.size // 2
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)

    llr_a = llrs[0::2]
    llr_b = llrs[1::2]
    pair_metrics = llr_a[:, None] * PAIR_SIGN_A + llr_b[:, None] * PAIR_SIGN_B

    trellis = shared_trellis()
    prev_state = trellis.prev_state
    branch_pair = trellis.branch_pair

    metric = np.full(N_STATES, NEG_INF)
    metric[0] = 0.0
    decisions = np.empty((n_steps, N_STATES), dtype=np.uint8)
    for t in range(n_steps):
        cand = metric[prev_state] + pair_metrics[t][branch_pair]
        choice = cand[:, 1] > cand[:, 0]
        decisions[t] = choice
        metric = np.where(choice, cand[:, 1], cand[:, 0])
        metric -= metric.max()  # keep metrics bounded

    state = 0 if terminated else int(metric.argmax())
    bits = np.empty(n_steps, dtype=np.uint8)
    input_bit = trellis.input_bit
    for t in range(n_steps - 1, -1, -1):
        bits[t] = input_bit[state]
        state = int(prev_state[state, decisions[t, state]])
    return bits
