"""Backend dispatch for the compute kernels.

A :class:`KernelBackend` bundles the Viterbi entry points (the only
kernels whose implementation differs per backend today — demap, scramble
and energy detection are already single-pass vectorized NumPy shared by
all backends).  Resolution order:

1. an explicit :func:`set_backend` / :func:`use_backend` override;
2. the ``REPRO_KERNEL_BACKEND`` environment flag
   (``auto`` | ``numpy`` | ``numba`` | ``cext`` | ``reference``);
3. ``auto``: numba when importable, else the on-demand-compiled C
   kernel (:mod:`repro.kernels.cext`) when a system C compiler exists,
   else the blocked NumPy backend.

Requesting ``numba`` or ``cext`` on a machine without the prerequisite
logs a warning once and falls back to ``numpy`` — no hard dependency
anywhere.

**Exactness contract.**  All backends implement identical decode
semantics: the same branch-tie rule and the same exact-arithmetic metric
recursion.  On inputs whose LLRs are exactly representable and whose
partial sums stay integral (hard decisions, integer-scaled soft values,
erasures — everything the equivalence suite feeds them), outputs are
bit-for-bit equal across backends *including every tie*.  On generic
float inputs the backends may round intermediate sums in different
orders; decoded bits still agree except on exact metric coincidences,
and CRC-verified golden-packet tests pin the behaviour end to end.
"""

from __future__ import annotations

import contextlib
import logging
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.kernels import cext, numba_backend
from repro.kernels.interleave import (
    deinterleave_rx_numba,
    deinterleave_rx_numpy,
    deinterleave_rx_oracle,
    warmup_rx_gather,
)
from repro.kernels.scramble import prbs_sequence, prbs_state_table
from repro.kernels.tables import block_tables
from repro.kernels.viterbi_numpy import (
    DEFAULT_BLOCK,
    decode_blocked,
    decode_blocked_batch,
    decode_reference,
)
from repro.utils.env import env_int, env_str

__all__ = [
    "KernelBackend",
    "available_backends",
    "backend_name",
    "decode_many",
    "deinterleave_rx",
    "get_backend",
    "set_backend",
    "use_backend",
    "warmup",
]

log = logging.getLogger("repro.kernels")

ENV_FLAG = "REPRO_KERNEL_BACKEND"
BLOCK_FLAG = "REPRO_VITERBI_BLOCK"


@dataclass(frozen=True)
class KernelBackend:
    """One resolved kernel implementation set.

    ``viterbi_decode(llrs, terminated)`` decodes a single rate-1/2 LLR
    stream; ``viterbi_decode_batch(llrs2d, terminated)`` an equal-length
    ``(B, 2n)`` batch in one call (the :func:`decode_many` helper groups
    mixed lengths).  ``deinterleave_rx(values, n_cbps, n_bpsc, code_rate,
    fill)`` applies the composed per-symbol deinterleave + depuncture
    gather of :mod:`repro.kernels.interleave`.  ``prewarm()`` pays any
    one-off cost (JIT compilation, table builds) outside the measured
    path.
    """

    name: str
    viterbi_decode: Callable[[np.ndarray, bool], np.ndarray]
    viterbi_decode_batch: Callable[[np.ndarray, bool], np.ndarray]
    deinterleave_rx: Callable[..., np.ndarray]
    prewarm: Callable[[], None]


def _viterbi_block() -> int:
    block = env_int(BLOCK_FLAG, default=DEFAULT_BLOCK)
    if not 1 <= block <= 8:
        raise ValueError(f"{BLOCK_FLAG}={block} out of range 1..8")
    return block


def _numpy_decode(llrs: np.ndarray, terminated: bool = True) -> np.ndarray:
    return decode_blocked(llrs, terminated, block=_viterbi_block())


def _numpy_decode_batch(llrs2d: np.ndarray, terminated: bool = True) -> np.ndarray:
    return decode_blocked_batch(llrs2d, terminated, block=_viterbi_block())


def _batch_via_single(
    decode: Callable[[np.ndarray, bool], np.ndarray]
) -> Callable[[np.ndarray, bool], np.ndarray]:
    def batch(llrs2d: np.ndarray, terminated: bool = True) -> np.ndarray:
        llrs2d = np.atleast_2d(np.asarray(llrs2d, dtype=np.float64))
        rows = [decode(row, terminated) for row in llrs2d]
        if not rows:
            return np.zeros((0, llrs2d.shape[1] // 2), dtype=np.uint8)
        return np.stack(rows)

    return batch


def _numpy_prewarm() -> None:
    block = _viterbi_block()
    for k in range(1, block + 1):
        block_tables(k)
    warmup_rx_gather()
    prbs_sequence(1)
    prbs_state_table()
    # Touch every modulation's cached tables (import here: modulation
    # imports kernels.demap, keep the layering acyclic at module load).
    from repro.phy.modulation import MODULATIONS

    for mod in MODULATIONS.values():
        mod.prewarm()


def _numba_prewarm() -> None:
    _numpy_prewarm()
    numba_backend.warmup()


_REGISTRY: Dict[str, KernelBackend] = {
    "numpy": KernelBackend(
        name="numpy",
        viterbi_decode=_numpy_decode,
        viterbi_decode_batch=_numpy_decode_batch,
        deinterleave_rx=deinterleave_rx_numpy,
        prewarm=_numpy_prewarm,
    ),
    "reference": KernelBackend(
        name="reference",
        viterbi_decode=decode_reference,
        viterbi_decode_batch=_batch_via_single(decode_reference),
        deinterleave_rx=deinterleave_rx_oracle,
        prewarm=_numpy_prewarm,
    ),
}

if numba_backend.HAVE_NUMBA:  # pragma: no cover — numba-only environments
    _REGISTRY["numba"] = KernelBackend(
        name="numba",
        viterbi_decode=numba_backend.decode_jit,
        viterbi_decode_batch=numba_backend.decode_batch_jit,
        deinterleave_rx=deinterleave_rx_numba,
        prewarm=_numba_prewarm,
    )


def _cext_prewarm() -> None:
    _numpy_prewarm()
    cext.ensure_built()


if cext.compiler_available():
    _REGISTRY["cext"] = KernelBackend(
        name="cext",
        viterbi_decode=cext.decode_c,
        viterbi_decode_batch=_batch_via_single(cext.decode_c),
        deinterleave_rx=deinterleave_rx_numpy,
        prewarm=_cext_prewarm,
    )

#: auto-resolution preference, best first.
_AUTO_ORDER = ("numba", "cext", "numpy")

_lock = threading.Lock()
_active: Optional[KernelBackend] = None
_warned_missing: set = set()


def available_backends() -> List[str]:
    """Names of the backends importable in this process."""
    return sorted(_REGISTRY)


def _resolve(name: Optional[str]) -> KernelBackend:
    requested = (name or env_str(ENV_FLAG, "auto") or "auto").strip().lower()
    if requested == "auto":
        for candidate in _AUTO_ORDER:
            if candidate in _REGISTRY:
                return _REGISTRY[candidate]
    if requested in ("numba", "cext") and requested not in _REGISTRY:
        if requested not in _warned_missing:
            hint = (
                "pip install repro[speed]"
                if requested == "numba"
                else "install a C compiler"
            )
            log.warning(
                "%s=%s requested but unavailable; "
                "falling back to the NumPy backend (%s)",
                ENV_FLAG, requested, hint,
            )
            _warned_missing.add(requested)
        return _REGISTRY["numpy"]
    try:
        return _REGISTRY[requested]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {requested!r}; "
            f"valid: auto, {', '.join(available_backends())}"
        ) from None


def get_backend() -> KernelBackend:
    """The active backend, resolving ``REPRO_KERNEL_BACKEND`` on first use."""
    global _active
    if _active is None:
        with _lock:
            if _active is None:
                _active = _resolve(None)
    return _active


def backend_name() -> str:
    """Name of the active backend (``numpy``/``numba``/``cext``/``reference``)."""
    return get_backend().name


def set_backend(name: Optional[str]) -> KernelBackend:
    """Force a backend by name (``None`` re-resolves from the environment)."""
    global _active
    with _lock:
        _active = _resolve(name) if name is not None else None
    return get_backend()


@contextlib.contextmanager
def use_backend(name: str):
    """Context manager: run a block under a specific backend."""
    previous = get_backend().name
    set_backend(name)
    try:
        yield get_backend()
    finally:
        set_backend(previous)


def warmup() -> str:
    """Pre-build tables / compile JIT for the active backend; returns its name.

    Called once per trial-engine worker so JIT compilation and table
    construction never land inside a measured trial.
    """
    backend = get_backend()
    backend.prewarm()
    return backend.name


def decode_many(
    llrs_list: Sequence[np.ndarray], terminated: bool = True
) -> List[np.ndarray]:
    """Decode a batch of codewords (mixed lengths allowed) in one call.

    Codewords are grouped by length and each group handed to the active
    backend's batch kernel, amortizing dispatch and (for numba) running
    the whole group inside one compiled loop.  Result order matches input
    order; a looped ``viterbi_decode`` is bit-for-bit identical.
    """
    backend = get_backend()
    arrays = [np.asarray(llrs, dtype=np.float64) for llrs in llrs_list]
    for arr in arrays:
        if arr.ndim != 1 or arr.size % 2 != 0:
            raise ValueError("each codeword must be a flat, even-length LLR array")
    out: List[Optional[np.ndarray]] = [None] * len(arrays)
    groups: Dict[int, List[int]] = {}
    for i, arr in enumerate(arrays):
        groups.setdefault(arr.size, []).append(i)
    for size, indices in groups.items():
        if size == 0:
            for i in indices:
                out[i] = np.zeros(0, dtype=np.uint8)
            continue
        stacked = np.stack([arrays[i] for i in indices])
        decoded = backend.viterbi_decode_batch(stacked, terminated)
        for row, i in enumerate(indices):
            out[i] = decoded[row]
    return out  # type: ignore[return-value]


def deinterleave_rx(
    values: np.ndarray,
    n_cbps: int,
    n_bpsc: int,
    code_rate,
    fill: float = 0.0,
) -> np.ndarray:
    """Composed per-symbol deinterleave + depuncture on the active backend.

    ``values`` is ``(..., n_symbols * n_cbps)`` received metrics (any
    leading batch shape); the result is ``(..., n_symbols * 2 * n_dbps)``
    with ``fill`` at every punctured position.  Pure element moves — every
    backend is bit-for-bit identical, batched or row by row.
    """
    return get_backend().deinterleave_rx(values, n_cbps, n_bpsc, code_rate, fill)
