"""Silence energy-detection kernels (§III-B/C hot path).

One packet's detection is a reduction over the un-equalised frequency
grid: per-cell energies on the control subcarriers compared against a
(scalar or per-subcarrier) threshold.  ``silence_energies`` computes
``|Y|^2`` as ``re² + im²`` in one pass — no intermediate ``np.abs``
(which pays a square root only to be squared again).
"""

from __future__ import annotations

import numpy as np

__all__ = ["silence_energies", "silence_mask"]


def silence_energies(grid: np.ndarray, control: np.ndarray) -> np.ndarray:
    """``(n_symbols, n_control)`` energies of the control subcarriers.

    ``grid`` is the complex ``(n_symbols, 48)`` raw data grid; ``control``
    an integer index array of control subcarriers.
    """
    cells = grid[:, control]
    return np.square(cells.real) + np.square(cells.imag)


def silence_mask(
    energies: np.ndarray, thresholds: np.ndarray | float
) -> np.ndarray:
    """Boolean silence decisions: ``energies < thresholds`` (broadcast)."""
    return energies < thresholds
