"""Constellation demapping kernels over precomputed per-modulation tables.

The Gray-coded 802.11a constellations factor into independent I/Q PAM
axes, so both soft and hard demapping reduce to per-axis kernels.  The
tables they consume — PAM levels and per-bit "is this label a 1?" masks —
are built once per :class:`~repro.phy.modulation.Modulation` (they used to
be rebuilt on every property access *and* every demap call).

``axis_llrs`` computes CSI-weighted max-log LLRs with the per-bit min
-distance masks applied as ``±inf`` selectors (one vectorized pass, no
per-bit boolean rebuild).  ``axis_hard_bits`` unpacks the nearest-level
index straight through a precomputed label-bit table instead of shifting
per call.
"""

from __future__ import annotations

import numpy as np

__all__ = ["axis_llrs", "axis_hard_bits", "build_axis_masks", "build_label_bits"]


def build_axis_masks(n_levels: int, bits_per_axis: int) -> np.ndarray:
    """``(bits_per_axis, n_levels)`` bool — True where the label has bit 1.

    Bit 0 is the first transmitted bit of the axis (label MSB).
    """
    labels = np.arange(n_levels)
    shifts = np.arange(bits_per_axis - 1, -1, -1)
    return ((labels[None, :] >> shifts[:, None]) & 1).astype(bool)


def build_label_bits(n_levels: int, bits_per_axis: int) -> np.ndarray:
    """``(n_levels, bits_per_axis)`` uint8 — label index unpacked to bits."""
    return build_axis_masks(n_levels, bits_per_axis).T.astype(np.uint8).copy()


def axis_llrs(
    observed: np.ndarray,
    csi: np.ndarray,
    levels: np.ndarray,
    is_one_masks: np.ndarray,
) -> np.ndarray:
    """Max-log LLRs for one PAM axis; shape ``(n_symbols, bits_per_axis)``.

    ``levels`` is the axis PAM alphabet indexed by label, ``is_one_masks``
    the output of :func:`build_axis_masks` for that alphabet.
    """
    d2 = (observed[:, None] - levels[None, :]) ** 2  # (n, L)
    m = is_one_masks.shape[0]
    llrs = np.empty((observed.size, m))
    for bit in range(m):
        is_one = is_one_masks[bit]
        d0 = np.where(is_one[None, :], np.inf, d2).min(axis=1)
        d1 = np.where(is_one[None, :], d2, np.inf).min(axis=1)
        llrs[:, bit] = (d1 - d0) * csi
    return llrs


def axis_hard_bits(
    observed: np.ndarray, levels: np.ndarray, label_bits: np.ndarray
) -> np.ndarray:
    """Nearest-level hard decisions as ``(n_symbols, bits_per_axis)`` uint8."""
    idx = np.abs(observed[:, None] - levels[None, :]).argmin(axis=1)
    return label_bits[idx]
