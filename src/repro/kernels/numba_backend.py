"""Optional numba-JIT kernels (``pip install repro[speed]``).

Importing this module never raises on a machine without numba —
``HAVE_NUMBA`` is simply False and the dispatch layer falls back to the
NumPy backend.  When numba is present the Viterbi ACS recursion runs as a
compiled scalar loop (per-step, no temporaries), which beats even the
blocked NumPy kernel by an order of magnitude on long codewords.

The JIT functions replicate the canonical semantics exactly: the same
tie rule (``c1 > c0`` strictly, else branch 0), the same traceback, and a
metric re-centering cadence that — like every backend — only affects
float range, never exact-arithmetic results.  First call compiles; use
:func:`warmup` (the trial engine does, once per worker) to pay that cost
outside the measured path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HAVE_NUMBA", "decode_jit", "decode_batch_jit", "warmup"]

try:  # pragma: no cover — exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    numba = None
    HAVE_NUMBA = False

_NEG_INF = -1e18
_NORM_MASK = 255  # re-centre metrics every 256 steps


if HAVE_NUMBA:  # pragma: no cover — exercised only where numba is installed

    @numba.njit(cache=True)
    def _decode_scalar(llrs, prev_state, branch_pair, input_bit, terminated):
        n_steps = llrs.shape[0] // 2
        metric = np.full(64, _NEG_INF)
        metric[0] = 0.0
        new_metric = np.empty(64)
        decisions = np.empty((n_steps, 64), dtype=np.uint8)
        pm = np.empty(4)
        for t in range(n_steps):
            la = llrs[2 * t]
            lb = llrs[2 * t + 1]
            pm[0] = la + lb
            pm[1] = la - lb
            pm[2] = lb - la
            pm[3] = -la - lb
            for s in range(64):
                c0 = metric[prev_state[s, 0]] + pm[branch_pair[s, 0]]
                c1 = metric[prev_state[s, 1]] + pm[branch_pair[s, 1]]
                if c1 > c0:
                    decisions[t, s] = 1
                    new_metric[s] = c1
                else:
                    decisions[t, s] = 0
                    new_metric[s] = c0
            if t & _NORM_MASK == _NORM_MASK:
                peak = new_metric[0]
                for s in range(1, 64):
                    if new_metric[s] > peak:
                        peak = new_metric[s]
                for s in range(64):
                    metric[s] = new_metric[s] - peak
            else:
                for s in range(64):
                    metric[s] = new_metric[s]

        state = 0
        if not terminated:
            best = metric[0]
            for s in range(1, 64):
                if metric[s] > best:
                    best = metric[s]
                    state = s
        bits = np.empty(n_steps, dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            bits[t] = input_bit[state]
            state = prev_state[state, decisions[t, state]]
        return bits

    @numba.njit(cache=True)
    def _decode_batch_scalar(llrs2d, prev_state, branch_pair, input_bit, terminated):
        n_codewords = llrs2d.shape[0]
        n_steps = llrs2d.shape[1] // 2
        out = np.empty((n_codewords, n_steps), dtype=np.uint8)
        for i in range(n_codewords):
            out[i] = _decode_scalar(
                llrs2d[i], prev_state, branch_pair, input_bit, terminated
            )
        return out


def _trellis_args():
    from repro.phy.trellis import shared_trellis

    t = shared_trellis()
    return (
        np.ascontiguousarray(t.prev_state),
        np.ascontiguousarray(t.branch_pair),
        np.ascontiguousarray(t.input_bit),
    )


def decode_jit(llrs: np.ndarray, terminated: bool = True) -> np.ndarray:
    """JIT scalar Viterbi decode of one codeword (requires numba)."""
    if not HAVE_NUMBA:  # pragma: no cover — defensive; dispatch gates this
        raise RuntimeError("numba is not available")
    llrs = np.ascontiguousarray(llrs, dtype=np.float64)
    if llrs.size % 2 != 0:
        raise ValueError("LLR stream must contain whole (A, B) pairs")
    if llrs.size == 0:
        return np.zeros(0, dtype=np.uint8)
    prev_state, branch_pair, input_bit = _trellis_args()
    return _decode_scalar(llrs, prev_state, branch_pair, input_bit, terminated)


def decode_batch_jit(llrs2d: np.ndarray, terminated: bool = True) -> np.ndarray:
    """JIT decode of an equal-length batch, one compiled loop for all rows."""
    if not HAVE_NUMBA:  # pragma: no cover — defensive; dispatch gates this
        raise RuntimeError("numba is not available")
    llrs2d = np.ascontiguousarray(llrs2d, dtype=np.float64)
    if llrs2d.ndim != 2 or llrs2d.shape[1] % 2 != 0:
        raise ValueError("batch must be (n_codewords, 2 * n_steps)")
    if llrs2d.shape[1] == 0:
        return np.zeros((llrs2d.shape[0], 0), dtype=np.uint8)
    prev_state, branch_pair, input_bit = _trellis_args()
    return _decode_batch_scalar(llrs2d, prev_state, branch_pair, input_bit, terminated)


def warmup() -> None:
    """Trigger JIT compilation on tiny inputs (no-op without numba)."""
    if not HAVE_NUMBA:
        return
    tiny = np.array([1.0, -1.0, 0.0, 1.0])
    decode_jit(tiny, True)
    decode_jit(tiny, False)
    decode_batch_jit(np.vstack([tiny, tiny]), True)
