"""Pure-Python scalar oracles for the kernel equivalence suite.

These are deliberately naive transcriptions of the algorithms — one
scalar operation per loop iteration, no NumPy vectorization — so they are
independent of both the blocked NumPy kernels and the numba JIT.  The
equivalence tests decode the same inputs through every backend *and*
these oracles and require identical bits.

Slow by design; only tests and the CI equivalence job should import this.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.phy.trellis import N_STATES, shared_trellis

__all__ = ["viterbi_decode_oracle", "scramble_oracle", "demap_hard_oracle"]

_NEG_INF = -1e18


def viterbi_decode_oracle(llrs: Sequence[float], terminated: bool = True) -> np.ndarray:
    """Scalar add-compare-select Viterbi with the canonical tie rule.

    Ties prefer branch label 0 at every step (later steps dominating by
    construction of the recursion) — the same rule every kernel backend
    implements.
    """
    llrs = [float(v) for v in llrs]
    if len(llrs) % 2 != 0:
        raise ValueError("LLR stream must contain whole (A, B) pairs")
    n_steps = len(llrs) // 2
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)

    trellis = shared_trellis()
    prev_state = trellis.prev_state
    branch_pair = trellis.branch_pair
    input_bit = trellis.input_bit
    sign_a = (1.0, 1.0, -1.0, -1.0)
    sign_b = (1.0, -1.0, 1.0, -1.0)

    metric: List[float] = [_NEG_INF] * N_STATES
    metric[0] = 0.0
    decisions: List[List[int]] = []
    for t in range(n_steps):
        la, lb = llrs[2 * t], llrs[2 * t + 1]
        pm = [la * sign_a[p] + lb * sign_b[p] for p in range(4)]
        new_metric = [0.0] * N_STATES
        row = [0] * N_STATES
        for s in range(N_STATES):
            c0 = metric[prev_state[s, 0]] + pm[branch_pair[s, 0]]
            c1 = metric[prev_state[s, 1]] + pm[branch_pair[s, 1]]
            if c1 > c0:
                row[s] = 1
                new_metric[s] = c1
            else:
                row[s] = 0
                new_metric[s] = c0
        peak = max(new_metric)
        metric = [m - peak for m in new_metric]
        decisions.append(row)

    if terminated:
        state = 0
    else:
        state = max(range(N_STATES), key=lambda s: (metric[s], -s))
    bits = np.empty(n_steps, dtype=np.uint8)
    for t in range(n_steps - 1, -1, -1):
        bits[t] = input_bit[state]
        state = int(prev_state[state, decisions[t][state]])
    return bits


def scramble_oracle(bits: Sequence[int], state: int) -> np.ndarray:
    """Bit-at-a-time scramble through the raw LFSR recursion."""
    if not 0 < state < 128:
        raise ValueError("scrambler state must be a non-zero 7-bit value")
    out = np.empty(len(bits), dtype=np.uint8)
    for i, b in enumerate(bits):
        x7 = (state >> 6) & 1
        x4 = (state >> 3) & 1
        key = x7 ^ x4
        state = ((state << 1) & 0b1111111) | key
        out[i] = (int(b) ^ key) & 1
    return out


def demap_hard_oracle(
    symbols: Sequence[complex], levels: Sequence[float], has_q_axis: bool
) -> np.ndarray:
    """Scalar nearest-level decisions per axis, labels in MSB-first bits.

    ``has_q_axis`` is False only for BPSK, whose symbols carry just the I
    axis (QPSK shares the 2-level alphabet but modulates both axes).
    """
    levels = [float(v) for v in levels]
    m = max(1, (len(levels) - 1).bit_length())

    def axis(value: float) -> List[int]:
        best = min(range(len(levels)), key=lambda i: (abs(value - levels[i]), i))
        return [(best >> (m - 1 - bit)) & 1 for bit in range(m)]

    out: List[int] = []
    for z in symbols:
        z = complex(z)
        first = axis(z.real)
        out.extend(first)
        if has_q_axis:
            out.extend(axis(z.imag))
    return np.array(out, dtype=np.uint8)
