"""``repro.kernels`` — dispatchable compute kernels for the PHY/CoS hot paths.

The simulator's per-packet cost is dominated by a handful of tight inner
loops: the Viterbi add-compare-select recursion, constellation (de)mapping,
the data scrambler, and silence energy detection.  This package collects
those loops into *kernels* behind a small dispatch layer so they can be
served by different backends without the callers caring:

``numpy``
    The default pure-NumPy backend.  Its Viterbi uses a *blocked* ACS: k
    trellis steps are fused into one super-step whose 2^k branch metrics
    for **all** steps are produced by a single BLAS matmul against a
    precomputed sign matrix, cutting the Python-level loop count by k×.
``numba``
    Optional JIT backend (``pip install repro[speed]``), auto-detected at
    import time and silently skipped when numba is absent.  Runs the
    scalar ACS loop in machine code; fastest when available.
``cext``
    Optional C backend: the same scalar ACS embedded as C source and
    compiled on demand with whatever system compiler exists
    (``cc``/``gcc``/``clang``), cached per machine, loaded via ctypes.
    Registered only when a compiler is on PATH; a failed build falls
    back to ``numpy`` with a one-time warning.
``reference``
    The legacy step-by-step NumPy implementation, kept verbatim as the
    semantics anchor.  Every other backend must be bit-exact against it
    (see :mod:`repro.kernels.dispatch` for the exact-arithmetic contract).

Backend selection: ``REPRO_KERNEL_BACKEND`` (``auto``/``numpy``/``numba``/
``cext``/``reference``) or :func:`set_backend`; ``auto`` prefers numba,
then cext, then numpy.  :func:`warmup` pre-builds tables and triggers
JIT/C compilation — the trial engine calls it once per worker process.

All backends implement the same tie-breaking rule (prefer the lower branch
index, later steps dominating), so on *exact-arithmetic* inputs — integer
-valued LLRs, hard decisions, erasures — their decoded bits are provably
identical, ties included.  ``tests/test_kernels.py`` asserts this against a
pure-Python scalar oracle across all eight 802.11a rates.
"""

from repro.kernels.dispatch import (
    KernelBackend,
    available_backends,
    backend_name,
    decode_many,
    deinterleave_rx,
    get_backend,
    set_backend,
    use_backend,
    warmup,
)
from repro.kernels.scramble import prbs_sequence, prbs_state_table
from repro.kernels.energy import silence_energies, silence_mask

__all__ = [
    "KernelBackend",
    "available_backends",
    "backend_name",
    "decode_many",
    "deinterleave_rx",
    "get_backend",
    "set_backend",
    "use_backend",
    "warmup",
    "prbs_sequence",
    "prbs_state_table",
    "silence_energies",
    "silence_mask",
]
