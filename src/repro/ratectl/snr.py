"""Feedback-driven controllers: the SNR-threshold staircase family.

:class:`SnrThresholdController` is the existing
:class:`~repro.ratectl.staircase.RateAdapter` behind the
:class:`~repro.ratectl.base.RateController` interface — decision for
decision identical to the pre-controller control plane (the parity
``tests/test_rateadapt.py`` asserts).  It adapts purely on delivered
SINR feedback and inherits the scenario's control transport.

:class:`CosFeedbackController` and :class:`ExplicitFeedbackController`
are the same staircase with the transport *pinned*: they exist so the
``repro net compare`` matrix can put "today's CoS behaviour" and
"today's explicit behaviour" side by side in one run regardless of what
the scenario file says.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.mac.overhead import BASE_RATE_MBPS
from repro.ratectl.base import RateController, register
from repro.ratectl.staircase import RateAdapter

__all__ = [
    "SnrThresholdController",
    "CosFeedbackController",
    "ExplicitFeedbackController",
]


@register
class SnrThresholdController(RateController):
    """Stair-case selection from receiver-reported SINR (Holland et al.)."""

    name = "snr-threshold"
    transport = None  # inherit the scenario's control mode
    uses_feedback = True

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 rates: Optional[Tuple[int, ...]] = None,
                 adapter: Optional[RateAdapter] = None) -> None:
        super().__init__(rng=rng, rates=rates)
        self.adapter = adapter or RateAdapter()
        self._rates: Dict[Tuple[str, str], int] = {}

    def select_rate(self, src: str, dst: str, retries: int = 0) -> int:
        return self._rates.get((src, dst), BASE_RATE_MBPS)

    def on_feedback(self, src: str, dst: str, sinr_db: float) -> None:
        self._rates[(src, dst)] = self.adapter.select(sinr_db).mbps


@register
class CosFeedbackController(SnrThresholdController):
    """The staircase fed over CoS silences — today's ``control="cos"``."""

    name = "cos-feedback"
    transport = "cos"


@register
class ExplicitFeedbackController(SnrThresholdController):
    """The staircase fed by contending control frames — ``"explicit"``."""

    name = "explicit-feedback"
    transport = "explicit"
