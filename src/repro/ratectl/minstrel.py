"""Minstrel-style sampling rate control (the mac80211 default).

Per flow, Minstrel keeps an EWMA success probability per rate, fed by
frame fates alone — no receiver feedback, no control traffic.  ~10% of
head-of-queue transmissions *sample* a uniformly random rate to keep the
statistics of unused rates alive; the rest transmit at the
estimated-throughput maximiser.  Retries walk the classic chain: best
throughput → second-best throughput → highest success probability →
base rate, so a frame stuck behind a bad estimate degrades gracefully
instead of burning its whole retry budget at one rate.

Sampling draws come from the simulator's single RNG stream (one
``random()`` draw per non-retry selection, one ``integers()`` draw when
it samples), which keeps serial and process-pool sweeps bit-for-bit
identical and makes the sampling schedule reproducible per trial seed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.ratectl.base import RateController, register

__all__ = ["MinstrelController"]


@register
class MinstrelController(RateController):
    """EWMA success tracking + random sampling + max-tp/max-prob chain."""

    name = "minstrel"
    transport = None
    uses_feedback = False

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 rates: Optional[Tuple[int, ...]] = None,
                 sample_prob: float = 0.1,
                 ewma_weight: float = 0.25) -> None:
        super().__init__(rng=rng, rates=rates)
        if not 0.0 <= sample_prob <= 1.0:
            raise ValueError("sample_prob must be in [0, 1]")
        if not 0.0 < ewma_weight <= 1.0:
            raise ValueError("ewma_weight must be in (0, 1]")
        self.sample_prob = sample_prob
        self.ewma_weight = ewma_weight
        # flow -> {rate: EWMA success probability (None = never tried)}.
        self._flows: Dict[Tuple[str, str], Dict[int, Optional[float]]] = {}

    # -- state ----------------------------------------------------------

    def _flow(self, src: str, dst: str) -> Dict[int, Optional[float]]:
        return self._flows.setdefault(
            (src, dst), {rate: None for rate in self.rates}
        )

    def _ranked(self, stats: Dict[int, Optional[float]]):
        """Tried rates by estimated throughput, ties to the *lower* rate."""
        seen = [(stats[r] * r, -r) for r in self.rates if stats[r] is not None]
        seen.sort(reverse=True)
        return [-r for _, r in seen]

    def _max_prob(self, stats: Dict[int, Optional[float]]) -> int:
        """The most reliable tried rate (ties to the lower rate)."""
        best, best_p = self.rates[0], -1.0
        for rate in self.rates:
            p = stats[rate]
            if p is not None and p > best_p:
                best, best_p = rate, p
        return best

    # -- protocol -------------------------------------------------------

    def select_rate(self, src: str, dst: str, retries: int = 0) -> int:
        stats = self._flow(src, dst)
        if retries == 0:
            if self.rng is not None and \
                    float(self.rng.random()) < self.sample_prob:
                return int(self.rates[int(self.rng.integers(len(self.rates)))])
            ranked = self._ranked(stats)
            return ranked[0] if ranked else self.rates[0]
        ranked = self._ranked(stats)
        if retries == 1 and len(ranked) > 1:
            return ranked[1]
        if retries <= 3:
            return self._max_prob(stats)
        return self.rates[0]

    def on_tx_result(self, src: str, dst: str, rate_mbps: int, ok: bool,
                     retries: int, payload_octets: int = 0) -> None:
        stats = self._flow(src, dst)
        if rate_mbps not in stats:
            return
        outcome = 1.0 if ok else 0.0
        prev = stats[rate_mbps]
        if prev is None:
            stats[rate_mbps] = outcome
        else:
            w = self.ewma_weight
            stats[rate_mbps] = (1.0 - w) * prev + w * outcome

    # -- introspection (tests, debugging) -------------------------------

    def success_prob(self, src: str, dst: str, rate_mbps: int) -> Optional[float]:
        """Current EWMA success estimate of one rate (None = untried)."""
        return self._flow(src, dst).get(rate_mbps)

    def best_rate(self, src: str, dst: str) -> int:
        """The non-sampling choice (what ``select_rate`` returns sans dice)."""
        ranked = self._ranked(self._flow(src, dst))
        return ranked[0] if ranked else self.rates[0]
