"""SampleRate (Bicket) — average-transmission-time minimisation.

Per flow and rate, track the total airtime spent and the packets
delivered; transmit at the rate whose *average time per successful
packet* is lowest.  Every ``sample_every``-th head-of-queue transmission
probes one other candidate rate (deterministic round-robin — SampleRate
samples on a schedule, unlike Minstrel's dice), skipping rates that have
failed ``max_consec_fail`` times in a row since their last success —
Bicket's rule for not wasting airtime on dead rates.

Like Minstrel this is loss-driven: no feedback messages, no control
airtime; the frame fates reported by the MAC are the whole signal.  The
round-robin sampling schedule consumes no RNG at all, so the controller
is trivially bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.mac.overhead import frame_airtime_us
from repro.phy.params import RATE_TABLE
from repro.ratectl.base import RateController, register

__all__ = ["SampleRateController"]


class _RateStats:
    """Per-(flow, rate) bookkeeping."""

    __slots__ = ("attempts", "successes", "total_tx_us", "consec_fail")

    def __init__(self) -> None:
        self.attempts = 0
        self.successes = 0
        self.total_tx_us = 0.0
        self.consec_fail = 0

    def avg_tx_us(self) -> float:
        if self.successes == 0:
            return float("inf")
        return self.total_tx_us / self.successes


class _FlowState:
    __slots__ = ("stats", "n_tx", "sample_idx")

    def __init__(self, rates: Tuple[int, ...]) -> None:
        self.stats: Dict[int, _RateStats] = {r: _RateStats() for r in rates}
        self.n_tx = 0
        self.sample_idx = 0


@register
class SampleRateController(RateController):
    """Minimise average tx time per delivered packet; sample periodically."""

    name = "samplerate"
    transport = None
    uses_feedback = False

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 rates: Optional[Tuple[int, ...]] = None,
                 sample_every: int = 10,
                 max_consec_fail: int = 4) -> None:
        super().__init__(rng=rng, rates=rates)
        if sample_every < 2:
            raise ValueError("sample_every must be at least 2")
        if max_consec_fail < 1:
            raise ValueError("max_consec_fail must be at least 1")
        self.sample_every = sample_every
        self.max_consec_fail = max_consec_fail
        self._flows: Dict[Tuple[str, str], _FlowState] = {}

    def _flow(self, src: str, dst: str) -> _FlowState:
        return self._flows.setdefault((src, dst), _FlowState(self.rates))

    def _best(self, flow: _FlowState) -> int:
        """Lowest average-tx-time rate with at least one success."""
        best, best_key = None, None
        for rate in self.rates:
            st = flow.stats[rate]
            if st.successes == 0:
                continue
            key = (st.avg_tx_us(), -rate)
            if best_key is None or key < best_key:
                best, best_key = rate, key
        return best if best is not None else self.rates[0]

    # -- protocol -------------------------------------------------------

    def select_rate(self, src: str, dst: str, retries: int = 0) -> int:
        flow = self._flow(src, dst)
        if retries >= 2:
            return self.rates[0]
        best = self._best(flow)
        if retries == 1:
            return best
        flow.n_tx += 1
        if flow.n_tx % self.sample_every == 0:
            candidates = [
                r for r in self.rates
                if r != best
                and flow.stats[r].consec_fail < self.max_consec_fail
            ]
            if candidates:
                rate = candidates[flow.sample_idx % len(candidates)]
                flow.sample_idx += 1
                return rate
        return best

    def on_tx_result(self, src: str, dst: str, rate_mbps: int, ok: bool,
                     retries: int, payload_octets: int = 0) -> None:
        flow = self._flow(src, dst)
        st = flow.stats.get(rate_mbps)
        if st is None:
            return
        st.attempts += 1
        st.total_tx_us += frame_airtime_us(payload_octets, RATE_TABLE[rate_mbps])
        if ok:
            st.successes += 1
            st.consec_fail = 0
        else:
            st.consec_fail += 1

    # -- introspection (tests, debugging) -------------------------------

    def avg_tx_us(self, src: str, dst: str, rate_mbps: int) -> float:
        return self._flow(src, dst).stats[rate_mbps].avg_tx_us()

    def best_rate(self, src: str, dst: str) -> int:
        return self._best(self._flow(src, dst))
