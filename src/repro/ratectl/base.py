"""The :class:`RateController` protocol and the controller registry.

A rate controller owns the per-flow rate decision of the network
simulator.  :class:`~repro.net.control.ControlPlane` drives it through
three hooks, all keyed by the data flow ``(src, dst)``:

* :meth:`RateController.select_rate` — called by the MAC for every data
  transmission attempt (``retries`` counts the failed attempts of the
  head frame so far, letting samplers walk a retry chain);
* :meth:`RateController.on_tx_result` — called at TX completion (ACK
  received, or ACK timeout) with the rate the attempt actually used —
  the only signal the loss-driven samplers (Minstrel, SampleRate) get;
* :meth:`RateController.on_feedback` — called when a SINR feedback
  message reaches the flow's sender through the control plane (explicit
  frame or CoS silence), the signal the SNR-threshold family runs on.

Two class attributes tell the simulator how to provision the control
plane around a controller:

* ``transport`` — ``"cos"`` / ``"explicit"`` pins the scenario's control
  mode (the Cos/Explicit feedback controllers exist exactly to pin it);
  ``None`` keeps whatever the scenario configured.
* ``uses_feedback`` — ``False`` suppresses feedback generation entirely:
  loss-driven samplers pay *zero* control overhead by construction,
  which is the honest baseline the paper's "free control" claim must
  beat on adaptation quality, not on airtime.

Controllers must follow the net determinism contract: any randomness
comes from the simulator's single ``rng`` stream passed at construction
(never module-level RNGs or wall clock), so serial and process-pool
sweeps stay bit-for-bit identical.

New controllers register by name::

    @register
    class MyController(RateController):
        name = "my-controller"
        ...

and are then constructible via ``ScenarioSpec(controller="my-controller")``,
``repro net run --controller`` and ``repro net compare``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

import numpy as np

from repro.mac.overhead import BASE_RATE_MBPS
from repro.phy.params import RATE_TABLE

__all__ = [
    "CONTROLLERS",
    "RateController",
    "available_controllers",
    "make_controller",
    "register",
]


class RateController:
    """Base class: per-flow state plus the three control-plane hooks."""

    #: Registry key (subclasses override).
    name: str = "base"
    #: ``"cos"`` / ``"explicit"`` pins the control mode; ``None`` inherits.
    transport: Optional[str] = None
    #: ``False`` = never generate SINR feedback messages (loss-driven).
    uses_feedback: bool = True

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 rates: Optional[Tuple[int, ...]] = None) -> None:
        self.rng = rng
        self.rates: Tuple[int, ...] = tuple(sorted(rates or RATE_TABLE))
        if not self.rates:
            raise ValueError("controller needs at least one rate")
        for mbps in self.rates:
            if mbps not in RATE_TABLE:
                raise ValueError(f"{mbps} Mbps is not an 802.11a rate")

    # -- the protocol ---------------------------------------------------

    def select_rate(self, src: str, dst: str, retries: int = 0) -> int:
        """The rate (Mbps) flow ``src -> dst`` should transmit at now."""
        return BASE_RATE_MBPS

    def on_tx_result(self, src: str, dst: str, rate_mbps: int, ok: bool,
                     retries: int, payload_octets: int = 0) -> None:
        """One data TX attempt of flow ``src -> dst`` completed.

        ``ok`` is the frame fate (ACKed vs ACK timeout), ``rate_mbps``
        the rate that attempt used, ``retries`` the failed-attempt count
        of the frame so far.
        """

    def on_feedback(self, src: str, dst: str, sinr_db: float) -> None:
        """A SINR feedback message for flow ``src -> dst`` was delivered."""


#: name -> controller class; populated by :func:`register` at import time.
CONTROLLERS: Dict[str, Type[RateController]] = {}


def register(cls: Type[RateController]) -> Type[RateController]:
    """Class decorator adding a controller to :data:`CONTROLLERS`."""
    if not cls.name or cls.name == "base":
        raise ValueError("controller classes must set a unique 'name'")
    if cls.name in CONTROLLERS:
        raise ValueError(f"controller {cls.name!r} already registered")
    if cls.transport not in (None, "cos", "explicit"):
        raise ValueError(f"bad transport {cls.transport!r} on {cls.name!r}")
    CONTROLLERS[cls.name] = cls
    return cls


def available_controllers() -> Tuple[str, ...]:
    """Registered controller names, sorted (the CLI/help vocabulary)."""
    return tuple(sorted(CONTROLLERS))


def make_controller(name: str, rng: Optional[np.random.Generator] = None,
                    **kwargs) -> RateController:
    """Instantiate a registered controller by name.

    Raises :class:`ValueError` naming the available set on an unknown
    name — the one error message every surface (spec validation, CLI,
    env fallback) relays.
    """
    try:
        cls = CONTROLLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown rate controller {name!r}; available: "
            f"{', '.join(available_controllers())}"
        ) from None
    return cls(rng=rng, **kwargs)
