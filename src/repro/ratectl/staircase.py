"""SNR-based stair-case data-rate adaptation.

The sender picks the highest 802.11a rate whose *minimum required SNR* is
at or below the receiver-reported (measured) SNR — the scheme of Holland
et al. that the paper adopts (§II-C, ref. [6]).  Because rates are
discrete and SNR is continuous, the selected rate's requirement is almost
always strictly below the actual channel SNR: that difference is the SNR
gap CoS converts into free control capacity.

The thresholds below are anchored to the figures in the paper: 24 Mbps
requires 12 dB (Fig. 2 text), its band extends to 17.3 dB (Fig. 3 x-axis),
the 12 Mbps band is 7.1–9.5 dB and the 54 Mbps band starts at 22.4 dB
(Fig. 9 discussion).

This module is the measurement core shared by every feedback-driven
:class:`repro.ratectl.RateController`; it lived at
``repro.rateadapt.snr_rate_adaptation`` before the controller layer
existed, and that path still re-exports it (with a
``DeprecationWarning``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.obs.metrics import get_registry
from repro.phy.params import RATE_TABLE, PhyRate

__all__ = ["DEFAULT_THRESHOLDS", "RateAdapter", "select_rate", "min_required_snr_db"]

# mbps -> minimum required measured SNR (dB).
DEFAULT_THRESHOLDS: Dict[int, float] = {
    6: 2.0,
    9: 5.0,
    12: 7.1,
    18: 9.5,
    24: 12.0,
    36: 17.3,
    48: 20.0,
    54: 22.4,
}


@dataclass(frozen=True)
class RateAdapter:
    """Stair-case rate selector.

    ``thresholds`` maps Mbps to the minimum measured SNR that enables that
    rate; they must be monotone in rate.
    """

    thresholds: Dict[int, float] = field(default_factory=lambda: dict(DEFAULT_THRESHOLDS))

    def __post_init__(self):
        rates = sorted(self.thresholds)
        snrs = [self.thresholds[r] for r in rates]
        if any(b <= a for a, b in zip(snrs, snrs[1:])):
            raise ValueError("thresholds must increase strictly with rate")
        for mbps in rates:
            if mbps not in RATE_TABLE:
                raise ValueError(f"{mbps} Mbps is not an 802.11a rate")

    def select(self, measured_snr_db: float) -> PhyRate:
        """Highest rate supported at ``measured_snr_db`` (lowest as floor).

        Selections are tallied per rate in the metrics registry
        (``repro_rate_selected_total{mbps=...}``) so a session's rate
        distribution is visible without tracing.
        """
        best = min(self.thresholds)
        for mbps in sorted(self.thresholds):
            if measured_snr_db >= self.thresholds[mbps]:
                best = mbps
        get_registry().counter(
            "repro_rate_selected_total",
            help="Data-rate adaptation selections, by chosen rate.",
        ).labels(mbps=best).inc()
        return RATE_TABLE[best]

    def min_required_snr_db(self, rate: PhyRate) -> float:
        """The minimum measured SNR of ``rate`` (the staircase of Fig. 2)."""
        try:
            return self.thresholds[rate.mbps]
        except KeyError:
            raise KeyError(f"no threshold configured for {rate.mbps} Mbps") from None

    def band(self, rate: PhyRate) -> Tuple[float, float]:
        """The [low, high) measured-SNR interval in which ``rate`` is chosen.

        The top rate's band is open-ended (``high = inf``).
        """
        rates = sorted(self.thresholds)
        low = self.thresholds[rate.mbps]
        above = [self.thresholds[m] for m in rates if self.thresholds[m] > low]
        high = min(above) if above else float("inf")
        return low, high


_DEFAULT = RateAdapter()


def select_rate(measured_snr_db: float) -> PhyRate:
    """Module-level shortcut using :data:`DEFAULT_THRESHOLDS`."""
    return _DEFAULT.select(measured_snr_db)


def min_required_snr_db(rate: PhyRate) -> float:
    """Module-level shortcut using :data:`DEFAULT_THRESHOLDS`."""
    return _DEFAULT.min_required_snr_db(rate)
