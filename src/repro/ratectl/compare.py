"""The head-to-head harness behind ``repro net compare``.

One scenario, the whole controller matrix: each registered controller
(or a chosen subset) runs the same :class:`~repro.net.scenario
.ScenarioSpec` for the same trials/seed through the deterministic sweep
engine, and the per-controller summaries collapse into one comparison
row set — goodput, retries, drops, control traffic, control airtime.

Frame fates default to the measured-PHY surrogate curves
(``error_model="surrogate"``): the loss-driven samplers are only
meaningful when loss *means* something measured, not an analytic
sigmoid.  Pass ``error_model="sigmoid"`` to compare on the analytic
model instead.

Net imports stay function-local: ``repro.net.scenario`` imports this
package for controller-name validation, so the module level here must
not import ``repro.net``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ratectl.base import CONTROLLERS, available_controllers

__all__ = [
    "CONTROLLER_MATRIX",
    "SCENARIO_LIBRARY",
    "compare_controllers",
    "comparison_rows",
]

#: The canonical five-way matrix ``repro net compare`` runs by default.
CONTROLLER_MATRIX: Tuple[str, ...] = (
    "cos-feedback",
    "explicit-feedback",
    "snr-threshold",
    "minstrel",
    "samplerate",
)

#: The built-in scenario library the matrix sweeps when no --scenario is
#: given (names resolve through ``repro.net.scenarios.builtin_scenario``).
SCENARIO_LIBRARY: Tuple[str, ...] = (
    "hidden-node",
    "contention",
    "enterprise-grid",
    "campus-roaming",
    "cross-cell",
)


def compare_controllers(
    spec,
    controllers: Sequence[str] = CONTROLLER_MATRIX,
    n_trials: int = 3,
    seed: int = 0,
    workers: Optional[int] = None,
    error_model: str = "surrogate",
) -> Dict:
    """Run ``spec`` once per controller; return the comparison report.

    Every controller sees the identical scenario, trial count and seed —
    only the ``controller`` (and with it, possibly the control transport)
    differs, so differences in the report are differences in rate
    control, nothing else.
    """
    from repro.net.simulator import run_scenario_sweep, summarize_results

    unknown = [c for c in controllers if c not in CONTROLLERS]
    if unknown:
        raise ValueError(
            f"unknown rate controller(s) {unknown}; available: "
            f"{', '.join(available_controllers())}"
        )
    per: Dict[str, Dict] = {}
    for name in controllers:
        variant = dataclasses.replace(
            spec, controller=name, error_model=error_model
        )
        results = run_scenario_sweep(
            variant, n_trials=n_trials, seed=seed, workers=workers
        )
        summary = summarize_results(results)
        nodes = summary["per_node"].values()
        per[name] = {
            "transport": summary["control"],
            "goodput_mbps": summary["aggregate_goodput_mbps"],
            "fairness": summary["fairness"],
            "retries": summary["collisions"],
            "data_delivered": sum(n["data_delivered"] for n in nodes),
            "data_dropped": sum(n["data_dropped"] for n in nodes),
            "control_generated": sum(n["control_generated"] for n in nodes),
            "control_delivered": sum(n["control_delivered"] for n in nodes),
            "control_airtime_fraction": summary["control_airtime_fraction"],
        }
    return {
        "scenario": spec.name,
        "n_trials": n_trials,
        "seed": seed,
        "error_model": error_model,
        "controllers": per,
    }


def comparison_rows(report: Dict) -> List[Tuple]:
    """Flatten a :func:`compare_controllers` report into table rows."""
    rows = []
    for name, row in report["controllers"].items():
        rows.append((
            name,
            row["transport"],
            f"{row['goodput_mbps']:.3f}",
            f"{row['fairness']:.3f}",
            f"{row['retries']:.1f}",
            f"{row['data_dropped']:.1f}",
            f"{row['control_generated']:.1f}",
            f"{row['control_delivered']:.1f}",
            f"{row['control_airtime_fraction'] * 100:.2f}",
        ))
    return rows
