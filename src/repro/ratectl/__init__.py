"""``repro.ratectl`` — pluggable MAC-layer rate control.

The paper compares CoS feedback only against explicit control frames;
real 802.11 stacks run probabilistic samplers that need *no* feedback at
all ("MAC-Layer Rate Control for 802.11 Networks: Lessons Learned",
PAPERS.md).  This package makes the rate decision a first-class,
swappable policy so the comparison is honest:

====================  =========  =============  ==========================
controller            transport  feedback?      signal
====================  =========  =============  ==========================
``snr-threshold``     inherited  yes            receiver-reported SINR
``cos-feedback``      cos        yes            SINR over CoS silences
``explicit-feedback`` explicit   yes            SINR over control frames
``minstrel``          —          no             frame fates (EWMA + dice)
``samplerate``        —          no             frame fates (avg tx time)
====================  =========  =============  ==========================

:class:`RateController` defines the protocol (``select_rate`` /
``on_tx_result`` / ``on_feedback``); :mod:`repro.net` drives it from the
MAC's TX-completion path and the control plane's feedback delivery.
Scenarios choose a controller via ``ScenarioSpec(controller=...)``, the
CLI via ``repro net run --controller`` and ``repro net compare``.

:mod:`repro.ratectl.staircase` holds the SNR-threshold measurement core
(formerly ``repro.rateadapt.snr_rate_adaptation``, which now re-exports
from here with a ``DeprecationWarning``).
"""

from repro.ratectl.base import (
    CONTROLLERS,
    RateController,
    available_controllers,
    make_controller,
    register,
)
from repro.ratectl.staircase import (
    DEFAULT_THRESHOLDS,
    RateAdapter,
    min_required_snr_db,
    select_rate,
)
from repro.ratectl.snr import (
    CosFeedbackController,
    ExplicitFeedbackController,
    SnrThresholdController,
)
from repro.ratectl.minstrel import MinstrelController
from repro.ratectl.samplerate import SampleRateController
from repro.ratectl.compare import (
    CONTROLLER_MATRIX,
    SCENARIO_LIBRARY,
    compare_controllers,
    comparison_rows,
)

__all__ = [
    "CONTROLLERS",
    "CONTROLLER_MATRIX",
    "SCENARIO_LIBRARY",
    "RateController",
    "available_controllers",
    "make_controller",
    "register",
    "DEFAULT_THRESHOLDS",
    "RateAdapter",
    "min_required_snr_db",
    "select_rate",
    "SnrThresholdController",
    "CosFeedbackController",
    "ExplicitFeedbackController",
    "MinstrelController",
    "SampleRateController",
    "compare_controllers",
    "comparison_rows",
]
