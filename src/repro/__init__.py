"""CoS — Communication through Symbol Silence (ICDCS 2017) reproduction.

A faithful software implementation of the paper's full stack:

* :mod:`repro.phy` — IEEE 802.11a OFDM baseband (Sora SoftWiFi substitute);
* :mod:`repro.channel` — indoor frequency-selective fading substrate;
* :mod:`repro.rateadapt` — SNR-threshold data-rate adaptation;
* :mod:`repro.cos` — the contribution: silence-symbol control channel with
  interval coding, energy detection, EVM-driven subcarrier selection,
  erasure Viterbi decoding, and adaptive control-message rate;
* :mod:`repro.analysis` — metrics;
* :mod:`repro.experiments` — one harness per paper figure.

Quickstart::

    from repro import CosLink, IndoorChannel
    link = CosLink(channel=IndoorChannel.position("A", snr_db=18.0, seed=7))
    outcome = link.exchange(payload=b"x" * 1024, control_bits=[0, 1, 1, 0])
    assert outcome.data_ok and outcome.control_ok
"""

__version__ = "1.0.0"

from repro.channel import IndoorChannel
from repro.cos import CosLink, CosReceiver, CosTransmitter

__all__ = ["IndoorChannel", "CosLink", "CosReceiver", "CosTransmitter", "__version__"]
