"""Net-lens: per-node airtime ledgers, event tracing, and a sim profiler.

The simulator's end-of-run aggregates (:class:`~repro.net.simulator
.NetResult`) say *what* happened; this module says *where the airtime
went*, *why each frame died*, and *how fast the simulator itself ran*.
One :class:`NetLens` instance observes one :class:`~repro.net.simulator
.NetSimulator` run through narrow hooks in the medium, the per-node MACs,
the control plane, and the event scheduler.  Every hook site is guarded
by a single ``if lens is not None`` check, so the disabled path (the
default, and the only path thousand-node scaling runs should ever take)
costs one attribute load + branch per site — gated by
``benchmarks/bench_obs_overhead.py::test_net_lens_disabled_overhead``.

Three instruments, independently switchable:

* **Airtime ledger** (``ledger=True``) — a per-node state machine over
  the mutually exclusive states ``tx`` / ``busy`` (carrier sensed, not
  transmitting: receiving, deferring, or frozen mid-backoff) /
  ``backoff`` (DIFS + countdown running on a locally idle channel) /
  ``idle``.  State occupancy telescopes over the run, so per node the
  four buckets sum *exactly* to the simulation duration — the
  conservation invariant ``tests/test_net_lens.py`` asserts to 1e-9.
  The ledger also splits transmit airtime by frame kind (data vs
  explicit control vs ACK) and tracks global channel-busy time (union
  of all transmissions), which is how the paper's "free control" claim
  becomes an observable: the CoS run's control airtime fraction must
  sit strictly below the explicit run's.

* **Event trace** (``trace=True``) — schema-versioned ``"net"`` records
  (``tx_start`` / ``tx_end`` / ``drop`` / ``deliver`` /
  ``control_generated`` / ``control_piggyback`` / ``control_delivered`` /
  ``rate_selected`` / ``assoc``)
  carrying simulation time (``t_us``) and, when ``wall_clock=True``,
  wall time (``wall_ts``).  Records are kept on :attr:`NetLens.events`
  (sim-deterministic: byte-identical across executors once sorted by
  ``t_us``/``seq``) and mirrored to the active :mod:`repro.obs.trace`
  sink when one is configured, so ``--trace-out`` files interleave net
  events with spans.  ``tx_end`` records carry the net-layer
  failure-cause taxonomy (:func:`repro.obs.flight.classify_net_failure`).

* **Throughput profiler** (``profile=True``) — hooks the scheduler's
  dispatch loop to time every callback, reporting events/sec, the
  sim-time-to-wall-time ratio, and per-event-type wall-time histograms.
  This is the measurement the ROADMAP's dense-multi-BSS scaling work is
  gated on (``benchmarks/bench_net_scaling.py`` →
  ``BENCH_net_scaling.json``).

On :meth:`finalize` the lens folds its totals into the process metrics
registry (``repro_net_airtime_us_total``, ``repro_net_lens_events_total``,
``repro_net_event_seconds``, ``repro_net_events_per_sec``, …), which is
how ledger/throughput numbers survive process-pool sweeps: worker
registries merge back into the parent via the engine's existing
snapshot-delta mechanism.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.obs.flight import classify_net_failure
from repro.obs.metrics import Histogram, MetricsRegistry, get_registry
from repro.obs.sink import SCHEMA_VERSION
from repro.obs.trace import current_tracer

__all__ = [
    "NET_EVENT_NAMES",
    "NODE_STATES",
    "EVENT_TIME_BUCKETS_S",
    "EventProfiler",
    "NetLens",
]

#: Every event name the trace may contain (golden-schema tests pin this).
NET_EVENT_NAMES = (
    "tx_start",
    "tx_end",
    "drop",
    "deliver",
    "control_generated",
    "control_piggyback",
    "control_delivered",
    "rate_selected",
    "assoc",
)

#: Mutually exclusive per-node airtime states (priority order).
NODE_STATES = ("tx", "busy", "backoff", "idle")

#: Wall-time buckets for per-event-type dispatch histograms: scheduler
#: callbacks run in the 100 ns – 1 ms range, far below the generic
#: LATENCY_BUCKETS_S resolution.
EVENT_TIME_BUCKETS_S: Tuple[float, ...] = (
    1e-7, 2.5e-7, 5e-7,
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 1e-2,
)


class _NodeLedger:
    """State-machine time accounting for one node (see module doc)."""

    __slots__ = ("state", "since_us", "acc_us", "tx_kind", "tx_kind_us",
                 "cs_busy", "backoff")

    def __init__(self) -> None:
        self.state = "idle"
        self.since_us = 0.0
        self.acc_us: Dict[str, float] = {s: 0.0 for s in NODE_STATES}
        self.tx_kind: Optional[str] = None
        self.tx_kind_us: Dict[str, float] = {}
        self.cs_busy = False
        self.backoff = False

    def _resolve(self) -> str:
        if self.tx_kind is not None:
            return "tx"
        if self.cs_busy:
            return "busy"
        if self.backoff:
            return "backoff"
        return "idle"

    def transition(self, now_us: float) -> None:
        """Close the current state's interval and enter the resolved one."""
        elapsed = now_us - self.since_us
        if elapsed > 0.0:
            self.acc_us[self.state] += elapsed
            if self.state == "tx" and self.tx_kind is not None:
                self.tx_kind_us[self.tx_kind] = (
                    self.tx_kind_us.get(self.tx_kind, 0.0) + elapsed
                )
        self.since_us = now_us
        self.state = self._resolve()


class EventProfiler:
    """Per-event-type wall-time accounting for the scheduler's dispatch loop.

    :meth:`record` is the per-dispatch hot call: one ``__qualname__``
    attribute read, one dict lookup, one histogram observe.  Installed on
    :attr:`EventScheduler.profiler <repro.net.scheduler.EventScheduler>`
    only while a profiling lens is attached; the scheduler's default loop
    pays a single ``is None`` check per event.
    """

    __slots__ = ("hists",)

    def __init__(self) -> None:
        self.hists: Dict[str, Histogram] = {}

    def record(self, fn, dt_s: float) -> None:
        name = getattr(fn, "__qualname__", None) or repr(fn)
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Histogram(EVENT_TIME_BUCKETS_S)
        hist.observe(dt_s)

    def by_type(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.hists):
            h = self.hists[name]
            out[name] = {
                "count": h.count,
                "total_s": h.sum,
                "mean_us": (h.sum / h.count * 1e6) if h.count else 0.0,
                "p50_us": h.quantile(0.5) * 1e6,
                "p95_us": h.quantile(0.95) * 1e6,
            }
        return out


class NetLens:
    """One run's observability attachment (ledger + trace + profiler)."""

    def __init__(
        self,
        trace: bool = True,
        ledger: bool = True,
        profile: bool = True,
        wall_clock: bool = True,
        max_events: int = 200_000,
    ) -> None:
        self.trace = trace
        self.ledger = ledger
        self.profile = profile
        self.wall_clock = wall_clock
        self.max_events = max_events
        self.events: List[Dict] = []
        self.n_events_dropped = 0
        self.profiler = EventProfiler() if profile else None

        self._nodes: Dict[str, _NodeLedger] = {}
        self._bss_of: Dict[str, str] = {}
        self._seq = 0
        # Channel-busy union: count of in-flight transmissions.
        self._active = 0
        self._busy_since_us = 0.0
        self.channel_busy_us = 0.0
        #: Transmit airtime by frame kind (mirrors ``Medium.airtime_us``).
        self.airtime_by_kind_us: Dict[str, float] = {}

        self._wall_t0 = 0.0
        self._finalized: Optional[Dict] = None
        self.duration_us = 0.0
        self.n_sched_events = 0
        self.wall_s = 0.0

    # ------------------------------------------------------------------
    # Lifecycle (called by NetSimulator)
    # ------------------------------------------------------------------

    def bind(self, node_names, bss_of=None) -> None:
        """Register the MAC-bearing nodes the ledger accounts for.

        ``bss_of`` maps node name -> serving-AP name at scenario start
        (APs map to themselves).  When provided, trace ``tx_start``
        records are stamped with the transmitter's home BSS and
        :meth:`ledger_dict` adds a ``per_bss`` airtime rollup.  The map
        is the *initial* association — roams are visible as ``assoc``
        trace events, not as mid-run rebinning of the ledger.
        """
        self._nodes = {name: _NodeLedger() for name in node_names}
        self._bss_of = dict(bss_of) if bss_of else {}

    def on_run_start(self) -> None:
        self._wall_t0 = time.perf_counter()

    def finalize(self, end_us: float, n_sched_events: int,
                 registry: Optional[MetricsRegistry] = None) -> None:
        """Close every open interval at ``end_us`` and fold into metrics."""
        self.wall_s = time.perf_counter() - self._wall_t0
        self.duration_us = float(end_us)
        self.n_sched_events = int(n_sched_events)
        for node in self._nodes.values():
            node.transition(end_us)
        if self._active > 0:  # a transmission still on the air at the horizon
            self.channel_busy_us += end_us - self._busy_since_us
            self._busy_since_us = end_us
        self._fold_into_registry(registry if registry is not None
                                 else get_registry())
        self._finalized = None  # invalidate any cached dict

    # ------------------------------------------------------------------
    # Medium hooks
    # ------------------------------------------------------------------

    def on_tx_start(self, tx, now_us: float) -> None:
        if self._active == 0:
            self._busy_since_us = now_us
        self._active += 1
        self.airtime_by_kind_us[tx.kind] = (
            self.airtime_by_kind_us.get(tx.kind, 0.0) + tx.duration_us
        )
        node = self._nodes.get(tx.src)
        if node is not None:
            node.transition(now_us)  # close the pre-tx state's interval
            node.tx_kind = tx.kind
            node.transition(now_us)  # zero-length: re-resolve to "tx"
        if self.trace:
            record = {
                "event": "tx_start", "t_us": now_us, "src": tx.src,
                "dst": tx.dst, "kind": tx.kind, "rate_mbps": tx.rate_mbps,
                "duration_us": tx.duration_us,
            }
            if self._bss_of:
                record["bss"] = self._bss_of.get(tx.src)
            self._emit(record)
            frame = tx.frame
            if frame is not None and frame.cos_msgs:
                self._emit({
                    "event": "control_piggyback", "t_us": now_us,
                    "src": tx.src, "dst": tx.dst, "carrier_kind": tx.kind,
                    "n_msgs": len(frame.cos_msgs),
                })

    def on_tx_end(self, tx, now_us: float, ok: bool, sinr_db: float,
                  reason: str) -> None:
        self._active -= 1
        if self._active == 0:
            self.channel_busy_us += now_us - self._busy_since_us
        node = self._nodes.get(tx.src)
        if node is not None:
            node.transition(now_us)  # close the tx interval *with* its kind
            node.tx_kind = None
            node.transition(now_us)  # zero-length: leave the "tx" state
        if self.trace:
            record = {
                "event": "tx_end", "t_us": now_us, "src": tx.src,
                "dst": tx.dst, "kind": tx.kind, "start_us": tx.start_us,
                "duration_us": tx.duration_us,
            }
            if tx.dst is not None:
                record["ok"] = bool(ok)
                record["sinr_db"] = float(sinr_db)
                record["reason"] = reason
                record["cause"] = classify_net_failure(ok, reason)
            self._emit(record)

    def on_channel_state(self, name: str, busy: bool, now_us: float) -> None:
        node = self._nodes.get(name)
        if node is not None:
            node.cs_busy = busy
            node.transition(now_us)

    # ------------------------------------------------------------------
    # MAC hooks
    # ------------------------------------------------------------------

    def on_backoff(self, name: str, active: bool, now_us: float) -> None:
        node = self._nodes.get(name)
        if node is not None:
            node.backoff = active
            node.transition(now_us)

    def on_drop(self, name: str, frame, now_us: float) -> None:
        if self.trace:
            self._emit({
                "event": "drop", "t_us": now_us, "src": name,
                "dst": frame.dst, "kind": frame.kind,
                "retries": frame.retries, "cause": "retry_exhausted",
            })

    def on_deliver(self, name: str, frame, now_us: float) -> None:
        if self.trace:
            self._emit({
                "event": "deliver", "t_us": now_us, "src": name,
                "dst": frame.dst, "kind": frame.kind,
                "latency_us": now_us - frame.created_us,
            })

    # ------------------------------------------------------------------
    # BSS hooks
    # ------------------------------------------------------------------

    def on_assoc(self, station: str, ap: str, prev: Optional[str],
                 rssi_db: float, now_us: float) -> None:
        """A station (re-)associated: ``prev is None`` = initial join."""
        if self.trace:
            self._emit({
                "event": "assoc", "t_us": now_us, "src": station,
                "dst": ap, "prev": prev, "rssi_db": float(rssi_db),
                "roam": prev is not None,
            })

    # ------------------------------------------------------------------
    # Control-plane hooks
    # ------------------------------------------------------------------

    def on_control_generated(self, msg, transport: str, now_us: float) -> None:
        if self.trace:
            self._emit({
                "event": "control_generated", "t_us": now_us, "src": msg.src,
                "dst": msg.dst, "transport": transport,
                "sinr_db": float(msg.sinr_db),
            })

    def on_rate_selected(self, src: str, dst: str, rate_mbps: int,
                         controller: str, now_us: float) -> None:
        """A rate controller changed a flow's rate (emitted on change only)."""
        if self.trace:
            self._emit({
                "event": "rate_selected", "t_us": now_us, "src": src,
                "dst": dst, "rate_mbps": int(rate_mbps),
                "controller": controller,
            })

    def on_control_delivered(self, msg, transport: str, now_us: float) -> None:
        if self.trace:
            self._emit({
                "event": "control_delivered", "t_us": now_us, "src": msg.src,
                "dst": msg.dst, "transport": transport,
                "latency_us": now_us - msg.created_us,
                "attempts": msg.attempts,
            })

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit(self, record: Dict) -> None:
        record["type"] = "net"
        record["schema"] = SCHEMA_VERSION
        record["seq"] = self._seq
        self._seq += 1
        if self.wall_clock:
            record["wall_ts"] = time.time()
        if len(self.events) < self.max_events:
            self.events.append(record)
        else:
            self.n_events_dropped += 1
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(record)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------

    def ledger_dict(self) -> Dict:
        """The per-node airtime ledger (JSON-ready; call after finalize)."""
        total = self.duration_us or 1.0
        per_node = {}
        for name in sorted(self._nodes):
            node = self._nodes[name]
            kinds = node.tx_kind_us
            per_node[name] = {
                "tx_us": node.acc_us["tx"],
                "tx_data_us": kinds.get("data", 0.0),
                "tx_control_us": kinds.get("control", 0.0),
                "tx_ack_us": kinds.get("ack", 0.0),
                "tx_beacon_us": kinds.get("beacon", 0.0),
                "busy_us": node.acc_us["busy"],
                "backoff_us": node.acc_us["backoff"],
                "idle_us": node.acc_us["idle"],
                "fractions": {s: node.acc_us[s] / total for s in NODE_STATES},
            }
        contended = sum(v for k, v in self.airtime_by_kind_us.items()
                        if k != "interference")
        out = {
            "schema": SCHEMA_VERSION,
            "duration_us": self.duration_us,
            "channel_busy_us": self.channel_busy_us,
            "channel_busy_fraction": self.channel_busy_us / total,
            "airtime_us": dict(self.airtime_by_kind_us),
            "control_airtime_fraction": (
                self.airtime_by_kind_us.get("control", 0.0) / contended
                if contended else 0.0
            ),
            "per_node": per_node,
        }
        if self._bss_of:
            per_bss: Dict[str, Dict[str, float]] = {}
            keys = ("tx_us", "tx_data_us", "tx_control_us", "tx_ack_us",
                    "tx_beacon_us", "busy_us", "backoff_us", "idle_us")
            for name, row in per_node.items():
                bss = self._bss_of.get(name)
                if bss is None:
                    continue
                agg = per_bss.setdefault(
                    bss, {k: 0.0 for k in keys} | {"n_nodes": 0})
                agg["n_nodes"] += 1
                for k in keys:
                    agg[k] += row[k]
            out["per_bss"] = {b: per_bss[b] for b in sorted(per_bss)}
        return out

    def profile_dict(self) -> Dict:
        """Simulator-throughput report (call after finalize)."""
        wall = self.wall_s
        out = {
            "schema": SCHEMA_VERSION,
            "n_events": self.n_sched_events,
            "wall_s": wall,
            "events_per_sec": self.n_sched_events / wall if wall > 0 else 0.0,
            "sim_us": self.duration_us,
            "sim_wall_ratio": (self.duration_us / (wall * 1e6)
                               if wall > 0 else 0.0),
        }
        if self.profiler is not None:
            out["by_type"] = self.profiler.by_type()
        return out

    # ------------------------------------------------------------------
    # Metrics folding
    # ------------------------------------------------------------------

    def _fold_into_registry(self, registry: MetricsRegistry) -> None:
        if self.ledger:
            airtime = registry.counter(
                "repro_net_airtime_us_total",
                "per-node airtime by ledger state, microseconds",
            )
            for name, node in self._nodes.items():
                for state in NODE_STATES:
                    us = node.acc_us[state]
                    if us > 0.0:
                        airtime.labels(node=name, state=state).inc(us)
            registry.counter(
                "repro_net_channel_busy_us_total",
                "channel-busy time (union of transmissions), microseconds",
            ).inc(self.channel_busy_us)
        if self.trace and self.events:
            counts: Dict[str, int] = {}
            for ev in self.events:
                counts[ev["event"]] = counts.get(ev["event"], 0) + 1
            fam = registry.counter(
                "repro_net_lens_events_total", "net trace events by type"
            )
            for event_name, n in counts.items():
                fam.labels(event=event_name).inc(n)
        if self.profile and self.profiler is not None:
            fam = registry.histogram(
                "repro_net_event_seconds",
                "scheduler callback wall time by event type",
                buckets=EVENT_TIME_BUCKETS_S,
            )
            for name, hist in self.profiler.hists.items():
                child = fam.labels(event=name)
                child.sum += hist.sum
                child.count += hist.count
                for i, c in enumerate(hist.bucket_counts):
                    child.bucket_counts[i] += c
            registry.gauge(
                "repro_net_events_per_sec", "scheduler dispatch throughput"
            ).set(self.n_sched_events / self.wall_s if self.wall_s > 0 else 0.0)
            registry.gauge(
                "repro_net_sim_wall_ratio", "simulated time / wall time"
            ).set(self.duration_us / (self.wall_s * 1e6)
                  if self.wall_s > 0 else 0.0)
