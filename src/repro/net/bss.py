"""BSS runtime: beacons, association, and strongest-AP roaming.

A :class:`~repro.net.scenario.BssSpec` declares the static shape of a
cell — the AP, its channel, the stations that start associated to it.
This module animates that shape at run time:

* **Beacons** — every AP enqueues a broadcast beacon frame each
  ``beacon_interval_us`` (APs are phase-staggered deterministically so
  co-located cells do not strobe in lockstep).  Beacons go through the
  normal DCF like any management frame; when one finishes, the medium
  fans it out to every listener that receives it at or above the
  carrier-sense threshold — a deterministic energy gate that draws no
  randomness (see :meth:`repro.net.medium.Medium._deliver_beacon`).

* **Association** — stations named in a ``BssSpec`` start associated
  (and on their AP's channel); any other non-AP station joins the first
  AP it hears.  The association map drives ``"@ap"`` traffic targets
  and the per-BSS control-plane routing
  (:class:`~repro.net.control.ControlRouter`).

* **Roaming** — the station-side state machine.  Each decoded beacon
  updates the station's per-AP RSSI table; hearing a foreign AP more
  than ``roam_hysteresis_db`` above the serving AP's level triggers a
  hand-off: the station switches to the new AP's channel (the medium
  re-evaluates its carrier state immediately) and its control
  conversation moves to the new AP's plane.  The serving AP's level is
  its last beacon RSSI, or the predicted co-channel power before the
  first one arrives, so a station that walks out of a cell roams even
  if it lost the old AP entirely.

Everything here is deterministic given the scheduler's event order: no
RNG is consumed, which is what keeps multi-BSS scenarios bit-for-bit
reproducible across serial and process-pool sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.net.mac import NetFrame

__all__ = ["BEACON_OCTETS", "BssRuntime"]

#: 802.11-ish beacon body (timestamp + interval + caps + SSID + rates).
BEACON_OCTETS = 76


class BssRuntime:
    """Animate the BSS specs of one scenario run (no RNG consumed)."""

    def __init__(
        self,
        bsses: Sequence,  # Sequence[BssSpec]
        medium,
        scheduler,
        collector,
        lens=None,
        beacon_interval_us: float = 102_400.0,
        roam_hysteresis_db: float = 6.0,
        beacon_octets: int = BEACON_OCTETS,
        horizon_us: float = float("inf"),
    ) -> None:
        self.bsses = tuple(bsses)
        self.medium = medium
        self.scheduler = scheduler
        self.collector = collector
        self.lens = lens
        self.beacon_interval_us = float(beacon_interval_us)
        self.roam_hysteresis_db = float(roam_hysteresis_db)
        self.beacon_octets = int(beacon_octets)
        self.horizon_us = float(horizon_us)

        self.ap_channel: Dict[str, int] = {
            b.ap: b.channel for b in self.bsses
        }
        #: station -> serving AP (spec members start associated).
        self.assoc: Dict[str, str] = {}
        #: station -> {ap -> last beacon RSSI dBm}.
        self.rssi: Dict[str, Dict[str, float]] = {}
        self.n_roams = 0
        self._macs: Dict[str, object] = {}

        for bss in self.bsses:
            for sta in bss.stations:
                self.assoc[sta] = bss.ap

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, macs: Dict[str, object]) -> None:
        """Wire the MACs, set initial channels, schedule beacon trains."""
        self._macs = macs
        for ap, ch in self.ap_channel.items():
            self.medium.set_channel(ap, ch)
        for sta, ap in self.assoc.items():
            self.medium.set_channel(sta, self.ap_channel[ap])
        for mac in macs.values():
            mac.beacon_sink = self
        n = max(len(self.bsses), 1)
        for i, bss in enumerate(self.bsses):
            # Deterministic phase stagger: cell i leads by i/n of a
            # beacon interval, so beacons never all contend at once.
            self.scheduler.at(
                i * self.beacon_interval_us / n, self._beacon_tick, bss
            )

    def _beacon_tick(self, bss) -> None:
        now = self.scheduler.now_us
        self._macs[bss.ap].enqueue(NetFrame(
            kind="beacon", src=bss.ap, dst=None,
            payload_octets=self.beacon_octets, created_us=now,
        ))
        next_us = now + self.beacon_interval_us
        if next_us <= self.horizon_us:
            self.scheduler.at(next_us, self._beacon_tick, bss)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def ap_of(self, station: str) -> Optional[str]:
        """Current serving AP of ``station`` (None when unassociated)."""
        return self.assoc.get(station)

    def bss_map(self) -> Dict[str, str]:
        """node -> BSS id (the AP's name), for APs and associated stations."""
        out = {ap: ap for ap in self.ap_channel}
        out.update(self.assoc)
        return out

    # ------------------------------------------------------------------
    # Station-side state machine
    # ------------------------------------------------------------------

    def on_beacon(self, station: str, ap: str, rssi_dbm: float,
                  channel: int, now: float) -> None:
        """A station decoded a beacon — update RSSI, maybe (re)associate."""
        if station in self.ap_channel:
            return  # APs hear each other's beacons; they never associate
        table = self.rssi.setdefault(station, {})
        table[ap] = rssi_dbm
        current = self.assoc.get(station)
        if current is None:
            self._associate(station, ap, rssi_dbm, now)
            return
        if ap == current:
            return
        serving = table.get(current)
        if serving is None:
            # No beacon from the serving AP yet: compare against its
            # predicted co-channel level at the station's position.
            serving = self.medium.topology.rx_power_dbm(current, station, now)
        if rssi_dbm > serving + self.roam_hysteresis_db:
            self._associate(station, ap, rssi_dbm, now)

    def _associate(self, station: str, ap: str, rssi_dbm: float,
                   now: float) -> None:
        prev = self.assoc.get(station)
        self.assoc[station] = ap
        self.medium.set_channel(station, self.ap_channel[ap])
        if prev is not None and prev != ap:
            self.n_roams += 1
            if self.collector is not None:
                self.collector.on_roam(station)
        if self.lens is not None:
            self.lens.on_assoc(station, ap, prev, rssi_dbm, now)
