"""Spatial layer: node positions, mobility waypoints, log-distance path loss.

Per-link received power follows the log-distance model

    P_rx(d) = P_tx - [PL(d0) + 10 n log10(d / d0)]

with the 5 GHz-ish defaults ``PL(1 m) = 46.7 dB`` and indoor exponent
``n = 3``.  Everything downstream (carrier sense, SNR, SINR) derives
from :meth:`Topology.rx_power_dbm`, so hidden nodes are purely a matter
of geometry: two stations far enough apart that each other's power lands
below the carrier-sense threshold cannot coordinate, yet both still
deposit interference power at a receiver between them.

Scale-out machinery (multi-BSS refactor):

* A **uniform-grid spatial index** (:class:`GridIndex`) over the static
  nodes, cell size = the carrier-sense range at ``cs_threshold_dbm``.
  :meth:`Topology.neighbors_of` answers "who could possibly matter
  within ``radius_m``" as a superset query (bounding-box cells), so the
  medium only computes exact powers for a local neighbourhood instead of
  all pairs.  Mobile nodes (any node with waypoints) are *never* binned:
  they live in an always-returned set, which keeps culling exact without
  rebinning on every position change.
* **Per-pair path-loss caching** for static nodes: the log-distance
  formula (hypot + log10) runs once per unordered pair and is a dict hit
  afterwards.  Pairs involving a mobile node are always recomputed.
* :meth:`Topology.invalidate` — the mobility hook: pin a node at its
  position at ``t_us`` (typically its last waypoint), drop its cache
  entries, and move it from the mobile set into the grid so it becomes
  cacheable/cullable again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = ["RadioSpec", "Waypoint", "GridIndex", "Topology"]


@dataclass(frozen=True)
class RadioSpec:
    """Radio/propagation parameters shared by every node in a scenario.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power (17 dBm is a typical WLAN client).
    cs_threshold_dbm:
        Carrier-sense (energy-detect) threshold: a node defers while the
        aggregate received power from other transmitters is at or above
        this level.
    capture_threshold_db:
        Minimum SINR for the receiver to lock onto a frame at all; above
        it, decoding succeeds with the rate-dependent PRR of the error
        model (the capture effect: a strong frame survives a collision).
    noise_figure_db / bandwidth_hz:
        Thermal noise floor: ``-174 + 10 log10(BW) + NF`` dBm.
    path_loss_exponent / ref_loss_db / ref_distance_m:
        Log-distance path-loss model parameters.
    min_distance_m:
        Hard floor on the model distance so ``log10`` never sees zero —
        two nodes sharing a position (a coincident waypoint crossing)
        yield the finite near-field loss at this distance instead of
        ``-inf``/``nan`` power.
    interference_floor_dbm:
        Culling threshold for the medium's spatially-indexed mode: a
        transmission's contribution at a listener below this level is
        treated as zero (it neither trips carrier sense nor accumulates
        as interference).  ``-inf`` disables culling — bit-for-bit the
        all-pairs semantics.
    adjacent_rejection_db:
        Receive-filter rejection per channel step: a signal on channel
        ``c`` is attenuated ``|c - c'| * adjacent_rejection_db`` at a
        listener on channel ``c'`` (co-channel = 0 dB).
    """

    tx_power_dbm: float = 17.0
    cs_threshold_dbm: float = -82.0
    capture_threshold_db: float = 4.0
    noise_figure_db: float = 7.0
    bandwidth_hz: float = 20e6
    path_loss_exponent: float = 3.0
    ref_loss_db: float = 46.7
    ref_distance_m: float = 1.0
    min_distance_m: float = 0.1
    interference_floor_dbm: float = -100.0
    adjacent_rejection_db: float = 25.0

    def __post_init__(self):
        if self.ref_distance_m <= 0.0:
            raise ValueError("ref_distance_m must be positive")
        if self.min_distance_m <= 0.0:
            raise ValueError("min_distance_m must be positive")
        if self.bandwidth_hz <= 0.0:
            raise ValueError("bandwidth_hz must be positive")
        if self.adjacent_rejection_db < 0.0:
            raise ValueError("adjacent_rejection_db must be >= 0")

    @property
    def noise_dbm(self) -> float:
        return -174.0 + 10.0 * math.log10(self.bandwidth_hz) + self.noise_figure_db


@dataclass(frozen=True)
class Waypoint:
    """A mobility anchor: be at ``(x, y)`` at time ``t_us``."""

    t_us: float
    x: float
    y: float


class GridIndex:
    """Uniform-grid spatial hash over named 2-D points.

    Cells are ``cell_m`` squares keyed by ``(floor(x/cell), floor(y/cell))``.
    :meth:`query_disk` returns the names in every cell intersecting the
    disk's bounding box — a superset of the true disk, cheap and exact
    enough as a pre-filter (callers do the precise power test).  Names
    within a cell keep insertion order, so queries are deterministic.
    """

    __slots__ = ("cell_m", "_cells", "_where")

    def __init__(self, cell_m: float) -> None:
        if not (cell_m > 0.0) or math.isinf(cell_m):
            raise ValueError("cell_m must be positive and finite")
        self.cell_m = float(cell_m)
        self._cells: Dict[Tuple[int, int], List[str]] = {}
        self._where: Dict[str, Tuple[int, int]] = {}

    def _key(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell_m)),
                int(math.floor(y / self.cell_m)))

    def insert(self, name: str, x: float, y: float) -> None:
        if name in self._where:
            raise ValueError(f"duplicate grid entry {name!r}")
        key = self._key(x, y)
        self._cells.setdefault(key, []).append(name)
        self._where[name] = key

    def remove(self, name: str) -> None:
        key = self._where.pop(name)
        cell = self._cells[key]
        cell.remove(name)
        if not cell:
            del self._cells[key]

    def move(self, name: str, x: float, y: float) -> None:
        key = self._key(x, y)
        if self._where.get(name) == key:
            return
        self.remove(name)
        self._cells.setdefault(key, []).append(name)
        self._where[name] = key

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, name: str) -> bool:
        return name in self._where

    def query_disk(self, x: float, y: float, radius_m: float) -> List[str]:
        """Names in every cell touching the disk's bounding box (superset)."""
        if math.isinf(radius_m):
            out: List[str] = []
            for key in sorted(self._cells):
                out.extend(self._cells[key])
            return out
        cx0 = int(math.floor((x - radius_m) / self.cell_m))
        cx1 = int(math.floor((x + radius_m) / self.cell_m))
        cy0 = int(math.floor((y - radius_m) / self.cell_m))
        cy1 = int(math.floor((y + radius_m) / self.cell_m))
        cells = self._cells
        # Walk the (small) bounding box when it is sparser than the
        # occupied-cell set; otherwise scan occupied cells directly.
        n_box = (cx1 - cx0 + 1) * (cy1 - cy0 + 1)
        out = []
        if n_box <= len(cells) * 2:
            for cx in range(cx0, cx1 + 1):
                for cy in range(cy0, cy1 + 1):
                    names = cells.get((cx, cy))
                    if names:
                        out.extend(names)
        else:
            for key in sorted(cells):
                if cx0 <= key[0] <= cx1 and cy0 <= key[1] <= cy1:
                    out.extend(cells[key])
        return out


class Topology:
    """Positions + radio model; answers power/SNR/carrier-sense queries.

    ``mobility`` maps node name to a waypoint sequence; positions are
    piecewise-linearly interpolated between waypoints (clamped at the
    ends), so a node with no waypoints simply sits still.
    """

    def __init__(
        self,
        positions: Mapping[str, Tuple[float, float]],
        radio: RadioSpec = RadioSpec(),
        mobility: Mapping[str, Sequence[Waypoint]] = None,
    ) -> None:
        if not positions:
            raise ValueError("topology needs at least one node")
        self.radio = radio
        self._static: Dict[str, Tuple[float, float]] = {
            name: (float(x), float(y)) for name, (x, y) in positions.items()
        }
        self._mobility: Dict[str, Tuple[Waypoint, ...]] = {}
        for name, waypoints in (mobility or {}).items():
            if name not in self._static:
                raise ValueError(f"mobility for unknown node {name!r}")
            wps = tuple(sorted(waypoints, key=lambda w: w.t_us))
            if wps:
                self._mobility[name] = wps
        # Spatial index over *static* nodes; mobile nodes are always
        # visited (exact culling without rebinning on motion).
        self.cs_range_m = self.range_for_rx_dbm(radio.cs_threshold_dbm)
        self.relevance_range_m = self.range_for_rx_dbm(
            radio.interference_floor_dbm
        )
        cell = self.cs_range_m
        if not math.isfinite(cell) or cell < 1.0:
            cell = 1.0
        self._grid = GridIndex(cell)
        self._mobile: List[str] = []  # insertion order = spec order
        for name, (x, y) in self._static.items():
            if name in self._mobility:
                self._mobile.append(name)
            else:
                self._grid.insert(name, x, y)
        self._pl_cache: Dict[Tuple[str, str], float] = {}

    @property
    def names(self) -> Iterable[str]:
        return self._static.keys()

    def is_mobile(self, name: str) -> bool:
        return name in self._mobility

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def position(self, name: str, t_us: float = 0.0) -> Tuple[float, float]:
        wps = self._mobility.get(name)
        if not wps:
            return self._static[name]
        if t_us <= wps[0].t_us:
            return (wps[0].x, wps[0].y)
        if t_us >= wps[-1].t_us:
            return (wps[-1].x, wps[-1].y)
        for a, b in zip(wps, wps[1:]):
            if a.t_us <= t_us <= b.t_us:
                span = b.t_us - a.t_us
                frac = 0.0 if span <= 0 else (t_us - a.t_us) / span
                return (a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y))
        raise AssertionError("unreachable")  # pragma: no cover

    def distance_m(self, a: str, b: str, t_us: float = 0.0) -> float:
        xa, ya = self.position(a, t_us)
        xb, yb = self.position(b, t_us)
        return math.hypot(xa - xb, ya - yb)

    # ------------------------------------------------------------------
    # Spatial index
    # ------------------------------------------------------------------

    def neighbors_of(self, name: str, radius_m: float,
                     t_us: float = 0.0) -> List[str]:
        """Candidate nodes within ``radius_m`` of ``name`` (superset).

        Static nodes come from the grid (bounding-box cells, so a few
        beyond the radius may appear — callers do the exact power test);
        every mobile node is always included.  ``name`` itself may be in
        the result.  Deterministic: grid cells in sorted key order /
        bounding-box scan order, mobile nodes in spec order.
        """
        names = self._grid.query_disk(*self.position(name, t_us),
                                      radius_m=radius_m)
        if self._mobile:
            names = names + self._mobile
        return names

    def invalidate(self, name: str, t_us: float = 0.0) -> None:
        """Pin ``name`` at its position at ``t_us`` and re-index it.

        The mobility hook: once a node's waypoints are exhausted (or a
        caller decides its motion is over), pinning it makes the node
        static again — grid-binned, path-loss-cacheable, cullable.  Any
        cached pairs involving it are dropped.
        """
        if name not in self._static:
            raise KeyError(f"unknown node {name!r}")
        pos = self.position(name, t_us)
        if self._pl_cache:
            self._pl_cache = {
                k: v for k, v in self._pl_cache.items() if name not in k
            }
        if name in self._mobility:
            del self._mobility[name]
            self._mobile.remove(name)
            self._static[name] = pos
            self._grid.insert(name, *pos)
        else:
            self._static[name] = pos
            self._grid.move(name, *pos)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def path_loss_db(self, distance_m: float) -> float:
        r = self.radio
        d = max(distance_m, r.min_distance_m, r.ref_distance_m)
        return r.ref_loss_db + 10.0 * r.path_loss_exponent * math.log10(
            d / r.ref_distance_m
        )

    def range_for_rx_dbm(self, rx_dbm: float) -> float:
        """Distance at which received power falls to ``rx_dbm``.

        The inverse of the log-distance model; ``-inf`` maps to ``inf``
        (everything is relevant), and the result never drops below the
        model's distance floor.
        """
        r = self.radio
        if math.isinf(rx_dbm) and rx_dbm < 0:
            return float("inf")
        exponent = (r.tx_power_dbm - rx_dbm - r.ref_loss_db) / (
            10.0 * r.path_loss_exponent
        )
        d = r.ref_distance_m * 10.0 ** exponent
        return max(d, r.min_distance_m, r.ref_distance_m)

    def rx_power_dbm(self, src: str, dst: str, t_us: float = 0.0) -> float:
        """Received power at ``dst`` of a transmission from ``src``.

        Static-pair path losses are cached (symmetric key); pairs with a
        mobile endpoint are recomputed at ``t_us``.
        """
        mobility = self._mobility
        if src not in mobility and dst not in mobility:
            key = (src, dst) if src <= dst else (dst, src)
            pl = self._pl_cache.get(key)
            if pl is None:
                pl = self.path_loss_db(self.distance_m(src, dst))
                self._pl_cache[key] = pl
            return self.radio.tx_power_dbm - pl
        return self.radio.tx_power_dbm - self.path_loss_db(
            self.distance_m(src, dst, t_us)
        )

    def snr_db(self, src: str, dst: str, t_us: float = 0.0) -> float:
        """Interference-free SNR of the ``src -> dst`` link."""
        return self.rx_power_dbm(src, dst, t_us) - self.radio.noise_dbm

    def senses(self, listener: str, transmitter: str, t_us: float = 0.0) -> bool:
        """True if ``listener`` carrier-senses ``transmitter``'s signal.

        Symmetric for equal transmit powers; with a single shared
        :class:`RadioSpec` that is always the case here.
        """
        return (
            self.rx_power_dbm(transmitter, listener, t_us)
            >= self.radio.cs_threshold_dbm
        )
