"""Spatial layer: node positions, mobility waypoints, log-distance path loss.

Per-link received power follows the log-distance model

    P_rx(d) = P_tx - [PL(d0) + 10 n log10(d / d0)]

with the 5 GHz-ish defaults ``PL(1 m) = 46.7 dB`` and indoor exponent
``n = 3``.  Everything downstream (carrier sense, SNR, SINR) derives
from :meth:`Topology.rx_power_dbm`, so hidden nodes are purely a matter
of geometry: two stations far enough apart that each other's power lands
below the carrier-sense threshold cannot coordinate, yet both still
deposit interference power at a receiver between them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

__all__ = ["RadioSpec", "Waypoint", "Topology"]


@dataclass(frozen=True)
class RadioSpec:
    """Radio/propagation parameters shared by every node in a scenario.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power (17 dBm is a typical WLAN client).
    cs_threshold_dbm:
        Carrier-sense (energy-detect) threshold: a node defers while the
        aggregate received power from other transmitters is at or above
        this level.
    capture_threshold_db:
        Minimum SINR for the receiver to lock onto a frame at all; above
        it, decoding succeeds with the rate-dependent PRR of the error
        model (the capture effect: a strong frame survives a collision).
    noise_figure_db / bandwidth_hz:
        Thermal noise floor: ``-174 + 10 log10(BW) + NF`` dBm.
    path_loss_exponent / ref_loss_db / ref_distance_m:
        Log-distance path-loss model parameters.
    """

    tx_power_dbm: float = 17.0
    cs_threshold_dbm: float = -82.0
    capture_threshold_db: float = 4.0
    noise_figure_db: float = 7.0
    bandwidth_hz: float = 20e6
    path_loss_exponent: float = 3.0
    ref_loss_db: float = 46.7
    ref_distance_m: float = 1.0

    @property
    def noise_dbm(self) -> float:
        return -174.0 + 10.0 * math.log10(self.bandwidth_hz) + self.noise_figure_db


@dataclass(frozen=True)
class Waypoint:
    """A mobility anchor: be at ``(x, y)`` at time ``t_us``."""

    t_us: float
    x: float
    y: float


class Topology:
    """Positions + radio model; answers power/SNR/carrier-sense queries.

    ``mobility`` maps node name to a waypoint sequence; positions are
    piecewise-linearly interpolated between waypoints (clamped at the
    ends), so a node with no waypoints simply sits still.
    """

    def __init__(
        self,
        positions: Mapping[str, Tuple[float, float]],
        radio: RadioSpec = RadioSpec(),
        mobility: Mapping[str, Sequence[Waypoint]] = None,
    ) -> None:
        if not positions:
            raise ValueError("topology needs at least one node")
        self.radio = radio
        self._static: Dict[str, Tuple[float, float]] = {
            name: (float(x), float(y)) for name, (x, y) in positions.items()
        }
        self._mobility: Dict[str, Tuple[Waypoint, ...]] = {}
        for name, waypoints in (mobility or {}).items():
            if name not in self._static:
                raise ValueError(f"mobility for unknown node {name!r}")
            wps = tuple(sorted(waypoints, key=lambda w: w.t_us))
            if wps:
                self._mobility[name] = wps

    @property
    def names(self) -> Iterable[str]:
        return self._static.keys()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def position(self, name: str, t_us: float = 0.0) -> Tuple[float, float]:
        wps = self._mobility.get(name)
        if not wps:
            return self._static[name]
        if t_us <= wps[0].t_us:
            return (wps[0].x, wps[0].y)
        if t_us >= wps[-1].t_us:
            return (wps[-1].x, wps[-1].y)
        for a, b in zip(wps, wps[1:]):
            if a.t_us <= t_us <= b.t_us:
                span = b.t_us - a.t_us
                frac = 0.0 if span <= 0 else (t_us - a.t_us) / span
                return (a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y))
        raise AssertionError("unreachable")  # pragma: no cover

    def distance_m(self, a: str, b: str, t_us: float = 0.0) -> float:
        xa, ya = self.position(a, t_us)
        xb, yb = self.position(b, t_us)
        return math.hypot(xa - xb, ya - yb)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def path_loss_db(self, distance_m: float) -> float:
        r = self.radio
        d = max(distance_m, r.ref_distance_m)
        return r.ref_loss_db + 10.0 * r.path_loss_exponent * math.log10(
            d / r.ref_distance_m
        )

    def rx_power_dbm(self, src: str, dst: str, t_us: float = 0.0) -> float:
        """Received power at ``dst`` of a transmission from ``src``."""
        return self.radio.tx_power_dbm - self.path_loss_db(
            self.distance_m(src, dst, t_us)
        )

    def snr_db(self, src: str, dst: str, t_us: float = 0.0) -> float:
        """Interference-free SNR of the ``src -> dst`` link."""
        return self.rx_power_dbm(src, dst, t_us) - self.radio.noise_dbm

    def senses(self, listener: str, transmitter: str, t_us: float = 0.0) -> bool:
        """True if ``listener`` carrier-senses ``transmitter``'s signal.

        Symmetric for equal transmit powers; with a single shared
        :class:`RadioSpec` that is always the case here.
        """
        return (
            self.rx_power_dbm(transmitter, listener, t_us)
            >= self.radio.cs_threshold_dbm
        )
