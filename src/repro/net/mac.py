"""Per-node 802.11 DCF state machine driven by scheduler events.

This is the event-driven sibling of the slotted
:class:`repro.mac.dcf.DcfSimulator`: the contention-window rules are the
shared :class:`repro.mac.dcf.BackoffState`, but instead of one global
slot clock each node runs its own machine against *its own* view of the
medium (carrier sense is positional, see :mod:`repro.net.medium`):

    idle -> [DIFS + backoff countdown] -> TX -> await ACK -> idle
                   ^ freezes while the local medium is busy

Countdown bookkeeping is continuous-time: a countdown completion event
is scheduled ``DIFS + slots * SLOT`` ahead; if the local channel goes
busy first, the event is cancelled and the number of *whole* idle slots
elapsed is subtracted from the remaining backoff — the standard
freeze/resume semantics.

A failed exchange (no ACK before the timeout) doubles the contention
window and retries the head frame, dropping it after ``MAX_RETRIES``;
success resets the window — all via ``BackoffState``.  ACKs are sent
SIFS after a successful data/control reception and pre-empt the node's
own countdown (which pauses and resumes afterwards).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.mac.dcf import (
    ACK_US,
    BackoffState,
    DIFS_US,
    MAX_RETRIES,
    SIFS_US,
    SLOT_US,
)
from repro.mac.overhead import BASE_RATE_MBPS, frame_airtime_us
from repro.net.medium import Medium, Transmission
from repro.net.scheduler import Event, EventScheduler
from repro.phy.params import RATE_TABLE

__all__ = ["NetFrame", "NodeMac", "ACK_TIMEOUT_SLACK_US"]

#: Extra grace beyond SIFS + ACK before declaring the exchange failed.
ACK_TIMEOUT_SLACK_US = 3 * SLOT_US


@dataclass
class NetFrame:
    """A queued MAC frame in the multi-node simulator.

    ``dst`` is ``None`` for broadcast frames (beacons): they contend and
    transmit like any frame but are never ACKed or retried.
    """

    kind: str  # "data" | "control" | "ack" | "beacon"
    src: str
    dst: Optional[str]
    payload_octets: int
    created_us: float
    retries: int = 0
    msg: object = None  # ControlMessage for explicit control frames
    cos_msgs: Tuple = ()  # CoS messages riding this frame's silences
    rate_mbps: Optional[int] = None  # rate of the latest TX attempt

    @property
    def payload_bits(self) -> int:
        return self.payload_octets * 8 if self.kind == "data" else 0


class NodeMac:
    """One node's DCF engine: queue, backoff, TX/ACK exchange."""

    def __init__(
        self,
        name: str,
        medium: Medium,
        scheduler: EventScheduler,
        rng: np.random.Generator,
        control_plane,
        collector,
        max_retries: int = MAX_RETRIES,
        lens=None,
    ) -> None:
        self.name = name
        self.medium = medium
        self.scheduler = scheduler
        self.rng = rng
        self.control_plane = control_plane
        self.collector = collector
        self.max_retries = max_retries
        self.lens = lens  # optional repro.net.lens.NetLens (None = free)

        #: Association sink for received beacons (wired by the simulator
        #: when the scenario defines BSSes; ``None`` = ignore beacons).
        self.beacon_sink = None

        self.queue: List[NetFrame] = []
        self.backoff = BackoffState()
        self._busy = False  # local carrier-sense verdict (cached)
        self._countdown_event: Optional[Event] = None
        self._countdown_started_us = 0.0
        self._current_tx: Optional[Transmission] = None
        self._awaiting_ack_for: Optional[Transmission] = None
        self._ack_timeout_event: Optional[Event] = None

        medium.register(self)

    # ------------------------------------------------------------------
    # Queue / contention entry points
    # ------------------------------------------------------------------

    def enqueue(self, frame: NetFrame) -> None:
        self.queue.append(frame)
        self._maybe_contend()

    def idle(self) -> bool:
        """True when this MAC has nothing queued or in flight."""
        return (
            not self.queue
            and self._current_tx is None
            and self._awaiting_ack_for is None
        )

    def _maybe_contend(self) -> None:
        if not self.queue or self._current_tx is not None \
                or self._awaiting_ack_for is not None \
                or self._countdown_event is not None:
            return
        if self.backoff.slots is None:
            self.backoff.draw(self.rng)
        if not self._busy:
            self._start_countdown()

    # ------------------------------------------------------------------
    # Backoff countdown (freeze / resume)
    # ------------------------------------------------------------------

    def _start_countdown(self) -> None:
        self._countdown_started_us = self.scheduler.now_us
        self._countdown_event = self.scheduler.after(
            DIFS_US + self.backoff.slots * SLOT_US, self._countdown_done
        )
        if self.lens is not None:
            self.lens.on_backoff(self.name, True, self.scheduler.now_us)

    def _pause_countdown(self) -> None:
        if self._countdown_event is None:
            return
        self.scheduler.cancel(self._countdown_event)
        self._countdown_event = None
        if self.lens is not None:
            self.lens.on_backoff(self.name, False, self.scheduler.now_us)
        idle_us = self.scheduler.now_us - self._countdown_started_us - DIFS_US
        if idle_us > 0:
            consumed = int(math.floor(idle_us / SLOT_US + 1e-9))
            self.backoff.slots = max(0, self.backoff.slots - consumed)

    def on_channel_state(self, busy: bool) -> None:
        self._busy = busy
        if busy:
            self._pause_countdown()
        else:
            self._maybe_contend()

    def _countdown_done(self) -> None:
        self._countdown_event = None
        if self.lens is not None:
            self.lens.on_backoff(self.name, False, self.scheduler.now_us)
        if self._current_tx is not None:
            # Our own ACK pre-empted the tail of the countdown; re-arm a
            # zero-slot countdown after the transmission completes.
            self.backoff.slots = 0
            return
        self.backoff.slots = None
        self._transmit_head()

    # ------------------------------------------------------------------
    # Transmission / exchange
    # ------------------------------------------------------------------

    def _transmit_head(self) -> None:
        frame = self.queue[0]
        if frame.kind == "data":
            rate = self.control_plane.rate_for(
                frame.src, frame.dst, retries=frame.retries,
                now=self.scheduler.now_us,
            )
            duration = frame_airtime_us(frame.payload_octets, RATE_TABLE[rate])
        else:  # control/beacon frame: base rate, like 802.11 management
            rate = BASE_RATE_MBPS
            duration = frame_airtime_us(frame.payload_octets, RATE_TABLE[rate])
        frame.rate_mbps = rate
        self.control_plane.attach(frame)
        tx = Transmission(
            src=self.name,
            dst=frame.dst,
            kind=frame.kind,
            rate_mbps=rate,
            duration_us=duration,
            payload_bits=frame.payload_bits,
            frame=frame,
        )
        self._current_tx = tx
        self.collector.on_attempt(self.name, frame.kind)
        self.medium.begin(tx)

    def on_tx_end(self, tx: Transmission) -> None:
        self._current_tx = None
        if tx.kind in ("data", "control"):
            self._awaiting_ack_for = tx
            self._ack_timeout_event = self.scheduler.after(
                SIFS_US + ACK_US + ACK_TIMEOUT_SLACK_US, self._ack_timeout
            )
        elif tx.kind == "beacon":
            # Broadcast: no ACK, no retry — the frame completes here.
            self.queue.pop(0)
            self.backoff.reset()
            self._maybe_contend()
        else:  # our ACK is out; resume whatever we were doing
            self._maybe_contend()

    def _ack_timeout(self) -> None:
        self._ack_timeout_event = None
        tx = self._awaiting_ack_for
        self._awaiting_ack_for = None
        frame = tx.frame
        # Frame fate to the rate controller *before* the retry counter
        # moves: ``frame.retries`` is the attempt this result belongs to.
        self.control_plane.on_tx_result(frame, False, self.scheduler.now_us)
        frame.retries += 1
        self.collector.on_failure(self.name, frame.kind)
        if frame.retries > self.max_retries:
            self.queue.pop(0)
            self.backoff.reset()
            self.collector.on_drop(self.name, frame, self.scheduler.now_us)
            if self.lens is not None:
                self.lens.on_drop(self.name, frame, self.scheduler.now_us)
        else:
            self.backoff.on_failure()
        self._maybe_contend()

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------

    def on_beacon(self, ap: str, rssi_dbm: float, channel: int) -> None:
        """A beacon decoded at this node (deterministic energy gate)."""
        if self.beacon_sink is not None:
            self.beacon_sink.on_beacon(self.name, ap, rssi_dbm, channel,
                                       self.scheduler.now_us)

    def on_receive(self, tx: Transmission, ok: bool, sinr_db: float,
                   reason: str) -> None:
        now = self.scheduler.now_us
        if tx.kind in ("data", "control"):
            if not ok:
                # Tag-Spotting path: silence-level control may still be
                # recoverable below the data-decode threshold (no-op
                # unless the scenario enables overhearing).
                self.control_plane.on_frame_undecoded(tx, sinr_db, now)
                return
            self.control_plane.on_frame_received(tx, sinr_db, now)
            # ACK after SIFS; ends fire at priority -1 so the pending
            # carrier update lands before this.
            self.scheduler.after(SIFS_US, self._send_ack, tx)
            return
        if tx.kind == "ack":
            if ok:
                self.control_plane.on_frame_received(tx, sinr_db, now)
            pending = self._awaiting_ack_for
            if (
                ok
                and pending is not None
                and tx.src == pending.dst
                and tx.acks is pending.frame
            ):
                self._complete_exchange(pending, now)

    def _complete_exchange(self, data_tx: Transmission, now: float) -> None:
        if self._ack_timeout_event is not None:
            self.scheduler.cancel(self._ack_timeout_event)
            self._ack_timeout_event = None
        self._awaiting_ack_for = None
        frame = self.queue.pop(0)
        self.backoff.reset()
        self.collector.on_delivered(self.name, frame, now)
        if self.lens is not None:
            self.lens.on_deliver(self.name, frame, now)
        self.control_plane.on_tx_result(frame, True, now)
        self.control_plane.on_frame_acked(frame, now)
        self._maybe_contend()

    def _send_ack(self, data_tx: Transmission) -> None:
        if self._current_tx is not None:
            return  # half-duplex: we are mid-transmission, sender will retry
        self._pause_countdown()
        # The ACK is itself an OFDM frame, so CoS feedback may ride its
        # silence symbols — the carrier of last resort for unidirectional
        # flows (see docs/network.md).  ``acks`` links back to the data
        # frame so the original sender can match it to its pending head.
        ack_frame = NetFrame(
            kind="ack",
            src=self.name,
            dst=data_tx.src,
            payload_octets=14,
            created_us=self.scheduler.now_us,
        )
        self.control_plane.attach(ack_frame)
        tx = Transmission(
            src=self.name,
            dst=data_tx.src,
            kind="ack",
            rate_mbps=BASE_RATE_MBPS,
            duration_us=ACK_US,
            frame=ack_frame,
            acks=data_tx.frame,
        )
        self._current_tx = tx
        self.medium.begin(tx)
