"""The CoS control plane: rate-adaptation feedback, free or paid-for.

Every successfully delivered **data** frame triggers one feedback
message at the receiver: the SINR it measured, owed back to the sender
so its stair-case rate adaptation (:class:`repro.ratectl.RateAdapter` —
or whichever :class:`repro.ratectl.RateController` the scenario plugs
in) can track the link.  The two delivery mechanisms are the heart of the
paper's comparison:

* ``explicit`` — the feedback becomes a real MAC frame (14 octets at the
  base rate, like an 802.11 management frame) that *contends for
  airtime*: DIFS, backoff, SIFS + ACK, retries — the full price.
* ``cos`` — the feedback rides in the silence intervals of the next
  frame the feedback owner transmits toward the consumer: **zero
  airtime**, but each embedded message only decodes with the
  SINR-dependent probability of the link-level operating points
  (:func:`repro.net.sinr.cos_delivery_prob_for`), retrying on the next
  carrier.  Data frames are the natural carriers on bidirectional
  flows; for unidirectional flows the receiver's ACKs — OFDM frames
  too — carry the silences (a modelling extension documented in
  docs/network.md).

``cos_fidelity="phy"`` replaces the operating-point table with a
delivery probability *measured* by running the real ``cos.link`` PHY
stack at the carrier's SINR (cached per integer dB) — expensive, so
meant for small scenarios.  ``cos_fidelity="surrogate"`` replays those
same measurements from a prebuilt table
(:class:`repro.net.sinr.SinrModel` over a
:class:`repro.phy.surrogate.SurrogateTable`): identical values on the
table's integer-dB grid, at table-lookup cost — measured fidelity at
any scenario scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mac.overhead import BASE_RATE_MBPS
from repro.net.medium import Transmission
from repro.net.sinr import cos_delivery_prob_for
from repro.obs.metrics import get_registry
from repro.ratectl import RateAdapter, RateController

__all__ = [
    "ControlMessage",
    "ControlPlane",
    "ControlRouter",
    "measured_cos_delivery_prob",
    "OVERHEAR_FLOOR_DB",
]

#: Minimum SINR at which silence-level energy detection still works when
#: the data payload does not decode (Tag-Spotting: control reaches beyond
#: the data-communication range).  Matches the bottom of the measured
#: CoS-accuracy grid (:class:`repro.phy.surrogate.SurrogateSpec`).
OVERHEAR_FLOOR_DB = -2.0

_PHY_PROB_CACHE: Dict[int, float] = {}


def measured_cos_delivery_prob(snr_db: float, seed: int = 0,
                               n_packets: int = 12) -> float:
    """Estimate per-message CoS accuracy by running the full PHY link.

    Results are cached per rounded dB (process-local), because a
    ``CosLink`` session costs real OFDM modulation + Viterbi decoding.
    """
    key = int(round(snr_db))
    if key not in _PHY_PROB_CACHE:
        from repro.channel import IndoorChannel
        from repro.cos import CosLink

        channel = IndoorChannel.position("A", snr_db=float(key), seed=seed)
        stats = CosLink(channel=channel).run(n_packets=n_packets,
                                             payload=bytes(256))
        _PHY_PROB_CACHE[key] = float(stats.message_accuracy)
    return _PHY_PROB_CACHE[key]


@dataclass
class ControlMessage:
    """One rate-feedback message: measured SINR owed to the data sender."""

    msg_id: int
    src: str  # feedback owner = the data receiver
    dst: str  # feedback consumer = the data sender
    sinr_db: float
    created_us: float
    attempts: int = 0
    delivered_us: Optional[float] = None


class ControlPlane:
    """Feedback generation, transport (explicit vs CoS), and rate state."""

    def __init__(
        self,
        mode: str,
        rng: np.random.Generator,
        collector,
        adapter: Optional[RateAdapter] = None,
        control_octets: int = 14,
        fixed_rate_mbps: Optional[int] = None,
        cos_delivery_prob: Optional[float] = None,
        cos_fidelity: str = "table",
        max_embed_per_frame: int = 4,
        lens=None,
        controller: Optional[RateController] = None,
        overhear: bool = False,
    ) -> None:
        if mode not in ("explicit", "cos"):
            raise ValueError(f"unknown control mode {mode!r}")
        if cos_fidelity not in ("table", "phy", "surrogate"):
            raise ValueError(f"unknown cos_fidelity {cos_fidelity!r}")
        self.mode = mode
        self.rng = rng
        self.collector = collector
        self.adapter = adapter or RateAdapter()
        self.control_octets = control_octets
        self.fixed_rate_mbps = fixed_rate_mbps
        self.cos_delivery_prob = cos_delivery_prob
        self.cos_fidelity = cos_fidelity
        self.max_embed_per_frame = max_embed_per_frame
        self.lens = lens  # optional repro.net.lens.NetLens (None = free)
        #: Pluggable rate policy (repro.ratectl).  ``None`` keeps the
        #: legacy inline staircase — bit-for-bit the pre-ratectl plane.
        self.controller = controller
        #: Tag-Spotting extension: attempt silence-level control decode /
        #: feedback on *failed* data receptions above OVERHEAR_FLOOR_DB.
        self.overhear = overhear

        self._macs: Dict[str, object] = {}
        self._rates: Dict[Tuple[str, str], int] = {}
        self._pending: Dict[Tuple[str, str], List[ControlMessage]] = {}
        self._next_id = 0
        self._last_rate: Dict[Tuple[str, str], int] = {}
        self._rate_counter = None
        if controller is not None:
            self._rate_counter = get_registry().counter(
                "repro_ratectl_rate_selected_total",
                help="Rate-controller selections, by rate and controller.",
            )

    def bind(self, macs: Dict[str, object]) -> None:
        """Late-bound MAC directory (the simulator wires both ways)."""
        self._macs = macs

    # ------------------------------------------------------------------
    # Rate state (what the feedback is *for*)
    # ------------------------------------------------------------------

    def rate_for(self, src: str, dst: str, retries: int = 0,
                 now: float = 0.0) -> int:
        """Current data rate of flow ``src -> dst`` (Mbps).

        Fixed-rate scenarios pin it; adaptive flows start at the base
        rate and climb as feedback arrives.  With a pluggable controller
        attached the decision is delegated per transmission attempt
        (``retries`` lets samplers walk their retry chains), tallied in
        ``repro_ratectl_rate_selected_total`` and — on changes — traced
        as ``rate_selected`` lens events.
        """
        if self.fixed_rate_mbps is not None:
            return self.fixed_rate_mbps
        if self.controller is None:
            return self._rates.get((src, dst), BASE_RATE_MBPS)
        rate = int(self.controller.select_rate(src, dst, retries=retries))
        self._rate_counter.labels(
            rate=rate, controller=self.controller.name
        ).inc()
        if self.lens is not None and self._last_rate.get((src, dst)) != rate:
            self._last_rate[(src, dst)] = rate
            self.lens.on_rate_selected(src, dst, rate,
                                       self.controller.name, now)
        return rate

    def on_tx_result(self, frame, ok: bool, now: float) -> None:
        """A data TX attempt completed (ACKed, or the ACK timed out).

        The frame-fate feed of the loss-driven controllers; no-op on the
        legacy (controller-less) plane and for non-data frames.
        """
        if self.controller is None or frame.kind != "data" \
                or frame.rate_mbps is None:
            return
        self.controller.on_tx_result(
            frame.src, frame.dst, frame.rate_mbps, ok,
            frame.retries, frame.payload_octets,
        )

    # ------------------------------------------------------------------
    # Feedback transport
    # ------------------------------------------------------------------

    def attach(self, frame) -> None:
        """Embed pending CoS messages in ``frame``'s silence intervals.

        Called by the MAC right before a frame goes on air.  No-op in
        explicit mode and for frames with no pending feedback toward
        their destination.  Messages stay in the pending queue until a
        successful decode — a lost carrier retries them automatically.
        """
        if self.mode != "cos" or frame.kind == "control":
            return
        pending = self._pending.get((frame.src, frame.dst))
        if pending:
            frame.cos_msgs = tuple(pending[: self.max_embed_per_frame])

    def on_frame_received(self, tx: Transmission, sinr_db: float,
                          now: float) -> None:
        """Handle a successfully decoded frame at its destination."""
        frame = tx.frame
        if frame is not None and frame.cos_msgs:
            self._decode_embedded(frame, sinr_db, now)
        if tx.kind == "data":
            self._generate_feedback(src=tx.dst, dst=tx.src,
                                    sinr_db=sinr_db, now=now)
        elif tx.kind == "control" and frame is not None and frame.msg is not None:
            self._deliver(frame.msg, now)

    def on_frame_undecoded(self, tx: Transmission, sinr_db: float,
                           now: float) -> None:
        """A data frame failed to decode at its destination.

        Nothing happens unless ``overhear`` is enabled (the legacy
        behaviour, preserved bit-for-bit).  With it on — the
        Tag-Spotting regime — the silence-level control channel outlives
        the data payload: embedded CoS messages still decode with the
        carrier-SINR accuracy, and the receiver still generates SINR
        feedback (energy measurement needs no payload).  This is what
        lets two cells beyond each other's data range keep exchanging
        control state over CoS while explicit control frames — data
        frames themselves — die with the payload.
        """
        if not self.overhear or tx.kind != "data":
            return
        if sinr_db < OVERHEAR_FLOOR_DB:
            return
        frame = tx.frame
        if self.mode == "cos" and frame is not None and frame.cos_msgs:
            self._decode_embedded(frame, sinr_db, now)
        self._generate_feedback(src=tx.dst, dst=tx.src,
                                sinr_db=sinr_db, now=now)

    def on_frame_acked(self, frame, now: float) -> None:
        """Sender-side completion hook (currently only for accounting)."""
        # Explicit control delivery is recorded at *reception*; the ACK
        # merely stops the sender's retries.  Nothing to do today, but
        # the hook keeps the MAC ignorant of control-plane policy.

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _generate_feedback(self, src: str, dst: str, sinr_db: float,
                           now: float) -> None:
        if self.controller is not None and not self.controller.uses_feedback:
            return  # loss-driven controller: no control traffic at all
        msg = ControlMessage(
            msg_id=self._next_id, src=src, dst=dst,
            sinr_db=float(sinr_db), created_us=now,
        )
        self._next_id += 1
        self.collector.on_control_generated(msg)
        if self.lens is not None:
            self.lens.on_control_generated(msg, self.mode, now)
        if self.mode == "explicit":
            from repro.net.mac import NetFrame  # circular at import time

            self._macs[src].enqueue(NetFrame(
                kind="control", src=src, dst=dst,
                payload_octets=self.control_octets, created_us=now, msg=msg,
            ))
        else:
            self._pending.setdefault((src, dst), []).append(msg)

    def _decode_embedded(self, frame, carrier_sinr_db: float,
                         now: float) -> None:
        p = self.cos_delivery_prob
        if p is None:
            if self.cos_fidelity == "phy":
                p = measured_cos_delivery_prob(carrier_sinr_db)
            elif self.cos_fidelity == "surrogate":
                from repro.net.sinr import SinrModel

                p = SinrModel.default().cos_delivery_prob(carrier_sinr_db)
            else:
                p = cos_delivery_prob_for(carrier_sinr_db)
        pending = self._pending.get((frame.src, frame.dst), [])
        for msg in frame.cos_msgs:
            if msg.delivered_us is not None:
                continue
            msg.attempts += 1
            if float(self.rng.random()) < p:
                if msg in pending:
                    pending.remove(msg)
                self._deliver(msg, now)
        frame.cos_msgs = ()

    def _deliver(self, msg: ControlMessage, now: float) -> None:
        if msg.delivered_us is not None:
            return
        msg.delivered_us = now
        # The consumer keys its stair-case adaptation off the reported
        # SINR — the SiNE lesson: with a CSMA MAC and hidden nodes, SNR
        # alone would systematically overshoot.  ``(msg.dst, msg.src)``
        # is the *data* flow the feedback is about (consumer -> owner).
        if self.controller is not None:
            self.controller.on_feedback(msg.dst, msg.src, msg.sinr_db)
        else:
            self._rates[(msg.dst, msg.src)] = \
                self.adapter.select(msg.sinr_db).mbps
        self.collector.on_control_delivered(msg, now)
        if self.lens is not None:
            self.lens.on_control_delivered(msg, self.mode, now)

    def pending_count(self) -> int:
        return sum(len(v) for v in self._pending.values())


class ControlRouter:
    """Per-BSS control-plane dispatch behind the :class:`ControlPlane` API.

    Multi-BSS scenarios get one independent ``ControlPlane`` per AP —
    each BSS adapts its rates and queues its feedback in isolation, so a
    congested cell cannot perturb another cell's control state.  The
    router resolves the owning plane per frame/message:

    * the frame's AP endpoint (src or dst is an AP) names the BSS;
    * otherwise the *current association* of the source station does —
      a station that roams carries its open feedback conversation to
      the new AP's plane;
    * unassociated traffic (none of the above) falls back to a shared
      default plane, which is also what single-BSS scenarios use
      directly, without a router.

    The interface is exactly the methods :class:`~repro.net.mac
    .NodeMac` and the simulator call on a plane, so the MAC stays
    ignorant of whether it talks to one plane or many.  Controllers are
    per plane — each BSS adapts with independent per-flow state.
    """

    def __init__(self, planes: Dict[str, ControlPlane],
                 default: ControlPlane, assoc_of) -> None:
        self.planes = dict(planes)  # AP name -> its BSS's plane
        self.default = default
        self.assoc_of = assoc_of  # station -> AP name (or None)

    def _plane_for(self, src: str, dst: Optional[str]) -> ControlPlane:
        plane = self.planes.get(src)
        if plane is not None:
            return plane
        if dst is not None:
            plane = self.planes.get(dst)
            if plane is not None:
                return plane
        ap = self.assoc_of(src)
        if ap is not None:
            plane = self.planes.get(ap)
            if plane is not None:
                return plane
        return self.default

    # -- the ControlPlane interface ------------------------------------

    def rate_for(self, src: str, dst: str, retries: int = 0,
                 now: float = 0.0) -> int:
        return self._plane_for(src, dst).rate_for(src, dst,
                                                  retries=retries, now=now)

    def attach(self, frame) -> None:
        self._plane_for(frame.src, frame.dst).attach(frame)

    def on_frame_received(self, tx: Transmission, sinr_db: float,
                          now: float) -> None:
        self._plane_for(tx.src, tx.dst).on_frame_received(tx, sinr_db, now)

    def on_frame_undecoded(self, tx: Transmission, sinr_db: float,
                           now: float) -> None:
        self._plane_for(tx.src, tx.dst).on_frame_undecoded(tx, sinr_db, now)

    def on_frame_acked(self, frame, now: float) -> None:
        self._plane_for(frame.src, frame.dst).on_frame_acked(frame, now)

    def on_tx_result(self, frame, ok: bool, now: float) -> None:
        self._plane_for(frame.src, frame.dst).on_tx_result(frame, ok, now)

    def bind(self, macs: Dict[str, object]) -> None:
        for plane in self.planes.values():
            plane.bind(macs)
        self.default.bind(macs)

    def pending_count(self) -> int:
        return (sum(p.pending_count() for p in self.planes.values())
                + self.default.pending_count())
