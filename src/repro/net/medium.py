"""The shared wireless medium: who is on the air, who senses it, who decodes.

The medium tracks the set of in-flight transmissions.  From it fall out
the three physical facts the MAC layer consumes:

* **Carrier sense** — a node's sensed power is the linear sum of every
  other active source's received power at its position; the node is
  *locally busy* when that sum clears the carrier-sense threshold.
  Because the sum is position-dependent, two stations can each be busy
  to the AP yet idle to each other: the hidden-node pathology needs no
  special-casing.
* **Interference accounting** — every transmission accumulates, worst
  case over its whole airtime, the received power of every other source
  that overlapped it at its destination.  SINR at reception time is
  ``signal / (noise + accumulated interference)``.
* **Reception** — decided at frame end by the
  :class:`~repro.net.sinr.ReceptionModel` (capture gate + rate-dependent
  error draw).  A destination that itself transmitted during the frame
  loses it outright (half-duplex).

Interferer bursts are ordinary :class:`Transmission` records with
``dst=None`` — they deposit sensed power and interference but are never
received.  Beacons are ``dst=None`` too, but additionally fan out to
every listener that receives them above the carrier-sense threshold
(deterministic energy-gate decode — no RNG draw, so legacy scenarios'
random streams are untouched).

Two operating modes (``mode=``):

* ``"culled"`` (default) — when a transmission starts, its received
  power at every *relevant* listener (grid-indexed neighbourhood, see
  :meth:`~repro.net.topology.Topology.neighbors_of`, with contributions
  below ``RadioSpec.interference_floor_dbm`` dropped) is computed once
  and frozen in a per-transmission contribution map.  Carrier-sense
  sums, interference accumulation, and carrier-state fan-out then cost
  dict lookups over that local set instead of all-pairs log-distance
  math — sub-linear per reception attempt once the deployment outgrows
  the relevance radius.  With ``interference_floor_dbm = -inf`` the
  relevant set is every node and the frozen values equal the fresh
  ones for static topologies, making culled mode bit-for-bit identical
  to the dense path.
* ``"dense-exact"`` — today's all-pairs semantics, recomputing every
  power from the topology at query time.  The equivalence oracle for
  tests.  Pairs touching a *mobile* node are excluded from the frozen
  maps and recomputed fresh at every query in culled mode too (mobiles
  are few and always in the culled visit set), so the two modes agree
  bit-for-bit even while nodes are moving.

Per-node channels: ``set_channel`` assigns a node to a channel index;
cross-channel power is attenuated ``adjacent_rejection_db`` per channel
step in both sensing and interference.  All nodes default to channel 0,
which keeps single-BSS scenarios exactly on the legacy numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

import numpy as np

from repro.net.scheduler import EventScheduler
from repro.net.sinr import ReceptionModel, dbm_to_mw, mw_to_dbm
from repro.net.topology import Topology

__all__ = ["Transmission", "Medium", "MEDIUM_MODES"]

MEDIUM_MODES = ("culled", "dense-exact")


class Transmission:
    """One frame (or interference burst) on the air."""

    __slots__ = (
        "src", "dst", "kind", "rate_mbps", "duration_us", "payload_bits",
        "frame", "acks", "start_us", "end_us", "signal_dbm",
        "interference_mw", "rx_busy", "contrib",
    )

    def __init__(
        self,
        src: str,
        dst: Optional[str],
        kind: str,
        rate_mbps: int,
        duration_us: float,
        payload_bits: int = 0,
        frame=None,
        acks=None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.rate_mbps = rate_mbps
        self.duration_us = float(duration_us)
        self.payload_bits = payload_bits
        self.frame = frame  # this transmission's own NetFrame (CoS carrier)
        self.acks = acks  # for ACKs: the data NetFrame being acknowledged
        self.start_us = 0.0
        self.end_us = 0.0
        self.signal_dbm = 0.0
        self.interference_mw = 0.0
        self.rx_busy = False
        #: Culled mode: {listener -> rx power mW}, frozen at TX start
        #: (static pairs only — mobile pairs are recomputed per query).
        self.contrib: Optional[Dict[str, float]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Transmission {self.kind} {self.src}->{self.dst} "
                f"[{self.start_us:.1f},{self.end_us:.1f}]us>")


class MacListener(Protocol):  # pragma: no cover - typing only
    name: str

    def on_channel_state(self, busy: bool) -> None: ...
    def on_tx_end(self, tx: Transmission) -> None: ...
    def on_receive(self, tx: Transmission, ok: bool, sinr_db: float,
                   reason: str) -> None: ...
    def on_beacon(self, ap: str, rssi_dbm: float, channel: int) -> None: ...


class Medium:
    """Active-transmission set + carrier-sense fan-out + SINR receptions."""

    def __init__(
        self,
        topology: Topology,
        scheduler: EventScheduler,
        reception: ReceptionModel,
        rng: np.random.Generator,
        on_outcome: Optional[Callable[[Transmission, bool, float, str], None]] = None,
        lens=None,
        mode: str = "culled",
    ) -> None:
        if mode not in MEDIUM_MODES:
            raise ValueError(f"unknown medium mode {mode!r}")
        self.topology = topology
        self.scheduler = scheduler
        self.reception = reception
        self.rng = rng
        self.on_outcome = on_outcome
        self.lens = lens  # optional repro.net.lens.NetLens (None = free)
        self.mode = mode
        self._culled = mode == "culled"
        self._floor_dbm = topology.radio.interference_floor_dbm
        #: Nodes that are (ever) mobile: their pairwise powers change
        #: over time, so they are never frozen into contribution maps.
        #: Snapshotted at init — a walker pinned mid-run by
        #: ``Topology.invalidate`` keeps its fresh-compute treatment for
        #: consistency across the whole run.
        self._mobile = frozenset(
            n for n in topology.names if topology.is_mobile(n)
        )
        self._macs: Dict[str, MacListener] = {}
        self._mac_order: Dict[str, int] = {}  # registration index
        self._busy: Dict[str, bool] = {}
        #: Per-node channel index (absent = 0); see :meth:`set_channel`.
        self.channel: Dict[str, int] = {}
        self._tx_count: Dict[str, int] = {}  # node -> its in-flight count
        self._active: List[Transmission] = []
        #: Airtime by kind (data / control / ack / beacon / interference), µs.
        self.airtime_us: Dict[str, float] = {}

    def register(self, mac: MacListener) -> None:
        if mac.name in self._macs:
            raise ValueError(f"duplicate MAC for node {mac.name!r}")
        self._mac_order[mac.name] = len(self._macs)
        self._macs[mac.name] = mac
        self._busy[mac.name] = False

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------

    def set_channel(self, name: str, ch: int) -> None:
        """Assign ``name`` to channel ``ch`` (roaming / BSS setup).

        In culled mode every active transmission's frozen contribution
        at this listener is recomputed under the new channel rejection,
        then the listener's carrier state is re-evaluated — so a station
        that roams to a quieter channel goes locally idle immediately.
        """
        old = self.channel.get(name, 0)
        ch = int(ch)
        if ch == old:
            return
        self.channel[name] = ch
        if not self._active:
            return
        if self._culled:
            if name not in self._mobile:
                floor = self._floor_dbm
                for tx in self._active:
                    if tx.src == name or tx.src in self._mobile:
                        continue
                    p = self._rx_dbm(tx.src, name, self.scheduler.now_us)
                    tx.contrib.pop(name, None)
                    if p >= floor:
                        tx.contrib[name] = dbm_to_mw(p)
            if name in self._macs:
                self._update_carrier_states_for((name,))
        else:
            self._update_carrier_states()

    def _rx_dbm(self, src: str, listener: str, t_us: float) -> float:
        """Channel-aware received power (adjacent-channel rejection)."""
        p = self.topology.rx_power_dbm(src, listener, t_us)
        channels = self.channel
        if channels:
            dc = abs(channels.get(src, 0) - channels.get(listener, 0))
            if dc:
                p -= dc * self.topology.radio.adjacent_rejection_db
        return p

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------

    def _pair_mw(self, tx: Transmission, listener: str, now: float) -> float:
        """Culled-mode power of ``tx`` at ``listener`` (mW, floor-culled).

        Static pairs come from the frozen contribution map; any pair
        touching a mobile node is recomputed at ``now`` — identical to
        what the dense path would produce.
        """
        if tx.src in self._mobile or listener in self._mobile:
            p = self._rx_dbm(tx.src, listener, now)
            return dbm_to_mw(p) if p >= self._floor_dbm else 0.0
        return tx.contrib.get(listener, 0.0)

    def sensed_power_mw(self, listener: str) -> float:
        """Aggregate power from every *other* active source at ``listener``."""
        total = 0.0
        if self._culled:
            now = self.scheduler.now_us
            for tx in self._active:
                if tx.src == listener:
                    continue
                total += self._pair_mw(tx, listener, now)
        else:
            now = self.scheduler.now_us
            for tx in self._active:
                if tx.src == listener:
                    continue
                total += dbm_to_mw(self._rx_dbm(tx.src, listener, now))
        return total

    def locally_busy(self, listener: str) -> bool:
        """Carrier sense verdict at ``listener`` (excludes its own signal)."""
        return (
            mw_to_dbm(self.sensed_power_mw(listener))
            >= self.topology.radio.cs_threshold_dbm
        )

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------

    def _contribution(self, tx: Transmission, now: float) -> Dict[str, float]:
        """Frozen {listener -> mW} map of ``tx`` over its relevant set.

        Mobile endpoints are excluded (see :meth:`_pair_mw`): a mobile
        source freezes nothing, and mobile listeners are left out of a
        static source's map.
        """
        contrib: Dict[str, float] = {}
        if tx.src in self._mobile:
            return contrib
        floor = self._floor_dbm
        macs = self._macs
        mobile = self._mobile
        for name in self.topology.neighbors_of(
            tx.src, self.topology.relevance_range_m, now
        ):
            if (name == tx.src or name not in macs or name in contrib
                    or name in mobile):
                continue
            p = self._rx_dbm(tx.src, name, now)
            if p >= floor:
                contrib[name] = dbm_to_mw(p)
        return contrib

    def begin(self, tx: Transmission) -> None:
        """Put ``tx`` on the air; its end (and reception) is scheduled here."""
        now = self.scheduler.now_us
        tx.start_us = now
        tx.end_us = now + tx.duration_us

        culled = self._culled
        if culled:
            contrib = tx.contrib = self._contribution(tx, now)

        # Cross-couple with everything already on the air.
        for other in self._active:
            if other.dst is not None:
                if tx.src == other.dst:
                    other.rx_busy = True  # other's receiver just keyed up
                elif culled:
                    other.interference_mw += self._pair_mw(tx, other.dst, now)
                else:
                    other.interference_mw += dbm_to_mw(
                        self._rx_dbm(tx.src, other.dst, now)
                    )
        if tx.dst is not None:
            tx.signal_dbm = self._rx_dbm(tx.src, tx.dst, now)
            for other in self._active:
                if other.src == tx.dst:
                    tx.rx_busy = True  # destination is mid-transmission
                elif culled:
                    tx.interference_mw += self._pair_mw(other, tx.dst, now)
                else:
                    tx.interference_mw += dbm_to_mw(
                        self._rx_dbm(other.src, tx.dst, now)
                    )

        self._active.append(tx)
        self._tx_count[tx.src] = self._tx_count.get(tx.src, 0) + 1
        self.airtime_us[tx.kind] = self.airtime_us.get(tx.kind, 0.0) + tx.duration_us
        if self.lens is not None:
            self.lens.on_tx_start(tx, now)
        # Ends fire before same-instant starts (priority -1) so a frame
        # beginning exactly as another ends is not counted as overlap.
        self.scheduler.at(tx.end_us, self._end, tx, priority=-1)
        if culled:
            self._update_carrier_states_for(self._fanout_listeners(tx))
        else:
            self._update_carrier_states()

    def _end(self, tx: Transmission) -> None:
        self._active.remove(tx)
        self._tx_count[tx.src] -= 1

        ok, sinr, reason = False, float("-inf"), "not_addressed"
        if tx.dst is not None:
            noise_mw = dbm_to_mw(self.topology.radio.noise_dbm)
            sinr = tx.signal_dbm - mw_to_dbm(noise_mw + tx.interference_mw)
            if tx.rx_busy:
                ok, reason = False, "rx_busy"
            else:
                ok, reason = self.reception.decide(sinr, tx.rate_mbps, self.rng)

        if self.lens is not None:
            self.lens.on_tx_end(tx, self.scheduler.now_us, ok, sinr, reason)
        sender = self._macs.get(tx.src)
        if sender is not None:
            sender.on_tx_end(tx)
        if tx.dst is not None:
            if self.on_outcome is not None:
                self.on_outcome(tx, ok, sinr, reason)
            receiver = self._macs.get(tx.dst)
            if receiver is not None:
                receiver.on_receive(tx, ok, sinr, reason)
        elif tx.kind == "beacon":
            self._deliver_beacon(tx)
        if self._culled:
            self._update_carrier_states_for(self._fanout_listeners(tx))
        else:
            self._update_carrier_states()

    def _deliver_beacon(self, tx: Transmission) -> None:
        """Fan a finished beacon out to every listener that can decode it.

        Decoding is a deterministic energy gate — *raw co-channel* RSSI
        at or above the carrier-sense threshold and the listener not
        itself mid-transmission.  Raw power (no adjacent-channel
        rejection) models the station-side scan: a station parked on
        one channel still learns the beacon levels of neighbouring
        cells, which is what makes cross-channel roaming decidable.  No
        RNG draw, so beacon traffic never perturbs the reception random
        stream of the data plane.  Both medium modes fan out over the
        same set: every MAC within the carrier-sense range.
        """
        topo = self.topology
        cs = topo.radio.cs_threshold_dbm
        ch = self.channel.get(tx.src, 0)
        tx_count = self._tx_count
        now = self.scheduler.now_us
        if self._culled:
            order = self._mac_order
            macs = self._macs
            names = [
                n for n in topo.neighbors_of(tx.src, topo.cs_range_m, now)
                if n in order and n != tx.src
            ]
            names.sort(key=order.__getitem__)
            seen = set()
            for name in names:
                if name in seen or tx_count.get(name, 0):
                    continue
                seen.add(name)
                rssi = topo.rx_power_dbm(tx.src, name, now)
                if rssi >= cs:
                    macs[name].on_beacon(tx.src, rssi, ch)
        else:
            for name, mac in self._macs.items():
                if name == tx.src or tx_count.get(name, 0):
                    continue
                rssi = topo.rx_power_dbm(tx.src, name, now)
                if rssi >= cs:
                    mac.on_beacon(tx.src, rssi, ch)

    # ------------------------------------------------------------------
    # Carrier-sense fan-out
    # ------------------------------------------------------------------

    def _ordered_listeners(self, contrib: Dict[str, float]) -> List[str]:
        """Contribution keys plus mobile MACs, in MAC-registration order.

        Mobile listeners are never in the frozen maps but their carrier
        state still depends on every transition, so they always join the
        fan-out.  Registration order matches the dense path's iteration
        exactly, so culled mode with an ``-inf`` floor replays the same
        carrier-flip sequence.
        """
        order = self._mac_order
        names = set(contrib)
        names.update(n for n in self._mobile if n in order)
        return sorted(names, key=order.__getitem__)

    def _fanout_listeners(self, tx: Transmission) -> List[str]:
        """Who to re-evaluate when ``tx`` keys up or ends (culled mode).

        A static source's set is its frozen contribution keys (plus the
        mobiles); a mobile source froze nothing, so its set is its
        *current* relevance neighbourhood — the same nodes the dense
        path would find affected.
        """
        if tx.src not in self._mobile:
            return self._ordered_listeners(tx.contrib)
        order = self._mac_order
        names = {
            n for n in self.topology.neighbors_of(
                tx.src, self.topology.relevance_range_m, self.scheduler.now_us
            )
            if n in order and n != tx.src
        }
        names.update(n for n in self._mobile if n in order and n != tx.src)
        return sorted(names, key=order.__getitem__)

    def _update_carrier_states_for(self, names) -> None:
        busy_map = self._busy
        for name in names:
            busy = self.locally_busy(name)
            if busy != busy_map[name]:
                busy_map[name] = busy
                if self.lens is not None:
                    self.lens.on_channel_state(name, busy, self.scheduler.now_us)
                self._macs[name].on_channel_state(busy)

    def _update_carrier_states(self) -> None:
        for name, mac in self._macs.items():
            busy = self.locally_busy(name)
            if busy != self._busy[name]:
                self._busy[name] = busy
                if self.lens is not None:
                    self.lens.on_channel_state(name, busy, self.scheduler.now_us)
                mac.on_channel_state(busy)
