"""The shared wireless medium: who is on the air, who senses it, who decodes.

The medium tracks the set of in-flight transmissions.  From it fall out
the three physical facts the MAC layer consumes:

* **Carrier sense** — a node's sensed power is the linear sum of every
  other active source's received power at its position; the node is
  *locally busy* when that sum clears the carrier-sense threshold.
  Because the sum is position-dependent, two stations can each be busy
  to the AP yet idle to each other: the hidden-node pathology needs no
  special-casing.
* **Interference accounting** — every transmission accumulates, worst
  case over its whole airtime, the received power of every other source
  that overlapped it at its destination.  SINR at reception time is
  ``signal / (noise + accumulated interference)``.
* **Reception** — decided at frame end by the
  :class:`~repro.net.sinr.ReceptionModel` (capture gate + rate-dependent
  error draw).  A destination that itself transmitted during the frame
  loses it outright (half-duplex).

Interferer bursts are ordinary :class:`Transmission` records with
``dst=None`` — they deposit sensed power and interference but are never
received.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

import numpy as np

from repro.net.scheduler import EventScheduler
from repro.net.sinr import ReceptionModel, dbm_to_mw, mw_to_dbm
from repro.net.topology import Topology

__all__ = ["Transmission", "Medium"]


class Transmission:
    """One frame (or interference burst) on the air."""

    __slots__ = (
        "src", "dst", "kind", "rate_mbps", "duration_us", "payload_bits",
        "frame", "acks", "start_us", "end_us", "signal_dbm",
        "interference_mw", "rx_busy",
    )

    def __init__(
        self,
        src: str,
        dst: Optional[str],
        kind: str,
        rate_mbps: int,
        duration_us: float,
        payload_bits: int = 0,
        frame=None,
        acks=None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.rate_mbps = rate_mbps
        self.duration_us = float(duration_us)
        self.payload_bits = payload_bits
        self.frame = frame  # this transmission's own NetFrame (CoS carrier)
        self.acks = acks  # for ACKs: the data NetFrame being acknowledged
        self.start_us = 0.0
        self.end_us = 0.0
        self.signal_dbm = 0.0
        self.interference_mw = 0.0
        self.rx_busy = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Transmission {self.kind} {self.src}->{self.dst} "
                f"[{self.start_us:.1f},{self.end_us:.1f}]us>")


class MacListener(Protocol):  # pragma: no cover - typing only
    name: str

    def on_channel_state(self, busy: bool) -> None: ...
    def on_tx_end(self, tx: Transmission) -> None: ...
    def on_receive(self, tx: Transmission, ok: bool, sinr_db: float,
                   reason: str) -> None: ...


class Medium:
    """Active-transmission set + carrier-sense fan-out + SINR receptions."""

    def __init__(
        self,
        topology: Topology,
        scheduler: EventScheduler,
        reception: ReceptionModel,
        rng: np.random.Generator,
        on_outcome: Optional[Callable[[Transmission, bool, float, str], None]] = None,
        lens=None,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.reception = reception
        self.rng = rng
        self.on_outcome = on_outcome
        self.lens = lens  # optional repro.net.lens.NetLens (None = free)
        self._macs: Dict[str, MacListener] = {}
        self._active: List[Transmission] = []
        self._busy: Dict[str, bool] = {}
        #: Airtime by kind (data / control / ack / interference), µs.
        self.airtime_us: Dict[str, float] = {}

    def register(self, mac: MacListener) -> None:
        if mac.name in self._macs:
            raise ValueError(f"duplicate MAC for node {mac.name!r}")
        self._macs[mac.name] = mac
        self._busy[mac.name] = False

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------

    def sensed_power_mw(self, listener: str) -> float:
        """Aggregate power from every *other* active source at ``listener``."""
        now = self.scheduler.now_us
        total = 0.0
        for tx in self._active:
            if tx.src == listener:
                continue
            total += dbm_to_mw(self.topology.rx_power_dbm(tx.src, listener, now))
        return total

    def locally_busy(self, listener: str) -> bool:
        """Carrier sense verdict at ``listener`` (excludes its own signal)."""
        return (
            mw_to_dbm(self.sensed_power_mw(listener))
            >= self.topology.radio.cs_threshold_dbm
        )

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------

    def begin(self, tx: Transmission) -> None:
        """Put ``tx`` on the air; its end (and reception) is scheduled here."""
        now = self.scheduler.now_us
        tx.start_us = now
        tx.end_us = now + tx.duration_us

        # Cross-couple with everything already on the air.
        for other in self._active:
            if other.dst is not None:
                if tx.src == other.dst:
                    other.rx_busy = True  # other's receiver just keyed up
                else:
                    other.interference_mw += dbm_to_mw(
                        self.topology.rx_power_dbm(tx.src, other.dst, now)
                    )
        if tx.dst is not None:
            tx.signal_dbm = self.topology.rx_power_dbm(tx.src, tx.dst, now)
            for other in self._active:
                if other.src == tx.dst:
                    tx.rx_busy = True  # destination is mid-transmission
                else:
                    tx.interference_mw += dbm_to_mw(
                        self.topology.rx_power_dbm(other.src, tx.dst, now)
                    )

        self._active.append(tx)
        self.airtime_us[tx.kind] = self.airtime_us.get(tx.kind, 0.0) + tx.duration_us
        if self.lens is not None:
            self.lens.on_tx_start(tx, now)
        # Ends fire before same-instant starts (priority -1) so a frame
        # beginning exactly as another ends is not counted as overlap.
        self.scheduler.at(tx.end_us, self._end, tx, priority=-1)
        self._update_carrier_states()

    def _end(self, tx: Transmission) -> None:
        self._active.remove(tx)

        ok, sinr, reason = False, float("-inf"), "not_addressed"
        if tx.dst is not None:
            noise_mw = dbm_to_mw(self.topology.radio.noise_dbm)
            sinr = tx.signal_dbm - mw_to_dbm(noise_mw + tx.interference_mw)
            if tx.rx_busy:
                ok, reason = False, "rx_busy"
            else:
                ok, reason = self.reception.decide(sinr, tx.rate_mbps, self.rng)

        if self.lens is not None:
            self.lens.on_tx_end(tx, self.scheduler.now_us, ok, sinr, reason)
        sender = self._macs.get(tx.src)
        if sender is not None:
            sender.on_tx_end(tx)
        if tx.dst is not None:
            if self.on_outcome is not None:
                self.on_outcome(tx, ok, sinr, reason)
            receiver = self._macs.get(tx.dst)
            if receiver is not None:
                receiver.on_receive(tx, ok, sinr, reason)
        self._update_carrier_states()

    # ------------------------------------------------------------------
    # Carrier-sense fan-out
    # ------------------------------------------------------------------

    def _update_carrier_states(self) -> None:
        for name, mac in self._macs.items():
            busy = self.locally_busy(name)
            if busy != self._busy[name]:
                self._busy[name] = busy
                if self.lens is not None:
                    self.lens.on_channel_state(name, busy, self.scheduler.now_us)
                mac.on_channel_state(busy)
