"""Built-in demo scenarios.

``hidden-node`` mirrors the SiNE linear topology: two uplink stations on
opposite sides of an AP, placed so they carrier-sense the AP but **not
each other** (the pairwise received power lands just below the
carrier-sense threshold).  The near station's frames arrive ~18 dB
hotter than the hidden station's, so when the two overlap at the AP the
near frame rides over the collision (capture) while the hidden frame's
SINR goes deeply negative and its delivery ratio collapses — SINR, not
SNR, decides.

With the default radio (17 dBm TX, -82 dBm carrier sense, path-loss
exponent 3, 46.7 dB at 1 m): the near station at 12 m reaches the AP at
-62 dBm (SNR ≈ 32 dB); the hidden station at 48 m reaches it at -80 dBm
(SNR ≈ 14 dB); the 60 m between the stations attenuates them to
-83 dBm ≈ 1 dB below carrier sense of each other.

``contention`` is the single-collision-domain counterpart: N stations on
a circle around an AP, everyone in everyone's carrier-sense range — the
spatial twin of the slotted :mod:`repro.mac.overhead` model, used by the
``net`` backend of :mod:`repro.experiments.network`.

``enterprise-grid`` and ``campus-roaming`` are the multi-BSS scale-out
scenarios: a reuse-3 grid of cells with per-station Poisson uplink (the
spatial-culling benchmark substrate), and a line of APs that two
stations walk past end-to-end, roaming cell to cell (the
association/roaming regression scenario).

``cross-cell`` is the Tag-Spotting-style control-beyond-data-range
scenario: two cells 120 m apart, whose APs exchange coordination
traffic.  At that distance the cross-link arrives ~2 dB above noise —
below the 4 dB capture gate, so **no cross-cell data frame ever
decodes**, and below the -82 dBm carrier-sense threshold, so the cells
cannot even hear each other (mutually hidden).  CoS silences embedded
in those same frames, however, survive at ~2 dB (the 0.85 operating
band), and ``cos_overhear=True`` lets a receiver scan the silence
pattern of an *undecodable* frame — so under ``control="cos"`` the
inter-AP control plane works while explicit control frames (ordinary
data-rate frames at ~2 dB SINR) die with the data.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.net.scenario import (
    BssSpec,
    FlowSpec,
    MobilitySpec,
    NodeSpec,
    ScenarioSpec,
    TrafficSpec,
)
from repro.net.topology import RadioSpec

__all__ = [
    "BUILTIN_SCENARIOS",
    "builtin_scenario",
    "hidden_node",
    "contention",
    "enterprise_grid",
    "campus_roaming",
    "cross_cell",
]


def hidden_node(
    control: str = "cos",
    n_packets: int = 900,
    payload_octets: int = 1024,
    duration_us: float = 300_000.0,
) -> ScenarioSpec:
    """The SiNE-style linear hidden-node topology (see module docstring)."""
    return ScenarioSpec(
        name="hidden-node",
        nodes=(
            NodeSpec("ap", 0.0, 0.0),
            NodeSpec("sta_near", 12.0, 0.0),
            NodeSpec("sta_hidden", -48.0, 0.0),
        ),
        flows=(
            FlowSpec(src="sta_near", dst="ap", n_packets=n_packets,
                     payload_octets=payload_octets),
            FlowSpec(src="sta_hidden", dst="ap", n_packets=n_packets,
                     payload_octets=payload_octets),
        ),
        control=control,
        duration_us=duration_us,
    )


def contention(
    control: str = "cos",
    n_stations: int = 4,
    n_packets: int = 50,
    payload_octets: int = 1024,
    radius_m: float = 15.0,
    duration_us: float = 500_000.0,
    data_rate_mbps: int = None,
) -> ScenarioSpec:
    """N stations around an AP, all mutually in carrier-sense range."""
    if n_stations < 1:
        raise ValueError("need at least one station")
    nodes = [NodeSpec("ap", 0.0, 0.0)]
    flows = []
    for i in range(n_stations):
        angle = 2.0 * math.pi * i / n_stations
        name = f"sta{i}"
        nodes.append(NodeSpec(name, radius_m * math.cos(angle),
                              radius_m * math.sin(angle)))
        flows.append(FlowSpec(src=name, dst="ap", n_packets=n_packets,
                              payload_octets=payload_octets))
    return ScenarioSpec(
        name=f"contention-{n_stations}",
        nodes=tuple(nodes),
        flows=tuple(flows),
        control=control,
        duration_us=duration_us,
        data_rate_mbps=data_rate_mbps,
    )


def enterprise_grid(
    control: str = "cos",
    n_aps: int = 4,
    stations_per_ap: int = 15,
    spacing_m: float = 60.0,
    n_channels: int = 3,
    traffic_model: str = "poisson",
    rate_pps: float = 50.0,
    payload_octets: int = 1024,
    duration_us: float = 100_000.0,
    medium_mode: str = "culled",
) -> ScenarioSpec:
    """A reuse-``n_channels`` grid of office cells under Poisson uplink.

    APs sit on a ``ceil(sqrt(n_aps))``-wide square lattice, channels
    assigned ``(row + col) % n_channels`` so neighbouring cells never
    share one.  Each AP serves ``stations_per_ap`` stations ringed
    5–10 m around it, each running an independent ``traffic_model``
    uplink to ``"@ap"``.  The radio uses a denser-walls exponent (3.5),
    which puts the carrier-sense range (~31 m) inside the AP spacing:
    cells contend internally but transmit concurrently across the
    floor — the workload the spatial-culling medium exists for, and the
    substrate ``benchmarks/bench_net_scaling.py`` sweeps N over.
    """
    if n_aps < 1:
        raise ValueError("need at least one AP")
    if n_channels < 1:
        raise ValueError("need at least one channel")
    radio = RadioSpec(path_loss_exponent=3.5, interference_floor_dbm=-95.0)
    side = int(math.ceil(math.sqrt(n_aps)))
    nodes: List[NodeSpec] = []
    bsses: List[BssSpec] = []
    traffic: List[TrafficSpec] = []
    for a in range(n_aps):
        row, col = divmod(a, side)
        ap = f"ap{a}"
        ax, ay = col * spacing_m, row * spacing_m
        nodes.append(NodeSpec(ap, ax, ay))
        stations = []
        for j in range(stations_per_ap):
            sta = f"sta{a}_{j}"
            angle = 2.0 * math.pi * j / max(stations_per_ap, 1)
            radius = 5.0 + 2.5 * (j % 3)
            nodes.append(NodeSpec(sta, ax + radius * math.cos(angle),
                                  ay + radius * math.sin(angle)))
            stations.append(sta)
            traffic.append(TrafficSpec(
                src=sta, dst="@ap", model=traffic_model,
                rate_pps=rate_pps, payload_octets=payload_octets,
            ))
        bsses.append(BssSpec(ap=ap, channel=(row + col) % n_channels,
                             stations=tuple(stations)))
    return ScenarioSpec(
        name=f"enterprise-grid-{n_aps * (stations_per_ap + 1)}",
        nodes=tuple(nodes),
        flows=(),
        control=control,
        duration_us=duration_us,
        radio=radio,
        bsses=tuple(bsses),
        traffic=tuple(traffic),
        medium_mode=medium_mode,
    )


def campus_roaming(
    control: str = "cos",
    n_aps: int = 3,
    spacing_m: float = 60.0,
    stations_per_ap: int = 3,
    n_walkers: int = 2,
    rate_pps: float = 40.0,
    walker_rate_pps: float = 80.0,
    payload_octets: int = 512,
    duration_us: float = 400_000.0,
    beacon_interval_us: float = 20_000.0,
    medium_mode: str = "culled",
) -> ScenarioSpec:
    """A corridor of cells that mobile stations walk end-to-end.

    ``n_aps`` APs in a line, one channel each (round-robin over three),
    a few static stations per cell, and ``n_walkers`` stations pacing
    the corridor — odd walkers in the opposite direction.  Walkers send
    CBR uplink to ``"@ap"``, so their traffic follows each hand-off:
    the strongest-AP rule (beacon RSSI beating the serving AP by the
    hysteresis) moves them cell to cell, and ``NetResult.n_roams`` /
    per-station ``roams`` count the hand-offs.  Beacons tick every
    20 ms so a 400 ms walk sees enough of them to roam promptly.
    """
    if n_aps < 2:
        raise ValueError("roaming needs at least two APs")
    nodes: List[NodeSpec] = []
    bsses: List[BssSpec] = []
    traffic: List[TrafficSpec] = []
    mobility: List[MobilitySpec] = []
    for a in range(n_aps):
        ap = f"ap{a}"
        ax = a * spacing_m
        nodes.append(NodeSpec(ap, ax, 0.0))
        stations = []
        for j in range(stations_per_ap):
            sta = f"sta{a}_{j}"
            angle = 2.0 * math.pi * (j + 0.5) / max(stations_per_ap, 1)
            nodes.append(NodeSpec(sta, ax + 10.0 * math.cos(angle),
                                  10.0 * math.sin(angle)))
            stations.append(sta)
            traffic.append(TrafficSpec(
                src=sta, dst="@ap", model="poisson",
                rate_pps=rate_pps, payload_octets=payload_octets,
            ))
        bsses.append(BssSpec(ap=ap, channel=a % 3, stations=tuple(stations)))
    corridor_m = (n_aps - 1) * spacing_m
    walk_end_us = 0.9 * duration_us
    for w in range(n_walkers):
        name = f"walker{w}"
        y = 6.0 + 2.0 * w
        x0, x1 = (0.0, corridor_m) if w % 2 == 0 else (corridor_m, 0.0)
        nodes.append(NodeSpec(name, x0, y))
        mobility.append(MobilitySpec(
            node=name,
            waypoints=((0.0, x0, y), (walk_end_us, x1, y)),
        ))
        # Walkers start associated to their nearest AP.
        home = 0 if w % 2 == 0 else n_aps - 1
        bsses[home] = BssSpec(
            ap=bsses[home].ap, channel=bsses[home].channel,
            stations=bsses[home].stations + (name,),
        )
        traffic.append(TrafficSpec(
            src=name, dst="@ap", model="cbr",
            rate_pps=walker_rate_pps, payload_octets=payload_octets,
        ))
    return ScenarioSpec(
        name="campus-roaming",
        nodes=tuple(nodes),
        flows=(),
        control=control,
        duration_us=duration_us,
        mobility=tuple(mobility),
        bsses=tuple(bsses),
        traffic=tuple(traffic),
        medium_mode=medium_mode,
        beacon_interval_us=beacon_interval_us,
    )


def cross_cell(
    control: str = "cos",
    separation_m: float = 120.0,
    n_uplink_packets: int = 400,
    n_cross_packets: int = 120,
    payload_octets: int = 1024,
    duration_us: float = 300_000.0,
) -> ScenarioSpec:
    """Two mutually-hidden cells whose APs coordinate across the gap.

    Intra-cell uplinks carry the payload traffic (they are the OFDM
    frames whose silences the CoS plane rides); the AP↔AP flows model a
    thin coordination channel (channel selection, load balancing) whose
    *data* frames can never decode — see the module docstring for the
    link budget.  ``cos_overhear=True`` is what lets the far AP read
    the silences off frames it cannot decode.
    """
    return ScenarioSpec(
        name="cross-cell",
        nodes=(
            NodeSpec("ap_west", 0.0, 0.0),
            NodeSpec("sta_west", 0.0, 10.0),
            NodeSpec("ap_east", separation_m, 0.0),
            NodeSpec("sta_east", separation_m, 10.0),
        ),
        flows=(
            FlowSpec(src="sta_west", dst="ap_west",
                     n_packets=n_uplink_packets,
                     payload_octets=payload_octets, interval_us=700.0),
            FlowSpec(src="sta_east", dst="ap_east",
                     n_packets=n_uplink_packets,
                     payload_octets=payload_octets, interval_us=700.0),
            FlowSpec(src="ap_west", dst="ap_east",
                     n_packets=n_cross_packets,
                     payload_octets=256, interval_us=2500.0),
            FlowSpec(src="ap_east", dst="ap_west",
                     n_packets=n_cross_packets,
                     payload_octets=256, interval_us=2500.0,
                     start_us=1250.0),
        ),
        control=control,
        duration_us=duration_us,
        cos_overhear=True,
    )


BUILTIN_SCENARIOS: Dict[str, Callable[..., ScenarioSpec]] = {
    "hidden-node": hidden_node,
    "contention": contention,
    "enterprise-grid": enterprise_grid,
    "campus-roaming": campus_roaming,
    "cross-cell": cross_cell,
}


def builtin_scenario(name: str, **overrides) -> ScenarioSpec:
    """Instantiate a built-in scenario by name."""
    try:
        factory = BUILTIN_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; built-ins: {sorted(BUILTIN_SCENARIOS)}"
        ) from None
    return factory(**overrides)
