"""Built-in demo scenarios.

``hidden-node`` mirrors the SiNE linear topology: two uplink stations on
opposite sides of an AP, placed so they carrier-sense the AP but **not
each other** (the pairwise received power lands just below the
carrier-sense threshold).  The near station's frames arrive ~18 dB
hotter than the hidden station's, so when the two overlap at the AP the
near frame rides over the collision (capture) while the hidden frame's
SINR goes deeply negative and its delivery ratio collapses — SINR, not
SNR, decides.

With the default radio (17 dBm TX, -82 dBm carrier sense, path-loss
exponent 3, 46.7 dB at 1 m): the near station at 12 m reaches the AP at
-62 dBm (SNR ≈ 32 dB); the hidden station at 48 m reaches it at -80 dBm
(SNR ≈ 14 dB); the 60 m between the stations attenuates them to
-83 dBm ≈ 1 dB below carrier sense of each other.

``contention`` is the single-collision-domain counterpart: N stations on
a circle around an AP, everyone in everyone's carrier-sense range — the
spatial twin of the slotted :mod:`repro.mac.overhead` model, used by the
``net`` backend of :mod:`repro.experiments.network`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.net.scenario import FlowSpec, NodeSpec, ScenarioSpec

__all__ = ["BUILTIN_SCENARIOS", "builtin_scenario", "hidden_node", "contention"]


def hidden_node(
    control: str = "cos",
    n_packets: int = 900,
    payload_octets: int = 1024,
    duration_us: float = 300_000.0,
) -> ScenarioSpec:
    """The SiNE-style linear hidden-node topology (see module docstring)."""
    return ScenarioSpec(
        name="hidden-node",
        nodes=(
            NodeSpec("ap", 0.0, 0.0),
            NodeSpec("sta_near", 12.0, 0.0),
            NodeSpec("sta_hidden", -48.0, 0.0),
        ),
        flows=(
            FlowSpec(src="sta_near", dst="ap", n_packets=n_packets,
                     payload_octets=payload_octets),
            FlowSpec(src="sta_hidden", dst="ap", n_packets=n_packets,
                     payload_octets=payload_octets),
        ),
        control=control,
        duration_us=duration_us,
    )


def contention(
    control: str = "cos",
    n_stations: int = 4,
    n_packets: int = 50,
    payload_octets: int = 1024,
    radius_m: float = 15.0,
    duration_us: float = 500_000.0,
    data_rate_mbps: int = None,
) -> ScenarioSpec:
    """N stations around an AP, all mutually in carrier-sense range."""
    if n_stations < 1:
        raise ValueError("need at least one station")
    nodes = [NodeSpec("ap", 0.0, 0.0)]
    flows = []
    for i in range(n_stations):
        angle = 2.0 * math.pi * i / n_stations
        name = f"sta{i}"
        nodes.append(NodeSpec(name, radius_m * math.cos(angle),
                              radius_m * math.sin(angle)))
        flows.append(FlowSpec(src=name, dst="ap", n_packets=n_packets,
                              payload_octets=payload_octets))
    return ScenarioSpec(
        name=f"contention-{n_stations}",
        nodes=tuple(nodes),
        flows=tuple(flows),
        control=control,
        duration_us=duration_us,
        data_rate_mbps=data_rate_mbps,
    )


BUILTIN_SCENARIOS: Dict[str, Callable[..., ScenarioSpec]] = {
    "hidden-node": hidden_node,
    "contention": contention,
}


def builtin_scenario(name: str, **overrides) -> ScenarioSpec:
    """Instantiate a built-in scenario by name."""
    try:
        factory = BUILTIN_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; built-ins: {sorted(BUILTIN_SCENARIOS)}"
        ) from None
    return factory(**overrides)
