"""``repro.net`` — event-driven multi-node WLAN simulation.

The link-level layers (``phy``/``channel``/``cos``) evaluate one
transmitter-receiver pair; ``mac.dcf`` prices airtime in a single
collision domain.  This package opens the workload the paper's
motivation actually lives in: *many* stations with 2-D positions,
log-distance path loss, reception decided by **SINR with a capture
threshold** (so hidden-node collisions and capture fall out of the
geometry), per-node DCF state machines driven by a discrete-event
scheduler, and a control plane that delivers rate-adaptation feedback
either as explicit contending frames or for free inside CoS silence
intervals.

Multi-BSS scale-out: scenarios may declare ``bsses`` (AP + channel +
member stations) and per-node ``traffic`` generators; the medium then
runs beacons, association, strongest-AP roaming, adjacent-channel
rejection, and — in its default ``"culled"`` mode — grid-indexed
interference culling that keeps per-attempt cost sub-linear in node
count (``"dense-exact"`` preserves the all-pairs semantics for
equivalence testing).

Layering (top to bottom)::

    simulator   NetSimulator / run_scenario / run_scenario_sweep
    lens        NetLens: airtime ledger, event trace, dispatch profiler
    bss         BssRuntime: beacons, association, strongest-AP roaming
    scenario    declarative ScenarioSpec (JSON-serialisable, picklable)
    traffic     arrival synthesis: Poisson / bursty on-off / CBR
    control     ControlPlane (+ per-BSS ControlRouter): explicit vs CoS
    mac         NodeMac: per-node DCF (shared BackoffState with mac.dcf)
    medium      Medium: active transmissions, carrier sense, SINR at rx
    sinr        ReceptionModel: capture threshold + SINR->PRR error model
    topology    Topology: positions, mobility, path loss, grid index
    scheduler   EventScheduler: deterministic heap calendar queue
"""

from repro.net.scheduler import EventScheduler
from repro.net.topology import GridIndex, RadioSpec, Topology, Waypoint
from repro.net.sinr import (
    ReceptionModel,
    SigmoidErrorModel,
    SinrModel,
    cos_delivery_prob_for,
    sinr_db,
)
from repro.net.medium import MEDIUM_MODES, Medium, Transmission
from repro.net.mac import NetFrame, NodeMac
from repro.net.control import ControlMessage, ControlPlane, ControlRouter
from repro.net.bss import BssRuntime
from repro.net.traffic import TRAFFIC_MODELS, arrival_times
from repro.net.scenario import (
    ERROR_MODELS,
    BssSpec,
    FlowSpec,
    InterfererSpec,
    MobilitySpec,
    NodeSpec,
    ScenarioSpec,
    TrafficSpec,
)
from repro.net.lens import EventProfiler, NetLens
from repro.net.scenarios import (
    BUILTIN_SCENARIOS,
    builtin_scenario,
    campus_roaming,
    contention,
    cross_cell,
    enterprise_grid,
    hidden_node,
)
from repro.net.simulator import (
    NetResult,
    NetSimulator,
    NodeStats,
    run_scenario,
    run_scenario_sweep,
    summarize_results,
)

__all__ = [
    "EventScheduler",
    "GridIndex",
    "RadioSpec",
    "Topology",
    "Waypoint",
    "ReceptionModel",
    "SigmoidErrorModel",
    "SinrModel",
    "cos_delivery_prob_for",
    "sinr_db",
    "MEDIUM_MODES",
    "Medium",
    "Transmission",
    "NetFrame",
    "NodeMac",
    "ControlMessage",
    "ControlPlane",
    "ControlRouter",
    "BssRuntime",
    "TRAFFIC_MODELS",
    "arrival_times",
    "NodeSpec",
    "FlowSpec",
    "MobilitySpec",
    "InterfererSpec",
    "BssSpec",
    "TrafficSpec",
    "ScenarioSpec",
    "ERROR_MODELS",
    "EventProfiler",
    "NetLens",
    "BUILTIN_SCENARIOS",
    "builtin_scenario",
    "hidden_node",
    "contention",
    "enterprise_grid",
    "campus_roaming",
    "cross_cell",
    "NetResult",
    "NetSimulator",
    "NodeStats",
    "run_scenario",
    "run_scenario_sweep",
    "summarize_results",
]
