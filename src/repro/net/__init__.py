"""``repro.net`` — event-driven multi-node WLAN simulation.

The link-level layers (``phy``/``channel``/``cos``) evaluate one
transmitter-receiver pair; ``mac.dcf`` prices airtime in a single
collision domain.  This package opens the workload the paper's
motivation actually lives in: *many* stations with 2-D positions,
log-distance path loss, reception decided by **SINR with a capture
threshold** (so hidden-node collisions and capture fall out of the
geometry), per-node DCF state machines driven by a discrete-event
scheduler, and a control plane that delivers rate-adaptation feedback
either as explicit contending frames or for free inside CoS silence
intervals.

Layering (top to bottom)::

    simulator   NetSimulator / run_scenario / run_scenario_sweep
    lens        NetLens: airtime ledger, event trace, dispatch profiler
    scenario    declarative ScenarioSpec (JSON-serialisable, picklable)
    control     ControlPlane: explicit frames vs CoS piggyback
    mac         NodeMac: per-node DCF (shared BackoffState with mac.dcf)
    medium      Medium: active transmissions, carrier sense, SINR at rx
    sinr        ReceptionModel: capture threshold + SINR->PRR error model
    topology    Topology: positions, mobility, log-distance path loss
    scheduler   EventScheduler: deterministic heap calendar queue
"""

from repro.net.scheduler import EventScheduler
from repro.net.topology import RadioSpec, Topology, Waypoint
from repro.net.sinr import (
    ReceptionModel,
    SigmoidErrorModel,
    cos_delivery_prob_for,
    sinr_db,
)
from repro.net.medium import Medium, Transmission
from repro.net.mac import NodeMac
from repro.net.control import ControlMessage, ControlPlane
from repro.net.scenario import (
    FlowSpec,
    InterfererSpec,
    MobilitySpec,
    NodeSpec,
    ScenarioSpec,
)
from repro.net.lens import EventProfiler, NetLens
from repro.net.scenarios import BUILTIN_SCENARIOS, builtin_scenario
from repro.net.simulator import (
    NetResult,
    NetSimulator,
    NodeStats,
    run_scenario,
    run_scenario_sweep,
    summarize_results,
)

__all__ = [
    "EventScheduler",
    "RadioSpec",
    "Topology",
    "Waypoint",
    "ReceptionModel",
    "SigmoidErrorModel",
    "cos_delivery_prob_for",
    "sinr_db",
    "Medium",
    "Transmission",
    "NodeMac",
    "ControlMessage",
    "ControlPlane",
    "NodeSpec",
    "FlowSpec",
    "MobilitySpec",
    "InterfererSpec",
    "ScenarioSpec",
    "EventProfiler",
    "NetLens",
    "BUILTIN_SCENARIOS",
    "builtin_scenario",
    "NetResult",
    "NetSimulator",
    "NodeStats",
    "run_scenario",
    "run_scenario_sweep",
    "summarize_results",
]
