"""Declarative scenario specifications (JSON-serialisable, picklable).

A :class:`ScenarioSpec` fully determines a simulation up to the random
seed: topology (node positions + radio model), traffic flows, mobility
waypoints, pulse interferers, and the control-plane configuration.  The
engine sweeps scenarios by putting the spec itself in the trial params
(dataclasses pickle cleanly), and the ``repro net`` CLI round-trips them
through JSON — ``ScenarioSpec.load(path)`` / ``save(path)``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.net.topology import RadioSpec, Topology, Waypoint
from repro.phy.params import RATE_TABLE

__all__ = [
    "NodeSpec",
    "FlowSpec",
    "MobilitySpec",
    "InterfererSpec",
    "ScenarioSpec",
]


@dataclass(frozen=True)
class NodeSpec:
    """A station (or AP — the MAC does not distinguish) at ``(x, y)`` metres."""

    name: str
    x: float = 0.0
    y: float = 0.0


@dataclass(frozen=True)
class FlowSpec:
    """A unicast traffic flow.

    ``interval_us == 0`` means fully backlogged: every packet is queued
    at ``start_us``.  Otherwise one packet arrives each interval.
    """

    src: str
    dst: str
    n_packets: int = 50
    payload_octets: int = 1024
    interval_us: float = 0.0
    start_us: float = 0.0


@dataclass(frozen=True)
class MobilitySpec:
    """Waypoints ``(t_us, x, y)`` for one node; linearly interpolated."""

    node: str
    waypoints: Tuple[Tuple[float, float, float], ...] = ()


@dataclass(frozen=True)
class InterfererSpec:
    """A ``PulseInterferer``-style co-channel burst source at a position.

    Every ``period_us`` the source starts, with probability
    ``probability``, a burst of ``burst_us`` at ``power_dbm`` — the
    network-scale analogue of :class:`repro.channel.interference
    .PulseInterferer`'s random symbol-length pulses.
    """

    name: str
    x: float = 0.0
    y: float = 0.0
    power_dbm: float = 17.0
    burst_us: float = 200.0
    period_us: float = 2000.0
    probability: float = 0.3
    start_us: float = 0.0


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything a :class:`repro.net.simulator.NetSimulator` needs."""

    name: str
    nodes: Tuple[NodeSpec, ...]
    flows: Tuple[FlowSpec, ...]
    control: str = "cos"  # "cos" | "explicit"
    duration_us: float = 300_000.0
    radio: RadioSpec = field(default_factory=RadioSpec)
    mobility: Tuple[MobilitySpec, ...] = ()
    interferers: Tuple[InterfererSpec, ...] = ()
    control_octets: int = 14
    data_rate_mbps: Optional[int] = None  # None = SINR-adaptive
    cos_delivery_prob: Optional[float] = None  # None = operating-point table
    cos_fidelity: str = "table"  # "table" | "phy"
    max_embed_per_frame: int = 4

    def __post_init__(self):
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        known = set(names)
        for flow in self.flows:
            if flow.src not in known or flow.dst not in known:
                raise ValueError(
                    f"flow {flow.src}->{flow.dst} references unknown nodes"
                )
            if flow.src == flow.dst:
                raise ValueError(f"flow {flow.src}->{flow.dst} is a self-loop")
        for mob in self.mobility:
            if mob.node not in known:
                raise ValueError(f"mobility for unknown node {mob.node!r}")
        if self.control not in ("explicit", "cos"):
            raise ValueError(f"unknown control mode {self.control!r}")
        if self.data_rate_mbps is not None and self.data_rate_mbps not in RATE_TABLE:
            raise ValueError(
                f"{self.data_rate_mbps} Mbps is not an 802.11a rate"
            )
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------

    def topology(self) -> Topology:
        positions = {n.name: (n.x, n.y) for n in self.nodes}
        for interferer in self.interferers:
            if interferer.name in positions:
                raise ValueError(
                    f"interferer name {interferer.name!r} collides with a node"
                )
            positions[interferer.name] = (interferer.x, interferer.y)
        mobility = {
            m.node: [Waypoint(t, x, y) for (t, x, y) in m.waypoints]
            for m in self.mobility
        }
        return Topology(positions, radio=self.radio, mobility=mobility)

    def with_control(self, control: str) -> "ScenarioSpec":
        """The same scenario under the other control scheme."""
        return dataclasses.replace(self, control=control)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        data = dict(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        data["nodes"] = tuple(NodeSpec(**n) for n in data.get("nodes", ()))
        data["flows"] = tuple(FlowSpec(**f) for f in data.get("flows", ()))
        if "radio" in data and isinstance(data["radio"], dict):
            data["radio"] = RadioSpec(**data["radio"])
        data["mobility"] = tuple(
            MobilitySpec(node=m["node"],
                         waypoints=tuple(tuple(w) for w in m["waypoints"]))
            for m in data.get("mobility", ())
        )
        data["interferers"] = tuple(
            InterfererSpec(**i) for i in data.get("interferers", ())
        )
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
