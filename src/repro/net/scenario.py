"""Declarative scenario specifications (JSON-serialisable, picklable).

A :class:`ScenarioSpec` fully determines a simulation up to the random
seed: topology (node positions + radio model), traffic flows, mobility
waypoints, pulse interferers, and the control-plane configuration.  The
engine sweeps scenarios by putting the spec itself in the trial params
(dataclasses pickle cleanly), and the ``repro net`` CLI round-trips them
through JSON — ``ScenarioSpec.load(path)`` / ``save(path)``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.net.medium import MEDIUM_MODES
from repro.net.topology import RadioSpec, Topology, Waypoint
from repro.net.traffic import TRAFFIC_MODELS
from repro.phy.params import RATE_TABLE
from repro.ratectl import CONTROLLERS, available_controllers

#: Frame-fate error models: analytic sigmoid vs measured-PHY surrogate
#: tables (:class:`repro.net.sinr.SinrModel` over the committed table).
ERROR_MODELS = ("sigmoid", "surrogate")

__all__ = [
    "ERROR_MODELS",
    "NodeSpec",
    "FlowSpec",
    "MobilitySpec",
    "InterfererSpec",
    "BssSpec",
    "TrafficSpec",
    "ScenarioSpec",
]


@dataclass(frozen=True)
class NodeSpec:
    """A station (or AP — the MAC does not distinguish) at ``(x, y)`` metres."""

    name: str
    x: float = 0.0
    y: float = 0.0


@dataclass(frozen=True)
class FlowSpec:
    """A unicast traffic flow.

    ``interval_us == 0`` means fully backlogged: every packet is queued
    at ``start_us``.  Otherwise one packet arrives each interval.
    """

    src: str
    dst: str
    n_packets: int = 50
    payload_octets: int = 1024
    interval_us: float = 0.0
    start_us: float = 0.0


@dataclass(frozen=True)
class MobilitySpec:
    """Waypoints ``(t_us, x, y)`` for one node; linearly interpolated."""

    node: str
    waypoints: Tuple[Tuple[float, float, float], ...] = ()


@dataclass(frozen=True)
class InterfererSpec:
    """A ``PulseInterferer``-style co-channel burst source at a position.

    Every ``period_us`` the source starts, with probability
    ``probability``, a burst of ``burst_us`` at ``power_dbm`` — the
    network-scale analogue of :class:`repro.channel.interference
    .PulseInterferer`'s random symbol-length pulses.
    """

    name: str
    x: float = 0.0
    y: float = 0.0
    power_dbm: float = 17.0
    burst_us: float = 200.0
    period_us: float = 2000.0
    probability: float = 0.3
    start_us: float = 0.0


@dataclass(frozen=True)
class BssSpec:
    """One cell: an AP, its channel, and the stations that start on it.

    Stations may roam away at run time (strongest-AP hand-off, see
    :mod:`repro.net.bss`); non-member stations associate with the first
    AP they hear.  Channel indices are abstract: adjacent indices leak
    into each other at ``RadioSpec.adjacent_rejection_db`` per step.
    """

    ap: str
    channel: int = 0
    stations: Tuple[str, ...] = ()


@dataclass(frozen=True)
class TrafficSpec:
    """One node's generated traffic (see :mod:`repro.net.traffic`).

    ``dst="@ap"`` targets the source's *current* serving AP at each
    arrival instant — the roaming-aware uplink; it requires the
    scenario to define BSSes.
    """

    src: str
    dst: str = "@ap"
    model: str = "poisson"  # "poisson" | "onoff" | "cbr"
    rate_pps: float = 100.0
    payload_octets: int = 1024
    start_us: float = 0.0
    stop_us: Optional[float] = None
    burst_on_us: float = 10_000.0
    burst_off_us: float = 40_000.0


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything a :class:`repro.net.simulator.NetSimulator` needs."""

    name: str
    nodes: Tuple[NodeSpec, ...]
    flows: Tuple[FlowSpec, ...]
    control: str = "cos"  # "cos" | "explicit"
    duration_us: float = 300_000.0
    radio: RadioSpec = field(default_factory=RadioSpec)
    mobility: Tuple[MobilitySpec, ...] = ()
    interferers: Tuple[InterfererSpec, ...] = ()
    control_octets: int = 14
    data_rate_mbps: Optional[int] = None  # None = SINR-adaptive
    cos_delivery_prob: Optional[float] = None  # None = operating-point table
    cos_fidelity: str = "table"  # "table" | "phy" | "surrogate"
    max_embed_per_frame: int = 4
    bsses: Tuple[BssSpec, ...] = ()
    traffic: Tuple[TrafficSpec, ...] = ()
    medium_mode: str = "culled"  # "culled" | "dense-exact"
    beacon_interval_us: float = 102_400.0
    roam_hysteresis_db: float = 6.0
    controller: Optional[str] = None  # None = legacy staircase-in-plane path
    error_model: str = "sigmoid"  # "sigmoid" | "surrogate"
    cos_overhear: bool = False  # Tag-Spotting: decode CoS below data SINR

    def __post_init__(self):
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        known = set(names)
        for flow in self.flows:
            if flow.src not in known or flow.dst not in known:
                raise ValueError(
                    f"flow {flow.src}->{flow.dst} references unknown nodes"
                )
            if flow.src == flow.dst:
                raise ValueError(f"flow {flow.src}->{flow.dst} is a self-loop")
        for mob in self.mobility:
            if mob.node not in known:
                raise ValueError(f"mobility for unknown node {mob.node!r}")
        if self.control not in ("explicit", "cos"):
            raise ValueError(f"unknown control mode {self.control!r}")
        if self.data_rate_mbps is not None and self.data_rate_mbps not in RATE_TABLE:
            raise ValueError(
                f"{self.data_rate_mbps} Mbps is not an 802.11a rate"
            )
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.medium_mode not in MEDIUM_MODES:
            raise ValueError(f"unknown medium_mode {self.medium_mode!r}")
        aps = [b.ap for b in self.bsses]
        if len(set(aps)) != len(aps):
            raise ValueError("BSS AP names must be unique")
        ap_set = set(aps)
        members = set()
        for bss in self.bsses:
            if bss.ap not in known:
                raise ValueError(f"BSS AP {bss.ap!r} is not a node")
            if bss.channel < 0:
                raise ValueError("BSS channel must be >= 0")
            for sta in bss.stations:
                if sta not in known:
                    raise ValueError(
                        f"BSS {bss.ap!r} member {sta!r} is not a node"
                    )
                if sta in ap_set:
                    raise ValueError(f"{sta!r} cannot be both AP and station")
                if sta in members:
                    raise ValueError(
                        f"station {sta!r} is a member of multiple BSSes"
                    )
                members.add(sta)
        for t in self.traffic:
            if t.src not in known:
                raise ValueError(f"traffic source {t.src!r} is not a node")
            if t.model not in TRAFFIC_MODELS:
                raise ValueError(f"unknown traffic model {t.model!r}")
            if t.rate_pps <= 0:
                raise ValueError("traffic rate_pps must be positive")
            if t.model == "onoff" and (t.burst_on_us <= 0 or t.burst_off_us <= 0):
                raise ValueError("onoff burst durations must be positive")
            if t.dst == "@ap":
                if not self.bsses:
                    raise ValueError(
                        '"@ap" traffic requires the scenario to define bsses'
                    )
            elif t.dst not in known:
                raise ValueError(f"traffic {t.src}->{t.dst} targets unknown node")
            if t.dst == t.src:
                raise ValueError(f"traffic {t.src}->{t.dst} is a self-loop")
        if self.beacon_interval_us <= 0:
            raise ValueError("beacon_interval_us must be positive")
        if self.controller is not None and self.controller not in CONTROLLERS:
            raise ValueError(
                f"unknown rate controller {self.controller!r}; available: "
                f"{', '.join(available_controllers())}"
            )
        if self.error_model not in ERROR_MODELS:
            raise ValueError(
                f"unknown error_model {self.error_model!r}; available: "
                f"{', '.join(ERROR_MODELS)}"
            )

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------

    def topology(self) -> Topology:
        positions = {n.name: (n.x, n.y) for n in self.nodes}
        for interferer in self.interferers:
            if interferer.name in positions:
                raise ValueError(
                    f"interferer name {interferer.name!r} collides with a node"
                )
            positions[interferer.name] = (interferer.x, interferer.y)
        mobility = {
            m.node: [Waypoint(t, x, y) for (t, x, y) in m.waypoints]
            for m in self.mobility
        }
        return Topology(positions, radio=self.radio, mobility=mobility)

    def with_control(self, control: str) -> "ScenarioSpec":
        """The same scenario under the other control scheme."""
        return dataclasses.replace(self, control=control)

    def with_medium(self, medium_mode: str) -> "ScenarioSpec":
        """The same scenario under the other medium mode."""
        return dataclasses.replace(self, medium_mode=medium_mode)

    def with_fidelity(self, cos_fidelity: str) -> "ScenarioSpec":
        """The same scenario under another CoS fidelity mode."""
        return dataclasses.replace(self, cos_fidelity=cos_fidelity)

    def with_controller(self, controller: Optional[str]) -> "ScenarioSpec":
        """The same scenario under another rate controller."""
        return dataclasses.replace(self, controller=controller)

    def with_error_model(self, error_model: str) -> "ScenarioSpec":
        """The same scenario under another frame-fate error model."""
        return dataclasses.replace(self, error_model=error_model)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        data = dict(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        data["nodes"] = tuple(NodeSpec(**n) for n in data.get("nodes", ()))
        data["flows"] = tuple(FlowSpec(**f) for f in data.get("flows", ()))
        if "radio" in data and isinstance(data["radio"], dict):
            data["radio"] = RadioSpec(**data["radio"])
        data["mobility"] = tuple(
            MobilitySpec(node=m["node"],
                         waypoints=tuple(tuple(w) for w in m["waypoints"]))
            for m in data.get("mobility", ())
        )
        data["interferers"] = tuple(
            InterfererSpec(**i) for i in data.get("interferers", ())
        )
        data["bsses"] = tuple(
            BssSpec(ap=b["ap"], channel=b.get("channel", 0),
                    stations=tuple(b.get("stations", ())))
            for b in data.get("bsses", ())
        )
        data["traffic"] = tuple(
            TrafficSpec(**t) for t in data.get("traffic", ())
        )
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
