"""Deterministic discrete-event scheduler (heap-based calendar queue).

The contract the rest of :mod:`repro.net` relies on:

* Events fire in ``(time, priority, insertion order)`` order.  Ties at
  the same instant are broken first by ``priority`` (lower fires first),
  then FIFO — so a simulation replays identically for a given seed, no
  matter which executor or machine runs it.
* ``cancel`` is O(1): the handle is tombstoned and skipped when popped
  (the classic lazy-deletion heap idiom), which keeps ACK timeouts and
  backoff re-arms cheap.

Times are microseconds, matching the MAC constants in
:mod:`repro.mac.dcf`.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "EventScheduler"]


class Event:
    """Handle for a scheduled callback; pass to :meth:`EventScheduler.cancel`."""

    __slots__ = ("time_us", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time_us: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: Tuple):
        self.time_us = time_us
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time_us:.1f}us p={self.priority} {self.fn!r}{state}>"


class EventScheduler:
    """Single-threaded event loop over a binary heap."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self.now_us: float = 0.0
        self.n_dispatched: int = 0
        #: Optional dispatch profiler (``record(fn, dt_s)``) — installed
        #: by a profiling :class:`repro.net.lens.NetLens`.  When ``None``
        #: (the default) the loop pays one attribute load per event.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def at(self, time_us: float, fn: Callable[..., Any], *args: Any,
           priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time_us``."""
        if time_us < self.now_us - 1e-9:
            raise ValueError(
                f"cannot schedule in the past: {time_us} < now {self.now_us}"
            )
        event = Event(float(time_us), priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (event.time_us, priority, event.seq, event))
        return event

    def after(self, delay_us: float, fn: Callable[..., Any], *args: Any,
              priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` ``delay_us`` from now."""
        if delay_us < 0:
            raise ValueError(f"negative delay: {delay_us}")
        return self.at(self.now_us + delay_us, fn, *args, priority=priority)

    def cancel(self, event: Event) -> None:
        """Tombstone ``event``; cancelling twice (or a fired event) is a no-op."""
        event.cancelled = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for *_x, e in self._heap if not e.cancelled)

    def run(self, until_us: float = math.inf) -> float:
        """Dispatch events in order until the queue drains or ``until_us``.

        Returns the final simulation time: the last dispatched event's
        time if the queue drained first, else ``until_us`` (events beyond
        the horizon stay queued, so ``run`` may be resumed).
        """
        while self._heap:
            time_us, _priority, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if time_us > until_us:
                self.now_us = until_us
                return self.now_us
            heapq.heappop(self._heap)
            self.now_us = time_us
            self.n_dispatched += 1
            profiler = self.profiler
            if profiler is None:
                event.fn(*event.args)
            else:
                t0 = time.perf_counter()
                event.fn(*event.args)
                profiler.record(event.fn, time.perf_counter() - t0)
        if until_us != math.inf:
            self.now_us = max(self.now_us, until_us)
        return self.now_us
