"""SINR accumulation and the SINR-keyed reception decision.

The central modelling choice (after SiNE): when a CSMA MAC coexists with
hidden nodes, reception must be decided by **SINR, not SNR** — concurrent
transmissions from nodes outside carrier-sense range accumulate as
interference power in the denominator:

    SINR = S / (N + sum_i I_i)        (linear, mW)

Decoding is a two-stage decision:

1. *Capture*: the receiver locks onto the frame only if its SINR clears
   ``capture_threshold_db``.  A strong frame therefore survives a
   collision with a weak one (capture effect); the weak frame's SINR goes
   negative and it is lost.
2. *Error model*: above capture, the frame decodes with a rate-dependent
   packet success probability.  :class:`SigmoidErrorModel` anchors each
   rate's waterfall to the paper's stair-case adaptation thresholds
   (:data:`repro.rateadapt.DEFAULT_THRESHOLDS`): at the threshold SNR the
   PRR is ~0.99 (the paper's working-region figure), a few dB below it
   the PRR collapses — the usual coded-OFDM cliff.

:func:`cos_delivery_prob_for` maps the carrier frame's SINR to a CoS
silence-message delivery probability.  The anchor points are the
link-level operating points measured by the Fig. 10 harness
(``LinkStats.message_accuracy``): ~0.97 in the working region, degrading
toward threshold.  Scenarios may override with a fixed probability or
(for small scenarios) measure it by running the full ``cos.link`` PHY —
see :mod:`repro.net.control`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.rateadapt import DEFAULT_THRESHOLDS

__all__ = [
    "dbm_to_mw",
    "mw_to_dbm",
    "sinr_db",
    "SigmoidErrorModel",
    "SinrModel",
    "ReceptionModel",
    "cos_delivery_prob_for",
]

_FLOOR_DBM = -400.0  # "no power": far below any sensitivity


def dbm_to_mw(dbm: float) -> float:
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    if mw <= 0.0:
        return _FLOOR_DBM
    return 10.0 * math.log10(mw)


def sinr_db(signal_dbm: float, interferer_dbms: Iterable[float],
            noise_dbm: float) -> float:
    """SINR with interference accumulated in the linear domain."""
    denom_mw = dbm_to_mw(noise_dbm) + sum(dbm_to_mw(i) for i in interferer_dbms)
    return signal_dbm - mw_to_dbm(denom_mw)


@dataclass(frozen=True)
class SigmoidErrorModel:
    """Per-rate SINR -> packet success probability waterfall.

    ``prr(sinr) = sigmoid((sinr - (threshold - offset)) / scale)`` — the
    midpoint sits ``offset_db`` below the rate's adaptation threshold so
    that *at* the threshold the PRR is ~0.99, matching the premise of
    stair-case adaptation (pick the highest rate that still delivers).
    """

    offset_db: float = 3.0
    scale_db: float = 0.7
    thresholds: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_THRESHOLDS)
    )

    def prr(self, sinr_db: float, rate_mbps: int) -> float:
        try:
            threshold = self.thresholds[rate_mbps]
        except KeyError:
            raise KeyError(
                f"no threshold for {rate_mbps} Mbps; known: {sorted(self.thresholds)}"
            ) from None
        x = (sinr_db - (threshold - self.offset_db)) / self.scale_db
        # Clamp the exponent so extreme SINRs don't overflow.
        x = min(max(x, -60.0), 60.0)
        return 1.0 / (1.0 + math.exp(-x))


class SinrModel:
    """Measured-PHY SINR curves behind the error-model interface.

    Wraps a :class:`repro.phy.surrogate.SurrogateTable` — real-PHY PRR
    sweeps, monotone-fitted — and exposes the two lookups the network
    layer keys frame fates on:

    * :meth:`prr` is drop-in compatible with
      :class:`SigmoidErrorModel.prr` (so a ``ReceptionModel`` can run on
      measured curves instead of the analytic waterfall);
    * :meth:`cos_delivery_prob` replays the ``cos_fidelity="phy"``
      measurement at table-lookup cost — identical values on the table's
      integer-dB grid, clamped outside it.

    Construct via :meth:`default` (the committed table, or the
    ``REPRO_SURROGATE_TABLE`` override) or :meth:`from_path`; the
    default-table load is cached process-wide, so per-frame lookups
    never touch the filesystem.
    """

    _default: "SinrModel" = None  # class-level cache

    def __init__(self, table) -> None:
        self.table = table

    @classmethod
    def default(cls) -> "SinrModel":
        if cls._default is None:
            from repro.phy.surrogate import load_default_table

            cls._default = cls(load_default_table())
        return cls._default

    @classmethod
    def from_path(cls, path) -> "SinrModel":
        from repro.phy.surrogate import SurrogateTable

        return cls(SurrogateTable.load(path))

    def prr(self, sinr_db: float, rate_mbps: int) -> float:
        return self.table.prr(sinr_db, rate_mbps)

    def cos_delivery_prob(self, sinr_db: float) -> float:
        return self.table.cos_delivery_prob(sinr_db)


@dataclass(frozen=True)
class ReceptionModel:
    """Capture gate + error-model draw; returns (ok, reason)."""

    capture_threshold_db: float = 4.0
    error_model: SigmoidErrorModel = field(default_factory=SigmoidErrorModel)

    def decide(self, sinr_db: float, rate_mbps: int,
               rng: np.random.Generator) -> Tuple[bool, str]:
        """Decide one frame's fate.  Reasons: ``ok`` | ``collision`` | ``channel_error``.

        The RNG is always consumed exactly once so that reception
        outcomes stay on a deterministic stream regardless of the
        capture decision.
        """
        draw = float(rng.random())
        if sinr_db < self.capture_threshold_db:
            return False, "collision"
        if draw < self.error_model.prr(sinr_db, rate_mbps):
            return True, "ok"
        return False, "channel_error"


# Operating points from the link-level harnesses (Fig. 10 /
# ``LinkStats.message_accuracy``): (minimum SINR dB, per-message delivery
# probability), highest band first.
_COS_OPERATING_POINTS: Tuple[Tuple[float, float], ...] = (
    (15.0, 0.97),
    (8.0, 0.95),
    (2.0, 0.85),
)
_COS_FLOOR_PROB = 0.5  # below the lowest band silences are near-coin-flips


def cos_delivery_prob_for(sinr_db: float) -> float:
    """Per-message CoS delivery probability at the carrier's SINR."""
    for min_sinr, prob in _COS_OPERATING_POINTS:
        if sinr_db >= min_sinr:
            return prob
    return _COS_FLOOR_PROB
