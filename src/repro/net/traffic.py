"""Per-node traffic generators: Poisson, bursty on/off, CBR.

A :class:`~repro.net.scenario.TrafficSpec` describes one source's
arrival process; :func:`arrival_times` synthesises the whole arrival
sequence up front from the simulator's RNG.  Pre-drawing matters for
determinism: every arrival time for every traffic source is drawn at
simulator construction, in spec order, before the first event fires —
so the reception/interferer draws that happen *during* the run see the
same RNG stream regardless of how the arrivals interleave, and culled
vs dense-exact medium modes consume identical randomness.

Models (cf. Nessi's ``trafficgen.py``):

* ``"poisson"`` — exponential inter-arrival gaps at ``rate_pps``.
* ``"onoff"`` — bursty: exponential ON phases (mean ``burst_on_us``)
  emitting Poisson arrivals at ``rate_pps``, separated by exponential
  OFF phases (mean ``burst_off_us``).  Mean rate is ``rate_pps *
  on/(on+off)``.
* ``"cbr"`` — constant bit rate: one packet exactly every
  ``1e6 / rate_pps`` µs.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["TRAFFIC_MODELS", "arrival_times", "mean_rate_pps"]

TRAFFIC_MODELS = ("poisson", "onoff", "cbr")


def mean_rate_pps(spec) -> float:
    """Long-run mean packet rate of a :class:`TrafficSpec` (for display)."""
    if spec.model == "onoff":
        duty = spec.burst_on_us / (spec.burst_on_us + spec.burst_off_us)
        return spec.rate_pps * duty
    return spec.rate_pps


def arrival_times(spec, duration_us: float,
                  rng: np.random.Generator) -> List[float]:
    """All arrival instants of ``spec`` within ``[start_us, stop]``.

    ``stop`` is the earlier of ``spec.stop_us`` and ``duration_us``.
    Consumes RNG draws for the stochastic models (none for ``cbr``);
    call in a fixed order for determinism.
    """
    stop = duration_us if spec.stop_us is None else min(spec.stop_us,
                                                        duration_us)
    start = spec.start_us
    if start > stop:
        return []
    gap_us = 1e6 / spec.rate_pps
    times: List[float] = []
    if spec.model == "cbr":
        t = start
        while t <= stop:
            times.append(t)
            t += gap_us
    elif spec.model == "poisson":
        t = start + float(rng.exponential(gap_us))
        while t <= stop:
            times.append(t)
            t += float(rng.exponential(gap_us))
    elif spec.model == "onoff":
        t = start
        while t <= stop:
            on_end = t + float(rng.exponential(spec.burst_on_us))
            arrival = t + float(rng.exponential(gap_us))
            while arrival <= min(on_end, stop):
                times.append(arrival)
                arrival += float(rng.exponential(gap_us))
            t = on_end + float(rng.exponential(spec.burst_off_us))
    else:  # pragma: no cover - specs validate the model name
        raise ValueError(f"unknown traffic model {spec.model!r}")
    return times
