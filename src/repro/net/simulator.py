"""Scenario execution: wire the layers together, collect per-node stats.

:class:`NetSimulator` instantiates the stack for one
:class:`~repro.net.scenario.ScenarioSpec` — scheduler, topology, medium,
one :class:`~repro.net.mac.NodeMac` per node, the control plane, traffic
sources, interferers — runs it, and returns a picklable
:class:`NetResult`.

Sweeps go through :mod:`repro.engine`: :func:`run_scenario_sweep` runs N
independent trials of a scenario with per-trial ``SeedSequence`` spawned
seeds, so serial and process-pool executions are bit-for-bit identical
(the ``net`` determinism contract is the engine's, inherited wholesale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import engine
from repro.engine.spec import TrialSpec
from repro.net.bss import BssRuntime
from repro.net.control import ControlPlane, ControlRouter
from repro.net.lens import NetLens
from repro.net.mac import NetFrame, NodeMac
from repro.net.medium import Medium, Transmission
from repro.net.scenario import (
    FlowSpec,
    InterfererSpec,
    ScenarioSpec,
    TrafficSpec,
)
from repro.net.scheduler import EventScheduler
from repro.net.sinr import ReceptionModel, SigmoidErrorModel, SinrModel
from repro.net.traffic import arrival_times
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.ratectl import CONTROLLERS, make_controller
from repro.utils.rng import RngLike, make_rng

__all__ = [
    "NodeStats",
    "NetResult",
    "NetSimulator",
    "run_scenario",
    "run_scenario_sweep",
    "summarize_results",
]


@dataclass
class NodeStats:
    """Per-node outcomes of one scenario run (all fields picklable)."""

    name: str
    data_generated: int = 0
    data_attempts: int = 0
    data_rx_ok: int = 0
    data_delivered: int = 0
    data_dropped: int = 0
    failures: int = 0  # ACK timeouts (collisions + channel losses)
    payload_bits_delivered: int = 0
    control_generated: int = 0
    control_delivered: int = 0
    roams: int = 0
    control_latencies_us: List[float] = field(default_factory=list)
    sinr_samples_db: List[float] = field(default_factory=list)
    loss_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        """Per-attempt success: decoded receptions / transmission attempts."""
        if self.data_attempts == 0:
            return 0.0
        return self.data_rx_ok / self.data_attempts

    @property
    def completion_ratio(self) -> float:
        """Delivered frames / generated frames (retries collapse into one)."""
        if self.data_generated == 0:
            return 0.0
        return self.data_delivered / self.data_generated

    @property
    def mean_control_latency_us(self) -> float:
        if not self.control_latencies_us:
            return 0.0
        return float(np.mean(self.control_latencies_us))

    @property
    def mean_sinr_db(self) -> Optional[float]:
        """Mean per-attempt SINR of this node's data frames (None: no samples).

        ``None`` rather than NaN so exported summaries stay strict JSON.
        """
        if not self.sinr_samples_db:
            return None
        return float(np.mean(self.sinr_samples_db))

    @property
    def min_sinr_db(self) -> Optional[float]:
        if not self.sinr_samples_db:
            return None
        return float(np.min(self.sinr_samples_db))


@dataclass
class NetResult:
    """Everything one scenario run produced.

    ``ledger`` / ``profile`` / ``events`` are populated only when the run
    was observed by a :class:`~repro.net.lens.NetLens` (all plain dicts,
    so they survive pickling across process-pool sweep workers).
    """

    scenario: str
    control: str
    duration_us: float
    elapsed_us: float
    per_node: Dict[str, NodeStats]
    airtime_us: Dict[str, float]
    n_events: int
    n_roams: int = 0
    associations: Optional[Dict[str, str]] = None
    controller: Optional[str] = None
    ledger: Optional[Dict] = None
    profile: Optional[Dict] = None
    events: Optional[List[Dict]] = None

    def goodput_mbps(self, node: str) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.per_node[node].payload_bits_delivered / self.elapsed_us

    @property
    def senders(self) -> List[str]:
        return [n for n, s in self.per_node.items() if s.data_generated > 0]

    @property
    def aggregate_goodput_mbps(self) -> float:
        return sum(self.goodput_mbps(n) for n in self.per_node)

    @property
    def fairness(self) -> float:
        """Jain's index over the senders' goodputs (1.0 = perfectly fair)."""
        xs = [self.goodput_mbps(n) for n in self.senders]
        if not xs or all(x == 0 for x in xs):
            return 1.0
        return float(sum(xs) ** 2 / (len(xs) * sum(x * x for x in xs)))

    @property
    def control_airtime_fraction(self) -> float:
        busy = sum(v for k, v in self.airtime_us.items() if k != "interference")
        if busy == 0:
            return 0.0
        return self.airtime_us.get("control", 0.0) / busy

    @property
    def collisions(self) -> int:
        return sum(s.failures for s in self.per_node.values())

    def to_dict(self) -> Dict:
        """The canonical JSON shape — CLI ``--json``, sweep summaries, and
        tests all derive from this one method so exported fields never
        drift between surfaces."""
        out = {
            "scenario": self.scenario,
            "control": self.control,
            "duration_us": self.duration_us,
            "elapsed_us": self.elapsed_us,
            "aggregate_goodput_mbps": self.aggregate_goodput_mbps,
            "fairness": self.fairness,
            "collisions": self.collisions,
            "control_airtime_fraction": self.control_airtime_fraction,
            "airtime_us": dict(self.airtime_us),
            "n_events": self.n_events,
            "per_node": {
                name: {
                    "goodput_mbps": self.goodput_mbps(name),
                    "delivery_ratio": stats.delivery_ratio,
                    "completion_ratio": stats.completion_ratio,
                    "data_generated": stats.data_generated,
                    "data_attempts": stats.data_attempts,
                    "data_delivered": stats.data_delivered,
                    "data_dropped": stats.data_dropped,
                    "failures": stats.failures,
                    "control_generated": stats.control_generated,
                    "control_delivered": stats.control_delivered,
                    "roams": stats.roams,
                    "mean_control_latency_us": stats.mean_control_latency_us,
                    "mean_sinr_db": stats.mean_sinr_db,
                    "min_sinr_db": stats.min_sinr_db,
                    "loss_reasons": dict(stats.loss_reasons),
                }
                for name, stats in self.per_node.items()
            },
        }
        if self.associations is not None:
            out["n_roams"] = self.n_roams
            out["associations"] = dict(self.associations)
        if self.controller is not None:
            out["controller"] = self.controller
        if self.ledger is not None:
            out["ledger"] = self.ledger
        if self.profile is not None:
            out["profile"] = self.profile
        return out


class _Collector:
    """Mutation sink the MAC / medium / control plane report into."""

    def __init__(self, node_names) -> None:
        self.nodes: Dict[str, NodeStats] = {
            name: NodeStats(name=name) for name in node_names
        }
        self.last_activity_us = 0.0
        registry = get_registry()
        self._frames = registry.counter(
            "repro_net_frames_total", "frames by kind and outcome"
        )
        self._control = registry.counter(
            "repro_net_control_total", "control messages by event"
        )

    def on_generated(self, name: str) -> None:
        self.nodes[name].data_generated += 1

    def on_attempt(self, name: str, kind: str) -> None:
        if kind == "data":
            self.nodes[name].data_attempts += 1

    def on_failure(self, name: str, kind: str) -> None:
        self.nodes[name].failures += 1

    def on_drop(self, name: str, frame: NetFrame, now: float) -> None:
        if frame.kind == "data":
            self.nodes[name].data_dropped += 1
        self._frames.labels(kind=frame.kind, result="dropped").inc()
        self.last_activity_us = max(self.last_activity_us, now)

    def on_delivered(self, name: str, frame: NetFrame, now: float) -> None:
        stats = self.nodes[name]
        if frame.kind == "data":
            stats.data_delivered += 1
            stats.payload_bits_delivered += frame.payload_bits
        self._frames.labels(kind=frame.kind, result="delivered").inc()
        self.last_activity_us = max(self.last_activity_us, now)

    def on_outcome(self, tx: Transmission, ok: bool, sinr_db: float,
                   reason: str) -> None:
        """Per-reception-attempt record, attributed to the transmitter."""
        stats = self.nodes.get(tx.src)
        if stats is None or tx.kind != "data":
            return
        stats.sinr_samples_db.append(float(sinr_db))
        if ok:
            stats.data_rx_ok += 1
        else:
            stats.loss_reasons[reason] = stats.loss_reasons.get(reason, 0) + 1

    def on_control_generated(self, msg) -> None:
        self.nodes[msg.dst].control_generated += 1
        self._control.labels(event="generated").inc()

    def on_control_delivered(self, msg, now: float) -> None:
        stats = self.nodes[msg.dst]
        stats.control_delivered += 1
        stats.control_latencies_us.append(now - msg.created_us)
        self._control.labels(event="delivered").inc()

    def on_roam(self, name: str) -> None:
        self.nodes[name].roams += 1


class NetSimulator:
    """One scenario, one RNG, one run.

    ``lens`` optionally attaches a :class:`~repro.net.lens.NetLens` for
    airtime ledgers / event tracing / throughput profiling.  The lens
    never consumes the RNG, so an observed run is bit-for-bit identical
    to an unobserved one; when ``lens`` is ``None`` every hook site
    degrades to a single attribute-is-None check.
    """

    def __init__(self, spec: ScenarioSpec, rng: RngLike = None,
                 lens: Optional[NetLens] = None) -> None:
        self.spec = spec
        self.rng = make_rng(rng)
        self.lens = lens
        self.scheduler = EventScheduler()
        self.topology = spec.topology()
        # Frame fates: analytic waterfall, or measured-PHY surrogate
        # curves (SinrModel.prr is drop-in for SigmoidErrorModel.prr).
        if spec.error_model == "surrogate":
            error_model = SinrModel.default()
        else:
            error_model = SigmoidErrorModel()
        reception = ReceptionModel(
            capture_threshold_db=spec.radio.capture_threshold_db,
            error_model=error_model,
        )
        # A controller class may pin its feedback transport ("cos" /
        # "explicit"); None inherits the scenario's control mode.
        ctrl_cls = CONTROLLERS.get(spec.controller) if spec.controller else None
        self.control_mode = spec.control
        if ctrl_cls is not None and ctrl_cls.transport is not None:
            self.control_mode = ctrl_cls.transport
        if lens is not None and lens.profile:
            self.scheduler.profiler = lens.profiler
        self.collector = _Collector([n.name for n in spec.nodes])
        self.medium = Medium(
            self.topology, self.scheduler, reception, self.rng,
            on_outcome=self.collector.on_outcome,
            lens=lens,
            mode=spec.medium_mode,
        )

        def _plane() -> ControlPlane:
            # Fresh controller per plane: per-BSS rate state mirrors the
            # per-BSS control planes (flows never span planes).
            controller = (
                make_controller(spec.controller, rng=self.rng)
                if spec.controller else None
            )
            return ControlPlane(
                mode=self.control_mode,
                rng=self.rng,
                collector=self.collector,
                control_octets=spec.control_octets,
                fixed_rate_mbps=spec.data_rate_mbps,
                cos_delivery_prob=spec.cos_delivery_prob,
                cos_fidelity=spec.cos_fidelity,
                max_embed_per_frame=spec.max_embed_per_frame,
                lens=lens,
                controller=controller,
                overhear=spec.cos_overhear,
            )

        self.bss_runtime: Optional[BssRuntime] = None
        if spec.bsses:
            self.bss_runtime = BssRuntime(
                spec.bsses,
                medium=self.medium,
                scheduler=self.scheduler,
                collector=self.collector,
                lens=lens,
                beacon_interval_us=spec.beacon_interval_us,
                roam_hysteresis_db=spec.roam_hysteresis_db,
                horizon_us=spec.duration_us,
            )
            self.control_plane = ControlRouter(
                planes={b.ap: _plane() for b in spec.bsses},
                default=_plane(),
                assoc_of=self.bss_runtime.ap_of,
            )
        else:
            self.control_plane = _plane()
        if lens is not None:
            lens.bind(
                [n.name for n in spec.nodes],
                bss_of=(self.bss_runtime.bss_map()
                        if self.bss_runtime is not None else None),
            )
        self.macs: Dict[str, NodeMac] = {}
        for node in spec.nodes:
            self.macs[node.name] = NodeMac(
                name=node.name,
                medium=self.medium,
                scheduler=self.scheduler,
                rng=self.rng,
                control_plane=self.control_plane,
                collector=self.collector,
                lens=lens,
            )
        self.control_plane.bind(self.macs)
        for flow in spec.flows:
            self._schedule_flow(flow)
        for interferer in spec.interferers:
            self.scheduler.at(
                interferer.start_us, self._interferer_tick, interferer
            )
        if self.bss_runtime is not None:
            self.bss_runtime.start(self.macs)
        # Traffic arrivals are pre-drawn here, in spec order, before any
        # event fires — see repro.net.traffic for why this ordering is
        # the determinism contract.
        for t in spec.traffic:
            for arrival in arrival_times(t, spec.duration_us, self.rng):
                self.scheduler.at(arrival, self._traffic_arrive, t, arrival)
        # Pin mobile nodes back into the spatial index once their
        # waypoints are exhausted (both medium modes, so event counts
        # and streams stay comparable).
        for mob in spec.mobility:
            if not mob.waypoints:
                continue
            last_t = max(w[0] for w in mob.waypoints)
            if 0.0 < last_t < spec.duration_us:
                self.scheduler.at(last_t, self._pin_node, mob.node)

    # ------------------------------------------------------------------
    # Traffic and interference sources
    # ------------------------------------------------------------------

    def _schedule_flow(self, flow: FlowSpec) -> None:
        for i in range(flow.n_packets):
            arrival = flow.start_us + i * flow.interval_us
            if arrival > self.spec.duration_us:
                break
            self.scheduler.at(arrival, self._arrive, flow, arrival)

    def _arrive(self, flow: FlowSpec, arrival_us: float) -> None:
        self.collector.on_generated(flow.src)
        self.macs[flow.src].enqueue(NetFrame(
            kind="data", src=flow.src, dst=flow.dst,
            payload_octets=flow.payload_octets, created_us=arrival_us,
        ))

    def _traffic_arrive(self, t: TrafficSpec, arrival_us: float) -> None:
        dst = t.dst
        if dst == "@ap":
            dst = self.bss_runtime.ap_of(t.src)
            if dst is None or dst == t.src:
                return  # not (yet) associated: nothing to address
        self.collector.on_generated(t.src)
        self.macs[t.src].enqueue(NetFrame(
            kind="data", src=t.src, dst=dst,
            payload_octets=t.payload_octets, created_us=arrival_us,
        ))

    def _pin_node(self, name: str) -> None:
        self.topology.invalidate(name, self.scheduler.now_us)

    def _interferer_tick(self, spec: InterfererSpec) -> None:
        if float(self.rng.random()) < spec.probability:
            self.medium.begin(Transmission(
                src=spec.name, dst=None, kind="interference",
                rate_mbps=6, duration_us=spec.burst_us,
            ))
        next_us = self.scheduler.now_us + spec.period_us
        if next_us <= self.spec.duration_us:
            self.scheduler.at(next_us, self._interferer_tick, spec)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> NetResult:
        lens = self.lens
        if lens is not None:
            lens.on_run_start()
        with span("net.scenario", scenario=self.spec.name,
                  control=self.control_mode, nodes=len(self.spec.nodes)):
            end_us = self.scheduler.run(until_us=self.spec.duration_us)
        elapsed = self.collector.last_activity_us or end_us
        result = NetResult(
            scenario=self.spec.name,
            control=self.control_mode,
            duration_us=self.spec.duration_us,
            elapsed_us=elapsed,
            per_node=self.collector.nodes,
            airtime_us=dict(self.medium.airtime_us),
            n_events=self.scheduler.n_dispatched,
            n_roams=(self.bss_runtime.n_roams
                     if self.bss_runtime is not None else 0),
            associations=(dict(self.bss_runtime.assoc)
                          if self.bss_runtime is not None else None),
            controller=self.spec.controller,
        )
        if lens is not None:
            lens.finalize(end_us=self.scheduler.now_us,
                          n_sched_events=self.scheduler.n_dispatched)
            if lens.ledger:
                result.ledger = lens.ledger_dict()
            if lens.profile:
                result.profile = lens.profile_dict()
            if lens.trace:
                result.events = lens.events
        return result


def run_scenario(spec: ScenarioSpec, rng: RngLike = 0,
                 lens: Optional[NetLens] = None) -> NetResult:
    """Run one scenario once (deterministic in ``(spec, rng)``)."""
    return NetSimulator(spec, rng=rng, lens=lens).run()


def _make_lens(cfg) -> Optional[NetLens]:
    """Build a lens from a sweep-param config (True or a kwargs dict)."""
    if not cfg:
        return None
    if cfg is True:
        return NetLens()
    return NetLens(**cfg)


def _scenario_trial(trial: TrialSpec) -> NetResult:
    """Engine trial function: one independent realisation of the scenario."""
    return run_scenario(trial["scenario"], rng=trial.rng(),
                        lens=_make_lens(trial.get("lens")))


def run_scenario_sweep(
    spec: ScenarioSpec,
    n_trials: int = 1,
    seed: int = 0,
    workers: Optional[int] = None,
    lens=None,
) -> List[NetResult]:
    """N independent trials through the deterministic trial engine.

    ``lens`` — ``None``/``False`` (default, free), ``True``, or a dict of
    :class:`~repro.net.lens.NetLens` kwargs — attaches a fresh lens to
    *every* trial; ledgers/profiles/events come back on each
    :class:`NetResult` (picklable, so this works across process pools,
    and the lens's registry metrics fold back into the parent through
    the engine's worker-snapshot merge).
    """
    params = [
        {"scenario": spec, "trial": i, "lens": lens} for i in range(n_trials)
    ]
    return engine.run_sweep(
        params, _scenario_trial, seed=seed, workers=workers,
        label=f"net:{spec.name}",
    )


def _combine_values(values: List) -> object:
    """Mean-over-trials combiner for one key of ``NetResult.to_dict``.

    ``None`` entries are dropped (``None`` when every trial is ``None``);
    dicts recurse over the union of keys (a key absent from one trial —
    a loss reason that never fired, an airtime kind never transmitted —
    counts as zero); identical values pass through unchanged (preserving
    strings, bools, and integer counts); differing numbers become the
    float mean; differing non-numerics (e.g. the final association map
    of a roaming scenario) pass through by first-trial value.
    """
    present = [v for v in values if v is not None]
    if not present:
        return None
    first = present[0]
    if isinstance(first, dict):
        keys = []
        for v in present:
            for k in v:
                if k not in keys:
                    keys.append(k)
        out = {}
        for k in keys:
            sample = next(
                (v[k] for v in present if v.get(k) is not None), None
            )
            missing = {} if isinstance(sample, dict) else 0
            out[k] = _combine_values(
                [v.get(k, missing) for v in present]
            )
        return out
    if all(v == first for v in present):
        return first
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in present):
        return first
    return float(np.mean(present))


def summarize_results(results: List[NetResult]) -> Dict:
    """Mean-over-trials summary (the ``repro net`` JSON export shape).

    Derived field-by-field from :meth:`NetResult.to_dict`, so every
    surface that exports a result — single-trial CLI JSON, multi-trial
    sweeps, ledger/profile extensions — carries exactly the same keys and
    none can drift from the canonical shape.
    """
    if not results:
        raise ValueError("no results to summarize")
    dicts = [r.to_dict() for r in results]
    summary = _combine_values(dicts)
    summary["n_trials"] = len(results)
    return summary
