"""Frequency-selective multipath: tapped delay lines with exponential PDP.

Indoor propagation is modelled as an FIR channel whose taps are complex
Gaussian with exponentially decaying power (the classic indoor NLOS
profile).  With a 20 Msps sample clock each tap is 50 ns of excess delay;
all profiles keep the delay spread inside the 0.8 µs cyclic prefix, so
the channel is a clean per-subcarrier multiplication H_k after the FFT —
which is exactly the frequency-selective fading the paper measures in
Figs. 5–6.

Three named severity profiles stand in for the paper's receiver positions
A/B/C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.channel.awgn import complex_gaussian
from repro.phy.params import N_FFT
from repro.utils.rng import RngLike, make_rng

__all__ = ["TappedDelayLine", "exponential_pdp", "rayleigh_taps", "POSITION_PROFILES"]


def exponential_pdp(n_taps: int, decay_taps: float) -> np.ndarray:
    """Normalised exponential power-delay profile (sums to 1).

    ``decay_taps`` is the 1/e decay constant in units of taps (50 ns each).
    """
    if n_taps < 1:
        raise ValueError("n_taps must be >= 1")
    if decay_taps <= 0:
        raise ValueError("decay_taps must be positive")
    powers = np.exp(-np.arange(n_taps) / decay_taps)
    return powers / powers.sum()


def rayleigh_taps(pdp: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw one complex-Gaussian tap realisation following ``pdp``."""
    pdp = np.asarray(pdp, dtype=np.float64)
    return complex_gaussian(pdp.shape, 1.0, rng) * np.sqrt(pdp)


# Severity profiles standing in for the paper's receiver positions.  More
# taps and slower decay => larger delay spread => deeper frequency
# selectivity (position A shows the most EVM spread in Fig. 5).  The
# numbers are calibrated so the median per-link EVM spread across
# subcarriers matches the paper's observations (up to ~13-18 % at
# position A, milder at B and C) and the frequency-selectivity part of
# the SNR gap lands near the paper's ~1.7 dB at position A.
POSITION_PROFILES: Dict[str, Dict[str, float]] = {
    "A": {"n_taps": 3, "decay_taps": 0.6},
    "B": {"n_taps": 2, "decay_taps": 0.45},
    "C": {"n_taps": 2, "decay_taps": 0.3},
}


@dataclass
class TappedDelayLine:
    """A realised FIR channel.

    Attributes
    ----------
    taps:
        Complex impulse response; ``taps[0]`` is the direct path.
    """

    taps: np.ndarray

    @classmethod
    def from_profile(
        cls,
        n_taps: int,
        decay_taps: float,
        rng: RngLike = None,
        normalize: bool = True,
    ) -> "TappedDelayLine":
        """Draw a random realisation of an exponential-PDP channel.

        ``normalize=True`` rescales the draw to exactly unit energy so the
        average received power (and hence SNR bookkeeping) is deterministic.
        """
        rng = make_rng(rng)
        taps = rayleigh_taps(exponential_pdp(n_taps, decay_taps), rng)
        if normalize:
            energy = np.sum(np.abs(taps) ** 2)
            if energy > 0:
                taps = taps / np.sqrt(energy)
        return cls(taps=np.asarray(taps, dtype=np.complex128))

    @classmethod
    def for_position(cls, name: str, rng: RngLike = None) -> "TappedDelayLine":
        """Draw a channel for named severity profile "A", "B" or "C"."""
        try:
            profile = POSITION_PROFILES[name]
        except KeyError:
            raise KeyError(
                f"unknown position {name!r}; valid: {sorted(POSITION_PROFILES)}"
            ) from None
        return cls.from_profile(int(profile["n_taps"]), profile["decay_taps"], rng)

    @classmethod
    def identity(cls) -> "TappedDelayLine":
        """The flat (AWGN-only) channel."""
        return cls(taps=np.array([1.0 + 0.0j]))

    def frequency_response(self, n_fft: int = N_FFT) -> np.ndarray:
        """Per-subcarrier gains H_k on FFT bins 0..n_fft-1."""
        return np.fft.fft(self.taps, n_fft)

    def apply(self, waveform: np.ndarray) -> np.ndarray:
        """Convolve ``waveform`` with the impulse response (causal, truncated).

        The output keeps the input length: the delay-spread tail beyond the
        last sample is dropped, and the cyclic prefix absorbs the leading
        inter-symbol interference exactly as in hardware.
        """
        waveform = np.asarray(waveform, dtype=np.complex128)
        return np.convolve(waveform, self.taps)[: waveform.size]

    @property
    def delay_spread_s(self) -> float:
        """RMS delay spread in seconds (50 ns per tap at 20 Msps)."""
        powers = np.abs(self.taps) ** 2
        total = powers.sum()
        if total == 0:
            return 0.0
        delays = np.arange(self.taps.size) * 50e-9
        mean = np.sum(powers * delays) / total
        return float(np.sqrt(np.sum(powers * (delays - mean) ** 2) / total))
