"""IndoorChannel: the composite link every experiment runs over.

Combines a tapped-delay-line multipath realisation, AWGN, optional pulse
interference, and walking-speed temporal evolution.  The class also owns
the SNR bookkeeping: given a *target measured SNR* (what the receiver NIC
would report) it solves for the noise level exactly, since both measured
and actual SNR scale linearly (in dB) with noise power for a fixed
channel realisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.awgn import add_awgn
from repro.channel.interference import PulseInterferer
from repro.channel.multipath import POSITION_PROFILES, TappedDelayLine
from repro.channel.sounder import actual_snr_db, measured_snr_db, per_subcarrier_snr
from repro.channel.temporal import GaussMarkovEvolution, doppler_for_speed
from repro.obs.trace import span
from repro.phy.ofdm import DATA_BINS, subcarrier_noise_variance
from repro.utils.rng import RngLike, make_rng

__all__ = ["IndoorChannel"]

_TINY = 1e-15


@dataclass
class IndoorChannel:
    """An indoor WLAN link with controllable SNR, selectivity and mobility.

    Typical construction is via :meth:`position`::

        ch = IndoorChannel.position("A", snr_db=15.0, seed=42)
        rx_waveform = ch.transmit(tx_waveform)

    Attributes
    ----------
    tdl:
        The multipath realisation (evolves if :meth:`evolve` is called).
    noise_var:
        Per-time-sample complex noise variance.
    interferer:
        Optional :class:`PulseInterferer` applied after the channel.
    doppler_hz:
        Maximum Doppler for :meth:`evolve`.
    """

    tdl: TappedDelayLine
    noise_var: float
    rng: RngLike = None
    interferer: Optional[PulseInterferer] = None
    doppler_hz: float = field(default_factory=doppler_for_speed)
    cfo_hz: float = 0.0  # residual carrier frequency offset between the radios

    def __post_init__(self):
        if self.noise_var < 0:
            raise ValueError("noise_var must be non-negative")
        self.rng = make_rng(self.rng)
        self._evolution = GaussMarkovEvolution(
            tdl=self.tdl, doppler_hz=self.doppler_hz, rng=self.rng
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def position(
        cls,
        name: str,
        snr_db: float,
        seed: RngLike = None,
        snr_reference: str = "measured",
        interferer: Optional[PulseInterferer] = None,
        doppler_hz: Optional[float] = None,
        cfo_hz: float = 0.0,
    ) -> "IndoorChannel":
        """A channel at severity position "A"/"B"/"C" with a target SNR.

        ``snr_reference`` selects which SNR the target refers to:
        ``"measured"`` (NIC-reported, the x-axis of most paper figures) or
        ``"actual"`` (sounder ground truth).
        """
        rng = make_rng(seed)
        tdl = TappedDelayLine.for_position(name, rng)
        noise_var = cls._solve_noise_var(tdl, snr_db, snr_reference)
        kwargs = {} if doppler_hz is None else {"doppler_hz": doppler_hz}
        return cls(
            tdl=tdl, noise_var=noise_var, rng=rng, interferer=interferer,
            cfo_hz=cfo_hz, **kwargs,
        )

    @classmethod
    def flat(cls, snr_db: float, seed: RngLike = None) -> "IndoorChannel":
        """A frequency-flat AWGN channel (no selectivity; gap sources off)."""
        tdl = TappedDelayLine.identity()
        noise_var = cls._solve_noise_var(tdl, snr_db, "actual")
        return cls(tdl=tdl, noise_var=noise_var, rng=make_rng(seed))

    @staticmethod
    def _solve_noise_var(tdl: TappedDelayLine, snr_db: float, reference: str) -> float:
        gains = np.abs(tdl.frequency_response()[DATA_BINS]) ** 2
        gains = np.maximum(gains, _TINY)
        if reference == "measured":
            mean_gain = gains.size / np.sum(1.0 / gains)  # harmonic
        elif reference == "actual":
            mean_gain = gains.mean()  # arithmetic
        else:
            raise ValueError("snr_reference must be 'measured' or 'actual'")
        subcarrier_noise = mean_gain / (10.0 ** (snr_db / 10.0))
        # Invert subcarrier_noise_variance(): time var = f var * 64/52.
        return float(subcarrier_noise / subcarrier_noise_variance(1.0))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def transmit(self, waveform: np.ndarray) -> np.ndarray:
        """Propagate one PPDU: multipath, CFO rotation, noise, interference."""
        with span("channel.transmit") as sp:
            sp.set(n_samples=int(np.asarray(waveform).size))
            out = self.tdl.apply(waveform)
            if self.cfo_hz:
                n = np.arange(out.size)
                out = out * np.exp(2j * np.pi * self.cfo_hz * n / 20e6)
            out = add_awgn(out, self.noise_var, self.rng)
            if self.interferer is not None:
                out = self.interferer.apply(out)
            return out

    def evolve(self, tau_s: float) -> None:
        """Advance the channel by ``tau_s`` seconds of walking-speed motion."""
        with span("channel.evolve") as sp:
            sp.set(tau_s=tau_s)
            self._evolution.advance(tau_s)

    # ------------------------------------------------------------------
    # Introspection (ground truth for experiments)
    # ------------------------------------------------------------------

    def frequency_response(self) -> np.ndarray:
        """True H on all 64 FFT bins."""
        return self.tdl.frequency_response()

    @property
    def actual_snr_db(self) -> float:
        """What the paper's channel sounder would report."""
        return actual_snr_db(self.frequency_response(), self.noise_var)

    @property
    def measured_snr_db(self) -> float:
        """What the receiver NIC would report (drives rate adaptation)."""
        return measured_snr_db(self.frequency_response(), self.noise_var)

    def data_subcarrier_snrs(self) -> np.ndarray:
        """Linear per-data-subcarrier SNRs (ground truth)."""
        return per_subcarrier_snr(self.frequency_response(), self.noise_var)
