"""Channel sounder: ground-truth SNR figures (substitute for the paper's
channel sounder equipment) plus the NIC's flawed estimate.

Two SNR notions appear in Fig. 2:

* **actual SNR** — what the sounder reports: average received signal power
  over noise power, i.e. the arithmetic mean of per-subcarrier SNRs.
* **measured SNR** — what the receiver NIC reports.  The paper notes this
  estimate "ignores frequency selective fading and is dragged to a low
  value by those fading subcarriers"; the post-ZF-equalisation effective
  SNR (the harmonic mean of per-subcarrier SNRs, i.e. the inverse of the
  average noise-enhancement) has exactly that property and is what NICs
  derive from EVM.
"""

from __future__ import annotations

import numpy as np

from repro.phy.ofdm import DATA_BINS, subcarrier_noise_variance

__all__ = [
    "per_subcarrier_snr",
    "actual_snr_db",
    "measured_snr_db",
]

_TINY = 1e-15


def per_subcarrier_snr(h: np.ndarray, time_noise_var: float) -> np.ndarray:
    """Linear SNR on each data subcarrier for unit-energy symbols."""
    h = np.asarray(h, dtype=np.complex128)
    gains = np.abs(h[DATA_BINS] if h.size == 64 else h) ** 2
    noise = max(subcarrier_noise_variance(time_noise_var), _TINY)
    return gains / noise


def actual_snr_db(h: np.ndarray, time_noise_var: float) -> float:
    """Sounder-style SNR: arithmetic mean of per-subcarrier SNRs, in dB."""
    snrs = per_subcarrier_snr(h, time_noise_var)
    return float(10.0 * np.log10(max(snrs.mean(), _TINY)))


def measured_snr_db(h: np.ndarray, time_noise_var: float) -> float:
    """NIC-style SNR: harmonic mean of per-subcarrier SNRs, in dB.

    Always <= :func:`actual_snr_db` (AM–HM inequality), with the gap
    growing with frequency selectivity — the second cause of the paper's
    SNR gap.
    """
    snrs = np.maximum(per_subcarrier_snr(h, time_noise_var), _TINY)
    harmonic = snrs.size / np.sum(1.0 / snrs)
    return float(10.0 * np.log10(max(harmonic, _TINY)))
