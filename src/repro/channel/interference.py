"""Interference sources for the robustness experiments (Fig. 10d).

The paper injects random *pulse signals* to emulate strong co-channel
interference (hidden WLAN nodes, ZigBee).  ``PulseInterferer`` adds
high-power wideband bursts of roughly one OFDM-symbol duration at random
positions in the waveform; when such a burst lands on a silence symbol
its subcarrier energy rises above the detection threshold and the silence
is missed (a false negative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import complex_gaussian
from repro.phy.params import SYMBOL_SAMPLES
from repro.utils.rng import RngLike, make_rng

__all__ = ["PulseInterferer"]


@dataclass
class PulseInterferer:
    """Random strong pulses.

    Parameters
    ----------
    pulse_power:
        Per-sample power of each burst (the paper's pulses dwarf the
        signal, whose average power is 1.0 in this library).
    symbol_probability:
        Probability that any given OFDM-symbol-length window carries a
        burst.
    burst_samples:
        Burst duration; defaults to one OFDM symbol (80 samples).
    """

    pulse_power: float = 10.0
    symbol_probability: float = 0.05
    burst_samples: int = SYMBOL_SAMPLES
    rng: RngLike = None

    def __post_init__(self):
        if self.pulse_power < 0:
            raise ValueError("pulse_power must be non-negative")
        if not 0.0 <= self.symbol_probability <= 1.0:
            raise ValueError("symbol_probability must be in [0, 1]")
        self.rng = make_rng(self.rng)

    def apply(self, waveform: np.ndarray) -> np.ndarray:
        """Return ``waveform`` with random bursts added."""
        waveform = np.asarray(waveform, dtype=np.complex128).copy()
        n_windows = waveform.size // self.burst_samples
        if n_windows == 0 or self.symbol_probability == 0.0:
            return waveform
        hits = self.rng.random(n_windows) < self.symbol_probability
        for w in np.nonzero(hits)[0]:
            start = w * self.burst_samples
            stop = min(start + self.burst_samples, waveform.size)
            waveform[start:stop] += complex_gaussian(
                stop - start, self.pulse_power, self.rng
            )
        return waveform
