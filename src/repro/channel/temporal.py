"""Temporal channel evolution at walking speed (Gauss–Markov / Jakes).

The paper's mobile traces move the receiver at ≈ 3.4 mph (1.52 m/s); at a
2.4 GHz carrier that is a maximum Doppler of f_d ≈ 12 Hz and a coherence
time of tens of milliseconds — which is why per-subcarrier EVM is stable
over the 10–40 ms gaps of Fig. 7 and CoS can predict subcarrier quality
one packet ahead.

Each tap evolves as a first-order Gauss–Markov process whose one-step
correlation follows the Jakes autocorrelation rho(tau) = J0(2 pi f_d tau);
tap powers are preserved, so the frequency-selectivity *pattern* drifts
while its statistics stay put.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.special import j0

from repro.channel.awgn import complex_gaussian
from repro.channel.multipath import TappedDelayLine
from repro.utils.rng import RngLike, make_rng

__all__ = ["jakes_correlation", "doppler_for_speed", "GaussMarkovEvolution"]

SPEED_OF_LIGHT = 299_792_458.0
WALKING_SPEED_MPS = 1.52  # 3.4 mph
DEFAULT_CARRIER_HZ = 2.412e9  # 802.11g channel 1


def doppler_for_speed(speed_mps: float = WALKING_SPEED_MPS,
                      carrier_hz: float = DEFAULT_CARRIER_HZ) -> float:
    """Maximum Doppler shift f_d = v / lambda."""
    if speed_mps < 0:
        raise ValueError("speed must be non-negative")
    return speed_mps * carrier_hz / SPEED_OF_LIGHT


def jakes_correlation(tau_s: float, doppler_hz: float) -> float:
    """Jakes channel autocorrelation rho(tau) = J0(2 pi f_d tau)."""
    return float(j0(2.0 * np.pi * doppler_hz * abs(tau_s)))


@dataclass
class GaussMarkovEvolution:
    """Evolve a tapped delay line through time.

    Parameters
    ----------
    tdl:
        The channel to evolve (mutated in place by :meth:`advance`).
    doppler_hz:
        Maximum Doppler shift; defaults to walking speed at 2.4 GHz.
    rng:
        Innovation source.
    """

    tdl: TappedDelayLine
    doppler_hz: float = field(default_factory=doppler_for_speed)
    rng: RngLike = None

    def __post_init__(self):
        self.rng = make_rng(self.rng)
        # Tap powers are pinned at their initial values so the PDP (and the
        # average SNR bookkeeping) is invariant under evolution.
        self._tap_power = np.abs(self.tdl.taps) ** 2

    def advance(self, tau_s: float) -> TappedDelayLine:
        """Advance the channel by ``tau_s`` seconds and return it.

        h(t + tau) = rho * h(t) + sqrt(1 - rho^2) * w,  w ~ CN(0, PDP),
        which realises exactly the Jakes correlation at lag tau.
        """
        if tau_s < 0:
            raise ValueError("tau_s must be non-negative")
        if tau_s == 0:
            return self.tdl
        rho = jakes_correlation(tau_s, self.doppler_hz)
        rho = float(np.clip(rho, -1.0, 1.0))
        innovation = complex_gaussian(self.tdl.taps.shape, 1.0, self.rng)
        innovation = innovation * np.sqrt(self._tap_power)
        self.tdl.taps = rho * self.tdl.taps + np.sqrt(1.0 - rho * rho) * innovation
        return self.tdl

    def snapshot(self) -> TappedDelayLine:
        """An independent copy of the current channel state."""
        return TappedDelayLine(taps=self.tdl.taps.copy())
