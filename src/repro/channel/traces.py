"""Channel trace recording and replay.

The paper's measurements are trace-driven ("only mobile traces are
presented…").  This module records a channel's evolution — the complex
taps at each step — to an ``.npz`` file and replays it later, so an
experiment can be re-run bit-for-bit against the *same* fading trajectory
(e.g. to compare two CoS variants on identical channels).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.channel.multipath import TappedDelayLine

__all__ = ["ChannelTrace", "TraceRecorder", "ReplayChannelSequence"]


@dataclass
class ChannelTrace:
    """A recorded fading trajectory.

    Attributes
    ----------
    taps:
        ``(n_steps, n_taps)`` complex tap snapshots.
    timestamps_s:
        Monotone times of each snapshot.
    """

    taps: np.ndarray
    timestamps_s: np.ndarray

    def __post_init__(self):
        self.taps = np.atleast_2d(np.asarray(self.taps, dtype=np.complex128))
        self.timestamps_s = np.asarray(self.timestamps_s, dtype=np.float64)
        if self.taps.shape[0] != self.timestamps_s.size:
            raise ValueError("one timestamp per tap snapshot required")
        if self.timestamps_s.size and np.any(np.diff(self.timestamps_s) < 0):
            raise ValueError("timestamps must be monotone non-decreasing")

    @property
    def n_steps(self) -> int:
        return self.taps.shape[0]

    def save(self, path: Union[str, Path]) -> None:
        """Persist to ``.npz``."""
        np.savez_compressed(
            Path(path), taps=self.taps, timestamps_s=self.timestamps_s
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChannelTrace":
        with np.load(Path(path)) as data:
            return cls(taps=data["taps"], timestamps_s=data["timestamps_s"])


class TraceRecorder:
    """Record a channel's taps as an experiment evolves it."""

    def __init__(self):
        self._taps: List[np.ndarray] = []
        self._times: List[float] = []
        self._clock = 0.0

    def snapshot(self, tdl: TappedDelayLine, elapsed_s: float = 0.0) -> None:
        """Record the current taps, ``elapsed_s`` after the previous one."""
        if elapsed_s < 0:
            raise ValueError("elapsed_s must be non-negative")
        self._clock += elapsed_s
        self._taps.append(tdl.taps.copy())
        self._times.append(self._clock)

    def finish(self) -> ChannelTrace:
        if not self._taps:
            raise ValueError("nothing recorded")
        return ChannelTrace(
            taps=np.stack(self._taps), timestamps_s=np.array(self._times)
        )


class ReplayChannelSequence:
    """Step through a recorded trace, yielding TappedDelayLine states.

    Drop-in for experiments that call ``channel.evolve`` between packets:
    instead, call :meth:`next_channel` to get the channel for each packet
    in recorded order.
    """

    def __init__(self, trace: ChannelTrace):
        if trace.n_steps == 0:
            raise ValueError("empty trace")
        self.trace = trace
        self._index = 0

    @property
    def exhausted(self) -> bool:
        return self._index >= self.trace.n_steps

    def next_channel(self) -> TappedDelayLine:
        """The next recorded channel state; raises past the end."""
        if self.exhausted:
            raise StopIteration("trace exhausted")
        tdl = TappedDelayLine(taps=self.trace.taps[self._index].copy())
        self._index += 1
        return tdl

    def rewind(self) -> None:
        self._index = 0
