"""Additive white Gaussian noise."""

from __future__ import annotations

import numpy as np

__all__ = ["add_awgn", "complex_gaussian"]


def complex_gaussian(shape, variance: float, rng: np.random.Generator) -> np.ndarray:
    """Circularly-symmetric complex Gaussian samples with total variance."""
    if variance < 0:
        raise ValueError("variance must be non-negative")
    scale = np.sqrt(variance / 2.0)
    return scale * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


def add_awgn(waveform: np.ndarray, noise_var: float, rng: np.random.Generator) -> np.ndarray:
    """Return ``waveform`` plus complex AWGN of per-sample variance ``noise_var``."""
    waveform = np.asarray(waveform, dtype=np.complex128)
    if noise_var == 0:
        return waveform.copy()
    return waveform + complex_gaussian(waveform.shape, noise_var, rng)
