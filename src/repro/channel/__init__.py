"""Indoor wireless channel substrate (the paper's lab, in software).

Provides frequency-selective multipath with named severity positions
(A/B/C), AWGN, walking-speed temporal evolution, pulse interference, and
the sounder/NIC SNR dichotomy behind the paper's SNR gap.
"""

from repro.channel.awgn import add_awgn, complex_gaussian
from repro.channel.interference import PulseInterferer
from repro.channel.link import IndoorChannel
from repro.channel.multipath import (
    POSITION_PROFILES,
    TappedDelayLine,
    exponential_pdp,
    rayleigh_taps,
)
from repro.channel.sounder import actual_snr_db, measured_snr_db, per_subcarrier_snr
from repro.channel.traces import ChannelTrace, ReplayChannelSequence, TraceRecorder
from repro.channel.temporal import (
    GaussMarkovEvolution,
    doppler_for_speed,
    jakes_correlation,
)

__all__ = [
    "add_awgn",
    "complex_gaussian",
    "PulseInterferer",
    "IndoorChannel",
    "POSITION_PROFILES",
    "TappedDelayLine",
    "exponential_pdp",
    "rayleigh_taps",
    "actual_snr_db",
    "measured_snr_db",
    "per_subcarrier_snr",
    "ChannelTrace",
    "ReplayChannelSequence",
    "TraceRecorder",
    "GaussMarkovEvolution",
    "doppler_for_speed",
    "jakes_correlation",
]
