"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info``
    Print the 802.11a rate table, rate-adaptation thresholds, channel
    severity profiles, and the default control-rate table.
``experiments [fig2 fig3 ...] [--workers N]``
    Run the figure harnesses (all by default) and print their tables.
    ``--workers N`` executes trials on an N-process pool via
    :mod:`repro.engine` (default: the ``REPRO_WORKERS`` environment
    flag, else serial); results are bit-for-bit identical either way.
``link --snr DB --position P --packets N``
    Run a closed-loop CoS session and print its statistics.  With
    ``--trace-out trace.jsonl`` every stage span and per-exchange flight
    record is written as JSONL; with ``--metrics-out metrics.prom`` the
    metrics registry is exported (Prometheus text, or JSON when the path
    ends in ``.json``).
``net run <scenario> [--control cos|explicit] [--medium culled|dense-exact]
[--trials N] [--workers N]``
    Run a multi-node scenario (a ``ScenarioSpec`` JSON file or a
    built-in name — ``net list`` shows those, with node/BSS counts and
    the offered traffic) on the event-driven spatial simulator and
    print per-node goodput, delivery, control latency, and fairness
    stats.  ``--medium`` switches between the grid-culled medium
    (default) and the all-pairs ``dense-exact`` debug mode.  ``--json PATH`` exports the
    mean-over-trials summary (``-`` for stdout); ``--trace-out`` /
    ``--metrics-out`` work as for ``link``.  ``--ledger-out`` writes the
    first trial's per-node airtime ledger as JSON and ``--timeline-out``
    its net event trace as JSONL (both accept ``-`` for stdout; either
    flag attaches a :class:`repro.net.lens.NetLens` to every trial, so
    the summary JSON also gains ``ledger``/``profile`` sections).
    Trials go through the deterministic engine: serial and
    ``--workers N`` results are bit-for-bit identical.
    ``--fidelity table|phy|surrogate`` overrides how CoS message
    delivery is decided (analytic operating points, live PHY runs, or
    the prebuilt measured-PHY surrogate table).  ``--controller NAME``
    attaches a pluggable rate controller (:mod:`repro.ratectl`;
    ``REPRO_CONTROLLER`` is the env fallback, ``net list`` prints the
    set) and ``--error-model sigmoid|surrogate`` switches data-frame
    fates between the analytic sigmoid and the measured-PHY PRR
    curves.
``net compare [--scenario S ...] [--controllers a,b] [--trials N]``
    Run the rate-controller matrix over one or more scenarios (default:
    all registered controllers on ``hidden-node``, surrogate fates) and
    print one comparison table per scenario; ``--json`` exports the
    report(s).
``net tables build|inspect``
    Build (``--quick`` for a smoke-test grid, ``--out`` to redirect,
    ``--profile A|B|C`` for the paper's measurement positions) or
    summarise the measured-PHY surrogate table that
    ``cos_fidelity="surrogate"`` replays; the active default honours
    the ``REPRO_SURROGATE_TABLE`` environment override.
``engine worker --queue DIR [--drain] [--lease S] [--max-attempts K]``
    Serve trial chunks from a filesystem work queue (see
    :mod:`repro.engine.queue`).  Start any number of these — on this
    host or on others sharing ``DIR`` — against sweeps submitted by
    :class:`repro.engine.ShardedExecutor`; leases + heartbeats recover
    chunks from crashed workers and ``--drain`` exits once the queue is
    empty.
``engine serve [--host H] [--port P]``
    Run the sim-as-a-service HTTP front-end
    (:mod:`repro.engine.service`): ``POST /jobs`` submits ``fig2`` /
    ``net`` / ``noop`` jobs, ``GET /jobs/<id>[/result]`` polls and
    fetches, ``GET /metrics`` exports Prometheus text.
``obs summarize trace.jsonl``
    Analyse a recorded trace offline: per-stage latency percentiles,
    exchange span coverage, the failure-cause breakdown, and — for
    net-lens traces — event counts and net frame outcomes.
``obs timeline trace.jsonl [--width N]``
    Render per-node ASCII airtime timelines and a channel-utilization
    table from a net-lens event trace.

Global flags: ``--log-level debug|info|warning|error`` and ``--quiet``
control the ``repro.*`` logger hierarchy (diagnostics go to stderr;
result tables always go to stdout).

Sweep-running commands (``experiments``, ``report``, ``net run``) accept
``--store [DIR]`` to cache trial results in a content-addressed store
(re-runs replay completed trials bit-for-bit) and ``--no-store`` to
force caching off; the ``REPRO_STORE=<dir>`` environment flag is the
flagless equivalent of ``--store DIR``.  Default: off.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

__all__ = ["main", "build_parser", "setup_logging"]

_LOG_LEVELS = ("debug", "info", "warning", "error")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoS (Communication through Symbol Silence) reproduction toolkit",
    )
    parser.add_argument(
        "--log-level", choices=_LOG_LEVELS, default="info",
        help="verbosity of the repro.* logger hierarchy (default: info)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress diagnostics (equivalent to --log-level error)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print rate tables and channel profiles")

    def add_store_flags(p: argparse.ArgumentParser) -> None:
        group = p.add_mutually_exclusive_group()
        group.add_argument(
            "--store", nargs="?", const=".repro-store", default=None,
            metavar="DIR",
            help="cache trial results in a content-addressed store at DIR "
                 "(default: .repro-store); re-runs replay completed trials "
                 "bit-for-bit.  REPRO_STORE=<dir> is the env equivalent",
        )
        group.add_argument(
            "--no-store", action="store_true",
            help="disable the trial result store (overrides REPRO_STORE)",
        )

    exp = sub.add_parser("experiments", help="run figure harnesses")
    add_store_flags(exp)
    exp.add_argument("figures", nargs="*", help="subset, e.g. fig2 fig9 ablations")
    exp.add_argument("--workers", type=int, default=None, metavar="N",
                     help="trial-engine worker processes (0 = serial; "
                          "default: REPRO_WORKERS or serial)")
    exp.add_argument("--payload-octets", type=int, default=None, metavar="B",
                     help="network stage: data payload per frame")
    exp.add_argument("--data-rate-mbps", type=int, default=None, metavar="R",
                     help="network stage: 802.11a data rate")
    exp.add_argument("--packets-per-station", type=int, default=None, metavar="P",
                     help="network stage: frames each station offers")
    exp.add_argument("--network-backend", choices=["fast", "net"], default=None,
                     help="network stage: contention model (fast = slotted "
                          "DCF, net = spatial SINR simulator)")

    net = sub.add_parser(
        "net", help="run multi-node WLAN scenarios (repro.net)"
    )
    net_sub = net.add_subparsers(dest="net_command", required=True)
    net_list = net_sub.add_parser("list", help="list built-in scenarios")
    net_run = net_sub.add_parser(
        "run", help="run a scenario file or built-in by name"
    )
    net_run.add_argument(
        "scenario",
        help="path to a ScenarioSpec JSON file, or a built-in name "
             "(see 'repro net list')",
    )
    net_run.add_argument("--control", choices=["cos", "explicit"], default=None,
                         help="override the scenario's control scheme")
    net_run.add_argument("--medium", choices=["culled", "dense-exact"],
                         default=None,
                         help="override the scenario's medium mode "
                              "(culled = grid-indexed interference culling; "
                              "dense-exact = all-pairs debug semantics)")
    net_run.add_argument("--trials", type=int, default=1, metavar="N",
                         help="independent trials (engine sweep)")
    net_run.add_argument("--seed", type=int, default=0)
    net_run.add_argument("--workers", type=int, default=None, metavar="N",
                         help="trial-engine worker processes (0 = serial; "
                              "default: REPRO_WORKERS or serial)")
    net_run.add_argument("--json", default=None, metavar="PATH",
                         help="write the mean-over-trials summary as JSON "
                              "('-' for stdout)")
    net_run.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write span JSONL trace to PATH")
    net_run.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="export the metrics registry (Prometheus text; "
                              "JSON if PATH ends with .json)")
    net_run.add_argument("--ledger-out", default=None, metavar="PATH",
                         help="write the first trial's per-node airtime "
                              "ledger as JSON ('-' for stdout)")
    net_run.add_argument("--timeline-out", default=None, metavar="PATH",
                         help="write the first trial's net event trace as "
                              "JSONL ('-' for stdout; feed to "
                              "'repro obs timeline')")
    net_run.add_argument("--fidelity", choices=["table", "phy", "surrogate"],
                         default=None,
                         help="override the scenario's CoS fidelity "
                              "(surrogate = measured-PHY tables, see "
                              "'repro net tables build')")
    net_run.add_argument("--controller", default=None, metavar="NAME",
                         help="rate controller (repro.ratectl), e.g. "
                              "minstrel, samplerate, snr-threshold; default: "
                              "REPRO_CONTROLLER or the scenario's legacy "
                              "staircase")
    net_run.add_argument("--error-model", choices=["sigmoid", "surrogate"],
                         default=None, dest="error_model",
                         help="override how data-frame fates are drawn "
                              "(surrogate = measured-PHY PRR curves)")
    add_store_flags(net_run)

    net_cmp = net_sub.add_parser(
        "compare", help="run the rate-controller matrix over a scenario"
    )
    net_cmp.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario file or built-in name; repeatable (default: "
             "hidden-node)",
    )
    net_cmp.add_argument("--controllers", default=None, metavar="CSV",
                         help="comma-separated controller names (default: "
                              "the full matrix)")
    net_cmp.add_argument("--trials", type=int, default=3, metavar="N",
                         help="independent trials per cell (default: 3)")
    net_cmp.add_argument("--seed", type=int, default=0)
    net_cmp.add_argument("--workers", type=int, default=None, metavar="N",
                         help="trial-engine worker processes (0 = serial; "
                              "default: REPRO_WORKERS or serial)")
    net_cmp.add_argument("--error-model", choices=["sigmoid", "surrogate"],
                         default="surrogate", dest="error_model",
                         help="frame-fate error model for every cell "
                              "(default: surrogate — measured-PHY curves)")
    net_cmp.add_argument("--json", default=None, metavar="PATH",
                         help="write the comparison report as JSON "
                              "('-' for stdout)")
    add_store_flags(net_cmp)

    net_tables = net_sub.add_parser(
        "tables", help="build/inspect measured-PHY surrogate tables"
    )
    tables_sub = net_tables.add_subparsers(dest="tables_command", required=True)
    t_build = tables_sub.add_parser(
        "build", help="sweep the real PHY and write a surrogate table"
    )
    t_build.add_argument("--out", default=None, metavar="PATH",
                         help="output JSON path (default: the committed "
                              "default table the net layer loads)")
    t_build.add_argument("--quick", action="store_true",
                         help="coarse grid, few packets — a smoke-test "
                              "build, not a committable table")
    t_build.add_argument("--profile", choices=["A", "B", "C"], default=None,
                         help="channel severity profile to sweep (default: "
                              "A — the committed default table; B/C write "
                              "profile-suffixed tables next to it)")
    t_build.add_argument("--workers", type=int, default=None, metavar="N",
                         help="trial-engine worker processes (0 = serial; "
                              "default: REPRO_WORKERS or serial)")
    t_inspect = tables_sub.add_parser(
        "inspect", help="summarise a surrogate table"
    )
    t_inspect.add_argument("path", nargs="?", default=None,
                           help="table JSON (default: the active default "
                                "table, honouring REPRO_SURROGATE_TABLE)")

    link = sub.add_parser("link", help="run a closed-loop CoS session")
    link.add_argument("--snr", type=float, default=15.0, help="measured SNR in dB")
    link.add_argument("--position", default="A", choices=["A", "B", "C"])
    link.add_argument("--packets", type=int, default=50)
    link.add_argument("--payload", type=int, default=512, help="payload bytes")
    link.add_argument("--seed", type=int, default=5)
    link.add_argument("--predictor", action="store_true", help="enable EVM smoothing")
    link.add_argument("--trace-out", default=None, metavar="PATH",
                      help="write span + flight-record JSONL trace to PATH")
    link.add_argument("--metrics-out", default=None, metavar="PATH",
                      help="export the metrics registry (Prometheus text; "
                           "JSON if PATH ends with .json)")

    obs_p = sub.add_parser("obs", help="observability utilities")
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    summ = obs_sub.add_parser(
        "summarize", help="per-stage latency + failure causes from a trace"
    )
    summ.add_argument("trace", help="path to a trace.jsonl produced by --trace-out")
    summ.add_argument("--json", action="store_true",
                      help="emit a machine-readable JSON summary")
    tl = obs_sub.add_parser(
        "timeline", help="ASCII per-node airtime timelines from a net trace"
    )
    tl.add_argument("trace", help="path to a JSONL net event trace "
                                  "(e.g. from 'repro net run --timeline-out')")
    tl.add_argument("--width", type=int, default=72, metavar="N",
                    help="timeline width in cells (default: 72)")

    report = sub.add_parser("report", help="run experiments and write a markdown report")
    report.add_argument("path", nargs="?", default="RESULTS.md")
    report.add_argument("--stages", nargs="*", default=None,
                        help="subset, e.g. fig2 waterfall")
    report.add_argument("--workers", type=int, default=None, metavar="N",
                        help="trial-engine worker processes (0 = serial; "
                             "default: REPRO_WORKERS or serial)")
    add_store_flags(report)

    eng = sub.add_parser(
        "engine", help="sweep-fabric utilities (work-queue workers, service)"
    )
    eng_sub = eng.add_subparsers(dest="engine_command", required=True)
    worker = eng_sub.add_parser(
        "worker", help="serve trial chunks from a filesystem work queue"
    )
    worker.add_argument("--queue", required=True, metavar="DIR",
                        help="queue root directory (shared with the "
                             "submitting ShardedExecutor, e.g. over NFS)")
    worker.add_argument("--name", default=None, metavar="ID",
                        help="worker id recorded in claims "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--drain", action="store_true",
                        help="exit once no claimable work remains "
                             "(default: keep polling for new jobs)")
    worker.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="idle poll interval in seconds (default: 0.2)")
    worker.add_argument("--lease", type=float, default=30.0, metavar="S",
                        help="chunk lease in seconds; a claim older than "
                             "this with no heartbeat is re-claimed "
                             "(default: 30)")
    worker.add_argument("--max-attempts", type=int, default=3, metavar="K",
                        help="poison a chunk after K expired leases "
                             "(default: 3)")
    worker.add_argument("--max-seconds", type=float, default=None, metavar="S",
                        help="exit after S seconds even if work remains")
    serve = eng_sub.add_parser(
        "serve", help="run the sim-as-a-service HTTP front-end"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8737,
                       help="TCP port (0 = ephemeral; default: 8737)")
    serve.add_argument("--max-workers", type=int, default=4, metavar="N",
                       help="concurrent job threads (default: 4)")
    return parser


def setup_logging(level: str = "info", quiet: bool = False) -> None:
    """Configure the ``repro`` logger hierarchy (idempotent)."""
    logger = logging.getLogger("repro")
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(logging.ERROR if quiet else getattr(logging, level.upper()))


def _cmd_info() -> int:
    from repro.cos.rate_control import DEFAULT_RM_TABLE
    from repro.channel.multipath import POSITION_PROFILES
    from repro.experiments.common import print_table
    from repro.phy.params import RATE_TABLE
    from repro.rateadapt import DEFAULT_THRESHOLDS

    print_table(
        ["Mbps", "modulation", "code rate", "bits/sym", "min SNR dB", "Rm low", "Rm high"],
        [
            (
                mbps,
                rate.modulation,
                str(rate.code_rate),
                rate.n_dbps,
                DEFAULT_THRESHOLDS[mbps],
                int(DEFAULT_RM_TABLE[mbps][0]),
                int(DEFAULT_RM_TABLE[mbps][1]),
            )
            for mbps, rate in sorted(RATE_TABLE.items())
        ],
        title="802.11a rates, adaptation thresholds, control-rate table",
    )
    print_table(
        ["position", "taps", "decay (taps)"],
        [
            (name, int(p["n_taps"]), p["decay_taps"])
            for name, p in sorted(POSITION_PROFILES.items())
        ],
        title="Indoor severity profiles",
    )
    return 0


def _apply_store_flags(args) -> None:
    """Install the process-wide default result store per --store/--no-store.

    Harnesses call the engine with ``store=None`` (defer to the default),
    so setting the default here threads the store through every sweep the
    command runs without each harness needing a parameter.
    """
    from repro.engine.store import ResultStore, set_default_store

    log = logging.getLogger("repro.cli")
    if getattr(args, "no_store", False):
        set_default_store(None)
    elif getattr(args, "store", None):
        store = ResultStore(args.store)
        set_default_store(store)
        log.info("trial result store: %s", store.root)


def _cmd_experiments(args) -> int:
    from repro.experiments.runner import main as run_experiments

    _apply_store_flags(args)

    argv = list(args.figures)
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    for flag, value in (
        ("--payload-octets", args.payload_octets),
        ("--data-rate-mbps", args.data_rate_mbps),
        ("--packets-per-station", args.packets_per_station),
        ("--network-backend", args.network_backend),
    ):
        if value is not None:
            argv += [flag, str(value)]
    return run_experiments(argv)


def _cmd_net_tables(args, log) -> int:
    import dataclasses

    import numpy as np

    from repro.experiments.common import print_table
    from repro.phy import surrogate

    if args.tables_command == "build":
        profile = args.profile or "A"
        spec = surrogate.profile_spec(profile)
        if args.quick:
            # A sanity-check build: tiny probes on a coarse grid.  The
            # spec hash keeps it from masquerading as the default table.
            spec = dataclasses.replace(
                spec, channel_seeds=(0,), n_packets=8, sinr_step_db=8.0,
                cos_n_packets=4,
            )
        out = args.out or surrogate.profile_table_path(profile)
        table = surrogate.build_surrogate_table(spec, workers=args.workers)
        table.save(out)
        log.info(
            "surrogate table %s written to %s (max |fit-raw| %.4f)",
            table.spec_hash, out, table.max_fit_error(),
        )
        print(f"wrote {out} (spec {table.spec_hash})")
        return 0

    # inspect
    path = args.path or surrogate.default_table_path()
    try:
        table = surrogate.SurrogateTable.load(path)
    except FileNotFoundError:
        log.error("no surrogate table at %s — run 'repro net tables build'",
                  path)
        return 2
    except ValueError as exc:
        log.error("invalid surrogate table %s: %s", path, exc)
        return 2
    grid = table.sinr_grid_db
    rows = []
    for rate in sorted(table.prr_fit):
        fit = table.prr_fit[rate]
        above = np.flatnonzero(fit >= 0.9)
        knee = f"{grid[above[0]]:g} dB" if above.size else "> grid"
        rows.append((
            rate,
            f"{fit[0]:.2f}..{fit[-1]:.2f}",
            knee,
            f"{float(np.max(np.abs(fit - table.prr_raw[rate]))):.4f}",
        ))
    print_table(
        ["rate (Mbps)", "PRR span", "PRR>=0.9 at", "max |fit-raw|"],
        rows,
        title=(
            f"Surrogate table {table.spec_hash} (v{table.version}) — "
            f"SINR {grid[0]:g}..{grid[-1]:g} dB step "
            f"{table.spec.sinr_step_db:g}, {table.spec.n_packets} pkts x "
            f"{len(table.spec.channel_seeds)} seed(s), position "
            f"{table.spec.position!r}"
        ),
    )
    cos = table.cos_accuracy
    print(
        f"CoS accuracy: {float(cos.min()):.2f}..{float(cos.max()):.2f} over "
        f"{int(table.cos_grid_db[0])}..{int(table.cos_grid_db[-1])} dB "
        f"(phy-fidelity semantics: seed {table.spec.cos_seed}, "
        f"{table.spec.cos_n_packets} packets)"
    )
    return 0


def _cmd_net_compare(args, log) -> int:
    import json
    import os

    from repro.experiments.common import print_table
    from repro.net import BUILTIN_SCENARIOS, ScenarioSpec, builtin_scenario
    from repro.ratectl import CONTROLLER_MATRIX, compare_controllers, \
        comparison_rows
    from repro.utils.env import env_int

    if args.trials < 1:
        log.error("--trials must be at least 1 (got %d)", args.trials)
        return 2
    controllers = tuple(CONTROLLER_MATRIX)
    if args.controllers:
        controllers = tuple(
            c.strip() for c in args.controllers.split(",") if c.strip()
        )
    specs = []
    for name in (args.scenario or ["hidden-node"]):
        if os.path.exists(name):
            try:
                specs.append(ScenarioSpec.load(name))
            except (ValueError, TypeError, KeyError,
                    json.JSONDecodeError) as exc:
                log.error("invalid scenario file %s: %s", name, exc)
                return 2
        elif name in BUILTIN_SCENARIOS:
            specs.append(builtin_scenario(name))
        else:
            log.error(
                "%r is neither a scenario file nor a built-in "
                "(see 'repro net list')", name,
            )
            return 2
    _apply_store_flags(args)
    workers = args.workers
    if workers is None:
        workers = env_int("REPRO_WORKERS", 0)
        if workers:
            log.info("using REPRO_WORKERS=%d worker processes", workers)

    reports = []
    for spec in specs:
        try:
            report = compare_controllers(
                spec, controllers=controllers, n_trials=args.trials,
                seed=args.seed, workers=workers,
                error_model=args.error_model,
            )
        except ValueError as exc:
            log.error("%s", exc)
            return 2
        reports.append(report)
        print_table(
            ["controller", "transport", "goodput (Mbps)", "fairness",
             "retries", "drops", "ctrl gen", "ctrl del", "ctrl air %"],
            comparison_rows(report),
            title=(
                f"Rate-controller matrix on {report['scenario']} "
                f"[{report['error_model']} fates, {report['n_trials']} "
                f"trial(s), seed {report['seed']}]"
            ),
        )
    if args.json:
        payload = reports[0] if len(reports) == 1 else reports
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            log.info("comparison written to %s", args.json)
    return 0


def _cmd_net(args) -> int:
    import json
    import os

    import repro.obs as obs
    from repro.experiments.common import print_table
    from repro.net import (
        BUILTIN_SCENARIOS,
        ScenarioSpec,
        builtin_scenario,
        run_scenario_sweep,
        summarize_results,
    )
    from repro.net.traffic import mean_rate_pps
    from repro.utils.env import env_int, env_str

    log = logging.getLogger("repro.cli")

    if args.net_command == "list":
        from repro.ratectl import available_controllers

        rows = []
        for name, factory in sorted(BUILTIN_SCENARIOS.items()):
            spec = factory()
            backlogged = sum(f.n_packets for f in spec.flows)
            rate = sum(mean_rate_pps(t) for t in spec.traffic)
            traffic = (f"{rate:.0f} pps" if spec.traffic
                       else f"{backlogged} pkts backlogged")
            rows.append((
                name,
                len(spec.nodes),
                len(spec.bsses) or "-",
                traffic,
                spec.controller or "-",
                (factory.__doc__ or "").strip().splitlines()[0],
            ))
        print_table(
            ["scenario", "nodes", "bsses", "traffic", "controller",
             "description"],
            rows,
            title="Built-in repro.net scenarios",
        )
        print("rate controllers (--controller / REPRO_CONTROLLER): "
              + ", ".join(available_controllers()))
        return 0

    if args.net_command == "compare":
        return _cmd_net_compare(args, log)

    if args.net_command == "tables":
        return _cmd_net_tables(args, log)

    if args.trials < 1:
        log.error("--trials must be at least 1 (got %d)", args.trials)
        return 2
    if os.path.exists(args.scenario):
        try:
            spec = ScenarioSpec.load(args.scenario)
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as exc:
            log.error("invalid scenario file %s: %s", args.scenario, exc)
            return 2
    elif args.scenario in BUILTIN_SCENARIOS:
        spec = builtin_scenario(args.scenario)
    else:
        log.error(
            "%r is neither a scenario file nor a built-in (see 'repro net list')",
            args.scenario,
        )
        return 2
    _apply_store_flags(args)
    if args.control is not None:
        spec = spec.with_control(args.control)
    if args.medium is not None:
        spec = spec.with_medium(args.medium)
    if args.fidelity is not None:
        spec = spec.with_fidelity(args.fidelity)
    # --controller falls back to the REPRO_CONTROLLER environment flag;
    # reject unknown names here so the error names the available set
    # before any sweep starts.
    controller = args.controller
    if controller is None:
        controller = env_str("REPRO_CONTROLLER")
        if controller:
            log.info("using REPRO_CONTROLLER=%s", controller)
    if controller:
        from repro.ratectl import available_controllers

        if controller not in available_controllers():
            log.error(
                "unknown rate controller %r; available: %s",
                controller, ", ".join(available_controllers()),
            )
            return 2
        spec = spec.with_controller(controller)
    if args.error_model is not None:
        spec = spec.with_error_model(args.error_model)

    # --workers falls back to the REPRO_WORKERS environment flag (the
    # same resolution the engine applies; made explicit here so the CLI
    # log line reflects the effective value).
    workers = args.workers
    if workers is None:
        workers = env_int("REPRO_WORKERS", 0)
        if workers:
            log.info("using REPRO_WORKERS=%d worker processes", workers)

    # Either observability export needs a NetLens riding every trial.
    lens = True if (args.ledger_out or args.timeline_out) else None
    session = obs.configure(trace_out=args.trace_out) if args.trace_out else None
    try:
        results = run_scenario_sweep(
            spec, n_trials=args.trials, seed=args.seed, workers=workers,
            lens=lens,
        )
    finally:
        if session is not None:
            session.close()
            log.info("trace written to %s", args.trace_out)

    summary = summarize_results(results)
    print_table(
        ["node", "goodput (Mbps)", "delivery ratio", "completion",
         "ctrl latency (us)", "mean SINR (dB)"],
        [
            (
                name,
                stats["goodput_mbps"],
                stats["delivery_ratio"],
                stats["completion_ratio"],
                stats["mean_control_latency_us"],
                stats["mean_sinr_db"],
            )
            for name, stats in summary["per_node"].items()
        ],
        title=(
            f"Scenario {summary['scenario']} [{summary['control']} control, "
            + (f"{summary['controller']} controller, "
               if summary.get("controller") else "")
            + f"{summary['n_trials']} trial(s)] — aggregate "
            f"{summary['aggregate_goodput_mbps']:.3f} Mbps, fairness "
            f"{summary['fairness']:.3f}, collisions {summary['collisions']:.1f}, "
            f"ctrl airtime {summary['control_airtime_fraction'] * 100:.2f} %"
        ),
    )
    if args.json:
        text = json.dumps(summary, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            log.info("summary written to %s", args.json)
    if args.ledger_out:
        ledger = dict(results[0].ledger or {})
        ledger["scenario"] = summary["scenario"]
        ledger["control"] = summary["control"]
        text = json.dumps(ledger, indent=2)
        if args.ledger_out == "-":
            print(text)
        else:
            with open(args.ledger_out, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            log.info("airtime ledger written to %s", args.ledger_out)
    if args.timeline_out:
        events = results[0].events or []
        lines = "".join(json.dumps(ev) + "\n" for ev in events)
        if args.timeline_out == "-":
            sys.stdout.write(lines)
        else:
            with open(args.timeline_out, "w", encoding="utf-8") as fh:
                fh.write(lines)
            log.info("net event trace written to %s", args.timeline_out)
    if args.metrics_out:
        registry = obs.get_registry()
        if args.metrics_out.endswith(".json"):
            text = registry.to_json()
        else:
            text = registry.to_prometheus()
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        log.info("metrics written to %s", args.metrics_out)
    return 0


def _cmd_link(args) -> int:
    import repro.obs as obs
    from repro.channel import IndoorChannel
    from repro.cos import CosLink, EvmPredictor

    log = logging.getLogger("repro.cli")
    session = obs.configure(trace_out=args.trace_out) if args.trace_out else None

    channel = IndoorChannel.position(args.position, snr_db=args.snr, seed=args.seed)
    link = CosLink(channel=channel)
    if args.predictor:
        link.rx.predictor = EvmPredictor()
    try:
        stats = link.run(n_packets=args.packets, payload=bytes(args.payload))
    finally:
        if session is not None:
            session.close()
            log.info("trace written to %s", args.trace_out)
    print(f"position {args.position} @ measured {args.snr} dB "
          f"(actual {channel.actual_snr_db:.1f} dB), {args.packets} packets")
    print(f"  data PRR:                 {stats.prr * 100:6.2f} %")
    print(f"  control (whole packet):   {stats.control_accuracy * 100:6.2f} %")
    print(f"  control (per message):    {stats.message_accuracy * 100:6.2f} %")
    print(f"  control bits delivered:   {stats.control_bits_delivered}")
    print(f"  silence symbols inserted: {stats.total_silences}")

    if args.metrics_out:
        registry = obs.get_registry()
        if args.metrics_out.endswith(".json"):
            text = registry.to_json()
        else:
            text = registry.to_prometheus()
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        log.info("metrics written to %s", args.metrics_out)
    return 0


def _cmd_engine(args) -> int:
    log = logging.getLogger("repro.cli")

    if args.engine_command == "worker":
        from repro.engine.queue import worker_loop

        try:
            n = worker_loop(
                args.queue,
                worker_id=args.name,
                poll_s=args.poll,
                lease_s=args.lease,
                max_attempts=args.max_attempts,
                drain=args.drain,
                max_seconds=args.max_seconds,
            )
        except KeyboardInterrupt:  # pragma: no cover — interactive stop
            log.info("worker interrupted")
            return 130
        print(f"processed {n} chunk(s)")
        return 0

    # serve
    import asyncio

    from repro.engine.service import FabricService

    service = FabricService(args.host, args.port, max_workers=args.max_workers)

    async def _amain() -> None:
        await service.start()
        # Machine-readable line so tests/scripts can find an ephemeral port.
        print(f"listening on {service.url}", flush=True)
        await service.serve_forever()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:  # pragma: no cover — interactive stop
        log.info("service interrupted")
    finally:
        service.close()
    return 0


def _cmd_obs(args) -> int:
    import repro.obs as obs

    if args.obs_command == "timeline":
        print(obs.render_timeline(obs.read_jsonl(args.trace),
                                  width=args.width))
        return 0

    summary = obs.summarize_trace(args.trace)
    if args.json:
        import dataclasses
        import json

        print(json.dumps({
            "stages": [dataclasses.asdict(s) for s in summary.stages],
            "causes": summary.causes,
            "n_spans": summary.n_spans,
            "n_flights": summary.n_flights,
            "n_events": summary.n_events,
            "n_net_events": summary.n_net_events,
            "net_events": summary.net_events,
            "net_causes": summary.net_causes,
            "exchange_total_s": summary.exchange_total_s,
            "exchange_coverage": summary.exchange_coverage,
        }, indent=2))
    else:
        print(obs.format_summary(summary))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level, quiet=args.quiet)
    if args.command == "info":
        return _cmd_info()
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "link":
        return _cmd_link(args)
    if args.command == "net":
        return _cmd_net(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "report":
        from repro.analysis.report import write_report

        _apply_store_flags(args)
        path = write_report(args.path, stages=args.stages, workers=args.workers)
        print(f"wrote {path}")
        return 0
    if args.command == "engine":
        return _cmd_engine(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
