"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info``
    Print the 802.11a rate table, rate-adaptation thresholds, channel
    severity profiles, and the default control-rate table.
``experiments [fig2 fig3 ...]``
    Run the figure harnesses (all by default) and print their tables.
``link --snr DB --position P --packets N``
    Run a closed-loop CoS session and print its statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoS (Communication through Symbol Silence) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print rate tables and channel profiles")

    exp = sub.add_parser("experiments", help="run figure harnesses")
    exp.add_argument("figures", nargs="*", help="subset, e.g. fig2 fig9 ablations")

    link = sub.add_parser("link", help="run a closed-loop CoS session")
    link.add_argument("--snr", type=float, default=15.0, help="measured SNR in dB")
    link.add_argument("--position", default="A", choices=["A", "B", "C"])
    link.add_argument("--packets", type=int, default=50)
    link.add_argument("--payload", type=int, default=512, help="payload bytes")
    link.add_argument("--seed", type=int, default=5)
    link.add_argument("--predictor", action="store_true", help="enable EVM smoothing")

    report = sub.add_parser("report", help="run experiments and write a markdown report")
    report.add_argument("path", nargs="?", default="RESULTS.md")
    report.add_argument("--stages", nargs="*", default=None,
                        help="subset, e.g. fig2 waterfall")
    return parser


def _cmd_info() -> int:
    from repro.cos.rate_control import DEFAULT_RM_TABLE
    from repro.channel.multipath import POSITION_PROFILES
    from repro.experiments.common import print_table
    from repro.phy.params import RATE_TABLE
    from repro.rateadapt import DEFAULT_THRESHOLDS

    print_table(
        ["Mbps", "modulation", "code rate", "bits/sym", "min SNR dB", "Rm low", "Rm high"],
        [
            (
                mbps,
                rate.modulation,
                str(rate.code_rate),
                rate.n_dbps,
                DEFAULT_THRESHOLDS[mbps],
                int(DEFAULT_RM_TABLE[mbps][0]),
                int(DEFAULT_RM_TABLE[mbps][1]),
            )
            for mbps, rate in sorted(RATE_TABLE.items())
        ],
        title="802.11a rates, adaptation thresholds, control-rate table",
    )
    print_table(
        ["position", "taps", "decay (taps)"],
        [
            (name, int(p["n_taps"]), p["decay_taps"])
            for name, p in sorted(POSITION_PROFILES.items())
        ],
        title="Indoor severity profiles",
    )
    return 0


def _cmd_experiments(figures: List[str]) -> int:
    from repro.experiments.runner import main as run_experiments

    return run_experiments(figures)


def _cmd_link(args) -> int:
    from repro.channel import IndoorChannel
    from repro.cos import CosLink, EvmPredictor

    channel = IndoorChannel.position(args.position, snr_db=args.snr, seed=args.seed)
    link = CosLink(channel=channel)
    if args.predictor:
        link.rx.predictor = EvmPredictor()
    stats = link.run(n_packets=args.packets, payload=bytes(args.payload))
    print(f"position {args.position} @ measured {args.snr} dB "
          f"(actual {channel.actual_snr_db:.1f} dB), {args.packets} packets")
    print(f"  data PRR:                 {stats.prr * 100:6.2f} %")
    print(f"  control (whole packet):   {stats.control_accuracy * 100:6.2f} %")
    print(f"  control (per message):    {stats.message_accuracy * 100:6.2f} %")
    print(f"  control bits delivered:   {stats.control_bits_delivered}")
    print(f"  silence symbols inserted: {stats.total_silences}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "experiments":
        return _cmd_experiments(args.figures)
    if args.command == "link":
        return _cmd_link(args)
    if args.command == "report":
        from repro.analysis.report import write_report

        path = write_report(args.path, stages=args.stages)
        print(f"wrote {path}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
