"""CRC-32 as used for the IEEE 802.11 frame check sequence (FCS).

This is the standard CRC-32/ISO-HDLC polynomial (0x04C11DB7, reflected),
identical to ``zlib.crc32`` — implemented here table-driven so the PHY has
no dependency beyond numpy and the algorithm is explicit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc32", "append_fcs", "check_fcs", "FCS_LEN", "crc8"]

FCS_LEN = 4
_POLY_REFLECTED = 0xEDB88320


def _build_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint32)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table[byte] = crc
    return table


_TABLE = _build_table()


def crc32(data: bytes | bytearray) -> int:
    """Compute the CRC-32 of ``data`` (same value as ``zlib.crc32``)."""
    crc = 0xFFFFFFFF
    for byte in bytes(data):
        crc = (crc >> 8) ^ int(_TABLE[(crc ^ byte) & 0xFF])
    return crc ^ 0xFFFFFFFF


def crc8(data: bytes | bytearray) -> int:
    """CRC-8 (poly 0x07, init 0), as used by A-MPDU delimiters."""
    crc = 0
    for byte in bytes(data):
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ 0x07) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


def append_fcs(payload: bytes) -> bytes:
    """Return ``payload`` with its 4-byte little-endian FCS appended."""
    return payload + crc32(payload).to_bytes(FCS_LEN, "little")


def check_fcs(frame: bytes) -> bool:
    """Validate a frame produced by :func:`append_fcs`.

    Returns ``False`` for frames too short to carry an FCS.
    """
    if len(frame) < FCS_LEN:
        return False
    payload, fcs = frame[:-FCS_LEN], frame[-FCS_LEN:]
    return crc32(payload).to_bytes(FCS_LEN, "little") == fcs
