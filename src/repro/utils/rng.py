"""Reproducible randomness helpers.

Every stochastic component in the library takes a ``numpy.random.Generator``
explicitly; these helpers centralise construction so experiments are
deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a Generator.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    Generator (returned unchanged so callers can thread one RNG through).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used when an experiment needs per-worker streams that do not interact
    (e.g. one stream per channel realisation) while staying reproducible.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    seq = np.random.SeedSequence(seed if not isinstance(seed, np.random.Generator) else None)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
