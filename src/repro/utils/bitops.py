"""Bit-array helpers.

Throughout the library a *bit array* is a 1-D ``numpy.ndarray`` of dtype
``uint8`` whose entries are 0 or 1.  Bytes are expanded LSB-first, which is
the transmission order used by IEEE 802.11 (clause 17): the first bit on the
air of every octet is its least-significant bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "int_to_bits",
    "bits_to_int",
    "pad_bits",
    "random_bits",
]


def bytes_to_bits(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Expand bytes into a bit array, LSB of each octet first.

    >>> bytes_to_bits(b"\\x01").tolist()
    [1, 0, 0, 0, 0, 0, 0, 0]
    """
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr, bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a bit array (LSB-first per octet) back into bytes.

    The bit count must be a multiple of 8.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    return np.packbits(bits, bitorder="little").tobytes()


def int_to_bits(value: int, width: int, lsb_first: bool = True) -> np.ndarray:
    """Encode ``value`` as a fixed-width bit array.

    ``lsb_first=True`` matches the 802.11 on-air convention; CoS interval
    values use MSB-first groups (``lsb_first=False``) per the paper's
    examples (e.g. "0010" -> 2).
    """
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)
    if not lsb_first:
        bits = bits[::-1]
    return bits


def bits_to_int(bits: np.ndarray, lsb_first: bool = True) -> int:
    """Decode a bit array into an integer (inverse of :func:`int_to_bits`)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if not lsb_first:
        bits = bits[::-1]
    return int(sum(int(b) << i for i, b in enumerate(bits)))


def pad_bits(bits: np.ndarray, multiple: int, value: int = 0) -> np.ndarray:
    """Right-pad a bit array with ``value`` up to a multiple of ``multiple``."""
    bits = np.asarray(bits, dtype=np.uint8)
    remainder = bits.size % multiple
    if remainder == 0:
        return bits
    pad = np.full(multiple - remainder, value, dtype=np.uint8)
    return np.concatenate([bits, pad])


def random_bits(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` i.i.d. uniform bits from ``rng``."""
    return rng.integers(0, 2, size=n, dtype=np.uint8)
