"""Low-level utilities shared by the PHY, channel, and CoS layers.

The helpers here deliberately avoid any domain knowledge: they deal with
bits, bytes, checksums, environment flags, and reproducible randomness
only.
"""

from repro.utils.bitops import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    int_to_bits,
    pad_bits,
    random_bits,
)
from repro.utils.crc import crc32, append_fcs, check_fcs
from repro.utils.env import env_bool, env_int, env_str
from repro.utils.rng import make_rng, spawn_rngs

__all__ = [
    "env_bool",
    "env_int",
    "env_str",
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "int_to_bits",
    "pad_bits",
    "random_bits",
    "crc32",
    "append_fcs",
    "check_fcs",
    "make_rng",
    "spawn_rngs",
]
