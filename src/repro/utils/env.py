"""Environment-flag parsing shared by experiments, CLI and benchmarks.

Historically every call site hand-rolled its own truthiness check
(``os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")``),
each accepting a slightly different vocabulary.  These helpers are the one
place that decides what counts as true/false/unset:

* :func:`env_bool` — ``1/0``, ``true/false``, ``yes/no``, ``on/off``
  (case-insensitive, surrounding whitespace ignored); anything else
  raises so typos fail loudly instead of silently meaning "off".
* :func:`env_int` — integer-valued flags such as ``REPRO_WORKERS``;
  empty string counts as unset.
* :func:`env_str` — string-valued flags such as ``REPRO_METRICS_OUT``;
  empty string counts as unset.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["env_bool", "env_int", "env_str"]

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"", "0", "false", "no", "off"})


def env_bool(name: str, default: bool = False) -> bool:
    """Parse a boolean environment flag.

    Unset returns ``default``.  Accepted spellings (any case): true —
    ``1 true yes on``; false — empty, ``0 false no off``.  Anything else
    raises :class:`ValueError` rather than being silently falsy.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    raise ValueError(
        f"{name}={raw!r} is not a boolean; use one of 1/0, true/false, yes/no, on/off"
    )


def env_int(name: str, default: int = 0) -> int:
    """Parse an integer environment flag (empty/unset -> ``default``)."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw.strip())
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not an integer") from None


def env_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """Fetch a string flag, treating the empty string as unset."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    return raw
