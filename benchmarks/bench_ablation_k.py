"""Ablation benchmark — the interval codec's k (bits per interval).

The paper fixes k = 4.  The trade-off behind that number:

* larger k → fewer silences per bit (1/k) → less code budget consumed,
  but longer maximum intervals (2^k − 1) → fewer groups fit a packet's
  control stream, and a single detection error wipes more bits;
* smaller k → denser silences → tighter interval framing but a heavier
  erasure load per delivered bit.

This bench measures, per k, the silences spent per delivered control bit
and the end-to-end message accuracy at the paper's running operating
point (24 Mbps, 15 dB).
"""

import numpy as np

from conftest import run_once
from repro.channel import IndoorChannel
from repro.cos import CosLink, IntervalCodec
from repro.experiments.common import print_table, scaled


def _session(k: int, n_packets: int) -> tuple:
    channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
    codec = IntervalCodec(k=k)
    link = CosLink(channel=channel, codec=codec)
    rng = np.random.default_rng(77)
    delivered = silences = 0
    group_acc = []
    link.exchange(bytes(400), [])  # feedback bootstrap
    for _ in range(n_packets):
        bits = rng.integers(0, 2, size=k * 8, dtype=np.uint8)
        outcome = link.exchange(bytes(400), bits)
        silences += outcome.n_silences
        group_acc.append(outcome.control_group_accuracy(k=k))
        if outcome.control_ok:
            delivered += outcome.control_sent.size
    per_bit = silences / max(delivered, 1)
    return per_bit, float(np.mean(group_acc)), delivered


def test_k_ablation(benchmark):
    n_packets = scaled(15, 80)

    def sweep():
        return {k: _session(k, n_packets) for k in (2, 3, 4, 6)}

    result = run_once(benchmark, sweep)
    print_table(
        ["k (bits/interval)", "silences per delivered bit", "group accuracy", "bits delivered"],
        [(k, *v) for k, v in sorted(result.items())],
        title="Ablation — interval codec k at (24 Mbps, 15 dB)",
    )
    # Larger k amortises silences over more bits.
    per_bit = {k: v[0] for k, v in result.items()}
    assert per_bit[2] > per_bit[4]
    # Every k delivers; accuracy stays usable across the sweep.
    for k, (_, acc, delivered) in result.items():
        assert delivered > 0, f"k={k} delivered nothing"
        assert acc > 0.5, f"k={k} accuracy collapsed"
    benchmark.extra_info.update({f"silences_per_bit_k{k}": v[0] for k, v in result.items()})
