"""Kernel-layer perf-regression harness (viterbi / demap / packet decode).

Two entry points:

* ``pytest benchmarks/bench_viterbi_kernels.py`` — pytest-benchmark
  comparisons of the per-step reference kernel, the blocked NumPy kernel,
  and (when installed) the numba JIT, plus the batched ``decode_many``
  path.

* ``python benchmarks/bench_viterbi_kernels.py --out BENCH_phy_kernels.json``
  — the CI perf-smoke: times each workload under the *reference* backend
  ("before") and the best available backend ("after"), writes the JSON
  record, and exits non-zero if the kernel-vs-reference speedup on the
  gate workload falls below ``--min-speedup``.

The gate is deliberately **relative** (best backend vs reference in the
same process, same machine, same load) so CI runners of any speed give a
stable signal; absolute wall-clock is recorded for humans but never
gated.  See ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict

import numpy as np

from repro.channel import IndoorChannel
from repro.kernels import available_backends, decode_many, use_backend
from repro.kernels.numba_backend import HAVE_NUMBA
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu
from repro.phy.convcode import conv_encode
from repro.phy.viterbi import ViterbiDecoder, hard_bits_to_llrs

# ---------------------------------------------------------------------------
# Shared workloads
# ---------------------------------------------------------------------------

_RNG = np.random.default_rng(0)
_INFO = _RNG.integers(0, 2, 4096, dtype=np.uint8)
_LLRS = hard_bits_to_llrs(conv_encode(_INFO)).astype(np.float64)
_BATCH = [_LLRS[: 2 * 512].copy() for _ in range(16)]
PSDU = build_mpdu(bytes(range(256)) * 2)


def _packet_fixture():
    frame = Transmitter().transmit(PSDU, RATE_TABLE[24])
    channel = IndoorChannel.position("B", snr_db=20.0, seed=1)
    return Receiver(), channel.transmit(frame.waveform)


def _check(decoded: np.ndarray) -> None:
    assert np.array_equal(decoded[:-8], _INFO[:-8])


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def test_viterbi_reference_backend(benchmark):
    with use_backend("reference") as be:
        be.prewarm()
        _check(benchmark(lambda: be.viterbi_decode(_LLRS, False)))


def test_viterbi_numpy_blocked(benchmark):
    with use_backend("numpy") as be:
        be.prewarm()
        _check(benchmark(lambda: be.viterbi_decode(_LLRS, False)))


def test_viterbi_numba_jit(benchmark):
    if not HAVE_NUMBA:
        import pytest

        pytest.skip("numba not installed")
    with use_backend("numba") as be:
        be.prewarm()
        _check(benchmark(lambda: be.viterbi_decode(_LLRS, False)))


def test_viterbi_cext(benchmark):
    from repro.kernels import cext

    if not cext.compiler_available():
        import pytest

        pytest.skip("no C compiler on PATH")
    with use_backend("cext") as be:
        be.prewarm()
        _check(benchmark(lambda: be.viterbi_decode(_LLRS, False)))


def test_decode_many_batch(benchmark):
    decoder = ViterbiDecoder(terminated=True)
    rows = benchmark(lambda: decoder.decode_many(_BATCH))
    assert len(rows) == len(_BATCH)


def test_packet_receive_best_backend(benchmark):
    rx, waveform = _packet_fixture()
    result = benchmark(lambda: rx.receive(waveform))
    assert result.ok


# ---------------------------------------------------------------------------
# Script mode: BENCH_phy_kernels.json + relative-speedup gate
# ---------------------------------------------------------------------------

#: Minimal timing probe run against an arbitrary source tree (``--main-src``):
#: it only uses the PHY APIs that predate the kernel layer, so it can time
#: the pre-kernels main branch for an honest "vs current main" baseline.
_RAW_PROBE = r"""
import json, sys, time
import numpy as np
from repro.channel import IndoorChannel
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu
from repro.phy.convcode import conv_encode
from repro.phy.viterbi import ViterbiDecoder, hard_bits_to_llrs

rng = np.random.default_rng(0)
llrs = hard_bits_to_llrs(conv_encode(rng.integers(0, 2, 4096, dtype=np.uint8)))
llrs = llrs.astype(np.float64)
frame = Transmitter().transmit(build_mpdu(bytes(range(256)) * 2), RATE_TABLE[24])
rx = Receiver()
waveform = IndoorChannel.position("B", snr_db=20.0, seed=1).transmit(frame.waveform)
obs = rx.observe(waveform)

def time_ms(fn, repeats=5, iters=10):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best * 1e3

work = {
    "viterbi_4096": lambda: ViterbiDecoder(terminated=False).decode(llrs),
    "packet_decode_24mbps": lambda: rx.decode(obs),
    "packet_receive_24mbps": lambda: rx.receive(waveform),
}
for fn in work.values():
    fn()
json.dump({k: time_ms(fn) for k, fn in work.items()}, sys.stdout)
"""


def _probe_main_baseline(main_src: str) -> Dict[str, float]:
    """Time the legacy workloads in a subprocess rooted at ``main_src``."""
    import os
    import subprocess

    env = dict(os.environ, PYTHONPATH=main_src)
    out = subprocess.run(
        [sys.executable, "-c", _RAW_PROBE],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


def _time_ms(fn: Callable[[], object], repeats: int = 5, iters: int = 10) -> float:
    """Best-of-``repeats`` median: robust to CI-runner noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best * 1e3


def _workloads() -> Dict[str, Callable[[], object]]:
    rx, waveform = _packet_fixture()
    obs = rx.observe(waveform)  # backend-independent front end, done once
    return {
        "viterbi_4096": lambda: ViterbiDecoder(terminated=False).decode(_LLRS),
        "decode_many_16x512": lambda: decode_many(_BATCH),
        "packet_decode_24mbps": lambda: rx.decode(obs),
        "packet_receive_24mbps": lambda: rx.receive(waveform),
    }


def run(
    out_path: str,
    min_speedup: float,
    gate_workload: str,
    main_src: str | None = None,
) -> int:
    backends = available_backends()
    best_name = next(n for n in ("numba", "cext", "numpy") if n in backends)
    workloads = _workloads()

    results: Dict[str, Dict[str, float]] = {}
    for label, backend in (("before", "reference"), ("after", best_name)):
        with use_backend(backend) as be:
            be.prewarm()
            for name, fn in workloads.items():
                fn()  # warm the caches for this backend
                results.setdefault(name, {})[f"{label}_ms"] = _time_ms(fn)

    for entry in results.values():
        entry["speedup"] = entry["before_ms"] / entry["after_ms"]

    if main_src is not None:
        # Honest pre-PR baseline: the reference *kernel* alone understates
        # main's cost (main also lacked the cached tables / shared decoder).
        for name, ms in _probe_main_baseline(main_src).items():
            if name in results:
                results[name]["main_ms"] = ms
                results[name]["speedup_vs_main"] = ms / results[name]["after_ms"]

    gate_speedup = results[gate_workload]["speedup"]
    passed = gate_speedup >= min_speedup
    record = {
        "bench": "phy_kernels",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "backends_available": backends,
        "best_backend": best_name,
        "reference_backend": "reference",
        "results": results,
        "gate": {
            "workload": gate_workload,
            "metric": "relative speedup (best backend vs reference)",
            "min_speedup": min_speedup,
            "measured_speedup": gate_speedup,
            "passed": passed,
        },
    }
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for name, entry in results.items():
        vs_main = (
            f"  (vs main x{entry['speedup_vs_main']:.2f})"
            if "speedup_vs_main" in entry
            else ""
        )
        print(
            f"{name:24s} before={entry['before_ms']:8.2f}ms "
            f"after={entry['after_ms']:8.2f}ms  x{entry['speedup']:.2f}{vs_main}"
        )
    print(
        f"gate [{gate_workload}] x{gate_speedup:.2f} "
        f"(min x{min_speedup:.2f}) -> {'PASS' if passed else 'FAIL'}"
    )
    return 0 if passed else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_phy_kernels.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="gate: minimum best-backend/reference speedup (relative, "
        "machine-independent; default 1.5)",
    )
    parser.add_argument(
        "--gate-workload",
        default="viterbi_4096",
        choices=[
            "viterbi_4096",
            "decode_many_16x512",
            "packet_decode_24mbps",
            "packet_receive_24mbps",
        ],
    )
    parser.add_argument(
        "--main-src",
        default=None,
        help="path to a pre-kernels src/ tree; when given, the same "
        "workloads are timed there in a subprocess and recorded as "
        "main_ms / speedup_vs_main (informational, never gated)",
    )
    args = parser.parse_args(argv)
    return run(args.out, args.min_speedup, args.gate_workload, args.main_src)


if __name__ == "__main__":
    sys.exit(main())
