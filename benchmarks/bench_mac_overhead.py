"""Network-level benchmark — what free control messages buy a WLAN.

Compares aggregate goodput and control-airtime share between explicit
control frames (contending under DCF) and the CoS piggyback, across
contention levels.  This is the paper's motivation (§I) made quantitative
on our MAC substrate.
"""

from conftest import run_once
from repro.mac.overhead import ControlScheme, run_overhead_comparison


def test_mac_overhead_comparison(benchmark):
    def sweep():
        rows = []
        for n_stations in (2, 4, 8):
            explicit = run_overhead_comparison(
                ControlScheme.EXPLICIT, n_stations=n_stations, seed=7
            )
            cos = run_overhead_comparison(
                ControlScheme.COS, n_stations=n_stations, seed=7
            )
            rows.append(
                (
                    n_stations,
                    explicit.goodput_mbps,
                    cos.goodput_mbps,
                    explicit.control_airtime_fraction,
                    cos.control_airtime_fraction,
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    from repro.experiments.common import print_table

    print_table(
        ["stations", "goodput explicit", "goodput CoS", "ctrl airtime explicit", "ctrl airtime CoS"],
        rows,
        title="Network overhead — explicit control frames vs CoS",
    )
    for n_stations, g_exp, g_cos, a_exp, a_cos in rows:
        assert g_cos >= g_exp  # free control never hurts goodput
        assert a_cos == 0.0
        assert a_exp > 0.0
    benchmark.extra_info["goodput_gain_8sta"] = rows[-1][2] - rows[-1][1]
