"""PHY component throughput benchmarks (implementation sanity).

These time the hot paths of the simulator itself — useful when changing
the Viterbi or modulation internals, and a rough guide to experiment
budgets (a 512-B packet round trip should stay in the tens of ms).
"""

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu
from repro.phy.convcode import conv_encode
from repro.phy.viterbi import ViterbiDecoder, hard_bits_to_llrs

PSDU = build_mpdu(bytes(range(256)) * 2)


def test_transmit_24mbps(benchmark):
    tx = Transmitter()
    frame = benchmark(lambda: tx.transmit(PSDU, RATE_TABLE[24]))
    assert frame.waveform.size > 0


def test_receive_24mbps(benchmark):
    frame = Transmitter().transmit(PSDU, RATE_TABLE[24])
    channel = IndoorChannel.position("B", snr_db=20.0, seed=1)
    waveform = channel.transmit(frame.waveform)
    rx = Receiver()
    result = benchmark(lambda: rx.receive(waveform))
    assert result.ok


def test_viterbi_throughput(benchmark):
    rng = np.random.default_rng(0)
    info = rng.integers(0, 2, 4096, dtype=np.uint8)
    llrs = hard_bits_to_llrs(conv_encode(info))
    decoder = ViterbiDecoder(terminated=False)
    decoded = benchmark(lambda: decoder.decode(llrs))
    assert np.array_equal(decoded[:-8], info[:-8])


def test_full_cos_exchange(benchmark):
    from repro.cos import CosLink

    channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
    link = CosLink(channel=channel)
    bits = [0, 1] * 8

    outcome = benchmark.pedantic(
        lambda: link.exchange(bytes(400), bits), rounds=5, iterations=1
    )
    assert outcome.data_ok
