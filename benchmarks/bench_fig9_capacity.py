"""Fig. 9 benchmark — capacity of free control messages (Rm vs SNR).

The headline figure of the paper: how many silence symbols per second the
channel code can absorb at a 99.3 % packet reception rate, per rate band.
"""

from conftest import run_once
from repro.experiments import fig9


def test_fig9_control_capacity(benchmark):
    result = run_once(benchmark, lambda: fig9.run())
    fig9.print_result(result)

    for mbps in (12, 54):
        benchmark.extra_info[f"ceiling_rm_{mbps}mbps"] = result.ceiling(mbps)

    # Shape claims of §IV-B:
    # 1. the QPSK-1/2 band sustains the largest Rm, the 64QAM-3/4 band the
    #    smallest (paper: 148k vs 33k silences/s);
    assert result.ceiling(12) > result.ceiling(54)
    # 2. at fixed modulation the lower code rate sustains more silences;
    assert result.ceiling(12) >= result.ceiling(18) * 0.7
    assert result.ceiling(24) >= result.ceiling(36) * 0.7
    # 3. Rm does not collapse anywhere in the operating range.
    assert all(p.rm_per_sec > 0 for p in result.points)
    # 4. every accepted operating point met the PRR target.
    assert all(p.prr >= 0.95 for p in result.points)
