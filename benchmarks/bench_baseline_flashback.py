"""Baseline benchmark — CoS vs Flashback-style intended interference.

The §V comparison, quantified: at the same control payload per packet,
CoS keeps the data PRR at target with zero extra energy, while the
interference baseline faces the detect/harm dilemma — detectable flashes
kill their packets, gentle flashes are undetectable.
"""

import numpy as np

from conftest import run_once
from repro.channel import IndoorChannel
from repro.cos import CosLink
from repro.cos.flashback import FlashbackDetector, FlashbackTransmitter
from repro.experiments.common import print_table, scaled
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu


def _flashback_session(flash_power: float, n_packets: int) -> tuple:
    channel = IndoorChannel.position("B", snr_db=15.0, seed=5)
    phy_tx, phy_rx = Transmitter(), Receiver()
    flash_tx = FlashbackTransmitter(flash_power=flash_power, rng=9)
    detector = FlashbackDetector()
    psdu = build_mpdu(bytes(400))
    rate = RATE_TABLE[24]
    rng = np.random.default_rng(5)

    prr = ctrl_ok = 0
    energy = 0.0
    for _ in range(n_packets):
        bits = rng.integers(0, 2, 16, dtype=np.uint8)
        frame = phy_tx.transmit(psdu, rate)
        plan = flash_tx.plan(bits, frame.n_data_symbols)
        received = channel.transmit(flash_tx.apply(frame.waveform, plan))
        prr += phy_rx.receive(received).ok
        try:
            recovered = detector.recover_bits(received, frame.n_data_symbols)
            ctrl_ok += np.array_equal(recovered, plan.embedded_bits)
        except ValueError:
            pass
        energy += flash_tx.energy_cost(plan)
        channel.evolve(1e-3)
    return prr / n_packets, ctrl_ok / n_packets, energy / n_packets


def _cos_session(n_packets: int) -> tuple:
    channel = IndoorChannel.position("B", snr_db=15.0, seed=5)
    link = CosLink(channel=channel)
    rng = np.random.default_rng(5)
    link.exchange(bytes(400), [])
    prr = ctrl_ok = 0
    for _ in range(n_packets):
        bits = rng.integers(0, 2, 16, dtype=np.uint8)
        outcome = link.exchange(bytes(400), bits)
        prr += outcome.data_ok
        ctrl_ok += outcome.control_ok
    return prr / n_packets, ctrl_ok / n_packets, 0.0


def test_flashback_baseline(benchmark):
    n_packets = scaled(20, 100)

    def compare():
        rows = [("CoS (silences)", *_cos_session(n_packets))]
        for power, label in ((64.0, "flash 64x (detectable)"), (8.0, "flash 8x (gentle)")):
            rows.append((label, *_flashback_session(power, n_packets)))
        return rows

    rows = run_once(benchmark, compare)
    print_table(
        ["scheme", "data PRR", "control accuracy", "extra energy/packet"],
        rows,
        title="Baseline — CoS vs intended-interference control (24 Mbps, 15 dB)",
    )
    cos, strong, gentle = rows
    assert cos[1] >= 0.95  # CoS keeps the data plane
    assert strong[1] < 0.3  # detectable flashes kill their packets
    assert gentle[2] < 0.5  # gentle flashes cannot carry control reliably
    assert cos[3] == 0.0 and strong[3] > 0.0
    benchmark.extra_info["cos_prr"] = cos[1]
    benchmark.extra_info["flash64_prr"] = strong[1]
    benchmark.extra_info["flash8_ctrl"] = gentle[2]
