"""Observability overhead micro-benchmarks.

Two guarantees are asserted here:

1. the disabled (``NullSpan``) fast path of :func:`repro.obs.trace.span`
   costs **< 1 µs** per span — instrumentation may therefore stay inline
   on hot paths;
2. the instrumented ``CosLink.exchange`` with tracing *disabled* is not
   measurably slower than the seed implementation (< 2 % regression bar;
   see ``bench_phy_throughput.py::test_full_cos_exchange`` for the
   absolute number tracked across PRs).
"""

import time

import repro.obs as obs
from repro.obs import trace as trace_mod
from repro.obs.trace import span


def _time_noop_spans(n: int) -> float:
    """Mean seconds per disabled span() enter/exit."""
    t0 = time.perf_counter()
    for _ in range(n):
        with span("bench.noop"):
            pass
    return (time.perf_counter() - t0) / n


def test_noop_span_under_1us(benchmark):
    assert trace_mod.current_tracer() is None, "tracing must be disabled"
    n = 100_000
    per_span = benchmark.pedantic(
        lambda: _time_noop_spans(n), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["noop_span_ns"] = per_span * 1e9
    assert per_span < 1e-6, f"no-op span costs {per_span * 1e9:.0f} ns (>= 1 µs)"


def test_enabled_span_overhead(benchmark):
    """Enabled spans should stay in the low-microsecond range too."""
    session = obs.configure(trace_out=obs.NullSink(), enable_flight=False)
    try:
        n = 20_000
        per_span = benchmark.pedantic(
            lambda: _time_noop_spans(n), rounds=3, iterations=1, warmup_rounds=1
        )
        benchmark.extra_info["enabled_span_us"] = per_span * 1e6
        # Generous bound: an enabled span does two clock reads, a dict,
        # a histogram observe and a sink emit.
        assert per_span < 50e-6
    finally:
        session.close()
    assert trace_mod.current_tracer() is None


def test_exchange_tracing_disabled_vs_enabled(benchmark):
    """Whole-exchange cost with tracing off (the production default)."""
    from repro.channel import IndoorChannel
    from repro.cos import CosLink

    link = CosLink(channel=IndoorChannel.position("A", snr_db=15.0, seed=5))
    bits = [0, 1] * 8
    outcome = benchmark.pedantic(
        lambda: link.exchange(bytes(400), bits), rounds=5, iterations=1
    )
    assert outcome.data_ok
