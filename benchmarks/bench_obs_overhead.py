"""Observability overhead micro-benchmarks.

Three guarantees are asserted here:

1. the disabled (``NullSpan``) fast path of :func:`repro.obs.trace.span`
   costs **< 1 µs** per span — instrumentation may therefore stay inline
   on hot paths;
2. the instrumented ``CosLink.exchange`` with tracing *disabled* is not
   measurably slower than the seed implementation (< 2 % regression bar;
   see ``bench_phy_throughput.py::test_full_cos_exchange`` for the
   absolute number tracked across PRs);
3. the :class:`repro.net.lens.NetLens` hook sites in the net simulator's
   hot loop cost, with no lens attached (the default), under
   ``NET_LENS_DISABLED_OVERHEAD_BAR`` (3 %) of the run's wall-clock —
   established by counting actual hook invocations and pricing each at a
   measured ``x is None`` branch cost.
"""

import time

import repro.obs as obs
from repro.obs import trace as trace_mod
from repro.obs.trace import span

#: Ceiling on the disabled net-lens hook cost as a fraction of the
#: simulator's wall-clock (the ISSUE's "near-free disabled path" bar).
NET_LENS_DISABLED_OVERHEAD_BAR = 0.03


def _time_noop_spans(n: int) -> float:
    """Mean seconds per disabled span() enter/exit."""
    t0 = time.perf_counter()
    for _ in range(n):
        with span("bench.noop"):
            pass
    return (time.perf_counter() - t0) / n


def test_noop_span_under_1us(benchmark):
    assert trace_mod.current_tracer() is None, "tracing must be disabled"
    n = 100_000
    per_span = benchmark.pedantic(
        lambda: _time_noop_spans(n), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["noop_span_ns"] = per_span * 1e9
    assert per_span < 1e-6, f"no-op span costs {per_span * 1e9:.0f} ns (>= 1 µs)"


def test_enabled_span_overhead(benchmark):
    """Enabled spans should stay in the low-microsecond range too."""
    session = obs.configure(trace_out=obs.NullSink(), enable_flight=False)
    try:
        n = 20_000
        per_span = benchmark.pedantic(
            lambda: _time_noop_spans(n), rounds=3, iterations=1, warmup_rounds=1
        )
        benchmark.extra_info["enabled_span_us"] = per_span * 1e6
        # Generous bound: an enabled span does two clock reads, a dict,
        # a histogram observe and a sink emit.
        assert per_span < 50e-6
    finally:
        session.close()
    assert trace_mod.current_tracer() is None


def test_exchange_tracing_disabled_vs_enabled(benchmark):
    """Whole-exchange cost with tracing off (the production default)."""
    from repro.channel import IndoorChannel
    from repro.cos import CosLink

    link = CosLink(channel=IndoorChannel.position("A", snr_db=15.0, seed=5))
    bits = [0, 1] * 8
    outcome = benchmark.pedantic(
        lambda: link.exchange(bytes(400), bits), rounds=5, iterations=1
    )
    assert outcome.data_ok


class _CountingLens:
    """Counts net-lens hook invocations without doing any work.

    Duck-types the :class:`repro.net.lens.NetLens` hook surface so the
    simulator wires it everywhere a real lens would go; every call just
    bumps one counter — the count is the exact number of ``is None``
    checks the disabled path would have taken on the same run.
    """

    trace = ledger = profile = False
    events = ()

    def __init__(self):
        self.n_hooks = 0

    def bind(self, node_names):
        pass

    def on_run_start(self):
        pass

    def finalize(self, end_us, n_sched_events, registry=None):
        pass

    def _hook(self, *args):
        self.n_hooks += 1

    on_tx_start = on_tx_end = on_channel_state = on_backoff = _hook
    on_drop = on_deliver = on_control_generated = on_control_delivered = _hook


def _time_is_none_check(n: int = 200_000) -> float:
    """Mean seconds per ``attribute load + is None branch`` (the hook cost)."""

    class _Holder:
        lens = None

    holder = _Holder()
    acc = 0
    t0 = time.perf_counter()
    for _ in range(n):
        if holder.lens is not None:
            acc += 1
    dt = time.perf_counter() - t0
    assert acc == 0
    return dt / n


def test_net_lens_disabled_overhead(benchmark):
    """Hook sites with no lens attached must stay under the 3 % bar."""
    from repro.net import builtin_scenario, run_scenario

    spec = builtin_scenario("contention", n_stations=6, n_packets=40,
                            duration_us=200_000.0)

    # How many hook checks does this run actually perform?  Every
    # counted hook invocation is one ``lens is None`` site, plus the
    # scheduler pays one ``profiler is None`` check per dispatched event.
    counting = _CountingLens()
    counted = run_scenario(spec, rng=0, lens=counting)
    n_checks = counting.n_hooks + counted.n_events

    # Wall-clock of the production path (lens=None), best of a few runs.
    def _disabled():
        return run_scenario(spec, rng=0)

    t_disabled = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _disabled()
        t_disabled = min(t_disabled, time.perf_counter() - t0)

    per_check = benchmark.pedantic(
        _time_is_none_check, rounds=3, iterations=1, warmup_rounds=1
    )
    hook_cost = n_checks * per_check
    ratio = hook_cost / t_disabled

    benchmark.extra_info["n_hook_checks"] = n_checks
    benchmark.extra_info["per_check_ns"] = per_check * 1e9
    benchmark.extra_info["disabled_run_s"] = t_disabled
    benchmark.extra_info["overhead_fraction"] = ratio

    assert n_checks > 1000, f"hook count suspiciously low: {n_checks}"
    assert ratio < NET_LENS_DISABLED_OVERHEAD_BAR, (
        f"disabled net-lens checks cost {ratio * 100:.2f} % of the run "
        f"(bar: {NET_LENS_DISABLED_OVERHEAD_BAR * 100:.0f} %)"
    )
