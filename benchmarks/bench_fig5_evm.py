"""Fig. 5 benchmark — per-subcarrier EVM at three receiver positions."""

from conftest import run_once
from repro.experiments import fig5


def test_fig5_per_subcarrier_evm(benchmark):
    result = run_once(benchmark, lambda: fig5.run())
    fig5.print_result(result)

    # Frequency selectivity visible at every position; severity A > C,
    # with spreads of the paper's order (up to ~13-20 %).
    for position in ("A", "B", "C"):
        assert result.spread_percent(position) > 1.0
    assert result.spread_percent("A") > result.spread_percent("C")
    for position in ("A", "B", "C"):
        benchmark.extra_info[f"spread_pct_{position}"] = result.spread_percent(position)
