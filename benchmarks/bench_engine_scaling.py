"""Trial-engine scaling — serial vs. process-pool throughput.

Runs the same multi-trial sweep (a fig. 3-style decoder-BER workload:
real TX → channel → RX packets, the engine's typical payload) through
``repro.engine`` serially and on a 4-worker pool, asserts the results
are bit-for-bit identical, and reports the speedup.

The achievable speedup is bounded by the host's cores:
``min(workers, cores)`` minus pool/IPC overhead.  On a 4-core machine
this sweep reaches ~2–3.5x; on a single-core CI runner the pool can only
interleave, so the honest expectation there is ~1x (and the assertion
scales accordingly).  ``extra_info`` records both timings, the speedup,
and the core count so regressions are visible either way.
"""

import os
import time

from conftest import run_once
from repro import engine
from repro.experiments.common import ExperimentConfig, init_phy_worker, phy_pair, send_probe_packets
from repro.phy import RATE_TABLE

_N_TRIALS = 24
_WORKERS = 4
_CONFIG = ExperimentConfig()


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _trial(spec):
    """One probe packet through the full PHY (the harnesses' typical load)."""
    channel = _CONFIG.channel(spec["snr_db"], seed_offset=spec["r"])
    ((frame, result),) = send_probe_packets(channel, RATE_TABLE[24], 1)
    return bool(result.ok), len(frame.coded_bits)


def _params():
    return [{"snr_db": 14.0 + (i % 6), "r": i} for i in range(_N_TRIALS)]


def _sweep(workers):
    return engine.run_sweep(
        _params(), _trial, seed=11, workers=workers,
        init=init_phy_worker, label="bench.engine",
    )


def test_engine_scaling(benchmark):
    # Warm the worker-state cache so serial timing excludes construction.
    phy_pair()

    t0 = time.perf_counter()
    serial = _sweep(0)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = _sweep(_WORKERS)
    parallel_s = time.perf_counter() - t0

    # The determinism contract: identical results, any executor.
    assert serial == parallel

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    cores = _cpu_count()
    print(f"\nengine scaling: {_N_TRIALS} trials  "
          f"serial {serial_s:.2f}s  {_WORKERS}-worker {parallel_s:.2f}s  "
          f"speedup {speedup:.2f}x  (host cores: {cores})")

    benchmark.extra_info["n_trials"] = _N_TRIALS
    benchmark.extra_info["serial_s"] = serial_s
    benchmark.extra_info["workers4_s"] = parallel_s
    benchmark.extra_info["speedup_x"] = speedup
    benchmark.extra_info["host_cores"] = cores

    # Honest floor: with >= 4 usable cores the pool must deliver a real
    # speedup (>= 1.8x); with fewer cores it can only match serial modulo
    # pool overhead, so require it not be pathologically slower.
    if cores >= 4:
        assert speedup >= 1.8, f"4-worker speedup {speedup:.2f}x < 1.8x on {cores} cores"
    else:
        assert speedup >= 0.4, f"pool pathologically slow: {speedup:.2f}x"

    # The timed section re-runs the parallel sweep under the benchmark
    # timer so the record carries a calibrated number.
    result = run_once(benchmark, lambda: _sweep(_WORKERS))
    assert result == serial
