"""Fig. 3 benchmark — decoder-input BER vs measured SNR at 24 Mbps."""

from conftest import run_once
from repro.experiments import fig3


def test_fig3_decoder_ber(benchmark):
    result = run_once(benchmark, lambda: fig3.run())
    fig3.print_result(result)

    assert result.redundant_increases_with_snr()
    first, last = result.points[0], result.points[-1]
    assert first.actual_ber > last.actual_ber
    assert last.redundant_ber > 0
    benchmark.extra_info["ber_at_min_required"] = result.reference_ber
    benchmark.extra_info["redundant_ber_at_band_top"] = last.redundant_ber
