"""Ablation benchmark — decoder fidelity and the absolute Rm scale.

EXPERIMENTS.md attributes our higher-than-paper Rm ceilings (Fig. 9) to
the decoder: we use CSI-weighted soft-decision EVD, while Sora's SoftWiFi
generation decoded hard and CSI-blind.  This benchmark tests that
attribution directly: under identical heavy silence insertion, the
hard-decision receiver loses packets the soft receiver keeps — i.e. at
the paper's PRR target the hard decoder sustains a smaller silence budget
(an Rm closer to the paper's absolute scale).
"""

import numpy as np

from conftest import run_once
from repro.cos.link import CosLink
from repro.experiments.common import ExperimentConfig, print_table, scaled
from repro.experiments.fig9 import _FixedBudgetController
from repro.phy.receiver import Receiver


def _prr(decision: str, snr_db: float, groups: int, n_packets: int) -> float:
    config = ExperimentConfig()
    ok = 0
    total = 0
    for seed_offset in (0, 1009, 2017):
        channel = config.channel(snr_db, seed_offset=seed_offset)
        link = CosLink(channel=channel, controller=_FixedBudgetController(groups))
        link.rx._phy = Receiver(decision=decision)
        rng = np.random.default_rng(7 + seed_offset)
        for _ in range(max(n_packets // 3, 1)):
            bits = rng.integers(0, 2, size=4 * max(groups, 1), dtype=np.uint8)
            outcome = link.exchange(config.payload, bits[: 4 * groups])
            ok += outcome.data_ok
            total += 1
    return ok / total


def test_decoder_fidelity_ablation(benchmark):
    n_packets = scaled(18, 90)

    def compare():
        rows = []
        for snr_db in (14.0, 16.0):
            for groups in (0, 60, 120):
                rows.append(
                    (
                        snr_db,
                        groups,
                        _prr("soft", snr_db, groups, n_packets),
                        _prr("hard", snr_db, groups, n_packets),
                    )
                )
        return rows

    rows = run_once(benchmark, compare)
    print_table(
        ["measured dB", "groups/packet", "PRR soft EVD", "PRR hard"],
        rows,
        title="Ablation — decoder fidelity under silence insertion (24 Mbps)",
    )
    # Soft EVD never loses to hard decoding, and somewhere in the band the
    # hard decoder drops below the paper's 99.3 % target while soft holds.
    for _, _, soft, hard in rows:
        assert soft >= hard - 1e-9
    soft_holds = all(soft >= 0.99 for _, g, soft, _ in rows if g > 0)
    hard_breaks = any(hard < 0.99 for _, g, _, hard in rows if g > 0)
    assert soft_holds and hard_breaks
    benchmark.extra_info["worst_hard_prr"] = min(r[3] for r in rows)
