"""Benchmark fixtures.

Each benchmark regenerates one paper figure at quick scale and prints the
same rows/series the paper reports (run with ``-s`` to see the tables;
key scalar outcomes are also attached as ``extra_info`` on the benchmark
record).  Set ``REPRO_FULL=1`` for paper-scale statistics.

Trial execution goes through :mod:`repro.engine`: pass
``--repro-workers N`` (or set ``REPRO_WORKERS=N``) to run every
harness's trials on an N-process pool — results are bit-for-bit
identical to serial, only the wall-clock changes.

Every numeric ``extra_info`` value is additionally mirrored into the
process-wide :mod:`repro.obs` metrics registry as
``repro_bench_extra_info{bench=...,key=...}`` gauges, so BENCH JSON
snapshots are first-class metrics: set ``REPRO_METRICS_OUT=path`` to
dump the whole registry (Prometheus text, or JSON when the path ends in
``.json``) when the benchmark session finishes.  Worker-side metrics are
already merged into the parent registry by the engine, so the dump is
complete under any worker count.
"""

import os

import pytest

from repro.obs.metrics import get_registry
from repro.utils.env import env_int, env_str


def pytest_addoption(parser):
    parser.addoption(
        "--repro-workers", type=int, default=None, metavar="N",
        help="trial-engine worker processes for the harnesses "
             "(0 = serial; default: REPRO_WORKERS or serial)",
    )


def pytest_configure(config):
    workers = config.getoption("--repro-workers", default=None)
    if workers is not None:
        # The harnesses read REPRO_WORKERS through repro.engine when a
        # benchmark calls run() without an explicit workers argument.
        os.environ["REPRO_WORKERS"] = str(workers)
    effective = env_int("REPRO_WORKERS", 0)
    if effective:
        config._repro_workers_banner = (
            f"repro trial engine: {effective} worker processes"
        )


def pytest_report_header(config):
    return getattr(config, "_repro_workers_banner", None)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(autouse=True)
def _extra_info_to_registry(request):
    """Mirror each benchmark's numeric extra_info into the registry."""
    yield
    fixture = getattr(request.node, "funcargs", {}).get("benchmark")
    if fixture is None or not getattr(fixture, "extra_info", None):
        return
    gauge = get_registry().gauge(
        "repro_bench_extra_info",
        help="Scalar benchmark outcomes (mirrored from extra_info).",
    )
    for key, value in fixture.extra_info.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        gauge.labels(bench=request.node.name, key=key).set(float(value))


def pytest_sessionfinish(session, exitstatus):
    """Optionally export the registry after a benchmark run."""
    out = env_str("REPRO_METRICS_OUT")
    if not out:
        return
    registry = get_registry()
    text = registry.to_json() if out.endswith(".json") else registry.to_prometheus()
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(text)
