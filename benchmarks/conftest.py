"""Benchmark fixtures.

Each benchmark regenerates one paper figure at quick scale and prints the
same rows/series the paper reports (run with ``-s`` to see the tables;
key scalar outcomes are also attached as ``extra_info`` on the benchmark
record).  Set ``REPRO_FULL=1`` for paper-scale statistics.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
