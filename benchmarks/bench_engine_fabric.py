"""Sweep-fabric load test: cache replay, sharded equivalence, kill-resume.

Two entry points:

* ``pytest benchmarks/bench_engine_fabric.py`` — pytest-benchmark record
  of warm-cache replay latency on a fig2-style sweep.

* ``python benchmarks/bench_engine_fabric.py --out BENCH_engine_fabric.json``
  — the CI perf-smoke.  Three hard gates:

  1. **warm_cache** — a repeated fig. 2 sweep served from the
     content-addressed result store must be at least ``--min-speedup``
     (default 10×) faster than the cold run that populated it, with
     byte-identical results.
  2. **sharded_equiv** — the same sweep pushed through
     :class:`~repro.engine.executors.ShardedExecutor` with two worker
     processes (filesystem claim queue, spawn context) must match the
     serial run bit-for-bit.
  3. **kill_resume** — a sweep SIGKILLed mid-flight and re-run against
     the same store must complete while replaying every already-finished
     trial (store hits == entries present at kill time; zero
     recomputation).

  The record also carries a service load test: p50/p95 submit-to-finish
  job latency over a burst of jobs against the asyncio front-end
  (:mod:`repro.engine.service`), read from the
  ``repro_service_job_seconds`` histogram the service exports.

Exits non-zero if any gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)

from repro.engine import core  # noqa: E402
from repro.engine.executors import ShardedExecutor  # noqa: E402
from repro.engine.spec import make_specs  # noqa: E402
from repro.engine.store import ResultStore, set_default_store  # noqa: E402

#: fig2 realizations per grid point — sized so one cold sweep costs
#: O(1 s): large enough that a >=10x warm-replay gate is far from timer
#: noise, small enough for CI.
FIG2_REALIZATIONS = 120

MIN_WARM_SPEEDUP = 10.0

#: Kill-resume sweep: trials take ~SPIN_S each so SIGKILL reliably lands
#: mid-flight.
RESUME_TRIALS = 10
SPIN_S = 0.2


def _fig2_sweep(realizations: int = FIG2_REALIZATIONS):
    from repro.experiments import fig2

    return fig2.run(realizations=realizations)


def _spin_trial(spec):
    """Deterministic output, fixed wall cost — kill-window fuel."""
    rng = spec.rng()
    deadline = time.perf_counter() + SPIN_S
    while time.perf_counter() < deadline:
        pass
    return (spec["x"], float(rng.normal()))


def _resume_params() -> List[Dict]:
    return [{"x": i} for i in range(RESUME_TRIALS)]


def _canonical_self():
    """This module under its importable name (not ``__main__``).

    Cache keys and cross-process pickles embed the trial function's
    module path; running as a script would otherwise key everything
    under ``__main__`` and never match the worker/subprocess side.
    """
    import bench_engine_fabric

    return bench_engine_fabric


def run_resume_sweep(store_dir: str) -> None:
    """The sweep the kill-resume gate interrupts (subprocess entry)."""
    mod = _canonical_self()
    core.run_trials(make_specs(mod._resume_params(), seed=21),
                    mod._spin_trial, store=ResultStore(store_dir))


# ---------------------------------------------------------------------------
# Gates
# ---------------------------------------------------------------------------

def gate_warm_cache(min_speedup: float) -> Dict:
    with tempfile.TemporaryDirectory(prefix="fabric-store-") as d:
        store = ResultStore(d)
        set_default_store(store)
        try:
            t0 = time.perf_counter()
            cold_result = _fig2_sweep()
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm_result = _fig2_sweep()
            warm_s = time.perf_counter() - t0
        finally:
            set_default_store(None)
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    identical = pickle.dumps(cold_result) == pickle.dumps(warm_result)
    return {
        "name": "warm_cache",
        "metric": f"repeated fig2 sweep ({FIG2_REALIZATIONS} realizations) "
                  "from the result store",
        "cold_s": cold_s,
        "warm_s": warm_s,
        "measured_speedup": speedup,
        "min_speedup": min_speedup,
        "bit_identical": identical,
        "store_hits": store.hits,
        "passed": bool(identical and speedup >= min_speedup),
    }


def gate_sharded_equiv() -> Dict:
    mod = _canonical_self()
    from repro.experiments import fig2
    from repro.experiments.common import ExperimentConfig

    config_params = [
        {"config": ExperimentConfig(), "snr_db": float(snr),
         "realizations": FIG2_REALIZATIONS}
        for snr in range(5, 26)
    ]
    serial = core.run_trials(make_specs(config_params, seed=0), fig2._trial)
    t0 = time.perf_counter()
    sharded = core.run_trials(
        make_specs(config_params, seed=0), fig2._trial,
        mod.ShardedExecutor(2, lease_s=30.0, timeout_s=600.0))
    sharded_s = time.perf_counter() - t0
    identical = pickle.dumps(sharded) == pickle.dumps(serial)
    return {
        "name": "sharded_equiv",
        "metric": "fig2 trial sweep, ShardedExecutor(2 workers) vs serial",
        "n_trials": len(config_params),
        "sharded_s": sharded_s,
        "bit_identical": identical,
        "passed": bool(identical),
    }


def gate_kill_resume() -> Dict:
    mod = _canonical_self()
    with tempfile.TemporaryDirectory(prefix="fabric-resume-") as d:
        store_dir = os.path.join(d, "store")
        script = (
            "import sys; sys.path.insert(0, sys.argv[2]); "
            "import bench_engine_fabric as b; b.run_resume_sweep(sys.argv[1])"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, store_dir, _BENCH_DIR],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            n = len(list(Path(store_dir).glob("objects/*/*.pkl")))
            if n >= 3 or proc.poll() is not None:
                break
            time.sleep(0.02)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        n_before = len(list(Path(store_dir).glob("objects/*/*.pkl")))

        store = ResultStore(store_dir)
        resumed = core.run_trials(make_specs(mod._resume_params(), seed=21),
                                  mod._spin_trial, store=store)
        clean = core.run_trials(make_specs(mod._resume_params(), seed=21),
                                mod._spin_trial)
        identical = pickle.dumps(resumed) == pickle.dumps(clean)
        killed_mid_flight = 0 < n_before < RESUME_TRIALS
        zero_recompute = (store.hits == n_before
                          and store.writes == RESUME_TRIALS - n_before)
    return {
        "name": "kill_resume",
        "metric": "SIGKILL mid-sweep, resume from the result store",
        "n_trials": RESUME_TRIALS,
        "finished_before_kill": n_before,
        "store_hits_on_resume": store.hits,
        "recomputed": store.writes,
        "killed_mid_flight": killed_mid_flight,
        "bit_identical": identical,
        "passed": bool(killed_mid_flight and zero_recompute and identical),
    }


# ---------------------------------------------------------------------------
# Service load test (recorded, not gated)
# ---------------------------------------------------------------------------

def service_load_test(n_jobs: int = 32, max_workers: int = 4) -> Dict:
    from repro.engine.service import start_in_thread
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    handle = start_in_thread(max_workers=max_workers, registry=registry)
    try:
        import urllib.request

        t0 = time.perf_counter()
        job_ids = []
        for i in range(n_jobs):
            req = urllib.request.Request(
                handle.url + "/jobs",
                data=json.dumps({"kind": "noop",
                                 "params": {"n": 8, "seed": i}}).encode(),
                method="POST", headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req, timeout=30) as resp:
                job_ids.append(json.loads(resp.read())["job_id"])
        deadline = time.monotonic() + 120.0
        pending = set(job_ids)
        while pending and time.monotonic() < deadline:
            done = set()
            for jid in pending:
                with urllib.request.urlopen(handle.url + f"/jobs/{jid}",
                                            timeout=30) as resp:
                    if json.loads(resp.read())["state"] in ("done", "failed"):
                        done.add(jid)
            pending -= done
            if pending:
                time.sleep(0.01)
        wall_s = time.perf_counter() - t0
    finally:
        handle.stop()

    series = registry.snapshot()["repro_service_job_seconds"]["series"]
    noop = next(e for e in series if e["labels"].get("kind") == "noop")
    return {
        "n_jobs": n_jobs,
        "max_workers": max_workers,
        "completed": int(noop["count"]),
        "wall_s": wall_s,
        "jobs_per_sec": n_jobs / wall_s,
        "p50_latency_s": noop["p50"],
        "p95_latency_s": noop["p95"],
        "mean_latency_s": noop["sum"] / noop["count"],
    }


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def run(out_path: str, min_speedup: float) -> int:
    gates = []
    for fn in (lambda: gate_warm_cache(min_speedup), gate_sharded_equiv,
               gate_kill_resume):
        gate = fn()
        gates.append(gate)
        status = "ok  " if gate["passed"] else "FAIL"
        detail = ""
        if "measured_speedup" in gate:
            detail = f"{gate['measured_speedup']:.1f}x (>= {min_speedup:.0f}x)"
        elif gate["name"] == "kill_resume":
            detail = (f"{gate['finished_before_kill']} cached + "
                      f"{gate['recomputed']} recomputed")
        print(f"{status} {gate['name']:<15s} {detail}")

    service = service_load_test()
    print(f"service: {service['n_jobs']} jobs in {service['wall_s']:.2f}s — "
          f"p50 {service['p50_latency_s'] * 1e3:.1f} ms, "
          f"p95 {service['p95_latency_s'] * 1e3:.1f} ms")

    record = {
        "bench": "engine_fabric",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "gates": gates,
        "service": service,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")

    rc = 0
    for gate in gates:
        if not gate["passed"]:
            print(f"FAIL: gate {gate['name']}: {gate}", file=sys.stderr)
            rc = 1
    return rc


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_warm_cache_replay(benchmark, tmp_path):
    """Warm-replay latency of a small fig2 sweep, as a benchmark."""
    from repro.experiments import fig2

    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    try:
        cold = fig2.run(realizations=20)

        def _warm():
            return fig2.run(realizations=20)

        warm = benchmark.pedantic(_warm, rounds=5, iterations=1,
                                  warmup_rounds=1)
    finally:
        set_default_store(None)
    assert pickle.dumps(warm) == pickle.dumps(cold)
    assert store.hits > 0
    benchmark.extra_info["store_hits"] = store.hits


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine_fabric.json",
                        help="JSON record path (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=MIN_WARM_SPEEDUP,
                        help="warm-cache replay gate (default: %(default)s)")
    args = parser.parse_args(argv)
    return run(args.out, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())
