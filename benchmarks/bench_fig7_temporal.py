"""Fig. 7 benchmark — temporal stability of per-subcarrier quality."""

import numpy as np

from conftest import run_once
from repro.experiments import fig7
from repro.experiments.common import scaled


def test_fig7_temporal_stability(benchmark):
    result = run_once(benchmark, lambda: fig7.run(n_trials=scaled(4, 40)))
    fig7.print_result(result)

    medians = {tau: result.median_nabla(tau) for tau in sorted(result.nabla_samples)}
    for tau, med in medians.items():
        benchmark.extra_info[f"median_nabla_{int(tau)}ms"] = med
        # Paper claim: ∇EVM stays small (within a few percent out to 40 ms;
        # our estimator noise floor raises that slightly).
        assert med < 0.2, f"∇EVM at {tau} ms too large: {med}"
    # Consecutive-gap differences are small (the curves nearly overlap).
    values = list(medians.values())
    assert max(abs(b - a) for a, b in zip(values, values[1:])) < 0.1
