"""Ablation benchmark — silence placement strategy (§II-D claim).

Weak-subcarrier placement overlays silences on symbols that fading would
have corrupted anyway, so at a fixed insertion rate it keeps PRR at least
as high as random placement, which in turn beats strong-subcarrier
placement (erasing confident symbols costs the decoder the most).
"""

import numpy as np

from conftest import run_once
from repro.experiments import ablations


def test_placement_ablation(benchmark):
    result = run_once(benchmark, lambda: ablations.run_placement())
    ablations.print_placement(result)

    assert result.weak_dominates()
    mean_weak = float(np.mean(result.prr["weak"]))
    mean_strong = float(np.mean(result.prr["strong"]))
    benchmark.extra_info["mean_prr_weak"] = mean_weak
    benchmark.extra_info["mean_prr_strong"] = mean_strong
    assert mean_weak >= mean_strong
