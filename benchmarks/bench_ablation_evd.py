"""Ablation benchmark — erasure Viterbi decoding vs error-only decoding.

The §III-E claim: telling the decoder *where* the silences are (zeroed
bit metrics) recovers them more reliably than letting the demapper treat
the noise-only observations as ordinary signal.
"""

import numpy as np

from conftest import run_once
from repro.experiments import ablations


def test_evd_ablation(benchmark):
    result = run_once(benchmark, lambda: ablations.run_evd())
    ablations.print_evd(result)

    assert result.evd_dominates()
    benchmark.extra_info["mean_prr_evd"] = float(np.mean(result.prr_evd))
    benchmark.extra_info["mean_prr_error_only"] = float(np.mean(result.prr_error_only))
    assert np.mean(result.prr_evd) >= np.mean(result.prr_error_only)
