"""Fig. 6 benchmark — symbol-error distribution within a packet."""

from conftest import run_once
from repro.experiments import fig6


def test_fig6_symbol_error_pattern(benchmark):
    result = run_once(benchmark, lambda: fig6.run())
    fig6.print_result(result)

    period = result.dominant_period()
    share = result.weak_subcarrier_error_share(8)
    benchmark.extra_info["dominant_period"] = period
    benchmark.extra_info["weak8_error_share"] = share

    # The paper's two claims: the positional error pattern repeats with
    # period ≈ 48 (the data-subcarrier count), and a few weak subcarriers
    # produce most of the symbol errors.
    assert 44 <= period <= 52
    assert share > 8 / 48
