"""Fig. 2 benchmark — the SNR gap between required and actual SNR."""

import numpy as np

from conftest import run_once
from repro.experiments import fig2


def test_fig2_snr_gap(benchmark):
    result = run_once(benchmark, lambda: fig2.run())
    fig2.print_result(result)

    assert result.gap_always_positive()
    gaps = result.gaps_db
    benchmark.extra_info["min_gap_db"] = float(gaps.min())
    benchmark.extra_info["max_gap_db"] = float(gaps.max())
    # Paper's headline example: ~4.7 dB gap at measured 15 dB; our channel
    # realisations produce gaps of the same order, always > 0.
    assert 0.5 < gaps.min()
    assert gaps.max() < 15.0
