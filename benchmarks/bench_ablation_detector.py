"""Ablation benchmark — likelihood-ratio vs energy-threshold detection.

An extension beyond the paper: the exact Neyman–Pearson test between the
silence and active-mixture hypotheses, compared against the paper's
noise-floor energy threshold.  The LR test lowers the overall cell
misclassification rate precisely in the regime the paper's detector finds
hardest — low-energy inner QAM points on weak subcarriers.
"""

import numpy as np

from conftest import run_once
from repro.cos.energy import EnergyDetector
from repro.cos.ml_detection import MlSilenceDetector
from repro.phy.modulation import get_modulation


def _cell_error_rates(mod_name: str, rel_snr: float, n_sym: int = 400):
    rng = np.random.default_rng(11)
    mod = get_modulation(mod_name)
    noise_var = 0.05
    gain = np.sqrt(rel_snr * noise_var / mod.min_symbol_energy)
    bits = rng.integers(0, 2, n_sym * 48 * mod.bits_per_symbol, dtype=np.uint8)
    symbols = mod.map_bits(bits).reshape(n_sym, 48)
    truth = rng.random((n_sym, 48)) < 0.12
    sent = np.where(truth, 0.0, symbols) * gain
    noise = np.sqrt(noise_var / 2) * (
        rng.standard_normal((n_sym, 48)) + 1j * rng.standard_normal((n_sym, 48))
    )
    grid = sent + noise
    h = np.full(48, gain, dtype=complex)

    ml = MlSilenceDetector().detect(grid, range(48), noise_var, h, mod)
    en = EnergyDetector().detect(
        grid, range(48), noise_var,
        h_gains=np.abs(h) ** 2, min_symbol_energy=mod.min_symbol_energy,
    )
    return float((ml.mask != truth).mean()), float((en.mask != truth).mean())


def test_detector_ablation(benchmark):
    def sweep():
        rows = []
        for mod_name in ("qpsk", "16qam", "64qam"):
            for rel in (8.0, 12.0, 20.0, 40.0):
                err_ml, err_en = _cell_error_rates(mod_name, rel)
                rows.append((mod_name, rel, err_ml, err_en))
        return rows

    rows = run_once(benchmark, sweep)
    from repro.experiments.common import print_table

    print_table(
        ["modulation", "e_min*SNR", "cell err (LR)", "cell err (energy)"],
        rows,
        title="Ablation — likelihood-ratio vs energy detection",
    )
    # The LR detector never loses on Bayes risk.
    for mod_name, rel, err_ml, err_en in rows:
        assert err_ml <= err_en + 2e-3, (mod_name, rel)
    benchmark.extra_info["worst_energy_err"] = max(r[3] for r in rows)
    benchmark.extra_info["worst_lr_err"] = max(r[2] for r in rows)
