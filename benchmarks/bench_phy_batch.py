"""Batch receive path + PRR surrogate perf-smoke.

Two entry points:

* ``pytest benchmarks/bench_phy_batch.py`` — pytest-benchmark
  comparisons of looped :meth:`Receiver.receive` against
  :meth:`Receiver.receive_many` on a same-spec batch.

* ``python benchmarks/bench_phy_batch.py --json BENCH_phy_batch.json``
  — the CI perf-smoke.  Three gates, all relative (same process, same
  machine), so CI runners of any speed give a stable signal:

  1. ``receive_batch64``: ``receive_many`` over 64 same-spec packets
     must run >= ``--min-speedup`` (default 3x) faster than looping
     ``receive`` — measured on the **numpy** backend, so the win comes
     from batching, not from a JIT/C kernel.
  2. ``net_256_surrogate``: a 256-node ``repro net run`` under
     ``cos_fidelity="surrogate"`` must finish within ``--max-slowdown``
     (default 1.2x) of the analytic ``table`` mode — measured fidelity
     may not price the network layer out of scale.
  3. ``surrogate_prr_match``: the committed table's fitted PRR must stay
     within ``--max-prr-err`` (default 0.02) of freshly re-measured
     real-PHY PRR on spot-checked grid nodes.

See ``docs/performance.md`` ("Batch receiver & PRR surrogates").
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict

import numpy as np

from repro.channel import IndoorChannel
from repro.kernels import use_backend
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu

BATCH = 64

#: Spot-checked (rate Mbps, SINR dB) grid nodes for the PRR-match gate —
#: one per modulation family, each near its waterfall knee where a
#: surrogate/live divergence would actually change frame fates.
PRR_CHECK_NODES = ((6, 4.0), (24, 14.0), (54, 22.0))


def _batch_fixture(n_pkts: int = BATCH, mbps: int = 24, snr_db: float = 20.0):
    rate = RATE_TABLE[mbps]
    tx = Transmitter()
    psdu = build_mpdu(bytes(range(256)))
    channel = IndoorChannel.position("A", snr_db=snr_db, seed=3)
    waves = []
    for _ in range(n_pkts):
        channel.evolve(1e-3)
        frame = tx.transmit(psdu, rate)
        waves.append(channel.transmit(frame.waveform))
    return Receiver(), np.stack(waves)


def _time_ms(fn, repeats: int = 5, iters: int = 1) -> float:
    """Best-of-``repeats``: robust to CI-runner noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best * 1e3


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def test_receive_looped_batch64(benchmark):
    rx, waves = _batch_fixture()
    results = benchmark(lambda: [rx.receive(w) for w in waves])
    assert all(r.ok for r in results)


def test_receive_many_batch64(benchmark):
    rx, waves = _batch_fixture()
    results = benchmark(lambda: rx.receive_many(waves))
    assert all(r.ok for r in results)


# ---------------------------------------------------------------------------
# Script mode: BENCH_phy_batch.json + the three gates
# ---------------------------------------------------------------------------


def _gate_receive_batch(min_speedup: float) -> Dict:
    """Gate 1: batched vs looped receive on the numpy backend."""
    with use_backend("numpy") as be:
        be.prewarm()
        rx, waves = _batch_fixture()
        looped = [rx.receive(w) for w in waves]  # warm every cache
        batched = rx.receive_many(waves)
        assert all(s.ok == b.ok for s, b in zip(looped, batched))
        looped_ms = _time_ms(lambda: [rx.receive(w) for w in waves])
        batched_ms = _time_ms(lambda: rx.receive_many(waves))
    speedup = looped_ms / batched_ms
    return {
        "name": "receive_batch64",
        "metric": "receive_many vs looped receive, numpy backend",
        "batch": BATCH,
        "looped_ms": looped_ms,
        "batched_ms": batched_ms,
        "min_speedup": min_speedup,
        "measured_speedup": speedup,
        "passed": speedup >= min_speedup,
    }


def _gate_net_scale(max_slowdown: float) -> Dict:
    """Gate 2: 256-node scenario, surrogate vs analytic-table fidelity."""
    from repro.net import run_scenario_sweep
    from repro.net.scenarios import enterprise_grid
    from repro.net.sinr import SinrModel

    spec = enterprise_grid(n_aps=16, stations_per_ap=15,
                           duration_us=100_000.0)
    assert len(spec.nodes) == 256
    SinrModel.default()  # load the table outside the timed region
    times = {}
    for fidelity in ("table", "surrogate"):
        variant = spec.with_fidelity(fidelity)
        run_scenario_sweep(variant, n_trials=1, seed=1)  # warm
        times[fidelity] = _time_ms(
            lambda v=variant: run_scenario_sweep(v, n_trials=1, seed=1),
            repeats=3,
        )
    slowdown = times["surrogate"] / times["table"]
    return {
        "name": "net_256_surrogate",
        "metric": "256-node net run, surrogate vs table fidelity",
        "nodes": len(spec.nodes),
        "table_ms": times["table"],
        "surrogate_ms": times["surrogate"],
        "max_slowdown": max_slowdown,
        "measured_slowdown": slowdown,
        "passed": slowdown <= max_slowdown,
    }


def _gate_prr_match(max_err: float) -> Dict:
    """Gate 3: committed table vs freshly re-measured real-PHY PRR."""
    from repro.phy.surrogate import load_default_table, measure_prr_point

    table = load_default_table()
    spec = table.spec
    nodes = []
    worst = 0.0
    for mbps, sinr_db in PRR_CHECK_NODES:
        measured = float(np.mean([
            measure_prr_point(spec.position, sinr_db, mbps, spec.n_packets,
                              spec.payload_octets, seed)
            for seed in spec.channel_seeds
        ]))
        fitted = table.prr(sinr_db, mbps)
        err = abs(fitted - measured)
        worst = max(worst, err)
        nodes.append({
            "rate_mbps": mbps,
            "sinr_db": sinr_db,
            "table_prr": fitted,
            "measured_prr": measured,
            "abs_error": err,
        })
    return {
        "name": "surrogate_prr_match",
        "metric": "fitted table PRR vs re-measured PHY PRR on grid nodes",
        "table_hash": table.spec_hash,
        "nodes": nodes,
        "max_abs_error": max_err,
        "measured_abs_error": worst,
        "passed": worst <= max_err,
    }


def run(out_path: str, min_speedup: float, max_slowdown: float,
        max_prr_err: float) -> int:
    gates = [
        _gate_receive_batch(min_speedup),
        _gate_net_scale(max_slowdown),
        _gate_prr_match(max_prr_err),
    ]
    passed = all(g["passed"] for g in gates)
    record = {
        "bench": "phy_batch",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "gates": gates,
        # Mirror of gate 1 in the single-gate shape the other perf-smoke
        # records use, for tooling that reads record["gate"].
        "gate": gates[0],
        "passed": passed,
    }
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")

    g1, g2, g3 = gates
    print(
        f"receive batch {BATCH}: looped={g1['looped_ms']:.1f}ms "
        f"batched={g1['batched_ms']:.1f}ms x{g1['measured_speedup']:.2f} "
        f"(min x{g1['min_speedup']:.2f}) -> "
        f"{'PASS' if g1['passed'] else 'FAIL'}"
    )
    print(
        f"net 256 nodes: table={g2['table_ms']:.0f}ms "
        f"surrogate={g2['surrogate_ms']:.0f}ms "
        f"x{g2['measured_slowdown']:.3f} (max x{g2['max_slowdown']:.2f}) -> "
        f"{'PASS' if g2['passed'] else 'FAIL'}"
    )
    print(
        f"PRR match: worst |table - measured| = "
        f"{g3['measured_abs_error']:.4f} over "
        f"{len(g3['nodes'])} grid nodes (max {g3['max_abs_error']:.2f}) -> "
        f"{'PASS' if g3['passed'] else 'FAIL'}"
    )
    return 0 if passed else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_phy_batch.json",
                        help="output record path")
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="gate 1: minimum receive_many/looped speedup at batch 64 "
        "on the numpy backend (default 3.0)",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=1.2,
        help="gate 2: maximum surrogate/table wall-time ratio on the "
        "256-node scenario (default 1.2)",
    )
    parser.add_argument(
        "--max-prr-err", type=float, default=0.02,
        help="gate 3: maximum |table - measured| PRR on spot-checked "
        "grid nodes (default 0.02)",
    )
    args = parser.parse_args(argv)
    return run(args.json, args.min_speedup, args.max_slowdown,
               args.max_prr_err)


if __name__ == "__main__":
    sys.exit(main())
