"""Fig. 10 benchmark — silence-symbol detection accuracy."""

import numpy as np

from conftest import run_once
from repro.experiments import fig10


def test_fig10a_snapshot(benchmark):
    snap = run_once(benchmark, lambda: fig10.run_snapshot())
    print(f"\nFig. 10(a): silent subcarriers {snap.silent_data_subcarriers}, "
          f"contrast {snap.contrast_db():.1f} dB")
    benchmark.extra_info["contrast_db"] = snap.contrast_db()
    assert snap.contrast_db() > 6.0  # silences clearly discernible


def test_fig10b_threshold_tradeoff(benchmark):
    sweep = run_once(benchmark, lambda: fig10.run_threshold_sweep())
    from repro.experiments.common import print_table

    print_table(
        ["threshold dB(rel floor)", "FP", "FN"],
        list(zip(sweep.thresholds_db, sweep.false_positive, sweep.false_negative)),
        title="Fig. 10(b)",
    )
    # Too low a threshold misses silences; too high misreads fades.
    assert sweep.false_negative[0] > 0.3
    assert sweep.false_negative[-1] < 0.02
    assert sweep.false_positive[-1] > 0.3
    assert sweep.false_positive[0] < 0.02
    benchmark.extra_info["crossover_db"] = sweep.crossover_db()


def test_fig10c_adaptive_accuracy(benchmark):
    acc = run_once(benchmark, lambda: fig10.run_accuracy_vs_snr())
    from repro.experiments.common import print_table

    print_table(
        ["measured dB", "FP", "FN"],
        list(zip(acc.snrs_db, acc.false_positive, acc.false_negative)),
        title="Fig. 10(c)",
    )
    # Paper claims: FN below 0.01 everywhere (adaptive threshold); FP near
    # zero in the working region and growing only at very low SNR.
    assert np.all(acc.false_negative <= 0.02)
    working = acc.snrs_db >= 14.0
    assert np.all(acc.false_positive[working] <= 0.05)
    low = acc.snrs_db <= 5.0
    assert np.all(acc.false_positive[low] >= acc.false_positive[working].max())
    benchmark.extra_info["fp_at_lowest_snr"] = float(acc.false_positive[0])


def test_fig10d_interference(benchmark):
    intf = run_once(benchmark, lambda: fig10.run_interference())
    clean = fig10.run_accuracy_vs_snr(snrs_db=intf.snrs_db)
    from repro.experiments.common import print_table

    print_table(
        ["measured dB", "FN interference", "FN clean"],
        list(zip(intf.snrs_db, intf.false_negative, clean.false_negative)),
        title="Fig. 10(d)",
    )
    # Strong pulse interference destroys silence detection.
    assert np.mean(intf.false_negative) > 5 * max(np.mean(clean.false_negative), 1e-3)
    benchmark.extra_info["mean_fn_interference"] = float(np.mean(intf.false_negative))
