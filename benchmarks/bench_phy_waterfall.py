"""PHY conformance benchmark — PER waterfalls per rate.

Substrate validation: monotone waterfalls, rate ordering, and the
hard-decision union bound sitting above the soft decoder's performance.
"""

import numpy as np

from conftest import run_once
from repro.experiments import waterfall


def test_phy_waterfall(benchmark):
    result = run_once(benchmark, lambda: waterfall.run())
    waterfall.print_result(result)

    for mbps in result.per:
        assert result.monotone_non_increasing(mbps), f"{mbps} Mbps not monotone"
    assert result.rates_ordered()
    # Sanity anchors: BPSK-1/2 works single-digit dB; 64QAM-3/4 does not.
    assert result.snr_for_per(6) <= 8.0
    assert result.snr_for_per(54) >= 14.0
    for mbps in result.per:
        benchmark.extra_info[f"snr_per10_{mbps}mbps"] = result.snr_for_per(mbps)
