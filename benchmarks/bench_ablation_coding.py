"""Ablation benchmark — interval coding vs bitmap coding.

Why does the paper encode bits in the *gaps between* silences instead of
a plain silence bitmap?  Because silences consume the channel code's
correction budget: at a fixed control bit-rate, intervals spend ~1/k
silences per bit against the bitmap's ~1/2, so the data plane keeps a
~4x larger erasure margin at k = 4.  This bench measures the data PRR of
both schemes carrying identical control payloads.
"""

import numpy as np

from conftest import run_once
from repro.cos.bitmap_coding import BitmapPlanner
from repro.cos.silence import SilencePlanner
from repro.experiments.common import ExperimentConfig, print_table, scaled
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu


def _prr(scheme: str, bits_per_packet: int, snr_db: float, n_packets: int) -> tuple:
    config = ExperimentConfig()
    rate = RATE_TABLE[18]  # QPSK 3/4: thin code budget, silences hurt
    subcarriers = list(range(16))
    tx = Transmitter()
    rx = Receiver()
    psdu = build_mpdu(config.payload)
    n_symbols = rate.n_symbols_for(len(psdu))
    rng = np.random.default_rng(31)
    channel = config.channel(snr_db)

    ok = 0
    silences = []
    for _ in range(n_packets):
        bits = rng.integers(0, 2, bits_per_packet, dtype=np.uint8)
        if scheme == "interval":
            plan = SilencePlanner(subcarriers).plan(bits, n_symbols)
        else:
            plan = BitmapPlanner(subcarriers).plan(bits, n_symbols)
        frame = tx.transmit(psdu, rate, silence_mask=plan.mask)
        result = rx.receive(channel.transmit(frame.waveform), erasure_mask=plan.mask)
        ok += result.ok
        silences.append(plan.n_silences)
        channel.evolve(1e-3)
    return ok / n_packets, float(np.mean(silences))


def test_coding_scheme_ablation(benchmark):
    n_packets = scaled(20, 100)
    snr_db = 9.7  # just inside the 18 Mbps band

    def sweep():
        rows = []
        for bits in (128, 256, 448):
            prr_i, sil_i = _prr("interval", bits, snr_db, n_packets)
            prr_b, sil_b = _prr("bitmap", bits, snr_db, n_packets)
            rows.append((bits, sil_i, prr_i, sil_b, prr_b))
        return rows

    rows = run_once(benchmark, sweep)
    print_table(
        ["ctrl bits/packet", "silences (interval)", "PRR (interval)",
         "silences (bitmap)", "PRR (bitmap)"],
        rows,
        title="Ablation — interval vs bitmap silence coding (18 Mbps, 9.7 dB)",
    )
    for bits, sil_i, prr_i, sil_b, prr_b in rows:
        assert sil_i < sil_b  # intervals always spend fewer silences
        assert prr_i >= prr_b - 0.05  # and never pay more data PRR
    # At the heaviest load the budget gap must show up in PRR.
    assert rows[-1][2] > rows[-1][4]
    benchmark.extra_info["prr_interval_heavy"] = rows[-1][2]
    benchmark.extra_info["prr_bitmap_heavy"] = rows[-1][4]
