"""Simulator-throughput scaling — events/sec across node counts.

Two entry points:

* ``pytest benchmarks/bench_net_scaling.py`` — pytest-benchmark record of
  the contention scenario at the middle node count, with events/sec and
  the sim-to-wall ratio attached as ``extra_info``.

* ``python benchmarks/bench_net_scaling.py --out BENCH_net_scaling.json``
  — the CI perf-smoke: runs the contention built-in at several station
  counts with a profiling :class:`repro.net.lens.NetLens` attached,
  records events/sec, sim-time-to-wall-time ratio, and the hottest
  callback types per point, and exits non-zero if throughput at any
  point falls below ``--min-events-per-sec`` (deliberately a very low
  floor: the gate exists to catch order-of-magnitude regressions — an
  accidentally quadratic medium scan, say — not CI-runner noise).

This is the measurement the ROADMAP's dense-multi-BSS scaling work is
gated on: the event scheduler's dispatch rate is the simulator's budget,
and the per-callback histograms say where it goes as N grows.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List

from repro.net import NetLens, builtin_scenario, run_scenario

#: Station counts for the scaling sweep (>= 3 points, per the CI gate).
NODE_COUNTS = (2, 4, 8, 16)

#: Floor on scheduler throughput at every point.  Interpreted loosely on
#: purpose — a 2010 laptop clears 10k events/s; a regression that trips
#: this is structural, not noise.
MIN_EVENTS_PER_SEC = 5_000.0


def _run_point(n_stations: int, n_packets: int = 40,
               duration_us: float = 200_000.0) -> Dict:
    """One profiled contention run; returns the JSON record for the point."""
    spec = builtin_scenario(
        "contention", n_stations=n_stations, n_packets=n_packets,
        duration_us=duration_us,
    )
    lens = NetLens(trace=False, ledger=False, profile=True)
    result = run_scenario(spec, rng=0, lens=lens)
    profile = result.profile
    # Hottest callback types by total wall time (top 3 is plenty for CI).
    by_type = profile.get("by_type", {})
    hottest = sorted(by_type.items(), key=lambda kv: -kv[1]["total_s"])[:3]
    return {
        "n_stations": n_stations,
        "n_nodes": n_stations + 1,
        "n_events": profile["n_events"],
        "wall_s": profile["wall_s"],
        "events_per_sec": profile["events_per_sec"],
        "sim_us": profile["sim_us"],
        "sim_wall_ratio": profile["sim_wall_ratio"],
        "hottest": {name: stats["total_s"] for name, stats in hottest},
    }


def run(out_path: str, min_events_per_sec: float) -> int:
    points: List[Dict] = []
    for n in NODE_COUNTS:
        point = _run_point(n)
        points.append(point)
        print(f"contention-{n:<3d} {point['n_events']:>7d} events  "
              f"{point['events_per_sec']:>10.0f} ev/s  "
              f"sim/wall {point['sim_wall_ratio']:>8.1f}x")

    record = {
        "bench": "net_scaling",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "min_events_per_sec": min_events_per_sec,
        "points": points,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")

    slow = [p for p in points if p["events_per_sec"] < min_events_per_sec]
    if slow:
        for p in slow:
            print(f"FAIL: contention-{p['n_stations']} ran at "
                  f"{p['events_per_sec']:.0f} ev/s "
                  f"(< {min_events_per_sec:.0f})", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------


def test_net_scaling(benchmark):
    """Scheduler throughput at the sweep's middle point, as a benchmark."""
    spec = builtin_scenario("contention", n_stations=8, n_packets=40,
                            duration_us=200_000.0)

    def _once():
        lens = NetLens(trace=False, ledger=False, profile=True)
        run_scenario(spec, rng=0, lens=lens)
        return lens

    lens = benchmark.pedantic(_once, rounds=3, iterations=1, warmup_rounds=1)
    n_events = lens.n_sched_events
    assert n_events > 0 and lens.wall_s > 0
    eps = n_events / lens.wall_s
    benchmark.extra_info["n_events"] = n_events
    benchmark.extra_info["events_per_sec"] = eps
    benchmark.extra_info["sim_wall_ratio"] = lens.duration_us / (lens.wall_s * 1e6)
    assert eps > MIN_EVENTS_PER_SEC


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_net_scaling.json",
                        help="JSON record path (default: %(default)s)")
    parser.add_argument("--min-events-per-sec", type=float,
                        default=MIN_EVENTS_PER_SEC,
                        help="throughput gate per point (default: %(default)s)")
    args = parser.parse_args(argv)
    return run(args.out, args.min_events_per_sec)


if __name__ == "__main__":
    sys.exit(main())
