"""Simulator-throughput scaling — culled vs dense-exact media across N.

Two entry points:

* ``pytest benchmarks/bench_net_scaling.py`` — pytest-benchmark record of
  the contention scenario at a fixed node count, with events/sec and the
  sim-to-wall ratio attached as ``extra_info``.

* ``python benchmarks/bench_net_scaling.py --out BENCH_net_scaling.json``
  — the CI perf-smoke: sweeps the ``enterprise-grid`` built-in over
  N ∈ {16, 64, 256, 1024} nodes (``n_aps = N / 16`` cells of one AP +
  15 stations) with a profiling :class:`repro.net.lens.NetLens`
  attached, once per medium mode — the default grid-culled medium at
  every N, the all-pairs ``dense-exact`` medium up to N = 256 (beyond
  that its quadratic per-attempt cost is the point being demonstrated,
  not a number CI should wait for).  Each point records events/sec, the
  sim-time-to-wall-time ratio, the mean wall cost of the reception
  decision (``Medium._end`` from the per-callback histograms — the
  quantity spatial culling makes sub-linear in N), and the hottest
  callback types.  Exits non-zero if

  - culled throughput at any point falls below ``--min-events-per-sec``
    (deliberately a very low floor: the gate catches order-of-magnitude
    regressions — an accidentally quadratic medium scan, say — not
    CI-runner noise; the dense-exact baseline is exempt — its large-N
    slowness is the measurement), or
  - culled events/sec at the largest common N fails to beat dense-exact
    by ``--min-speedup`` (a conservative floor; the measured speedup at
    N = 256 is recorded as ``speedup_at_n``).

This is the measurement the ROADMAP's dense-multi-BSS scaling work is
gated on: the event scheduler's dispatch rate is the simulator's budget,
and the per-callback histograms say where it goes as N grows.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict, List, Optional

from repro.net import NetLens, builtin_scenario, run_scenario

#: Total node counts for the scaling sweep (each cell = 1 AP + 15 stations).
NODE_COUNTS = (16, 64, 256, 1024)

#: Largest N the all-pairs dense-exact medium is run at.
DENSE_MAX_NODES = 256

#: Floor on scheduler throughput at every point.  Interpreted loosely on
#: purpose: per-event cost grows with N even with culling (the rx fan-out
#: is bounded, not constant), so the binding point is N = 1024, which
#: clears ~5k events/s on an idle CI-class runner.  The regression this
#: gate exists to catch — an accidentally quadratic medium scan — lands
#: two orders of magnitude lower (dense-exact manages ~900 ev/s at a
#: quarter of the nodes), so 2k keeps that margin without tripping on
#: hardware variance.
MIN_EVENTS_PER_SEC = 2_000.0

#: Floor on the culled/dense events-per-sec ratio at N = DENSE_MAX_NODES.
#: The measured speedup is typically well above this; the gate only
#: guards against the culled path degenerating back to all-pairs cost.
MIN_SPEEDUP = 2.0


def _run_point(n_nodes: int, medium_mode: str,
               duration_us: float = 100_000.0) -> Dict:
    """One profiled enterprise-grid run; returns the point's JSON record."""
    spec = builtin_scenario(
        "enterprise-grid", n_aps=max(1, n_nodes // 16), stations_per_ap=15,
        duration_us=duration_us, medium_mode=medium_mode,
    )
    lens = NetLens(trace=False, ledger=False, profile=True)
    result = run_scenario(spec, rng=0, lens=lens)
    profile = result.profile
    by_type = profile.get("by_type", {})
    # The reception decision: SINR evaluation + carrier-state fan-out at
    # each transmission end — the per-attempt cost culling bounds.
    rx_cost = next((stats for name, stats in by_type.items()
                    if name.endswith("Medium._end")), None)
    hottest = sorted(by_type.items(), key=lambda kv: -kv[1]["total_s"])[:3]
    return {
        "scenario": spec.name,
        "medium_mode": medium_mode,
        "n_nodes": len(spec.nodes),
        "n_events": profile["n_events"],
        "wall_s": profile["wall_s"],
        "events_per_sec": profile["events_per_sec"],
        "sim_us": profile["sim_us"],
        "sim_wall_ratio": profile["sim_wall_ratio"],
        "rx_cost_mean_us": rx_cost["mean_us"] if rx_cost else None,
        "rx_cost_p95_us": rx_cost["p95_us"] if rx_cost else None,
        "goodput_mbps": result.aggregate_goodput_mbps,
        "hottest": {name: stats["total_s"] for name, stats in hottest},
    }


def run(out_path: str, min_events_per_sec: float,
        min_speedup: float) -> int:
    points: List[Dict] = []
    for mode in ("culled", "dense-exact"):
        for n in NODE_COUNTS:
            if mode == "dense-exact" and n > DENSE_MAX_NODES:
                continue
            point = _run_point(n, mode)
            points.append(point)
            rx = point["rx_cost_mean_us"]
            rx_col = f"rx {rx:>7.1f} us/end  " if rx is not None else ""
            print(f"{mode:<12s} N={n:<5d} {point['n_events']:>8d} events  "
                  f"{point['events_per_sec']:>10.0f} ev/s  {rx_col}"
                  f"sim/wall {point['sim_wall_ratio']:>8.1f}x")

    def _eps(mode: str, n: int) -> Optional[float]:
        for p in points:
            if p["medium_mode"] == mode and p["n_nodes"] == n:
                return p["events_per_sec"]
        return None

    culled = _eps("culled", DENSE_MAX_NODES)
    dense = _eps("dense-exact", DENSE_MAX_NODES)
    speedup = (culled / dense) if culled and dense else None
    if speedup is not None:
        print(f"culled speedup over dense-exact at N={DENSE_MAX_NODES}: "
              f"{speedup:.1f}x")

    record = {
        "bench": "net_scaling",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "min_events_per_sec": min_events_per_sec,
        "min_speedup": min_speedup,
        "speedup_at_n": {"n_nodes": DENSE_MAX_NODES, "speedup": speedup},
        "points": points,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")

    rc = 0
    # The throughput floor gates the production (culled) path only — the
    # dense-exact baseline being slow at large N is what the speedup
    # figure demonstrates, not a regression.
    slow = [p for p in points if p["medium_mode"] == "culled"
            and p["events_per_sec"] < min_events_per_sec]
    for p in slow:
        print(f"FAIL: {p['medium_mode']} N={p['n_nodes']} ran at "
              f"{p['events_per_sec']:.0f} ev/s "
              f"(< {min_events_per_sec:.0f})", file=sys.stderr)
        rc = 1
    if speedup is not None and speedup < min_speedup:
        print(f"FAIL: culled medium only {speedup:.2f}x faster than "
              f"dense-exact at N={DENSE_MAX_NODES} "
              f"(< {min_speedup:.1f}x)", file=sys.stderr)
        rc = 1
    return rc


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------


def test_net_scaling(benchmark):
    """Scheduler throughput on a single-cell contention run, as a benchmark."""
    spec = builtin_scenario("contention", n_stations=8, n_packets=40,
                            duration_us=200_000.0)

    def _once():
        lens = NetLens(trace=False, ledger=False, profile=True)
        run_scenario(spec, rng=0, lens=lens)
        return lens

    lens = benchmark.pedantic(_once, rounds=3, iterations=1, warmup_rounds=1)
    n_events = lens.n_sched_events
    assert n_events > 0 and lens.wall_s > 0
    eps = n_events / lens.wall_s
    benchmark.extra_info["n_events"] = n_events
    benchmark.extra_info["events_per_sec"] = eps
    benchmark.extra_info["sim_wall_ratio"] = lens.duration_us / (lens.wall_s * 1e6)
    assert eps > MIN_EVENTS_PER_SEC


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_net_scaling.json",
                        help="JSON record path (default: %(default)s)")
    parser.add_argument("--min-events-per-sec", type=float,
                        default=MIN_EVENTS_PER_SEC,
                        help="throughput gate per point (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="culled-over-dense events/sec gate at "
                             f"N={DENSE_MAX_NODES} (default: %(default)s)")
    args = parser.parse_args(argv)
    return run(args.out, args.min_events_per_sec, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())
