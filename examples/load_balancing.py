"""AP load balancing over the free control channel.

Two access points serve a shared area.  Each AP continuously reports its
load (station count + utilisation level) to its associated clients by
embedding :class:`LoadReport` messages into ordinary downlink traffic —
no beacons stuffed with vendor IEs, no extra management frames.  Clients
compare the freshest reports and steer to the lighter AP.

The script simulates a few steering rounds and prints the decisions.

Run:  python examples/load_balancing.py
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import CosLink, IndoorChannel
from repro.cos import LoadReport, decode_message, encode_message


@dataclass
class AccessPoint:
    name: str
    link: CosLink
    station_count: int
    load_level: int  # 0..15 quantised utilisation

    def downlink(self, payload: bytes) -> Optional[LoadReport]:
        """Send one data packet carrying the current load report."""
        report = LoadReport(
            station_count=self.station_count, load_level=self.load_level
        )
        outcome = self.link.exchange(payload, encode_message(report))
        if outcome.data_ok and outcome.control_ok:
            return decode_message(outcome.control_received)
        return None


def main():
    rng = np.random.default_rng(3)
    payload = bytes(600)

    ap1 = AccessPoint(
        "AP-1",
        CosLink(channel=IndoorChannel.position("B", snr_db=19.0, seed=21)),
        station_count=12,
        load_level=11,
    )
    ap2 = AccessPoint(
        "AP-2",
        CosLink(channel=IndoorChannel.position("B", snr_db=18.5, seed=22)),
        station_count=4,
        load_level=3,
    )
    for ap in (ap1, ap2):
        ap.link.exchange(payload, [])  # bootstrap feedback

    client_on = ap1
    print("client associated to AP-1 (overloaded)\n")

    for round_id in range(6):
        reports = {}
        for ap in (ap1, ap2):
            report = ap.downlink(payload)
            if report is not None:
                reports[ap.name] = report

        line = ", ".join(
            f"{name}: {r.station_count} stations, load {r.load_level}/15"
            for name, r in sorted(reports.items())
        )
        print(f"round {round_id}: {line or 'no reports received'}")

        if len(reports) == 2:
            lighter = min(reports, key=lambda n: reports[n].load_level)
            target = ap1 if lighter == "AP-1" else ap2
            if target is not client_on:
                client_on = target
                print(f"         -> client steers to {lighter} "
                      "(decision made on free control messages)")

        # Load drifts a little between rounds.
        ap1.load_level = int(np.clip(ap1.load_level + rng.integers(-1, 2), 0, 15))
        ap2.load_level = int(np.clip(ap2.load_level + rng.integers(-1, 2), 0, 15))

    print(f"\nclient ends on {client_on.name}")
    print("control airtime consumed by the steering protocol: 0 µs")


if __name__ == "__main__":
    main()
