"""Free block-ACKs: acknowledge a data stream without ACK airtime.

The paper motivates CoS with access coordination: control frames cost
airtime (an 802.11a ACK burns ~44 µs of preamble+SIGNAL+payload at the
base rate, per packet).  Here station B streams data to station A while
simultaneously acknowledging the *reverse* stream's sequence numbers over
CoS silence symbols — the ACK channel rides inside data packets it was
going to send anyway.

The script compares the airtime budget of explicit ACK frames against the
CoS piggyback and reports the delivered-ACK accuracy.

Run:  python examples/free_ack_piggyback.py
"""

import numpy as np

from repro import CosLink, IndoorChannel
from repro.cos import AckMessage, decode_message, encode_message

EXPLICIT_ACK_AIRTIME_US = 44.0  # preamble 20 us + ACK @ 6 Mbps, plus SIFS


def main():
    channel = IndoorChannel.position("B", snr_db=18.0, seed=11)
    link = CosLink(channel=channel)
    payload = bytes(800)

    n_packets = 30
    acked, delivered_acks = 0, []
    link.exchange(payload, [])  # bootstrap subcarrier feedback

    for seq in range(n_packets):
        ack = AckMessage(seq=seq)
        outcome = link.exchange(payload, encode_message(ack))
        if outcome.data_ok and outcome.control_ok:
            received = decode_message(outcome.control_received)
            delivered_acks.append(received.seq)
            acked += 1

    cos_airtime = 0.0
    explicit_airtime = n_packets * EXPLICIT_ACK_AIRTIME_US

    print(f"packets carrying a piggybacked block-ACK: {n_packets}")
    print(f"ACKs delivered intact over CoS:           {acked} "
          f"({acked / n_packets * 100:.1f} %)")
    print(f"sequence numbers received: {delivered_acks[:10]} ...")
    print()
    print(f"airtime for explicit ACK frames: {explicit_airtime:8.1f} µs")
    print(f"airtime for CoS acks:            {cos_airtime:8.1f} µs")
    print(f"airtime saved:                   {explicit_airtime:8.1f} µs "
          f"({explicit_airtime / 1e3:.2f} ms per {n_packets} packets)")
    print()
    print("Lost ACKs simply fall back to the normal MAC retransmission path —")
    print("CoS control is opportunistic, the data plane never depends on it.")


if __name__ == "__main__":
    main()
