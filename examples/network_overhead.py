"""Network-level payoff: explicit control frames vs CoS, under contention.

Every data packet in this WLAN generates one lightweight control message
(think per-packet reports or block-acks).  With explicit control frames,
those messages contend for the medium like everything else; with CoS they
ride inside data packets for free.  This script runs both schemes on the
DCF substrate and prints goodput, control airtime share, and control
latency across contention levels.

Run:  python examples/network_overhead.py
"""

from repro.mac.overhead import ControlScheme, run_overhead_comparison


def main():
    print(f"{'stations':>8} | {'scheme':>9} | {'goodput':>9} | "
          f"{'ctrl airtime':>12} | {'ctrl latency':>12} | {'delivered':>9}")
    print("-" * 76)
    for n_stations in (2, 4, 8, 12):
        for scheme in (ControlScheme.EXPLICIT, ControlScheme.COS):
            r = run_overhead_comparison(scheme, n_stations=n_stations, seed=7)
            print(
                f"{n_stations:>8} | {scheme.value:>9} | "
                f"{r.goodput_mbps:7.2f} Mb | "
                f"{r.control_airtime_fraction * 100:10.1f} % | "
                f"{r.mean_control_latency_us / 1e3:9.2f} ms | "
                f"{r.control_messages_delivered:>9}"
            )
    print()
    print("CoS control consumes zero airtime, so its goodput advantage appears")
    print("once the medium saturates — the motivation the paper opens with.")
    print("Control latency is also far lower: a piggybacked message rides the")
    print("very next data frame instead of contending from the back of the")
    print("DCF queue.  CoS's cost is probabilistic delivery (the PHY-measured")
    print("message accuracy): a few messages need a second carrier.")


if __name__ == "__main__":
    main()
