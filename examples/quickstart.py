"""Quickstart: send free control messages inside ordinary data packets.

Creates an indoor link, exchanges a handful of data packets that carry
CoS control bits in their silence-symbol intervals, and prints what the
receiver got — data payload (CRC-checked) and control message — plus the
resources CoS consumed: zero extra airtime.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CosLink, IndoorChannel


def main():
    # An indoor channel at receiver position "A" (the paper's most
    # frequency-selective spot), with the NIC reporting 15 dB — the
    # paper's running example, where rate adaptation picks 24 Mbps.
    channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
    link = CosLink(channel=channel)

    print(f"measured SNR (NIC):    {channel.measured_snr_db:5.1f} dB")
    print(f"actual SNR (sounder):  {channel.actual_snr_db:5.1f} dB")
    print("the gap between them is the head-room CoS converts into control capacity\n")

    payload = b"All the data this packet was going to carry anyway. " * 10
    rng = np.random.default_rng(42)

    for i in range(5):
        control_bits = rng.integers(0, 2, size=16, dtype=np.uint8)
        outcome = link.exchange(payload, control_bits)
        status = "ok " if outcome.control_ok else "lost"
        print(
            f"packet {i}: rate={outcome.rate_mbps:2d} Mbps  "
            f"data={'ok ' if outcome.data_ok else 'BAD'}  "
            f"control[{status}] sent={''.join(map(str, outcome.control_sent))} "
            f"recv={''.join(map(str, outcome.control_received))}  "
            f"silences={outcome.n_silences}"
        )

    # Show where the last packet's silences actually sat (Fig. 1(a) style).
    from repro.cos import render_silence_grid

    link.tx.enqueue_control(rng.integers(0, 2, size=24, dtype=np.uint8))
    record = link.tx.build(payload, link.adapter.select(15.0), 15.0)
    print("\nsilence grid of one packet on the selected control subcarriers:")
    print(render_silence_grid(record.frame.silence_mask, record.control_subcarriers,
                              max_symbols=70))
    print()

    stats = link.run(n_packets=20, payload=payload)
    print(f"\nover {stats.n_packets} more packets:")
    print(f"  data PRR:                {stats.prr * 100:5.1f} %")
    print(f"  control message accuracy {stats.message_accuracy * 100:5.1f} %")
    print(f"  control bits delivered:  {stats.control_bits_delivered}")
    print(f"  silence symbols used:    {stats.total_silences}")
    print("  extra channel airtime:       0 µs  (that's the point)")


if __name__ == "__main__":
    main()
