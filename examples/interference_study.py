"""Interference study: where CoS breaks, and how gracefully.

The paper is explicit about its limits (§IV-C): strong pulse interference
raises the energy of silence symbols above the detection threshold, so
silences are missed and control messages are lost — while the data plane
survives longer thanks to the channel code.  This script sweeps the pulse
interferer's duty cycle and reports data PRR, control accuracy, and the
controller's fallback behaviour.

Run:  python examples/interference_study.py
"""

import numpy as np

from repro import CosLink, IndoorChannel
from repro.channel import PulseInterferer


def session(duty_cycle: float, n_packets: int = 20) -> dict:
    interferer = (
        PulseInterferer(
            pulse_power=8.0,
            symbol_probability=duty_cycle,
            rng=np.random.default_rng(99),
        )
        if duty_cycle > 0
        else None
    )
    channel = IndoorChannel.position(
        "B", snr_db=19.0, seed=8, interferer=interferer
    )
    link = CosLink(channel=channel)
    stats = link.run(n_packets=n_packets, payload=bytes(500))
    fallbacks = sum(
        1 for o in stats.outcomes if not o.data_ok
    )
    return {
        "prr": stats.prr,
        "msg_accuracy": stats.message_accuracy,
        "mean_fn": float(np.mean([o.detection_fn for o in stats.outcomes])),
        "fallbacks": fallbacks,
    }


def main():
    print("pulse duty | data PRR | control msg acc | silence FN | rate fallbacks")
    print("-" * 72)
    for duty in (0.0, 0.05, 0.15, 0.3, 0.5):
        r = session(duty)
        print(
            f"   {duty:4.2f}    |  {r['prr'] * 100:5.1f} % |"
            f"     {r['msg_accuracy'] * 100:5.1f} %     |"
            f"   {r['mean_fn']:.3f}    |      {r['fallbacks']}"
        )
    print()
    print("Reading: the control channel degrades first (missed silences ->")
    print("broken intervals) while the data plane rides the channel code; on")
    print("data failures the sender drops to the lowest control rate, exactly")
    print("the fallback rule of §III-F.  The paper's position: strong")
    print("interference is the MAC coordination layer's problem, not CoS's.")


if __name__ == "__main__":
    main()
