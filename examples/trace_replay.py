"""Reproducible A/B comparison on identical fading trajectories.

Records an indoor channel's walking-speed evolution to a trace file, then
replays the *same* trajectory twice: once with plain per-packet EVM
feedback and once with the EWMA predictor smoothing it.  Because both
variants see identical channels, any difference in control accuracy is
attributable to the predictor alone — the trace-driven methodology the
paper's measurements use.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CosLink, IndoorChannel
from repro.channel import ChannelTrace, ReplayChannelSequence, TraceRecorder
from repro.cos import EvmPredictor


def record_trace(path: Path, n_steps: int = 40, gap_s: float = 2e-3) -> None:
    channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
    recorder = TraceRecorder()
    for _ in range(n_steps):
        recorder.snapshot(channel.tdl, elapsed_s=gap_s)
        channel.evolve(gap_s)
    recorder.finish().save(path)


def run_variant(path: Path, use_predictor: bool) -> dict:
    replay = ReplayChannelSequence(ChannelTrace.load(path))
    channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
    link = CosLink(channel=channel, inter_packet_gap_s=0.0)  # replay owns time
    if use_predictor:
        link.rx.predictor = EvmPredictor()
    rng = np.random.default_rng(99)

    ok = msgs = 0
    attempts = 0
    while not replay.exhausted:
        channel.tdl.taps = replay.next_channel().taps  # pin to the trace
        bits = rng.integers(0, 2, size=16, dtype=np.uint8)
        outcome = link.exchange(bytes(400), bits)
        ok += outcome.data_ok
        msgs += outcome.control_group_accuracy()
        attempts += 1
    return {"prr": ok / attempts, "msg_acc": msgs / attempts}


def main():
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "walk.npz"
        record_trace(path)
        print(f"recorded {ChannelTrace.load(path).n_steps} channel snapshots\n")

        plain = run_variant(path, use_predictor=False)
        smoothed = run_variant(path, use_predictor=True)

    print("same fading trajectory, two feedback variants:")
    print(f"  raw per-packet EVM feedback: PRR {plain['prr'] * 100:5.1f} %, "
          f"message accuracy {plain['msg_acc'] * 100:5.1f} %")
    print(f"  EWMA-smoothed feedback:      PRR {smoothed['prr'] * 100:5.1f} %, "
          f"message accuracy {smoothed['msg_acc'] * 100:5.1f} %")
    print()
    print("Trace replay removes channel randomness from the comparison —")
    print("the remaining delta is the predictor's doing.")


if __name__ == "__main__":
    main()
