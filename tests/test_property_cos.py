"""Property-based tests for the CoS planning/recovery invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cos.messages import (
    AckMessage,
    AirtimeGrant,
    LoadReport,
    RateRequest,
    decode_message,
    encode_message,
)
from repro.cos.selection import FeedbackCodec
from repro.cos.silence import SilencePlanner

subcarrier_sets = st.lists(
    st.integers(0, 47), min_size=1, max_size=16, unique=True
)


class TestPlannerProperties:
    @given(
        subcarrier_sets,
        st.lists(st.integers(0, 1), max_size=120),
        st.integers(1, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_plan_recover_roundtrip(self, subcarriers, bits, n_symbols):
        """Whatever the planner embeds, recover_bits returns exactly."""
        planner = SilencePlanner(subcarriers)
        plan = planner.plan(np.array(bits, dtype=np.uint8), n_symbols)
        assert np.array_equal(planner.recover_bits(plan.mask), plan.embedded_bits)

    @given(
        subcarrier_sets,
        st.lists(st.integers(0, 1), max_size=120),
        st.integers(1, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_embedded_is_prefix(self, subcarriers, bits, n_symbols):
        planner = SilencePlanner(subcarriers)
        bits = np.array(bits, dtype=np.uint8)
        plan = planner.plan(bits, n_symbols)
        assert np.array_equal(plan.embedded_bits, bits[: plan.embedded_bits.size])

    @given(
        subcarrier_sets,
        st.lists(st.integers(0, 1), max_size=120),
        st.integers(1, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_mask_only_on_control_subcarriers(self, subcarriers, bits, n_symbols):
        planner = SilencePlanner(subcarriers)
        plan = planner.plan(np.array(bits, dtype=np.uint8), n_symbols)
        silent_columns = set(np.nonzero(plan.mask)[1].tolist())
        assert silent_columns <= set(subcarriers)

    @given(
        subcarrier_sets,
        st.lists(st.integers(0, 1), max_size=120),
        st.integers(1, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_silence_count_matches_mask(self, subcarriers, bits, n_symbols):
        planner = SilencePlanner(subcarriers)
        plan = planner.plan(np.array(bits, dtype=np.uint8), n_symbols)
        assert int(plan.mask.sum()) == plan.n_silences
        k = planner.codec.k
        if plan.n_silences:
            assert plan.n_silences == 1 + plan.embedded_bits.size // k


class TestFeedbackProperties:
    @given(st.lists(st.integers(0, 47), max_size=48, unique=True))
    def test_feedback_roundtrip(self, subcarriers):
        mask = FeedbackCodec.encode(subcarriers)
        assert FeedbackCodec.decode(mask) == sorted(subcarriers)


class TestMessageProperties:
    @given(st.integers(0, 4095))
    def test_ack_roundtrip(self, seq):
        assert decode_message(encode_message(AckMessage(seq=seq))).seq == seq

    @given(st.integers(0, 255), st.integers(0, 15))
    def test_load_report_roundtrip(self, stations, load):
        message = LoadReport(station_count=stations, load_level=load)
        assert decode_message(encode_message(message)) == message

    @given(st.integers(0, 15))
    def test_rate_request_roundtrip(self, idx):
        assert decode_message(encode_message(RateRequest(rate_index=idx))).rate_index == idx

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_airtime_grant_roundtrip(self, station, slots):
        message = AirtimeGrant(station=station, slots=slots)
        assert decode_message(encode_message(message)) == message

    @given(st.integers(0, 4095), st.data())
    @settings(max_examples=40, deadline=None)
    def test_message_survives_planner(self, seq, data):
        planner = SilencePlanner(
            data.draw(st.lists(st.integers(0, 47), min_size=4, max_size=8, unique=True))
        )
        bits = encode_message(AckMessage(seq=seq))
        plan = planner.plan(bits, n_symbols=30)
        if plan.embedded_bits.size == bits.size:
            recovered = planner.recover_bits(plan.mask)
            assert decode_message(recovered).seq == seq
