"""Unit tests for typed control messages."""

import numpy as np
import pytest

from repro.cos.messages import (
    AckMessage,
    AirtimeGrant,
    LoadReport,
    RateRequest,
    decode_message,
    encode_message,
)


class TestRoundtrips:
    @pytest.mark.parametrize(
        "message",
        [
            AckMessage(seq=0),
            AckMessage(seq=4095),
            LoadReport(station_count=200, load_level=15),
            RateRequest(rate_index=7),
            AirtimeGrant(station=255, slots=128),
        ],
    )
    def test_encode_decode(self, message):
        bits = encode_message(message)
        assert decode_message(bits) == message

    def test_bit_widths_multiple_of_k(self):
        for cls in (AckMessage, LoadReport, RateRequest, AirtimeGrant):
            assert cls.n_bits() % 4 == 0, cls.__name__

    def test_bits_are_binary(self):
        bits = encode_message(AckMessage(seq=1234))
        assert set(np.unique(bits)) <= {0, 1}


class TestErrors:
    def test_unknown_type_id(self):
        bits = np.zeros(16, dtype=np.uint8)  # type id 0 unregistered
        with pytest.raises(ValueError):
            decode_message(bits)

    def test_wrong_length(self):
        bits = encode_message(AckMessage(seq=5))[:-1]
        with pytest.raises(ValueError):
            AckMessage.from_bits(bits)

    def test_too_short_header(self):
        with pytest.raises(ValueError):
            decode_message(np.zeros(2, dtype=np.uint8))

    def test_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_message(AckMessage(seq=5000))  # > 12 bits


class TestOverCosChannel:
    def test_message_survives_interval_coding(self, rng):
        """A message encoded to bits, planned to silences and recovered."""
        from repro.cos.silence import SilencePlanner

        message = LoadReport(station_count=42, load_level=9)
        planner = SilencePlanner(list(range(8)))
        plan = planner.plan(encode_message(message), n_symbols=30)
        recovered_bits = planner.recover_bits(plan.mask)
        assert decode_message(recovered_bits) == message
