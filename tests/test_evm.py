"""Unit tests for per-subcarrier EVM (eq. (1)) and ∇EVM (eq. (2))."""

import numpy as np
import pytest

from repro.cos.evm import error_vector_magnitudes, nabla_evm, per_subcarrier_evm
from repro.phy.modulation import get_modulation


def _grids(rng, n_sym=30, noise=0.0):
    mod = get_modulation("qpsk")
    bits = rng.integers(0, 2, n_sym * 48 * 2, dtype=np.uint8)
    ref = mod.map_bits(bits).reshape(n_sym, 48)
    received = ref + np.sqrt(noise / 2) * (
        rng.standard_normal(ref.shape) + 1j * rng.standard_normal(ref.shape)
    )
    return received, ref, mod


class TestPerSubcarrierEvm:
    def test_zero_for_perfect_reception(self, rng):
        received, ref, mod = _grids(rng)
        assert np.allclose(per_subcarrier_evm(received, ref, mod), 0.0)

    def test_matches_noise_level(self, rng):
        noise = 0.04
        received, ref, mod = _grids(rng, n_sym=800, noise=noise)
        evm = per_subcarrier_evm(received, ref, mod)
        assert np.mean(evm) == pytest.approx(np.sqrt(noise), rel=0.05)

    def test_normalised_by_constellation_power(self, rng):
        """Doubling both grids doubles raw error but also the symbols; EVM
        normalisation uses the constellation reference so it scales."""
        received, ref, mod = _grids(rng, noise=0.02)
        evm1 = per_subcarrier_evm(received, ref, mod)
        evm2 = per_subcarrier_evm(2 * received, 2 * ref, mod)
        assert np.allclose(evm2, 2 * evm1, rtol=1e-9)

    def test_exclusion_mask(self, rng):
        received, ref, mod = _grids(rng, n_sym=10)
        received[0, 0] = 100.0  # a silence symbol would be way off
        mask = np.zeros(ref.shape, dtype=bool)
        mask[0, 0] = True
        evm = per_subcarrier_evm(received, ref, mod, exclude_mask=mask)
        assert evm[0] == pytest.approx(0.0, abs=1e-12)

    def test_shape_mismatch_rejected(self, rng):
        received, ref, mod = _grids(rng)
        with pytest.raises(ValueError):
            per_subcarrier_evm(received[:5], ref, mod)

    def test_fully_excluded_subcarrier_is_zero(self, rng):
        received, ref, mod = _grids(rng, n_sym=4, noise=0.1)
        mask = np.zeros(ref.shape, dtype=bool)
        mask[:, 7] = True
        evm = per_subcarrier_evm(received, ref, mod, exclude_mask=mask)
        assert evm[7] == 0.0


class TestErrorVectorMagnitudes:
    def test_shape(self, rng):
        received, ref, _ = _grids(rng)
        assert error_vector_magnitudes(received, ref).shape == (48,)

    def test_known_offset(self, rng):
        received, ref, _ = _grids(rng)
        shifted = ref + 0.3
        d = error_vector_magnitudes(shifted, ref)
        assert np.allclose(d, 0.3)

    def test_exclusion(self, rng):
        received, ref, _ = _grids(rng, n_sym=3)
        received[1, 5] = 99.0
        mask = np.zeros(ref.shape, dtype=bool)
        mask[1, 5] = True
        d = error_vector_magnitudes(received, ref, exclude_mask=mask)
        assert d[5] == pytest.approx(0.0, abs=1e-12)


class TestNablaEvm:
    def test_identical_snapshots(self):
        d = np.ones(48)
        assert nabla_evm(d, d) == 0.0

    def test_known_value(self):
        d1 = np.zeros(48)
        d2 = np.ones(48)
        assert nabla_evm(d1, d2) == pytest.approx(1.0)

    def test_small_change_small_nabla(self, rng):
        d = rng.random(48) + 0.5
        d2 = d * 1.01
        assert nabla_evm(d, d2) < 0.02

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            nabla_evm(np.ones(48), np.zeros(48))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nabla_evm(np.ones(48), np.ones(47))
