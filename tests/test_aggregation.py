"""Unit tests for A-MPDU aggregation."""

import numpy as np
import pytest

from repro.phy.aggregation import (
    DELIMITER_LEN,
    build_ampdu,
    parse_ampdu,
)
from repro.utils.crc import crc8


class TestCrc8:
    def test_known_vector(self):
        # CRC-8/ATM of "123456789" is 0xF4 for poly 0x07 init 0.
        assert crc8(b"123456789") == 0xF4

    def test_detects_change(self):
        assert crc8(b"\x01\x02") != crc8(b"\x01\x03")


class TestBuildParse:
    def test_single_subframe(self):
        psdu = build_ampdu([b"hello"])
        frames = parse_ampdu(psdu)
        assert len(frames) == 1
        assert frames[0].mpdu.fcs_ok
        assert frames[0].mpdu.payload == b"hello"

    def test_multiple_subframes(self):
        payloads = [b"a" * 10, b"b" * 33, b"c" * 100]
        frames = parse_ampdu(build_ampdu(payloads))
        assert [f.mpdu.payload for f in frames] == payloads
        assert all(f.mpdu.fcs_ok for f in frames)

    def test_four_byte_alignment(self):
        psdu = build_ampdu([b"x", b"y"])
        frames = parse_ampdu(psdu)
        assert len(frames) == 2
        assert all(f.offset % 4 == 0 for f in frames)

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ValueError):
            build_ampdu([])

    def test_oversized_mpdu_rejected(self):
        with pytest.raises(ValueError):
            build_ampdu([bytes(70_000)])


class TestCorruptionResilience:
    def test_payload_corruption_isolated(self):
        payloads = [b"one" * 5, b"two" * 5, b"three" * 5]
        psdu = bytearray(build_ampdu(payloads))
        # Corrupt a byte inside the second MPDU's payload.
        second_frame = parse_ampdu(bytes(psdu))[1]
        psdu[second_frame.offset + DELIMITER_LEN + 1] ^= 0xFF
        frames = parse_ampdu(bytes(psdu))
        assert len(frames) == 3
        assert frames[0].mpdu.fcs_ok
        assert not frames[1].mpdu.fcs_ok
        assert frames[2].mpdu.fcs_ok

    def test_delimiter_corruption_hunts_forward(self):
        payloads = [b"one" * 5, b"two" * 5, b"three" * 5]
        psdu = bytearray(build_ampdu(payloads))
        second = parse_ampdu(bytes(psdu))[1]
        psdu[second.offset + 3] ^= 0xFF  # destroy the signature byte
        frames = parse_ampdu(bytes(psdu))
        payload_set = [f.mpdu.payload for f in frames if f.mpdu.fcs_ok]
        assert payloads[0] in payload_set
        assert payloads[2] in payload_set
        assert payloads[1] not in payload_set

    def test_garbage_input(self, rng):
        garbage = bytes(rng.integers(0, 256, 500, dtype=np.uint8))
        frames = parse_ampdu(garbage)  # must not crash
        assert all(not f.mpdu.fcs_ok or f.mpdu.payload for f in frames)

    def test_truncated_aggregate(self):
        psdu = build_ampdu([b"abcdef" * 10])
        frames = parse_ampdu(psdu[: len(psdu) // 2])
        assert all(not f.mpdu.fcs_ok for f in frames)


class TestOverPhy:
    def test_aggregate_over_the_air(self, clean_channel):
        """An A-MPDU rides the PHY like any PSDU; subframes CRC-check."""
        from repro.phy import RATE_TABLE, Receiver, Transmitter

        payloads = [b"stream-a" * 8, b"stream-b" * 16]
        psdu = build_ampdu(payloads)
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        # Bypass MPDU parsing: take raw decoded PSDU bytes.
        obs = Receiver().observe(clean_channel.transmit(frame.waveform))
        result = Receiver().decode(obs)
        raw = result.decoded.psdu if result.decoded else b""
        recovered = parse_ampdu(raw)
        assert [f.mpdu.payload for f in recovered] == payloads
