"""Unit + integration tests for the reliable control stream."""

import numpy as np
import pytest

from repro.cos.stream import (
    FRAME_BITS,
    ReliableControlReceiver,
    ReliableControlSender,
)


def _transfer(data, drop=lambda i: False, corrupt=lambda i, bits: bits, max_rounds=500):
    sender = ReliableControlSender(data)
    receiver = ReliableControlReceiver()
    rounds = 0
    while not sender.done and rounds < max_rounds:
        payload = sender.next_payload()
        if not drop(rounds):
            ack = receiver.on_payload(corrupt(rounds, payload))
            sender.on_ack(ack)
        rounds += 1
    return receiver.data(len(data)), rounds


class TestLossless:
    def test_roundtrip(self):
        data = b"hello control plane!"
        out, rounds = _transfer(data)
        assert out == data
        assert rounds == ReliableControlSender(data).chunks_total

    def test_single_byte(self):
        out, _ = _transfer(b"\xa5")
        assert out == b"\xa5"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReliableControlSender(b"")

    def test_frame_size_multiple_of_four(self):
        assert FRAME_BITS % 4 == 0


class TestLossy:
    def test_survives_random_drops(self):
        rng = np.random.default_rng(0)
        data = bytes(range(64))
        out, rounds = _transfer(data, drop=lambda i: rng.random() < 0.3)
        assert out == data
        assert rounds > ReliableControlSender(data).chunks_total

    def test_survives_corruption(self):
        rng = np.random.default_rng(1)

        def corrupt(i, bits):
            if rng.random() < 0.25:
                bits = bits.copy()
                bits[rng.integers(0, bits.size)] ^= 1
            return bits

        data = b"config-blob-" * 4
        out, _ = _transfer(data, corrupt=corrupt)
        assert out == data

    def test_duplicates_ignored(self):
        sender = ReliableControlSender(b"ab")
        receiver = ReliableControlReceiver()
        payload = sender.next_payload()
        ack1 = receiver.on_payload(payload)
        ack2 = receiver.on_payload(payload)  # duplicate
        assert ack1 == ack2
        assert receiver.chunks_received == 1

    def test_stale_ack_ignored(self):
        sender = ReliableControlSender(bytes(8))
        receiver = ReliableControlReceiver()
        sender.on_ack(7)  # bogus
        assert not sender.done
        ack = receiver.on_payload(sender.next_payload())
        sender.on_ack(ack)
        assert sender._next == 1

    def test_done_raises_on_next(self):
        sender = ReliableControlSender(b"xy")
        receiver = ReliableControlReceiver()
        sender.on_ack(receiver.on_payload(sender.next_payload()))
        assert sender.done
        with pytest.raises(StopIteration):
            sender.next_payload()


class TestOverCosLink:
    def test_blob_transfer_over_real_link(self):
        """Transfer a 24-byte blob over an actual lossy CoS link."""
        from repro.channel import IndoorChannel
        from repro.cos import CosLink

        channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
        link = CosLink(channel=channel)
        link.exchange(bytes(300), [])  # bootstrap feedback

        blob = bytes(range(24))
        sender = ReliableControlSender(blob)
        receiver = ReliableControlReceiver()
        rounds = 0
        while not sender.done and rounds < 200:
            outcome = link.exchange(bytes(300), sender.next_payload())
            if outcome.control_received.size >= FRAME_BITS:
                ack = receiver.on_payload(outcome.control_received[:FRAME_BITS])
                sender.on_ack(ack)
            rounds += 1
        assert sender.done, f"transfer stalled after {rounds} rounds"
        assert receiver.data(len(blob)) == blob
