"""Tests for :mod:`repro.engine` — the deterministic parallel trial engine.

Covers the contract promised in ``docs/engine.md``: chunking, seed-spawn
determinism (serial vs. process pool bit-for-bit), structured error
propagation with trial context, worker metrics merge, and worker-state
reuse via the per-worker ``init`` hook.
"""

import logging
import os

import pytest

from repro import engine
from repro.engine.executors import _chunk
from repro.engine.worker import run_chunk, worker_state
from repro.obs.metrics import MetricsRegistry


# ---------------------------------------------------------------------------
# Module-level trial functions (must be picklable for the process pool).
# ---------------------------------------------------------------------------

def _draw_trial(spec):
    """Deterministic-per-spec random draw: the bit-exactness workhorse."""
    rng = spec.rng()
    return (spec["x"], float(rng.normal()), rng.integers(0, 1 << 30).item())


def _child_draw_trial(spec):
    """Exercise named sub-streams: order of child requests must not matter."""
    b = float(spec.child_rng(1).normal())
    a = float(spec.child_rng(0).normal())
    a2 = float(spec.child_rng(0).normal())
    return (a, b, a2)


def _square_trial(spec):
    return spec["x"] ** 2


def _failing_trial(spec):
    if spec["x"] == 3:
        raise ValueError("boom at x=3")
    return spec["x"]


def _metric_trial(spec):
    from repro.obs.metrics import get_registry

    get_registry().counter("engine_test_trials_total").labels(kind="unit").inc()
    return spec["x"]


def _pid_trial(spec):
    return os.getpid()


def _state_trial(spec):
    state = worker_state()
    if "engine_test.obj" not in state:
        state["engine_test.obj"] = object()
    return id(state["engine_test.obj"])


def _init_hook(tag):
    worker_state()["engine_test.tag"] = tag


def _tag_trial(spec):
    return worker_state()["engine_test.tag"]


# ---------------------------------------------------------------------------
# Specs and seeding
# ---------------------------------------------------------------------------

class TestSpecs:
    def test_make_specs_indices_and_params(self):
        specs = engine.make_specs([{"x": 10}, {"x": 20}], seed=1)
        assert [s.index for s in specs] == [0, 1]
        assert specs[0]["x"] == 10 and specs[1].get("x") == 20
        assert specs[0].get("missing", "d") == "d"

    def test_specs_seeded_by_spawn_in_order(self):
        a = engine.make_specs([{}] * 4, seed=7)
        b = engine.make_specs([{}] * 4, seed=7)
        for sa, sb in zip(a, b):
            assert sa.rng().integers(1 << 30) == sb.rng().integers(1 << 30)
        # Different root seed → different streams.
        c = engine.make_specs([{}] * 4, seed=8)
        assert a[0].rng().normal() != c[0].rng().normal()

    def test_streams_independent_across_indices(self):
        specs = engine.make_specs([{}] * 3, seed=0)
        draws = {float(s.rng().normal()) for s in specs}
        assert len(draws) == 3

    def test_child_rng_pure_and_named(self):
        (spec,) = engine.make_specs([{}], seed=5)
        # Same child → same stream, regardless of call order or count.
        assert spec.child_rng(2).normal() == spec.child_rng(2).normal()
        # Distinct children → distinct streams, and none equals the main.
        vals = {float(spec.child_rng(c).normal()) for c in (0, 1, 2)}
        vals.add(float(spec.rng().normal()))
        assert len(vals) == 4

    def test_unseeded_spec_refuses_rng(self):
        spec = engine.TrialSpec(index=0, params={})
        with pytest.raises(ValueError, match="make_specs"):
            spec.rng()

    def test_seed_entropy_reports_root_and_spawn_key(self):
        specs = engine.make_specs([{}] * 2, seed=42)
        ent = specs[1].seed_entropy
        assert ent["entropy"] == 42
        assert ent["spawn_key"] == (1,)


# ---------------------------------------------------------------------------
# Chunking
# ---------------------------------------------------------------------------

class TestChunking:
    def test_chunk_partitions_in_order(self):
        specs = engine.make_specs([{"x": i} for i in range(7)], seed=0)
        chunks = _chunk(specs, 3)
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [s.index for c in chunks for s in c] == list(range(7))

    def test_chunk_size_floor_is_one(self):
        specs = engine.make_specs([{"x": i} for i in range(3)], seed=0)
        assert [len(c) for c in _chunk(specs, 0)] == [1, 1, 1]

    def test_default_chunk_size_targets_chunks_per_worker(self):
        ex = engine.ProcessExecutor(2)
        # 100 specs over 2 workers * 4 chunks each → ceil(100/8) = 13.
        assert ex._default_chunk_size(100) == 13
        assert ex._default_chunk_size(1) == 1

    def test_results_reassembled_in_spec_order(self):
        params = [{"x": i} for i in range(11)]
        out = engine.run_sweep(params, _square_trial, seed=0, workers=0,
                               chunk_size=4, registry=MetricsRegistry())
        assert out == [i ** 2 for i in range(11)]


# ---------------------------------------------------------------------------
# Determinism: serial vs process pool
# ---------------------------------------------------------------------------

class TestDeterminism:
    PARAMS = [{"x": i} for i in range(10)]

    def test_serial_vs_parallel_bit_identical(self):
        serial = engine.run_sweep(self.PARAMS, _draw_trial, seed=3, workers=0,
                                  registry=MetricsRegistry())
        parallel = engine.run_sweep(self.PARAMS, _draw_trial, seed=3, workers=2,
                                    registry=MetricsRegistry())
        assert serial == parallel

    def test_chunk_size_does_not_change_results(self):
        base = engine.run_sweep(self.PARAMS, _draw_trial, seed=3, workers=0,
                                registry=MetricsRegistry())
        for size in (1, 3, 10):
            out = engine.run_sweep(self.PARAMS, _draw_trial, seed=3, workers=2,
                                   chunk_size=size, registry=MetricsRegistry())
            assert out == base

    def test_child_streams_identical_across_executors(self):
        serial = engine.run_sweep(self.PARAMS, _child_draw_trial, seed=9,
                                  workers=0, registry=MetricsRegistry())
        parallel = engine.run_sweep(self.PARAMS, _child_draw_trial, seed=9,
                                    workers=2, registry=MetricsRegistry())
        assert serial == parallel
        # Re-requesting child 0 restarts the stream (purity).
        for a, _b, a2 in serial:
            assert a == a2

    def test_pool_actually_uses_worker_processes(self):
        pids = engine.run_sweep([{}] * 6, _pid_trial, seed=0, workers=2,
                                chunk_size=1, registry=MetricsRegistry())
        assert os.getpid() not in pids


# ---------------------------------------------------------------------------
# Error propagation
# ---------------------------------------------------------------------------

class TestErrors:
    PARAMS = [{"x": i} for i in range(6)]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_failure_surfaces_as_trial_error_with_context(self, workers):
        with pytest.raises(engine.TrialError) as exc_info:
            engine.run_sweep(self.PARAMS, _failing_trial, seed=0,
                             workers=workers, registry=MetricsRegistry())
        err = exc_info.value
        assert err.index == 3
        assert err.params == {"x": 3}
        assert err.seed_entropy["spawn_key"] == (3,)
        assert "boom at x=3" in str(err)
        assert "ValueError" in err.traceback_text

    def test_serial_chunk_stops_at_first_failure(self):
        specs = engine.make_specs(self.PARAMS, seed=0)
        chunk = run_chunk(_failing_trial, specs)
        assert chunk.error is not None
        assert chunk.error["index"] == 3
        assert chunk.results == [0, 1, 2]  # nothing past the failure ran

    def test_trial_error_message_mentions_params_and_seed(self):
        err = engine.TrialError(
            "bad", index=4, params={"snr": 12.0},
            seed_entropy={"entropy": 1, "spawn_key": (4,)},
            traceback_text="Traceback ...",
        )
        text = str(err)
        assert "trial 4 failed: bad" in text
        assert "'snr': 12.0" in text
        assert "spawn_key" in text


# ---------------------------------------------------------------------------
# Worker metrics merge
# ---------------------------------------------------------------------------

class TestMetricsMerge:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_trial_counters_survive_parallelism(self, workers):
        registry = MetricsRegistry()
        engine.run_sweep([{"x": i} for i in range(8)], _metric_trial, seed=0,
                         workers=workers, registry=registry)
        if workers:
            # Worker-side increments arrive via snapshot merge.
            snap = registry.snapshot()["engine_test_trials_total"]
        else:
            # Serial writes land in the *live* registry, which here is the
            # process-wide one — check it instead.
            from repro.obs.metrics import get_registry
            snap = get_registry().snapshot()["engine_test_trials_total"]
        (series,) = [s for s in snap["series"] if s["labels"] == {"kind": "unit"}]
        assert series["value"] >= 8.0

    def test_registry_merge_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").labels(k="x").inc(2)
        b.counter("c").labels(k="x").inc(3)
        b.counter("c").labels(k="y").inc(1)
        a.merge(b)
        values = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in a.snapshot()["c"]["series"]
        }
        assert values[(("k", "x"),)] == 5.0
        assert values[(("k", "y"),)] == 1.0

    def test_registry_merge_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").labels().set(1.0)
        b.gauge("g").labels().set(7.0)
        a.merge(b)
        assert a.snapshot()["g"]["series"][0]["value"] == 7.0

    def test_registry_merge_histograms_add(self):
        buckets = (1.0, 2.0, 4.0)
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=buckets).labels().observe(0.5)
        b.histogram("h", buckets=buckets).labels().observe(3.0)
        b.histogram("h", buckets=buckets).labels().observe(0.5)
        a.merge(b.snapshot())  # merge from a plain snapshot dict
        (series,) = a.snapshot()["h"]["series"]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(4.0)
        assert series["bucket_counts"] == [2, 0, 1, 0]

    def test_registry_merge_rejects_kind_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m").labels().inc()
        b.gauge("m").labels().set(1.0)
        with pytest.raises(ValueError, match="already registered"):
            a.merge(b)

    def test_registry_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).labels().observe(0.5)
        b.histogram("h", buckets=(1.0, 3.0)).labels().observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_is_associative_for_counters(self):
        parts = []
        for inc in (1, 2, 3):
            r = MetricsRegistry()
            r.counter("c").labels().inc(inc)
            parts.append(r.snapshot())
        left = MetricsRegistry()
        for p in parts:
            left.merge(p)
        right = MetricsRegistry()
        for p in reversed(parts):
            right.merge(p)
        assert (left.snapshot()["c"]["series"][0]["value"]
                == right.snapshot()["c"]["series"][0]["value"] == 6.0)


# ---------------------------------------------------------------------------
# Worker state and init hooks
# ---------------------------------------------------------------------------

class TestWorkerState:
    def test_state_reused_within_a_process(self):
        ids = engine.run_sweep([{}] * 4, _state_trial, seed=0, workers=0,
                               chunk_size=2, registry=MetricsRegistry())
        assert len(set(ids)) == 1  # one shared object across all trials

    @pytest.mark.parametrize("workers", [0, 2])
    def test_init_hook_runs_before_trials(self, workers):
        tags = engine.run_sweep([{}] * 4, _tag_trial, seed=0, workers=workers,
                                init=_init_hook, init_args=("ready",),
                                registry=MetricsRegistry())
        assert tags == ["ready"] * 4


# ---------------------------------------------------------------------------
# Executor selection / workers resolution
# ---------------------------------------------------------------------------

class TestExecutorSelection:
    def test_resolve_workers_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert engine.resolve_workers(0) == 0
        assert engine.resolve_workers(2) == 2

    def test_resolve_workers_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert engine.resolve_workers(None) == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert engine.resolve_workers(None) == 0

    def test_make_executor_kinds(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert isinstance(engine.make_executor(0), engine.SerialExecutor)
        assert isinstance(engine.make_executor(2), engine.ProcessExecutor)
        assert isinstance(engine.make_executor(None), engine.SerialExecutor)

    def test_process_executor_requires_workers(self):
        with pytest.raises(ValueError):
            engine.ProcessExecutor(0)

    def test_empty_sweep(self):
        assert engine.run_sweep([], _square_trial, seed=0, workers=0,
                                registry=MetricsRegistry()) == []
        assert engine.run_sweep([], _square_trial, seed=0, workers=2,
                                registry=MetricsRegistry()) == []

    def test_progress_logging_emits_debug_lines(self):
        # Attach a handler directly: other tests may have configured the
        # "repro" logger with propagate=False, which hides records from
        # caplog's root handler.
        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger("repro.engine")
        handler = _Capture(level=logging.DEBUG)
        old_level = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.DEBUG)
        try:
            engine.run_sweep([{"x": i} for i in range(3)], _square_trial,
                             seed=0, workers=0, label="unit",
                             registry=MetricsRegistry())
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        assert any("unit" in rec.getMessage() for rec in records)


# ---------------------------------------------------------------------------
# Harness equality: real experiments, serial vs parallel
# ---------------------------------------------------------------------------

def _fig2_points(workers):
    from repro.experiments import fig2

    return fig2.run(workers=workers).points


def _fig9_points(workers):
    from repro.experiments import fig9

    return fig9.run(workers=workers).points


@pytest.mark.slow
class TestHarnessEquality:
    """Quick-mode figure outputs must be identical for workers=0 vs 2."""

    def test_fig2_serial_vs_parallel(self):
        assert _fig2_points(0) == _fig2_points(2)

    def test_fig9_serial_vs_parallel(self):
        assert _fig9_points(0) == _fig9_points(2)
