"""Unit tests for the 802.11a parameter tables."""

from fractions import Fraction

import pytest

from repro.phy.params import (
    DATA_SUBCARRIER_INDICES,
    N_DATA_SUBCARRIERS,
    PILOT_SUBCARRIER_INDICES,
    RATE_TABLE,
    RATES_MBPS,
    SYMBOL_DURATION_S,
    SYMBOLS_PER_SECOND,
    USED_SUBCARRIER_INDICES,
    rate_for_mbps,
)


class TestSubcarrierPlan:
    def test_counts(self):
        assert len(DATA_SUBCARRIER_INDICES) == 48
        assert len(PILOT_SUBCARRIER_INDICES) == 4
        assert len(USED_SUBCARRIER_INDICES) == 52

    def test_pilots_at_standard_positions(self):
        assert set(PILOT_SUBCARRIER_INDICES) == {-21, -7, 7, 21}

    def test_dc_unused(self):
        assert 0 not in USED_SUBCARRIER_INDICES

    def test_data_pilot_disjoint(self):
        assert not set(DATA_SUBCARRIER_INDICES) & set(PILOT_SUBCARRIER_INDICES)

    def test_symbol_timing(self):
        assert SYMBOL_DURATION_S == pytest.approx(4e-6)
        assert SYMBOLS_PER_SECOND == pytest.approx(250_000)


class TestRateTable:
    def test_all_standard_rates(self):
        assert RATES_MBPS == (6, 9, 12, 18, 24, 36, 48, 54)

    @pytest.mark.parametrize(
        "mbps,n_dbps",
        [(6, 24), (9, 36), (12, 48), (18, 72), (24, 96), (36, 144), (48, 192), (54, 216)],
    )
    def test_data_bits_per_symbol(self, mbps, n_dbps):
        assert RATE_TABLE[mbps].n_dbps == n_dbps

    @pytest.mark.parametrize("mbps,n_cbps", [(6, 48), (12, 96), (24, 192), (48, 288)])
    def test_coded_bits_per_symbol(self, mbps, n_cbps):
        assert RATE_TABLE[mbps].n_cbps == n_cbps

    def test_rate_names(self):
        assert RATE_TABLE[36].name == "(16QAM,3/4)"
        assert RATE_TABLE[48].name == "(64QAM,2/3)"

    def test_mbps_consistent_with_dbps(self):
        for mbps, rate in RATE_TABLE.items():
            # n_dbps bits every 4 us == mbps megabits per second.
            assert rate.n_dbps / 4.0 == pytest.approx(mbps)

    def test_signal_rate_bits_unique(self):
        bits = [r.signal_rate_bits for r in RATE_TABLE.values()]
        assert len(set(bits)) == len(bits)

    def test_n_symbols_for(self):
        # The paper's fixed 1024-byte packet at 24 Mbps:
        # (16 + 8192 + 6) / 96 -> 86 symbols.
        assert RATE_TABLE[24].n_symbols_for(1024) == 86
        # And always at least one symbol.
        assert RATE_TABLE[54].n_symbols_for(1) >= 1

    def test_lookup_errors(self):
        with pytest.raises(KeyError):
            rate_for_mbps(11)

    def test_code_rates(self):
        assert RATE_TABLE[24].code_rate == Fraction(1, 2)
        assert RATE_TABLE[48].code_rate == Fraction(2, 3)
        assert RATE_TABLE[54].code_rate == Fraction(3, 4)
